"""Tests for the competing techniques: nopack, Pywren, batching, stagger,
Oracle."""

import pytest

from repro.baselines.batching import SerialBatcher
from repro.baselines.nopack import run_unpacked
from repro.baselines.oracle import Oracle, joint_objective
from repro.baselines.pywren import PywrenManager
from repro.baselines.stagger import StaggeredInvoker
from repro.platform.base import ServerlessPlatform
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT, STATELESS_COST
from repro.workloads.synthetic import make_synthetic


@pytest.fixture(scope="module")
def platform():
    return ServerlessPlatform(AWS_LAMBDA, seed=51)


# --------------------------------------------------------------------- #
# nopack
# --------------------------------------------------------------------- #

def test_nopack_uses_degree_one(platform):
    result = run_unpacked(platform, SORT, 20)
    assert result.packing_degree == 1
    assert result.n_instances == 20


# --------------------------------------------------------------------- #
# Pywren
# --------------------------------------------------------------------- #

def test_pywren_reuses_instances(platform):
    manager = PywrenManager(platform, warm_pool_size=10)
    result = manager.map(SORT, 30)
    cold = [r for r in result.records if not r.warm_start]
    warm = [r for r in result.records if r.warm_start]
    assert len(cold) == 10
    assert len(warm) == 20


def test_pywren_cuts_startup_not_scheduling(platform):
    """Pywren's optimizations shrink the cold-start pipeline but cannot
    touch the scheduler-search bottleneck (the paper's Sec. 4 argument)."""
    base = run_unpacked(platform, SORT, 300)
    pywren = PywrenManager(platform, warm_pool_size=1000).map(SORT, 300)
    assert pywren.breakdown()["startup"] < base.breakdown()["startup"]
    assert pywren.breakdown()["scheduling"] == pytest.approx(
        base.breakdown()["scheduling"], rel=0.05
    )
    # In-handler staging inflates execution a little; service stays close.
    assert pywren.service_time() < 1.25 * base.service_time()


def test_pywren_fades_at_high_concurrency(platform):
    """...but the scaling bottleneck eventually dominates (paper Sec. 4)."""
    base = run_unpacked(platform, SORT, 4000)
    pywren = PywrenManager(platform, warm_pool_size=1000).map(SORT, 4000)
    # Still better than doing nothing, but nowhere near ProPack's cut.
    assert pywren.service_time() > 0.25 * base.service_time()


def test_pywren_bills_staging_overhead(platform):
    base = run_unpacked(platform, SORT, 100)
    pywren = PywrenManager(platform, warm_pool_size=1000).map(SORT, 100)
    assert pywren.expense.total_usd > base.expense.total_usd


def test_pywren_rejects_bad_pool(platform):
    with pytest.raises(ValueError):
        PywrenManager(platform, warm_pool_size=0)


# --------------------------------------------------------------------- #
# Serial batching
# --------------------------------------------------------------------- #

def test_batching_covers_all_functions(platform):
    outcome = SerialBatcher(platform, batch_size=30).run(SORT, 100)
    assert len(outcome.batch_results) == 4
    total = sum(r.n_instances for r in outcome.batch_results)
    assert total == 100


def test_batching_serializes_turnaround(platform):
    burst = run_unpacked(platform, STATELESS_COST, 200)
    batched = SerialBatcher(platform, batch_size=50).run(STATELESS_COST, 200)
    assert batched.service_time > burst.service_time()


def test_batching_expense_close_to_baseline(platform):
    burst = run_unpacked(platform, STATELESS_COST, 200)
    batched = SerialBatcher(platform, batch_size=50).run(STATELESS_COST, 200)
    assert batched.expense_usd == pytest.approx(burst.expense.total_usd, rel=0.05)


def test_batching_rejects_bad_size(platform):
    with pytest.raises(ValueError):
        SerialBatcher(platform, batch_size=0)


# --------------------------------------------------------------------- #
# Staggering
# --------------------------------------------------------------------- #

def test_stagger_scaling_dominated_by_inserted_delay(platform):
    outcome = StaggeredInvoker(platform, delay_s=0.5).run(SORT, 2000)
    assert outcome.scaling_time >= 0.5 * 1999


def test_stagger_worse_than_burst_at_scale(platform):
    """The paper's observation: severe service degradation."""
    burst = run_unpacked(platform, SORT, 2000)
    staggered = StaggeredInvoker(platform, delay_s=0.5).run(SORT, 2000)
    assert staggered.service_time > burst.service_time()


def test_stagger_expense_scales_linearly(platform):
    outcome = StaggeredInvoker(platform, delay_s=0.5, window=50).run(SORT, 500)
    assert outcome.expense_usd == pytest.approx(
        outcome.window_result.expense.total_usd * 10, rel=0.01
    )


def test_stagger_rejects_bad_params(platform):
    with pytest.raises(ValueError):
        StaggeredInvoker(platform, delay_s=0.0)
    with pytest.raises(ValueError):
        StaggeredInvoker(platform, window=0)


# --------------------------------------------------------------------- #
# Oracle
# --------------------------------------------------------------------- #

def test_oracle_sweep_covers_feasible_degrees(platform):
    sweep = Oracle(platform).sweep(SORT, 200)
    assert set(sweep.results) == set(range(1, 16))
    assert sweep.infeasible == []


def test_oracle_best_degrees_ordered_by_objective(platform):
    sweep = Oracle(platform).sweep(SORT, 2000)
    service = sweep.best_degree("service")
    joint = sweep.best_degree("joint")
    expense = sweep.best_degree("expense")
    assert service <= joint <= expense


def test_oracle_marks_timeouts_infeasible():
    app = make_synthetic(base_seconds=500.0, mem_mb=1024, pressure_per_gb=0.35)
    platform = ServerlessPlatform(AWS_LAMBDA, seed=3)
    sweep = Oracle(platform).sweep(app, 50)
    assert sweep.infeasible  # high degrees blow the 900 s cap
    assert sweep.results  # low degrees fine


def test_oracle_unknown_objective(platform):
    sweep = Oracle(platform).sweep(SORT, 100, degrees=[1, 2])
    with pytest.raises(ValueError):
        sweep.best_degree("latency")


def test_oracle_rejects_oversized_degree(platform):
    with pytest.raises(ValueError):
        Oracle(platform).sweep(SORT, 100, degrees=[99])


def test_joint_objective_regret_math():
    sweep = Oracle(ServerlessPlatform(AWS_LAMBDA, seed=4)).sweep(
        SORT, 500, degrees=[1, 5, 10]
    )
    combined = joint_objective(sweep.results, w_s=0.5)
    assert set(combined) == {1, 5, 10}
    assert min(combined.values()) >= 0.0


def test_oracle_empty_sweep_raises():
    from repro.baselines.oracle import OracleResult

    with pytest.raises(ValueError):
        OracleResult("x", 1).best_degree()
