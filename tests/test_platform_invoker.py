"""Tests for the burst invoker: packing layout, waves, warm reuse, timeouts."""

import pytest

from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec, FunctionTimeoutError
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT, STATELESS_COST
from repro.workloads.synthetic import make_synthetic


@pytest.fixture(scope="module")
def platform():
    return ServerlessPlatform(AWS_LAMBDA, seed=5)


# --------------------------------------------------------------------- #
# BurstSpec validation
# --------------------------------------------------------------------- #

def test_spec_rejects_bad_concurrency():
    with pytest.raises(ValueError):
        BurstSpec(app=SORT, concurrency=0)


def test_spec_rejects_bad_degree():
    with pytest.raises(ValueError):
        BurstSpec(app=SORT, concurrency=10, packing_degree=0)


def test_spec_rejects_degree_above_concurrency():
    with pytest.raises(ValueError):
        BurstSpec(app=SORT, concurrency=5, packing_degree=6)


def test_spec_rejects_bad_wave():
    with pytest.raises(ValueError):
        BurstSpec(app=SORT, concurrency=10, wave_size=0)


def test_spec_rejects_exec_overhead_below_one():
    with pytest.raises(ValueError):
        BurstSpec(app=SORT, concurrency=10, exec_overhead=0.9)


def test_spec_instance_count_ceils():
    assert BurstSpec(app=SORT, concurrency=10, packing_degree=3).n_instances == 4
    assert BurstSpec(app=SORT, concurrency=9, packing_degree=3).n_instances == 3


# --------------------------------------------------------------------- #
# Burst execution
# --------------------------------------------------------------------- #

def test_every_function_is_executed(platform):
    result = platform.run_burst(BurstSpec(app=SORT, concurrency=10, packing_degree=3))
    assert result.n_instances == 4
    assert sum(r.n_packed for r in result.records) == 10


def test_last_instance_partially_packed(platform):
    result = platform.run_burst(BurstSpec(app=SORT, concurrency=10, packing_degree=3))
    packed = sorted(r.n_packed for r in result.records)
    assert packed == [1, 3, 3, 3]


def test_records_have_full_lifecycle(platform):
    result = platform.run_burst(BurstSpec(app=SORT, concurrency=5))
    for r in result.records:
        assert r.sched_done is not None
        assert r.built_at is not None
        assert r.shipped_at is not None
        assert 0 <= r.sched_done
        assert r.shipped_at >= max(r.built_at, r.sched_done)
        assert r.exec_start == r.shipped_at
        assert r.exec_end > r.exec_start


def test_provisioned_memory_defaults_to_platform_max(platform):
    result = platform.run_burst(BurstSpec(app=SORT, concurrency=2))
    assert all(r.provisioned_mb == AWS_LAMBDA.max_memory_mb for r in result.records)


def test_provisioned_memory_override(platform):
    result = platform.run_burst(
        BurstSpec(app=SORT, concurrency=2, provisioned_mb=2048)
    )
    assert all(r.provisioned_mb == 2048 for r in result.records)


def test_overprovisioning_rejected(platform):
    with pytest.raises(ValueError, match="exceeds the platform maximum"):
        platform.run_burst(BurstSpec(app=SORT, concurrency=2, provisioned_mb=20480))


def test_packing_increases_exec_time(platform):
    solo = platform.run_burst(BurstSpec(app=SORT, concurrency=1, packing_degree=1))
    packed = platform.run_burst(BurstSpec(app=SORT, concurrency=10, packing_degree=10))
    assert packed.mean_exec_seconds > solo.mean_exec_seconds


def test_timeout_enforced():
    # A synthetic app whose packed execution exceeds the platform cap.
    app = make_synthetic(base_seconds=800.0, mem_mb=1024, pressure_per_gb=0.5)
    platform = ServerlessPlatform(AWS_LAMBDA, seed=1)
    with pytest.raises(FunctionTimeoutError):
        platform.run_burst(BurstSpec(app=app, concurrency=8, packing_degree=8))


def test_timeout_can_be_disabled():
    app = make_synthetic(base_seconds=800.0, mem_mb=1024, pressure_per_gb=0.5)
    platform = ServerlessPlatform(AWS_LAMBDA, seed=1, enforce_timeout=False)
    result = platform.run_burst(BurstSpec(app=app, concurrency=8, packing_degree=8))
    assert result.mean_exec_seconds > AWS_LAMBDA.max_execution_seconds


# --------------------------------------------------------------------- #
# Waves and warm reuse (the Pywren path)
# --------------------------------------------------------------------- #

def test_wave_size_limits_cold_instances(platform):
    result = platform.run_burst(
        BurstSpec(app=STATELESS_COST, concurrency=20, wave_size=5)
    )
    cold = [r for r in result.records if not r.warm_start]
    warm = [r for r in result.records if r.warm_start]
    assert len(cold) == 5
    assert len(warm) == 15
    assert sum(r.n_packed for r in result.records) == 20


def test_warm_records_skip_pipeline(platform):
    result = platform.run_burst(
        BurstSpec(app=STATELESS_COST, concurrency=10, wave_size=2)
    )
    spec_warm_latency = BurstSpec(app=STATELESS_COST, concurrency=1).warm_dispatch_s
    for r in result.records:
        if r.warm_start:
            # Warm dispatch pays only the small dispatch latency, no pipeline.
            assert r.startup_delay == pytest.approx(spec_warm_latency)
            assert r.shipping_delay == pytest.approx(0.0)


def test_waves_serialize_service_time(platform):
    burst = platform.run_burst(BurstSpec(app=STATELESS_COST, concurrency=20))
    waved = platform.run_burst(
        BurstSpec(app=STATELESS_COST, concurrency=20, wave_size=2)
    )
    # 10 sequential waves must take much longer end-to-end.
    assert waved.service_time() > 3 * burst.service_time()


def test_exec_overhead_inflates_billing(platform):
    plain = platform.run_burst(BurstSpec(app=SORT, concurrency=5), repetition=77)
    inflated = platform.run_burst(
        BurstSpec(app=SORT, concurrency=5, exec_overhead=1.5), repetition=77
    )
    assert inflated.mean_exec_seconds == pytest.approx(
        1.5 * plain.mean_exec_seconds, rel=1e-6
    )
    assert inflated.expense.compute_usd == pytest.approx(
        1.5 * plain.expense.compute_usd, rel=1e-6
    )


def test_extra_io_accounted(platform):
    plain = platform.run_burst(BurstSpec(app=SORT, concurrency=5), repetition=78)
    extra = platform.run_burst(
        BurstSpec(app=SORT, concurrency=5, extra_io_mb_per_function=50.0),
        repetition=78,
    )
    assert extra.expense.storage_usd > plain.expense.storage_usd


def test_deterministic_given_seed_and_repetition():
    a = ServerlessPlatform(AWS_LAMBDA, seed=9).run_burst(
        BurstSpec(app=SORT, concurrency=20), repetition=0
    )
    b = ServerlessPlatform(AWS_LAMBDA, seed=9).run_burst(
        BurstSpec(app=SORT, concurrency=20), repetition=0
    )
    assert a.service_time() == b.service_time()
    assert a.expense.total_usd == b.expense.total_usd


def test_repetitions_differ():
    platform = ServerlessPlatform(AWS_LAMBDA, seed=9)
    a = platform.run_burst(BurstSpec(app=SORT, concurrency=20), repetition=0)
    b = platform.run_burst(BurstSpec(app=SORT, concurrency=20), repetition=1)
    assert a.service_time() != b.service_time()


def test_warm_records_are_flagged_and_skip_build_and_ship(platform):
    """The _reuse_warm/_warm_start path: no pipeline, only dispatch latency."""
    result = platform.run_burst(
        BurstSpec(app=STATELESS_COST, concurrency=12, wave_size=3)
    )
    warm = [r for r in result.records if r.warm_start]
    assert warm, "wave dispatch must produce warm reuses"
    for r in warm:
        assert r.warm_start is True
        # Build and ship collapse to the same instant: the container is
        # already on the worker, so the record never enters the pipeline.
        assert r.built_at == r.shipped_at
        assert r.scheduling_delay == pytest.approx(0.0)
        assert r.shipping_delay == pytest.approx(0.0)
        # Execution starts one warm dispatch after invocation.
        assert r.exec_start - r.invoked_at == pytest.approx(
            BurstSpec(app=STATELESS_COST, concurrency=1).warm_dispatch_s
        )


def test_warm_reuse_bills_execution_only(platform):
    """A warm instance is billed for its execution seconds, nothing more."""
    from repro.platform.billing import BillingModel

    result = platform.run_burst(
        BurstSpec(app=STATELESS_COST, concurrency=12, wave_size=3)
    )
    billing = BillingModel(AWS_LAMBDA)
    warm = [r for r in result.records if r.warm_start]
    for r in warm:
        billed_gb = billing.billed_memory_mb(r.provisioned_mb) / 1024.0
        assert billing.instance_compute_usd(r) == pytest.approx(
            r.exec_seconds * billed_gb * AWS_LAMBDA.gb_second_usd
        )
    # The burst's compute line is exactly the per-record execution charges:
    # warm reuse adds no hidden init or pipeline billing.
    expected = sum(billing.instance_compute_usd(r) for r in result.records)
    assert result.expense.compute_usd == pytest.approx(expected)
    # Per-request fees accrue per instance, warm or cold alike.
    assert result.expense.requests_usd == pytest.approx(
        len(result.records) * AWS_LAMBDA.per_request_usd
    )
