"""Tests for the shared-fleet multi-tenant simulation."""

import pytest

from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.multitenant import SharedFleet
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT, STATELESS_COST, XAPIAN


def make_fleet(seed=181):
    return SharedFleet(AWS_LAMBDA, seed=seed)


def test_single_tenant_matches_isolated_platform():
    """One tenant on a shared fleet behaves like the isolated substrate."""
    fleet = make_fleet()
    fleet.submit("solo", BurstSpec(app=SORT, concurrency=500))
    shared = fleet.run()["solo"]
    isolated = ServerlessPlatform(AWS_LAMBDA, seed=181).run_burst(
        BurstSpec(app=SORT, concurrency=500)
    )
    assert shared.scaling_time == pytest.approx(isolated.scaling_time, rel=0.05)
    assert shared.service_time() == pytest.approx(isolated.service_time(), rel=0.05)


def test_all_tenants_complete():
    fleet = make_fleet()
    fleet.submit("a", BurstSpec(app=SORT, concurrency=300))
    fleet.submit("b", BurstSpec(app=STATELESS_COST, concurrency=200), at_time=2.0)
    results = fleet.run()
    assert sum(r.n_packed for r in results["a"].records) == 300
    assert sum(r.n_packed for r in results["b"].records) == 200


def test_contention_slows_the_other_tenant():
    """A big concurrent tenant inflates a small tenant's scaling time."""
    alone = make_fleet(seed=7)
    alone.submit("small", BurstSpec(app=XAPIAN, concurrency=300))
    baseline = alone.run()["small"].scaling_time

    crowded = make_fleet(seed=7)
    crowded.submit("big", BurstSpec(app=SORT, concurrency=3000))
    crowded.submit("small", BurstSpec(app=XAPIAN, concurrency=300))
    contended = crowded.run()["small"].scaling_time
    assert contended > 2.0 * baseline


def test_neighbor_packing_helps_other_tenants():
    """The paper's provider-side benefit (Sec. 5): when the big tenant
    packs, it stops monopolizing the placement loop and the small
    tenant's burst scales much faster."""
    def small_scaling(big_degree):
        fleet = make_fleet(seed=11)
        fleet.submit(
            "big", BurstSpec(app=SORT, concurrency=3000, packing_degree=big_degree)
        )
        fleet.submit("small", BurstSpec(app=XAPIAN, concurrency=300))
        return fleet.run()["small"].scaling_time

    assert small_scaling(8) < 0.5 * small_scaling(1)


def test_offset_burst_metrics_are_normalized():
    """A burst submitted at t=50 reports the same-scale metrics as t=0."""
    offset = make_fleet(seed=13)
    offset.submit("late", BurstSpec(app=SORT, concurrency=400), at_time=50.0)
    late = offset.run()["late"]
    immediate = make_fleet(seed=13)
    immediate.submit("late", BurstSpec(app=SORT, concurrency=400))
    now = immediate.run()["late"]
    assert late.scaling_time == pytest.approx(now.scaling_time, rel=0.05)
    assert late.records[0].invoked_at == 0.0


def test_submission_validation():
    fleet = make_fleet()
    fleet.submit("a", BurstSpec(app=SORT, concurrency=10))
    with pytest.raises(ValueError, match="already has a burst"):
        fleet.submit("a", BurstSpec(app=SORT, concurrency=10))
    with pytest.raises(ValueError, match="non-negative"):
        fleet.submit("b", BurstSpec(app=SORT, concurrency=10), at_time=-1.0)


def test_fleet_is_single_use():
    fleet = make_fleet()
    fleet.submit("a", BurstSpec(app=SORT, concurrency=10))
    fleet.run()
    with pytest.raises(RuntimeError, match="already ran"):
        fleet.run()
    with pytest.raises(RuntimeError, match="already ran"):
        fleet.submit("b", BurstSpec(app=SORT, concurrency=10))


def test_empty_fleet_rejected():
    with pytest.raises(ValueError, match="no bursts"):
        make_fleet().run()


def test_shared_fleet_supports_decentralized_scheduler():
    from repro.platform.scheduler_decentralized import DecentralizedScheduler

    profile = AWS_LAMBDA.with_overrides(name="aws-s4", scheduler_shards=4)
    fleet = SharedFleet(profile, seed=19)
    assert isinstance(fleet.scheduler, DecentralizedScheduler)
    fleet.submit("a", BurstSpec(app=SORT, concurrency=400))
    results = fleet.run()
    assert sum(r.n_packed for r in results["a"].records) == 400


def test_expenses_accounted_per_tenant():
    fleet = make_fleet(seed=17)
    fleet.submit("a", BurstSpec(app=SORT, concurrency=100))
    fleet.submit("b", BurstSpec(app=SORT, concurrency=200))
    results = fleet.run()
    assert results["b"].expense.total_usd > 1.5 * results["a"].expense.total_usd


def test_fairness_ledger_conserves_and_bills_proportionally():
    """Every submission lands in the ledger (submitted == admitted +
    rejected — the shared fleet never rejects, so rejected stays 0), and
    after the run each tenant's billed dollars equal their own result's
    expense, growing with their share of the work. The conservation
    identity itself is the promoted ``tenant-conservation`` invariant in
    ``repro.chaos.invariants``."""
    from repro.chaos.invariants import check_tenant_conservation

    fleet = make_fleet(seed=23)
    fleet.submit("a", BurstSpec(app=SORT, concurrency=100))
    fleet.submit("b", BurstSpec(app=SORT, concurrency=200))
    fleet.submit("c", BurstSpec(app=STATELESS_COST, concurrency=50))

    ledger = fleet.ledger()
    assert ledger["a"].submitted == 100
    assert ledger["b"].submitted == 200
    assert ledger["c"].submitted == 50
    assert all(acct.conserved() for acct in ledger.values())
    assert check_tenant_conservation(ledger.values()) == []

    results = fleet.run()
    settled = fleet.ledger()
    for tenant in ("a", "b"):
        assert settled[tenant].billed_usd == results[tenant].expense.total_usd
        assert settled[tenant].billed_usd > 0.0
    assert settled["b"].billed_usd > settled["a"].billed_usd
    assert check_tenant_conservation(settled.values()) == []
