"""``propack-trace``: demo produces a valid trace; summary/dump read it."""

import json

import pytest

from repro.tools import trace_cli


@pytest.fixture(scope="module")
def demo_trace(tmp_path_factory):
    out = tmp_path_factory.mktemp("traces") / "trace.json"
    metrics = out.with_suffix(".prom")
    rc = trace_cli.main([
        "demo", "--app", "sort", "--concurrency", "200",
        "--out", str(out), "--metrics-out", str(metrics), "-q",
    ])
    assert rc == 0
    return out


def test_demo_writes_valid_chrome_trace(demo_trace, capsys):
    document = json.loads(demo_trace.read_text())
    events = document["traceEvents"]
    assert any(e["ph"] == "M" for e in events)
    assert any(e["ph"] == "X" and e["cat"] == "instance" for e in events)
    metrics = demo_trace.with_suffix(".prom").read_text()
    assert "propack_sched_placements_total" in metrics


def test_demo_is_deterministic(demo_trace, tmp_path, capsys):
    again = tmp_path / "again.json"
    assert trace_cli.main([
        "demo", "--app", "sort", "--concurrency", "200",
        "--out", str(again), "-q",
    ]) == 0
    capsys.readouterr()
    assert again.read_bytes() == demo_trace.read_bytes()


def test_summary_reads_the_trace(demo_trace, capsys):
    assert trace_cli.main(["summary", str(demo_trace), "-q"]) == 0
    out = capsys.readouterr().out
    assert "spans:" in out
    assert "instance" in out and "phase" in out


def test_dump_filters_by_category(demo_trace, capsys):
    assert trace_cli.main([
        "dump", str(demo_trace), "--category", "instance", "--limit", "5", "-q",
    ]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert len(out) == 5
    assert all("instance#" in line for line in out)


def test_dump_rejects_non_trace_file(tmp_path):
    bogus = tmp_path / "not_a_trace.json"
    bogus.write_text("{}")
    with pytest.raises(ValueError, match="traceEvents"):
        trace_cli.main(["dump", str(bogus)])


def test_demo_unknown_app_fails(capsys):
    assert trace_cli.main(["demo", "--app", "nope"]) == 2
    assert "unknown app" in capsys.readouterr().err
