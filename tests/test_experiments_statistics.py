"""Tests for the statistical reporting helpers."""

import numpy as np
import pytest

from repro.experiments.statistics import mean_ci, welch_test


def test_mean_ci_basic():
    ci = mean_ci([10.0, 12.0, 11.0, 13.0])
    assert ci.low < ci.mean < ci.high
    assert ci.n == 4
    assert ci.mean == pytest.approx(11.5)


def test_mean_ci_single_sample_degenerate():
    ci = mean_ci([5.0])
    assert ci.low == ci.mean == ci.high == 5.0


def test_mean_ci_widens_with_confidence():
    values = [10.0, 12.0, 11.0, 13.0, 9.0]
    assert mean_ci(values, 0.99).half_width > mean_ci(values, 0.90).half_width


def test_mean_ci_narrows_with_samples():
    rng = np.random.default_rng(1)
    small = mean_ci(rng.normal(10, 1, 5))
    large = mean_ci(rng.normal(10, 1, 100))
    assert large.half_width < small.half_width


def test_mean_ci_covers_true_mean():
    """~95% of CIs over repeated draws must contain the true mean."""
    rng = np.random.default_rng(7)
    hits = 0
    trials = 300
    for _ in range(trials):
        ci = mean_ci(rng.normal(50.0, 5.0, 10), confidence=0.95)
        hits += ci.low <= 50.0 <= ci.high
    assert hits / trials > 0.90


def test_mean_ci_validation():
    with pytest.raises(ValueError):
        mean_ci([])
    with pytest.raises(ValueError):
        mean_ci([1.0], confidence=1.5)


def test_mean_ci_str():
    assert "±" in str(mean_ci([1.0, 2.0, 3.0]))


def test_welch_distinguishes_distinct_means():
    rng = np.random.default_rng(3)
    a = rng.normal(100.0, 2.0, 12)
    b = rng.normal(80.0, 2.0, 12)
    result = welch_test(a, b)
    assert result.significant
    assert result.p_value < 0.001


def test_welch_accepts_identical_means():
    rng = np.random.default_rng(4)
    a = rng.normal(100.0, 5.0, 12)
    b = rng.normal(100.0, 5.0, 12)
    assert not welch_test(a, b).significant


def test_welch_needs_two_samples():
    with pytest.raises(ValueError):
        welch_test([1.0], [2.0, 3.0])
