"""End-to-end tests for the long-horizon serving simulator."""

import pytest

from repro.core.models import ExecutionTimeModel
from repro.extensions.streaming import StreamingPolicy
from repro.platform.providers import AWS_LAMBDA
from repro.serving import (
    DiurnalProcess,
    FixedTTL,
    NoKeepAlive,
    OnlineReplanner,
    PoissonProcess,
    ServingConfig,
    ServingSimulator,
    WarmPool,
)
from repro.workloads import XAPIAN

EXEC = ExecutionTimeModel(
    coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
)
POLICY = StreamingPolicy(degree=6, batch_timeout_s=4.0)


def make_simulator(pool_policy=None, controller=None, seed=11):
    return ServingSimulator(
        AWS_LAMBDA,
        XAPIAN,
        EXEC,
        pool=WarmPool(pool_policy if pool_policy is not None else FixedTTL(60.0)),
        controller=controller,
        seed=seed,
    )


def test_config_validation():
    with pytest.raises(ValueError):
        ServingConfig(cold_start_s=-1.0)
    with pytest.raises(ValueError):
        ServingConfig(qos_sojourn_s=0.0)
    with pytest.raises(ValueError):
        ServingConfig(replan_interval_s=0.0)


def test_rejects_bad_horizon():
    with pytest.raises(ValueError):
        make_simulator().run(PoissonProcess(1.0), POLICY, 0.0)


def test_every_request_is_served_once():
    result = make_simulator().run(PoissonProcess(2.0), POLICY, 600.0)
    assert result.n_requests > 0
    assert result.digest.count == result.n_requests
    assert result.slo.total == result.n_requests
    assert result.cold_dispatches + result.warm_dispatches == result.n_dispatches


def test_same_seed_is_bit_identical():
    process = DiurnalProcess(1.0, amplitude=0.7, period_s=1200.0)
    a = make_simulator(seed=5).run(process, POLICY, 1200.0)
    b = make_simulator(seed=5).run(process, POLICY, 1200.0)
    assert a.signature() == b.signature()
    assert a.expense.total_usd == b.expense.total_usd


def test_different_seeds_differ():
    process = DiurnalProcess(1.0, amplitude=0.7, period_s=1200.0)
    a = make_simulator(seed=5).run(process, POLICY, 1200.0)
    b = make_simulator(seed=6).run(process, POLICY, 1200.0)
    assert a.signature() != b.signature()


def test_no_keepalive_is_all_cold_and_unbilled_for_idle():
    result = make_simulator(pool_policy=NoKeepAlive()).run(
        PoissonProcess(2.0), POLICY, 600.0
    )
    assert result.cold_dispatches == result.n_dispatches
    assert result.idle_gb_seconds == 0.0
    assert result.expense.keepalive_usd == 0.0
    assert result.cold_start_fraction == 1.0


def test_keepalive_trades_idle_cost_for_warm_starts():
    cold = make_simulator(pool_policy=NoKeepAlive()).run(
        PoissonProcess(2.0), POLICY, 600.0
    )
    warm = make_simulator(pool_policy=FixedTTL(60.0)).run(
        PoissonProcess(2.0), POLICY, 600.0
    )
    assert warm.warm_dispatches > 0
    assert warm.expense.keepalive_usd > 0.0
    assert warm.cold_start_fraction < cold.cold_start_fraction
    # Warm dispatches skip the cold-start latency *and* the billed init.
    assert warm.p99_sojourn_s < cold.p99_sojourn_s
    assert warm.expense.compute_usd < cold.expense.compute_usd


def test_replan_mode_adapts_the_policy():
    process = DiurnalProcess(1.5, amplitude=0.8, period_s=1800.0)
    controller = OnlineReplanner(
        AWS_LAMBDA, XAPIAN, EXEC, qos_sojourn_s=30.0,
        window_s=300.0, cooldown_s=120.0,
    )
    result = make_simulator(controller=controller).run(process, POLICY, 1800.0)
    assert result.mode == "replan"
    assert result.replans == controller.replans > 0
    assert result.policy_changes == controller.changes > 0
    assert result.final_degree == controller.policy.degree


def test_cost_per_request_and_fractions_are_consistent():
    result = make_simulator().run(PoissonProcess(2.0), POLICY, 600.0)
    assert result.cost_per_request_usd() == pytest.approx(
        result.expense.total_usd / result.n_requests
    )
    assert 0.0 <= result.cold_start_fraction <= 1.0
    assert 0.0 <= result.slo_violation_fraction <= 1.0
    assert result.p50_sojourn_s <= result.p99_sojourn_s
