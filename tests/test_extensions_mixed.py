"""Tests for mixed-application packing."""

import math

import pytest

from repro.extensions.mixed import MixedGroup, MixedInterferenceModel, MixedPacker
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SMITH_WATERMAN, SORT, STATELESS_COST, VIDEO


def group_of(*pairs):
    return MixedGroup(tuple(pairs))


# --------------------------------------------------------------------- #
# MixedGroup
# --------------------------------------------------------------------- #

def test_group_size_and_memory():
    group = group_of((SORT, 2), (VIDEO, 3))
    assert group.size == 5
    assert group.memory_mb == 2 * SORT.mem_mb + 3 * VIDEO.mem_mb


def test_group_validation():
    with pytest.raises(ValueError):
        MixedGroup(())
    with pytest.raises(ValueError):
        group_of((SORT, 0))


def test_homogeneous_flag():
    assert group_of((SORT, 4)).is_homogeneous()
    assert not group_of((SORT, 1), (VIDEO, 1)).is_homogeneous()


# --------------------------------------------------------------------- #
# MixedInterferenceModel
# --------------------------------------------------------------------- #

def test_reduces_to_paper_model_for_homogeneous_group():
    """A same-app group of size p must give exactly exp(pressure·mem·(p−1))."""
    model = MixedInterferenceModel()
    p = 7
    et = model.instance_execution_seconds(group_of((SORT, p)))
    expected = SORT.base_seconds * math.exp(
        SORT.pressure_per_gb * SORT.mem_gb * (p - 1)
    )
    assert et == pytest.approx(expected)


def test_solo_function_has_no_interference():
    model = MixedInterferenceModel()
    assert model.instance_execution_seconds(group_of((VIDEO, 1))) == pytest.approx(
        VIDEO.base_seconds
    )


def test_heavy_corunner_slows_light_member():
    model = MixedInterferenceModel()
    solo = model.member_execution_seconds(group_of((STATELESS_COST, 1)), STATELESS_COST)
    with_sw = model.member_execution_seconds(
        group_of((STATELESS_COST, 1), (SMITH_WATERMAN, 3)), STATELESS_COST
    )
    assert with_sw > solo


def test_makespan_is_max_member():
    model = MixedInterferenceModel()
    group = group_of((STATELESS_COST, 2), (SMITH_WATERMAN, 2))
    members = [model.member_execution_seconds(group, app) for app in group.apps]
    assert model.instance_execution_seconds(group) == pytest.approx(max(members))


def test_non_member_query_rejected():
    model = MixedInterferenceModel()
    with pytest.raises(ValueError):
        model.member_execution_seconds(group_of((SORT, 1)), VIDEO)


def test_isolation_penalty_scales_interference():
    strict = MixedInterferenceModel(isolation_penalty=1.0)
    loose = MixedInterferenceModel(isolation_penalty=2.0)
    group = group_of((SORT, 5))
    assert loose.instance_execution_seconds(group) > strict.instance_execution_seconds(
        group
    )


# --------------------------------------------------------------------- #
# MixedPacker
# --------------------------------------------------------------------- #

@pytest.fixture()
def packer():
    return MixedPacker(AWS_LAMBDA)


def test_segregated_plan_matches_layout(packer):
    plan = packer.pack_segregated({SORT: 10, VIDEO: 8}, {SORT: 4, VIDEO: 8})
    assert plan.segregated
    assert plan.functions_packed() == {"sort": 10, "video": 8}
    # 10/4 → 2 full + 1 remainder; 8/8 → 1.
    assert plan.n_instances == 4


def test_mixed_plan_packs_everything(packer):
    demand = {SORT: 20, VIDEO: 30, STATELESS_COST: 25}
    plan = packer.pack_mixed(demand)
    assert plan.functions_packed() == {
        "sort": 20, "video": 30, "stateless-cost": 25
    }


def test_mixed_plan_respects_memory_cap(packer):
    plan = packer.pack_mixed({SORT: 40, VIDEO: 40})
    for group in plan.groups:
        assert group.memory_mb <= AWS_LAMBDA.max_memory_mb


def test_mixed_plan_respects_execution_cap(packer):
    plan = packer.pack_mixed({SMITH_WATERMAN: 60})
    cap = AWS_LAMBDA.max_execution_seconds
    for group in plan.groups:
        assert packer.model.instance_execution_seconds(group) <= cap


def test_mixing_uses_fewer_instances_than_naive_segregation(packer):
    """Mixing lets low-pressure functions ride along with heavy ones."""
    demand = {SMITH_WATERMAN: 12, STATELESS_COST: 12}
    mixed = packer.pack_mixed(demand)
    # Naive segregation at conservative same-app degrees (what a heavy app
    # forces when planned alone).
    segregated = packer.pack_segregated(demand, {SMITH_WATERMAN: 6, STATELESS_COST: 6})
    assert mixed.n_instances <= segregated.n_instances


def test_mixed_plan_predictions_positive(packer):
    from repro.core.models import ScalingTimeModel

    scaling = ScalingTimeModel(beta1=8e-5, beta2=0.01, beta3=0.0)
    plan = packer.pack_mixed({SORT: 10, VIDEO: 10})
    assert plan.predicted_service_time(packer.model, scaling) > 0
    assert plan.predicted_expense_usd(packer.model, AWS_LAMBDA) > 0


def test_demand_validation(packer):
    with pytest.raises(ValueError):
        packer.pack_mixed({SORT: -1})
    with pytest.raises(ValueError):
        packer.pack_segregated({SORT: 5}, {SORT: 0})


def test_empty_demand_gives_empty_plan(packer):
    plan = packer.pack_mixed({})
    assert plan.n_instances == 0
    assert plan.functions_packed() == {}
