"""Unit tests for the auto-remediation control plane.

Covers each stage in isolation — actions against a fake actuator port,
detectors on synthetic :class:`LoopView` snapshots, the risk-ranked
scheduler's cooldown/rollback bookkeeping, the shadow verifier's decision
rule — and then the assembled loop end-to-end inside a real serving run.
"""

import json

import numpy as np
import pytest

from repro.chaos import assert_serving_invariants
from repro.core.models import ExecutionTimeModel
from repro.extensions.streaming import StreamingPolicy
from repro.faults.retry import ExponentialBackoffRetry
from repro.faults.scenario import FaultScenario
from repro.platform.providers import GOOGLE_CLOUD_FUNCTIONS
from repro.remediation import (
    BacklogGrowthDetector,
    BreakerFlapDetector,
    Detection,
    DomainPoisonDetector,
    LoopView,
    QuarantineDomain,
    QuarantineProposer,
    RecoveryDetector,
    ReleaseDomain,
    RemediationConfig,
    RemediationLoop,
    ResizeWarmPool,
    RiskRankedScheduler,
    SetAdmissionLimit,
    SetPackingDegree,
    ShadowScore,
    ShadowVerifier,
    SLOBurnDetector,
    scenario_for_shadow,
)
from repro.resilience import (
    CircuitBreakerBank,
    ConcurrencyLimitAdmission,
    ResiliencePolicy,
)
from repro.serving import (
    FixedTTL,
    PoissonProcess,
    ServingConfig,
    ServingSimulator,
    WarmPool,
)
from repro.workloads import XAPIAN

SEED = 2023


# --------------------------------------------------------------------- #
# Fakes
# --------------------------------------------------------------------- #
class FakeActuators:
    """In-memory knob state implementing the Actuators protocol."""

    def __init__(self, degree=4, pool_capacity=8, admission_limit=40):
        self.degree = degree
        self.pool_capacity = pool_capacity
        self.admission_limit = admission_limit
        self.quarantined: set[int] = set()

    def get_degree(self):
        return self.degree

    def set_degree(self, degree):
        self.degree = degree

    def get_pool_capacity(self):
        return self.pool_capacity

    def set_pool_capacity(self, capacity):
        self.pool_capacity = capacity

    def get_admission_limit(self):
        return self.admission_limit

    def set_admission_limit(self, limit):
        self.admission_limit = limit

    def quarantined_domains(self):
        return frozenset(self.quarantined)

    def quarantine_domain(self, domain):
        self.quarantined.add(domain)

    def release_domain(self, domain):
        self.quarantined.discard(domain)


def make_view(**overrides):
    base = dict(
        now=60.0,
        violation_fraction=0.0,
        backlog_depth=0,
        backlog_threshold=50,
        in_flight=4,
        arrival_rate_per_s=1.0,
        degree=4,
        max_degree=12,
        pool_capacity=8,
        admission_limit=40,
        baseline_admission_limit=40,
        n_domains=4,
        open_domains=(),
        quarantined_domains=(),
        breaker_flaps=(0, 0, 0, 0),
        crashes_by_domain=(0, 0, 0, 0),
        predict_exec_s=lambda d: 12.0 + 0.4 * d,
    )
    base.update(overrides)
    return LoopView(**base)


# --------------------------------------------------------------------- #
# Actions
# --------------------------------------------------------------------- #
def test_actions_apply_and_invert_round_trip():
    acts = FakeActuators(degree=4, pool_capacity=8, admission_limit=40)
    for action, attr, target in [
        (SetPackingDegree(6), "degree", 6),
        (ResizeWarmPool(16), "pool_capacity", 16),
        (SetAdmissionLimit(20), "admission_limit", 20),
    ]:
        before = getattr(acts, attr)
        inverse = action.apply(acts)
        assert getattr(acts, attr) == target
        inverse.apply(acts)
        assert getattr(acts, attr) == before


def test_quarantine_release_invert_each_other():
    acts = FakeActuators()
    inv = QuarantineDomain(2).apply(acts)
    assert acts.quarantined == {2}
    assert isinstance(inv, ReleaseDomain) and inv.domain == 2
    inv2 = inv.apply(acts)
    assert acts.quarantined == set()
    assert isinstance(inv2, QuarantineDomain)
    # Applying to an already-clean state is a no-op with no inverse.
    assert ReleaseDomain(2).apply(acts) is None
    acts.quarantined.add(1)
    assert QuarantineDomain(1).apply(acts) is None


def test_no_op_apply_returns_none():
    acts = FakeActuators(degree=4)
    assert SetPackingDegree(4).apply(acts) is None
    assert ResizeWarmPool(8).apply(acts) is None
    assert SetAdmissionLimit(40).apply(acts) is None


def test_uncapped_pool_inverse_restores_none():
    acts = FakeActuators(pool_capacity=None)
    inverse = ResizeWarmPool(8).apply(acts)
    assert acts.pool_capacity == 8
    inverse.apply(acts)
    assert acts.pool_capacity is None


def test_admission_action_requires_overridable_limit():
    acts = FakeActuators(admission_limit=None)
    with pytest.raises(ValueError):
        SetAdmissionLimit(10).apply(acts)


def test_action_keys_scope_cooldowns():
    # Domain actions are independent per domain; knob turns share one slot.
    assert QuarantineDomain(0).key() != QuarantineDomain(1).key()
    assert SetPackingDegree(4).key() == SetPackingDegree(8).key()
    assert QuarantineDomain(1).key() != ReleaseDomain(1).key()


# --------------------------------------------------------------------- #
# Detectors
# --------------------------------------------------------------------- #
def test_slo_burn_requires_consecutive_ticks():
    det = SLOBurnDetector(budget=0.05, consecutive=2)
    assert det.observe(make_view(violation_fraction=0.2)) == []
    hits = det.observe(make_view(violation_fraction=0.2))
    assert len(hits) == 1 and hits[0].kind == "slo-burn"
    # A healthy tick resets the streak.
    assert det.observe(make_view(violation_fraction=0.0)) == []
    assert det.observe(make_view(violation_fraction=0.2)) == []


def test_backlog_growth_requires_threshold_and_growth():
    det = BacklogGrowthDetector(consecutive=2)
    assert det.observe(make_view(backlog_depth=60)) == []
    assert len(det.observe(make_view(backlog_depth=80))) == 1
    # Draining backlog stops firing even while above threshold.
    assert det.observe(make_view(backlog_depth=70)) == []


def test_breaker_flap_detector_windows_deltas():
    det = BreakerFlapDetector(flap_threshold=2, window_ticks=3)
    det.observe(make_view(breaker_flaps=(0, 0, 0, 0)))
    det.observe(make_view(breaker_flaps=(1, 0, 0, 0)))
    hits = det.observe(make_view(breaker_flaps=(3, 0, 0, 0)))
    assert len(hits) == 1
    assert hits[0].get("domain") == 0 and hits[0].get("flaps") == 3
    # Quarantined domains are not re-flagged.
    det2 = BreakerFlapDetector(flap_threshold=2, window_ticks=3)
    det2.observe(make_view(breaker_flaps=(0, 0, 0, 0)))
    assert det2.observe(make_view(
        breaker_flaps=(3, 0, 0, 0), quarantined_domains=(0,)
    )) == []


def test_domain_poison_detector_counter_fallback():
    det = DomainPoisonDetector(crash_threshold=3, window_ticks=5, share=0.5)
    det.observe(make_view(crashes_by_domain=(0, 0, 0, 0)))
    assert det.observe(make_view(crashes_by_domain=(1, 1, 0, 0))) == []
    hits = det.observe(make_view(crashes_by_domain=(5, 1, 0, 0)))
    assert len(hits) == 1 and hits[0].get("domain") == 0


def test_recovery_fires_only_while_holding_back():
    det = RecoveryDetector(budget=0.02, healthy_ticks=2)
    tight = dict(admission_limit=20, baseline_admission_limit=40)
    assert det.observe(make_view(**tight)) == []
    assert len(det.observe(make_view(**tight))) == 1
    # Nothing held back -> no recovery events even when healthy.
    det.reset()
    det.observe(make_view())
    assert det.observe(make_view()) == []
    # Outstanding quarantines count as holding back.
    det.reset()
    det.observe(make_view(quarantined_domains=(1,)))
    assert len(det.observe(make_view(quarantined_domains=(1,)))) == 1


def test_quarantine_proposer_releases_on_recovery():
    proposer = QuarantineProposer()
    recovered = Detection(time=120.0, kind="recovered", severity=0.1)
    actions = proposer.propose(
        recovered, make_view(quarantined_domains=(1, 3))
    )
    assert [a.domain for a in actions] == [1, 3]
    assert all(isinstance(a, ReleaseDomain) for a in actions)
    # Never quarantines down to the last routable domain.
    poisoned = Detection(
        time=120.0, kind="domain-poisoning", severity=0.9,
        detail=(("domain", 2),),
    )
    assert proposer.propose(
        poisoned, make_view(quarantined_domains=(0, 1), n_domains=3)
    ) == []


# --------------------------------------------------------------------- #
# Scheduler
# --------------------------------------------------------------------- #
def test_scheduler_orders_by_risk_and_caps():
    sched = RiskRankedScheduler(cooldown_s=300.0, max_actions_per_tick=2)
    actions = [SetPackingDegree(8), QuarantineDomain(1), SetAdmissionLimit(20)]
    chosen = sched.select(actions, now=60.0)
    assert [a.kind for a in chosen] == [
        "quarantine-domain", "set-admission-limit"
    ]


def test_scheduler_cooldown_blocks_repeat_keys():
    sched = RiskRankedScheduler(cooldown_s=300.0)
    action = SetAdmissionLimit(20)
    sched.on_applied(action, SetAdmissionLimit(40), now=60.0, violation=0.1)
    assert sched.select([SetAdmissionLimit(10)], now=120.0) == []
    # A different key is unaffected; the same key frees after cooldown.
    assert sched.select([QuarantineDomain(0)], now=120.0) != []
    assert sched.select([SetAdmissionLimit(10)], now=361.0) != []


def test_scheduler_rolls_back_on_regression():
    sched = RiskRankedScheduler(
        cooldown_s=300.0, rollback_window_s=600.0, regression_margin=0.10
    )
    action = SetAdmissionLimit(20)
    sched.on_applied(action, SetAdmissionLimit(40), now=60.0, violation=0.05)
    # Within margin: no rollback.
    assert sched.due_rollbacks(now=120.0, violation=0.10) == []
    due = sched.due_rollbacks(now=180.0, violation=0.30)
    assert len(due) == 1 and due[0].action is action
    assert due[0].rolled_back
    # The key now sits in the extended cooldown.
    assert not sched.ready(action.key(), now=500.0)
    # Watch list is pruned; no double rollback.
    assert sched.due_rollbacks(now=240.0, violation=0.9) == []


def test_scheduler_watch_expires_after_window():
    sched = RiskRankedScheduler(rollback_window_s=600.0)
    sched.on_applied(QuarantineDomain(0), ReleaseDomain(0), 60.0, 0.0)
    assert sched.due_rollbacks(now=700.0, violation=1.0) == []
    assert sched.watched == 0


# --------------------------------------------------------------------- #
# Shadow verifier rule
# --------------------------------------------------------------------- #
def _score(att, cost, completed=100):
    return ShadowScore(
        attainment=att, cost_per_completed=cost, completed=completed
    )


def test_verifier_rule_accepts_attainment_gain():
    v = ShadowVerifier()
    ok, reason = v._rule(_score(0.5, 0.002), _score(0.6, 0.002))
    assert ok and "attainment" in reason


def test_verifier_rule_accepts_cheaper_at_parity():
    v = ShadowVerifier(cost_margin=0.02)
    ok, reason = v._rule(_score(0.5, 0.002), _score(0.5, 0.0015))
    assert ok and reason == "cheaper at attainment parity"


def test_verifier_rule_rejects_regression_and_collapse():
    v = ShadowVerifier()
    assert not v._rule(_score(0.5, 0.002), _score(0.3, 0.001))[0]
    # Cheaper per completed request by completing half as much: rejected.
    ok, reason = v._rule(
        _score(0.5, 0.002, completed=100), _score(0.5, 0.001, completed=20)
    )
    assert not ok and reason == "completed-count collapse"
    assert not v._rule(
        _score(0.5, 0.002, completed=50), _score(0.5, 0.0, completed=0)
    )[0]


def test_scenario_for_shadow_rebases_poison_and_bursts():
    scenario = FaultScenario(
        name="storm", crash_rate=0.05, correlated_bursts=4,
        correlated_fraction=0.3, correlated_window_s=40.0,
    )
    shadow = scenario_for_shadow(
        scenario, poisoned=(2, 0), shadow_horizon_s=240.0,
        live_horizon_s=3600.0,
    )
    assert shadow.initially_poisoned == (0, 2)
    assert shadow.correlated_bursts == 1  # 4 * 240/3600, floored at >= 1
    assert scenario_for_shadow(None, (0,), 240.0, 3600.0) is None


# --------------------------------------------------------------------- #
# End-to-end inside a serving run
# --------------------------------------------------------------------- #
def _exec_model():
    return ExecutionTimeModel(
        coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
    )


def _scenario():
    return FaultScenario(
        name="poison-test",
        crash_rate=0.04,
        correlated_bursts=2,
        correlated_fraction=0.5,
        correlated_window_s=120.0,
        persistent_fraction=0.5,
        poison_heal_s=600.0,
        straggler_rate=0.01,
    )


def _simulator(loop, seed=SEED):
    config = ServingConfig(qos_sojourn_s=45.0)
    return ServingSimulator(
        GOOGLE_CLOUD_FUNCTIONS,
        XAPIAN,
        _exec_model(),
        pool=WarmPool(FixedTTL(120.0)),
        config=config,
        resilience=ResiliencePolicy(
            admission=ConcurrencyLimitAdmission(limit=64),
            breakers=CircuitBreakerBank(
                n_domains=config.fault_domains,
                rng=np.random.default_rng(seed),
                failure_threshold=5,
                recovery_s=45.0,
            ),
        ),
        scenario=_scenario(),
        retry_policy=ExponentialBackoffRetry(max_retries=3),
        seed=seed,
        remediation=loop,
    )


def _loop():
    return RemediationLoop(RemediationConfig(
        tick_interval_s=60.0, shadow_horizon_s=120.0
    ))


def _run(loop, horizon_s=1800.0, seed=SEED):
    return _simulator(loop, seed=seed).run(
        PoissonProcess(1.5),
        StreamingPolicy(degree=4, batch_timeout_s=2.0),
        horizon_s,
    )


def test_loop_end_to_end_conserves_and_reports():
    run = _run(_loop())
    assert_serving_invariants(run)
    report = run.remediation
    assert report is not None
    assert report.ticks == 30  # one per minute over 1800 s
    assert report.n_detections > 0
    assert report.n_applied > 0
    # Applications are a subset of accepted verdicts under the tick cap.
    assert report.n_applied <= report.n_accepted


def test_loop_report_byte_identical_per_seed():
    sig_a = _run(_loop()).remediation.signature()
    sig_b = _run(_loop()).remediation.signature()
    assert sig_a == sig_b
    # A different seed produces a genuinely different timeline.
    sig_c = _run(_loop(), seed=7).remediation.signature()
    assert sig_a != sig_c


def test_loop_without_remediation_attaches_no_report():
    run = _run(None)
    assert run.remediation is None


def test_remediation_report_excluded_from_result_signature():
    plain = _run(None)
    remediated = _run(_loop())
    # The report rides on the result object without entering its seeded
    # signature (signature() pins serving-level metrics only).
    assert "remediation" not in str(plain.signature())
    assert len(plain.signature()) == len(remediated.signature())


def test_report_jsonl_is_valid_and_time_ordered():
    report = _run(_loop()).remediation
    lines = report.to_jsonl().strip().splitlines()
    assert len(lines) == (
        report.n_detections + report.n_proposals + len(report.verdicts)
        + report.n_applied + report.n_rollbacks
    )
    times = []
    for line in lines:
        event = json.loads(line)
        assert event["stage"] in (
            "detection", "proposal", "verdict", "apply", "rollback"
        )
        times.append(event["t"])
    assert times == sorted(times)


def test_loop_verify_off_applies_unverified():
    loop = RemediationLoop(RemediationConfig(
        tick_interval_s=60.0, shadow_horizon_s=120.0, verify=False
    ))
    run = _run(loop, horizon_s=900.0)
    report = run.remediation
    assert report.verdicts == []
    assert report.n_applied > 0


def test_initially_poisoned_domains_start_poisoned():
    scenario = FaultScenario(
        name="pre-poisoned",
        crash_rate=0.02,
        persistent_fraction=0.5,
        poison_heal_s=300.0,
        initially_poisoned=(0, 2),
    )
    config = ServingConfig()
    sim = ServingSimulator(
        GOOGLE_CLOUD_FUNCTIONS,
        XAPIAN,
        _exec_model(),
        pool=WarmPool(FixedTTL(60.0)),
        config=config,
        scenario=scenario,
        seed=SEED,
    )
    run = sim.run(
        PoissonProcess(0.5),
        StreamingPolicy(degree=2, batch_timeout_s=2.0),
        300.0,
    )
    assert_serving_invariants(run)
    # Same seed, no pre-poisoning: the runs must diverge (the poisoned
    # domains elevate crash probabilities from t=0).
    clean = ServingSimulator(
        GOOGLE_CLOUD_FUNCTIONS,
        XAPIAN,
        _exec_model(),
        pool=WarmPool(FixedTTL(60.0)),
        config=config,
        scenario=FaultScenario(
            name="pre-poisoned", crash_rate=0.02,
            persistent_fraction=0.5, poison_heal_s=300.0,
        ),
        seed=SEED,
    ).run(
        PoissonProcess(0.5),
        StreamingPolicy(degree=2, batch_timeout_s=2.0),
        300.0,
    )
    assert run.n_requests == clean.n_requests  # arrivals share the seed


def test_kernel_fork_consumes_no_live_draws():
    from repro.engine.kernel import DispatchKernel
    from repro.sim.randomness import RandomStreams

    a = DispatchKernel(RandomStreams(SEED), scenario=_scenario())
    b = DispatchKernel(RandomStreams(SEED), scenario=_scenario())
    child = a.fork("shadow/1")
    # Forking derives a child family without consuming parent draws.
    assert a.rng.stream("probe").random() == b.rng.stream("probe").random()
    # Same label -> same child seed; different labels diverge.
    assert child.rng.seed == b.fork("shadow/1").rng.seed
    assert child.rng.seed != b.fork("shadow/2").rng.seed
