"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Event, SimulationError, Simulator


def test_initial_clock_is_zero():
    assert Simulator().now == 0.0


def test_events_run_in_time_order():
    sim = Simulator()
    hits = []
    sim.schedule(2.0, hits.append, "late")
    sim.schedule(1.0, hits.append, "early")
    sim.schedule(1.5, hits.append, "middle")
    sim.run()
    assert hits == ["early", "middle", "late"]


def test_ties_break_in_fifo_order():
    sim = Simulator()
    hits = []
    for i in range(10):
        sim.schedule(1.0, hits.append, i)
    sim.run()
    assert hits == list(range(10))


def test_clock_advances_to_last_event():
    sim = Simulator()
    sim.schedule(3.5, lambda: None)
    sim.run()
    assert sim.now == 3.5


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    hits = []
    sim.schedule_at(4.0, hits.append, "x")
    sim.run()
    assert hits == ["x"] and sim.now == 4.0


def test_schedule_during_event_execution():
    sim = Simulator()
    hits = []

    def chain(n):
        hits.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert hits == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    hits = []
    sim.schedule(1.0, hits.append, "a")
    sim.schedule(5.0, hits.append, "b")
    sim.run(until=2.0)
    assert hits == ["a"]
    assert sim.now == 2.0
    sim.run()
    assert hits == ["a", "b"]


def test_event_at_exactly_until_executes():
    sim = Simulator()
    hits = []
    sim.schedule(2.0, hits.append, "edge")
    sim.run(until=2.0)
    assert hits == ["edge"]


def test_cancelled_event_is_skipped():
    sim = Simulator()
    hits = []
    event = sim.schedule(1.0, hits.append, "cancel-me")
    sim.schedule(2.0, hits.append, "keep")
    event.cancel()
    sim.run()
    assert hits == ["keep"]


def test_peek_skips_cancelled_events():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.peek() == 2.0


def test_peek_empty_returns_none():
    assert Simulator().peek() is None


def test_step_returns_false_when_drained():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_max_events_limit():
    sim = Simulator()
    hits = []
    for i in range(5):
        sim.schedule(float(i), hits.append, i)
    sim.run(max_events=2)
    assert hits == [0, 1]


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_run_not_reentrant():
    sim = Simulator()
    error = {}

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            error["raised"] = exc

    sim.schedule(1.0, reenter)
    sim.run()
    assert "raised" in error


def test_event_ordering_dataclass():
    early = Event(1.0, 0, lambda: None)
    late = Event(2.0, 1, lambda: None)
    assert early < late


def test_compaction_shrinks_heap_when_garbage_dominates():
    sim = Simulator()
    keep = 40
    doomed = [sim.schedule(1000.0 + i, lambda: None) for i in range(200)]
    for i in range(keep):
        sim.schedule(float(i), lambda: None)
    assert len(sim._heap) == 200 + keep
    for event in doomed:
        event.cancel()
    # Cancelling past half the agenda triggers in-place rebuilds, so the
    # garbage is bounded instead of lingering until pops reach it: at most
    # half of a floor-sized agenda can be dead at any point.
    assert len(sim._heap) <= keep + Simulator.COMPACT_MIN_EVENTS // 2
    assert sim._cancelled_live == len(sim._heap) - keep
    sim.run()
    assert sim.events_processed == keep


def test_compaction_preserves_order_and_events_processed():
    plain, compacted = [], []
    for hits in (plain, compacted):
        sim = Simulator()
        doomed = []
        for i in range(300):
            sim.schedule(float(i), hits.append, i)
            doomed.append(sim.schedule(float(i) + 0.5, hits.append, -i))
        if hits is compacted:
            for event in doomed:
                event.cancel()
        else:
            for event in doomed:
                event.cancelled = True  # bypass the compaction hook
        sim.run()
        assert sim.events_processed == 300  # executed events only
    assert plain == compacted == list(range(300))


def test_small_agenda_never_compacts():
    sim = Simulator()
    events = [sim.schedule(float(i), lambda: None) for i in range(10)]
    for event in events[:8]:
        event.cancel()
    # Below COMPACT_MIN_EVENTS the garbage stays until popped.
    assert len(sim._heap) == 10
    assert sim._cancelled_live == 8
    sim.run()
    assert sim.events_processed == 2
