"""FusedFleet: admission, quotas, the fairness ledger, and the run modes."""

import pytest

from repro.chaos.invariants import (
    assert_fleet_invariants,
    check_tenant_conservation,
    fleet_violations,
)
from repro.fusion.fleet import FUSION_MODES, FusedFleet
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT, STATELESS_COST, VIDEO
from repro.workloads.base import AppSpec

ROUNDED = AWS_LAMBDA.with_overrides(
    billing_granularity_s=0.1, min_billed_duration_s=0.1
)


def loaded_fleet(profile=AWS_LAMBDA, **kwargs):
    fleet = FusedFleet(profile, seed=2023, **kwargs)
    fleet.submit("analytics", SORT, 203)
    fleet.submit("media", VIDEO, 152)
    fleet.submit("api", STATELESS_COST, 305)
    return fleet


# --------------------------------------------------------------------- #
# admission and the ledger
# --------------------------------------------------------------------- #
def test_quota_rejects_overflow_but_conserves_the_ledger():
    fleet = FusedFleet(AWS_LAMBDA, tenant_quota_functions=100)
    assert fleet.submit("a", SORT, 80) == 80
    assert fleet.submit("a", SORT, 50) == 20  # only the headroom
    assert fleet.submit("a", SORT, 10) == 0
    account = fleet.ledger()["a"]
    assert (account.submitted, account.admitted, account.rejected) == (140, 100, 40)
    assert account.conserved()
    assert check_tenant_conservation(fleet.ledger().values()) == []


def test_oversized_app_is_refused_entirely():
    giant = AppSpec(
        name="giant", base_seconds=10.0, mem_mb=AWS_LAMBDA.max_memory_mb + 1,
        io_mb=1.0, io_shared_fraction=0.0, pressure_per_gb=0.01,
    )
    fleet = FusedFleet(AWS_LAMBDA)
    assert fleet.submit("a", giant, 5) == 0
    account = fleet.ledger()["a"]
    assert account.rejected == 5 and account.conserved()


def test_submission_validation():
    fleet = FusedFleet(AWS_LAMBDA)
    with pytest.raises(ValueError, match="count"):
        fleet.submit("a", SORT, 0)
    with pytest.raises(ValueError, match="quota"):
        FusedFleet(AWS_LAMBDA, tenant_quota_functions=-1)
    with pytest.raises(ValueError, match="no admitted demands"):
        FusedFleet(AWS_LAMBDA).plan("propack")
    with pytest.raises(ValueError, match="mode"):
        loaded_fleet().plan("magic")


# --------------------------------------------------------------------- #
# the three run modes
# --------------------------------------------------------------------- #
def test_propack_mode_is_the_unfused_baseline():
    decision = loaded_fleet().plan("propack")
    assert decision.merges == 0
    assert decision.plan.fused_instances == 0
    assert decision.score.joint == 1.0


def test_both_mode_merges_and_beats_propack_on_rounded_dollars():
    propack = loaded_fleet(ROUNDED).run("propack")
    both = loaded_fleet(ROUNDED).run("both")
    assert both.decision.merges > 0
    assert both.usd_per_1k_functions() < propack.usd_per_1k_functions()
    assert both.report.plan.n_functions == propack.report.plan.n_functions


def test_every_mode_is_auditor_clean():
    for mode in FUSION_MODES:
        run = loaded_fleet(ROUNDED).run(mode)
        assert run.constraint_violations == []
        assert fleet_violations(run) == []
        assert_fleet_invariants(run)


def test_run_settles_the_ledger():
    run = loaded_fleet().run("both")
    assert run.accounts.keys() == {"analytics", "media", "api"}
    billed = sum(a.billed_usd for a in run.accounts.values())
    assert billed == pytest.approx(run.expense_usd, rel=1e-12)
    for tenant, account in run.accounts.items():
        assert account.billed_usd == run.report.bill_for(tenant).total_usd


def test_runs_are_deterministic_per_seed():
    a = loaded_fleet().run("both")
    b = loaded_fleet().run("both")
    assert a.report.run.records == b.report.run.records
    assert a.report.bills == b.report.bills


def test_strict_isolation_fleet_never_mixes_tenants():
    run = loaded_fleet(isolation="strict").run("both")
    for group, _ in run.report.plan.bundles:
        assert len(group.tenants) == 1
    assert run.constraint_violations == []


def test_hostile_affinity_disables_cross_app_fusion():
    names = ("sort", "video", "stateless-cost")
    affinity = {
        (v, a): 50.0 for v in names for a in names
    }
    run = loaded_fleet(affinity=affinity).run("both")
    assert run.decision.merges == 0
    assert run.report.plan.fused_instances == 0
