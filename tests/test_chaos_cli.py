"""End-to-end ``propack-chaos`` CLI: search -> replay, audit, errors.

The search smoke here is the PR's headline acceptance test: a seeded
mini-search must find an SLO-breaking storm against unprotected serving,
shrink it, persist the minimized manifest, and ``replay`` must reproduce
it byte-identically twice in a row.
"""

import json

import pytest

from repro.chaos.cli import main

#: Short horizon keeps each serving evaluation sub-second.
FAST_SEARCH = [
    "--rounds", "0", "--horizon", "180", "--rate", "3",
    "--shrink-budget", "6",
]


def test_search_then_replay_byte_identical(tmp_path, capsys):
    root = tmp_path / "results"
    code = main(["search", "--seed", "0", "--root", str(root), *FAST_SEARCH])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "minimized run_id:" in out
    run_id = out.rsplit("minimized run_id:", 1)[1].strip()
    manifest = root / "chaos" / run_id / "manifest.json"
    assert manifest.exists()
    assert (root / "chaos" / run_id / "summary.json").exists()

    # The acceptance criterion: byte-identical twice in a row.
    code = main(["replay", str(manifest), "--times", "2"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "REPRODUCED byte-identically 2×" in out


def test_replay_detects_tampered_summary(tmp_path, capsys):
    root = tmp_path / "results"
    assert main(["search", "--seed", "0", "--root", str(root),
                 *FAST_SEARCH]) == 0
    out = capsys.readouterr().out
    run_id = out.rsplit("minimized run_id:", 1)[1].strip()
    summary_path = root / "chaos" / run_id / "summary.json"
    doctored = json.loads(summary_path.read_text())
    doctored["completed"] += 1
    summary_path.write_text(json.dumps(doctored, sort_keys=True, indent=2) + "\n")
    assert main(["replay", str(summary_path.parent / "manifest.json")]) == 1
    assert "MISMATCH" in capsys.readouterr().out


def test_audit_calm_scenario_is_clean(capsys):
    code = main(["audit", "--scenario", "calm", "--horizon", "120",
                 "--rate", "2"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "audit clean" in out
    assert "0 violations" in out


def test_audit_accepts_storm_archetype_and_json_file(tmp_path, capsys):
    code = main(["audit", "--scenario", "crash-storm", "--horizon", "120",
                 "--rate", "2"])
    assert code == 0, capsys.readouterr().out
    capsys.readouterr()

    storm_file = tmp_path / "storm.json"
    storm_file.write_text(json.dumps({"name": "filed", "crash_rate": 0.1}))
    code = main(["audit", "--scenario", str(storm_file), "--horizon", "120",
                 "--rate", "2", "--protected"])
    assert code == 0, capsys.readouterr().out


def test_audit_unknown_scenario_exits_via_usage_error():
    with pytest.raises(SystemExit):
        main(["audit", "--scenario", "definitely-not-a-scenario"])


def test_replay_missing_manifest_returns_2(tmp_path):
    assert main(["replay", str(tmp_path / "nope" / "manifest.json")]) == 2


def test_search_invalid_config_returns_2():
    assert main(["search", "--rounds", "-1"]) == 2
