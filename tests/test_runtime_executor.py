"""Tests for the thread-based local packing executor."""

import pytest

from repro.runtime.executor import PackedExecutor
from repro.workloads import MapReduceSort, StatelessCost
from repro.workloads.synthetic import SyntheticApp


@pytest.fixture(scope="module")
def sort_app():
    return MapReduceSort(partition_size=200)


def test_all_tasks_complete(sort_app):
    executor = PackedExecutor(sort_app)
    tasks = sort_app.make_tasks(6, seed=1)
    outcome = executor.run(tasks, packing_degree=2)
    assert outcome.ok
    assert len(outcome.results) == 6
    assert outcome.n_workers == 3


def test_results_are_correct(sort_app):
    executor = PackedExecutor(sort_app)
    tasks = sort_app.make_tasks(4, seed=2)
    outcome = executor.run(tasks, packing_degree=4)
    for task in tasks:
        result = outcome.result_for(task.task_id)
        assert sort_app.validate_result(task, result.value)


def test_partial_last_worker(sort_app):
    executor = PackedExecutor(sort_app)
    tasks = sort_app.make_tasks(5, seed=3)
    outcome = executor.run(tasks, packing_degree=3)
    assert outcome.n_workers == 2
    assert len(outcome.results) == 5


def test_degree_one_is_sequential(sort_app):
    executor = PackedExecutor(sort_app)
    tasks = sort_app.make_tasks(3, seed=4)
    outcome = executor.run(tasks, packing_degree=1)
    assert outcome.n_workers == 3


def test_missing_result_raises(sort_app):
    executor = PackedExecutor(sort_app)
    outcome = executor.run(sort_app.make_tasks(2, seed=5), packing_degree=2)
    with pytest.raises(KeyError):
        outcome.result_for(999)


def test_errors_are_collected_not_raised():
    class FailingApp(SyntheticApp):
        def run_task(self, task):
            if task.task_id == 1:
                raise RuntimeError("boom")
            return super().run_task(task)

    app = FailingApp(working_set=16, sweeps=1)
    executor = PackedExecutor(app)
    outcome = executor.run(app.make_tasks(3, seed=0), packing_degree=3)
    assert not outcome.ok
    assert len(outcome.errors) == 1
    assert outcome.errors[0][0] == 1
    assert len(outcome.results) == 2  # others still completed


def test_invalid_parameters():
    app = SyntheticApp(working_set=16, sweeps=1)
    with pytest.raises(ValueError):
        PackedExecutor(app, max_workers=0)
    with pytest.raises(ValueError):
        PackedExecutor(app).run(app.make_tasks(2, seed=0), packing_degree=0)


def test_measure_packing_curve(sort_app):
    executor = PackedExecutor(sort_app)
    curve = executor.measure_packing_curve([1, 2, 4], tasks_per_degree=1)
    assert set(curve) == {1, 2, 4}
    assert all(v > 0 for v in curve.values())


def test_measure_packing_curve_propagates_failures():
    class AlwaysFails(SyntheticApp):
        def run_task(self, task):
            raise RuntimeError("nope")

    executor = PackedExecutor(AlwaysFails(working_set=16, sweeps=1))
    with pytest.raises(RuntimeError, match="profiling run failed"):
        executor.measure_packing_curve([1])


def test_stateless_app_through_executor():
    app = StatelessCost(in_size=16, out_size=8)
    executor = PackedExecutor(app)
    tasks = app.make_tasks(4, seed=1)
    outcome = executor.run(tasks, packing_degree=2)
    assert outcome.ok
    for task in tasks:
        assert app.validate_result(task, outcome.result_for(task.task_id).value)
