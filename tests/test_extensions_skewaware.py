"""Tests for the skew-aware planner."""

import numpy as np
import pytest

from repro.core.models import ExecutionTimeModel
from repro.core.propack import ProPack
from repro.extensions.skewaware import (
    SkewAwareExecutionModel,
    SkewAwareOptimizer,
    lognormal_sigma,
    quantile_factor,
    straggler_factor,
)
from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT


# --------------------------------------------------------------------- #
# Order-statistic math
# --------------------------------------------------------------------- #

def test_straggler_factor_base_cases():
    assert straggler_factor(1, 0.5) == 1.0
    assert straggler_factor(10, 0.0) == 1.0
    with pytest.raises(ValueError):
        straggler_factor(0, 0.5)


def test_straggler_factor_grows_with_n_and_cv():
    assert straggler_factor(10, 0.5) > straggler_factor(2, 0.5) > 1.0
    assert straggler_factor(10, 0.8) > straggler_factor(10, 0.3)


def test_straggler_factor_matches_monte_carlo():
    rng = np.random.default_rng(0)
    cv = 0.5
    sigma = lognormal_sigma(cv)
    for n in (2, 5, 10, 40):
        draws = rng.lognormal(-0.5 * sigma**2, sigma, size=(20000, n))
        empirical = float(draws.max(axis=1).mean())
        assert straggler_factor(n, cv) == pytest.approx(empirical, rel=0.05)


def test_quantile_factor_ordering():
    assert quantile_factor(1000, 0.5, 0.5) < quantile_factor(1000, 0.95, 0.5)
    assert quantile_factor(1000, 0.95, 0.5) < straggler_factor(1000, 0.5)
    assert quantile_factor(100, 0.95, 0.0) == 1.0
    with pytest.raises(ValueError):
        quantile_factor(10, 0.0, 0.5)


def test_lognormal_sigma_validation():
    with pytest.raises(ValueError):
        lognormal_sigma(-0.1)
    assert lognormal_sigma(0.0) == 0.0


# --------------------------------------------------------------------- #
# Skew-aware execution model
# --------------------------------------------------------------------- #

BASE = ExecutionTimeModel(coeff_a=90.0, coeff_b=0.09, mem_gb=SORT.mem_gb)


def test_skew_model_inflates_packed_degrees_only():
    model = SkewAwareExecutionModel(base=BASE, cv=0.5)
    assert model.predict(1) == pytest.approx(BASE.predict(1))
    assert model.predict(10) > BASE.predict(10)


def test_skew_model_latency_cap_tighter():
    naive_cap = BASE.max_degree_within(400.0)
    skew_cap = SkewAwareExecutionModel(base=BASE, cv=0.8).max_degree_within(400.0)
    assert skew_cap < naive_cap


# --------------------------------------------------------------------- #
# Skew-aware planning end to end
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def fitted():
    platform = ServerlessPlatform(AWS_LAMBDA, seed=151)
    propack = ProPack(platform)
    return platform, propack


def _skew_optimizer(propack, concurrency, cv):
    return SkewAwareOptimizer(
        exec_model=propack.exec_model(SORT),
        scaling_model=propack.scaling_model(),
        app=SORT,
        profile=AWS_LAMBDA,
        concurrency=concurrency,
        cv=cv,
    )


def test_skew_aware_picks_lower_degree(fitted):
    _, propack = fitted
    naive = propack.optimizer(SORT, 2000).optimal_service()
    skewed = _skew_optimizer(propack, 2000, cv=0.8).optimal_service()
    assert skewed < naive


def test_zero_cv_reduces_to_naive(fitted):
    _, propack = fitted
    naive = propack.optimizer(SORT, 2000)
    skewed = _skew_optimizer(propack, 2000, cv=0.0)
    assert skewed.optimal_service() == naive.optimal_service()
    assert skewed.optimal_expense() == naive.optimal_expense()
    assert skewed.optimal_joint() == naive.optimal_joint()


def test_skew_aware_beats_naive_plan_in_simulation(fitted):
    """The realized service time under heavy skew must improve when the
    planner accounts for stragglers (the fix for ablation A4's finding)."""
    platform, propack = fitted
    c, cv = 2000, 0.8
    naive_degree = propack.optimizer(SORT, c).optimal_joint()
    skew_degree = _skew_optimizer(propack, c, cv).optimal_joint()
    assert skew_degree < naive_degree

    # Timeout enforcement off: a heavy straggler in a naively packed
    # instance can cross the platform cap — the regime under study.
    lenient = ServerlessPlatform(AWS_LAMBDA, seed=151, enforce_timeout=False)

    def realized(degree):
        return lenient.run_burst(
            BurstSpec(app=SORT, concurrency=c, packing_degree=degree, skew_cv=cv),
            repetition=9,
        ).service_time()

    assert realized(skew_degree) < realized(naive_degree)
