"""Campaign execution: artifacts, resume, retry-on-flake, failure gating."""

import itertools
import json

import pytest

from repro.harness import (
    ArtifactStore,
    CampaignExecutor,
    CampaignSpec,
    SweepStage,
    plan_campaign,
)
from repro.harness.targets import RunOutput, TargetRegistry, make_target


def _tiny_spec(name="tiny", seeds=(11,), concurrencies=(8, 16)):
    """A fast two-stage burst campaign with a barrier edge."""
    return CampaignSpec(
        name=name,
        stages=(
            SweepStage(
                name="baseline",
                target="burst",
                params={"app": "sort", "packing_degree": 1},
                axes={"concurrency": concurrencies},
                seeds=seeds,
            ),
            SweepStage(
                name="packed",
                target="burst",
                params={"app": "sort", "packing_degree": 4, "concurrency": 8},
                seeds=seeds,
                depends_on=("baseline",),
            ),
        ),
    )


def _tree(root):
    """{relative artifact path: bytes} for every manifest/summary file."""
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*.json"))
        if p.name in ("manifest.json", "summary.json")
    }


def test_campaign_executes_and_writes_full_artifact_layout(tmp_path):
    spec = _tiny_spec()
    executor = CampaignExecutor(ArtifactStore(tmp_path))
    report = executor.run(spec)
    assert report.ok
    assert len(report.executed) == 3 and not report.skipped
    plan = plan_campaign(spec)
    for planned in plan.runs:
        run_dir = tmp_path / spec.name / planned.run_id
        assert (run_dir / "manifest.json").exists()
        assert (run_dir / "summary.json").exists()
        assert (run_dir / "metrics.jsonl").exists()
        summary = json.loads((run_dir / "summary.json").read_text())
        assert summary["service_time_s"] > 0
        runtime = json.loads((run_dir / "runtime.json").read_text())
        assert runtime["attempts"] == 1 and runtime["wall_time_s"] >= 0
        # The JSONL metrics are real telemetry events.
        lines = (run_dir / "metrics.jsonl").read_text().splitlines()
        assert lines and all(json.loads(ln) for ln in lines)


def test_resume_skips_completed_runs(tmp_path):
    spec = _tiny_spec()
    executor = CampaignExecutor(ArtifactStore(tmp_path))
    first = executor.run(spec)
    assert len(first.executed) == 3
    second = executor.run(spec)
    assert second.executed == []
    assert len(second.skipped) == 3
    assert second.ok


def test_killed_then_resumed_matches_uninterrupted_byte_for_byte(tmp_path):
    spec = _tiny_spec()
    clean_root = tmp_path / "clean"
    killed_root = tmp_path / "killed"
    CampaignExecutor(ArtifactStore(clean_root)).run(spec)

    executor = CampaignExecutor(ArtifactStore(killed_root))
    executor.run(spec)
    plan = plan_campaign(spec)
    # Simulate a mid-run kill: one run died before finishing (manifest
    # written, no summary) and one never started (directory gone).
    victim_a, victim_b = plan.runs[0], plan.runs[2]
    a_dir = killed_root / spec.name / victim_a.run_id
    (a_dir / "summary.json").unlink()
    b_dir = killed_root / spec.name / victim_b.run_id
    for child in b_dir.iterdir():
        child.unlink()
    b_dir.rmdir()

    resumed = executor.run(spec)
    assert resumed.ok
    assert sorted(resumed.executed) == sorted([victim_a.run_id, victim_b.run_id])
    assert len(resumed.skipped) == 1
    assert _tree(killed_root) == _tree(clean_root)


def test_execution_order_does_not_leak_into_results(tmp_path):
    """Each run gets a fresh seeded platform, so a run's artifacts are
    identical whether it executed alone or inside the full sweep."""
    from dataclasses import replace

    spec = _tiny_spec()
    full_root, solo_root = tmp_path / "full", tmp_path / "solo"
    CampaignExecutor(ArtifactStore(full_root)).run(spec)
    solo_spec = CampaignSpec(
        name=spec.name, stages=(replace(spec.stages[1], depends_on=()),)
    )
    CampaignExecutor(ArtifactStore(solo_root)).run(solo_spec)
    [solo_run] = plan_campaign(solo_spec).runs
    # depends_on lives in the plan, not the manifest, so the bytes match.
    solo = (solo_root / spec.name / solo_run.run_id / "summary.json").read_bytes()
    full = (full_root / spec.name / solo_run.run_id / "summary.json").read_bytes()
    assert solo == full


def test_process_pool_matches_serial_execution(tmp_path):
    spec = _tiny_spec()
    serial_root, pooled_root = tmp_path / "serial", tmp_path / "pooled"
    CampaignExecutor(ArtifactStore(serial_root)).run(spec, parallelism=1)
    report = CampaignExecutor(ArtifactStore(pooled_root)).run(spec, parallelism=2)
    assert report.ok and len(report.executed) == 3
    assert _tree(pooled_root) == _tree(serial_root)


def test_retry_on_flake_preserves_seed_and_records_attempts(tmp_path):
    registry = TargetRegistry()
    calls = itertools.count()
    seen_seeds = []

    def execute(resolved, seed):
        seen_seeds.append(seed)
        if next(calls) == 0:
            raise RuntimeError("transient flake")
        return RunOutput(summary={"value": 42})

    make_target("flaky", lambda p: dict(p), execute, registry=registry)
    spec = CampaignSpec(
        name="flaky-camp",
        stages=(SweepStage(name="s", target="flaky", seeds=(99,)),),
        max_retries=1,
    )
    executor = CampaignExecutor(ArtifactStore(tmp_path), registry=registry)
    report = executor.run(spec)
    assert report.ok
    [record] = report.records
    assert record.attempts == 2
    assert seen_seeds == [99, 99]  # the rerun kept the seed


def test_persistent_failure_surfaces_and_strands_dependents(tmp_path):
    registry = TargetRegistry()

    def execute(resolved, seed):
        raise RuntimeError("always broken")

    make_target("broken", lambda p: dict(p), execute, registry=registry)
    make_target(
        "fine",
        lambda p: dict(p),
        lambda resolved, seed: RunOutput(summary={"v": 1}),
        registry=registry,
    )
    spec = CampaignSpec(
        name="doomed",
        stages=(
            SweepStage(name="root", target="broken", seeds=(1,)),
            SweepStage(name="leaf", target="fine", seeds=(1,), depends_on=("root",)),
        ),
        max_retries=0,
    )
    executor = CampaignExecutor(ArtifactStore(tmp_path), registry=registry)
    report = executor.run(spec)
    assert not report.ok
    assert len(report.failed) == 2
    by_stage = {r.stage: r for r in report.records}
    assert "always broken" in by_stage["root"].error
    assert by_stage["leaf"].error == "dependency failed"
    # The failed run left an incomplete directory (manifest, no summary).
    store = ArtifactStore(tmp_path)
    [status] = store.statuses("doomed")
    assert status.state == "incomplete" and status.stage == "root"


def test_changed_recipe_invalidates_resume(tmp_path):
    """A completed run is only skipped when its manifest matches the plan
    byte for byte — same run_id with a different manifest re-runs."""
    registry = TargetRegistry()
    make_target(
        "echo",
        lambda p: dict(p),
        lambda resolved, seed: RunOutput(summary={"v": resolved["x"]}),
        registry=registry,
    )
    spec = CampaignSpec(
        name="c",
        stages=(SweepStage(name="s", target="echo", params={"x": 1}, seeds=(1,)),),
    )
    executor = CampaignExecutor(ArtifactStore(tmp_path), registry=registry)
    executor.run(spec)
    [planned] = plan_campaign(spec, registry).runs
    # Corrupt the stored manifest's provenance (run_id still derivable).
    run_dir = tmp_path / "c" / planned.run_id
    payload = json.loads((run_dir / "manifest.json").read_text())
    payload["package_version"] = "0.0.0-other"
    (run_dir / "manifest.json").write_text(json.dumps(payload))
    report = executor.run(spec)
    assert report.executed == [planned.run_id]


@pytest.mark.parametrize("parallelism", [1, 2])
def test_report_accounting_is_complete(tmp_path, parallelism):
    spec = _tiny_spec()
    report = CampaignExecutor(ArtifactStore(tmp_path)).run(
        spec, parallelism=parallelism
    )
    assert len(report.records) == spec.n_runs
    assert report.wall_time_s > 0
