"""Tests for the production-grade kernel variants: Gotoh affine gaps,
BM25 scoring, and the MLP classifier head."""

import numpy as np
import pytest

from repro.workloads import SmithWaterman, ThousandIslandScanner, XapianSearch
from repro.workloads.smith_waterman import gotoh_affine_score, sw_score_matrix
from repro.workloads.video import TinyMLP


# --------------------------------------------------------------------- #
# Gotoh affine-gap alignment
# --------------------------------------------------------------------- #

def seq(s: bytes) -> np.ndarray:
    return np.frombuffer(s, dtype=np.uint8)


def test_gotoh_identical_sequences_full_match():
    s = seq(b"MKTWYENQ")
    assert gotoh_affine_score(s, s, match=3) == 3 * len(s)


def test_gotoh_equals_linear_when_affine_collapses():
    """With gap_open == gap_extend the affine model IS the linear model."""
    q = seq(b"HEAGAWGHEE")
    r = seq(b"PAWHEAE")
    linear = int(sw_score_matrix(q, r, match=3, mismatch=-2, gap=-3).max())
    affine = gotoh_affine_score(q, r, match=3, mismatch=-2, gap_open=-3, gap_extend=-3)
    assert affine == linear


def test_gotoh_prefers_one_long_gap_over_many_short():
    """Affine scoring's point: one opened gap extended cheaply can beat
    repeated opens, so a sequence with a single long insertion scores
    better under affine than under an equivalent linear penalty."""
    q = seq(b"ACDEFGHIKL")
    r = seq(b"ACDEF" + b"WWWW" + b"GHIKL")  # one 4-residue insertion
    affine = gotoh_affine_score(q, r, gap_open=-5, gap_extend=-1)
    linear = int(sw_score_matrix(q, r, gap=-5).max())
    assert affine > linear


def test_gotoh_score_nonnegative_on_random_pairs():
    rng = np.random.default_rng(3)
    alphabet = seq(b"ACDEFGHIKLMNPQRSTVWY")
    for _ in range(5):
        q = rng.choice(alphabet, size=25)
        r = rng.choice(alphabet, size=40)
        assert gotoh_affine_score(q, r) >= 0


def test_gotoh_rejects_empty():
    with pytest.raises(ValueError):
        gotoh_affine_score(seq(b""), seq(b"A"))


def test_sw_app_affine_mode():
    app = SmithWaterman(query_len=20, reference_len=60, affine_gaps=True)
    task = app.make_tasks(1, seed=2)[0]
    value = app.run_task(task)
    assert "affine_score" in value
    assert value["affine_score"] >= 0


# --------------------------------------------------------------------- #
# BM25 index
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def engine():
    return XapianSearch(n_docs=60, doc_len=80, vocab_size=400)


def test_bm25_idf_monotone_in_rarity(engine):
    """Rarer terms get higher idf under BM25."""
    by_df = sorted(engine.index.postings, key=lambda t: len(engine.index.postings[t]))
    rare, common = by_df[0], by_df[-1]
    assert engine.index.idf(rare) > engine.index.idf(common)


def test_bm25_idf_nonnegative(engine):
    assert all(engine.index.idf(t) >= 0.0 for t in engine.index.postings)


def test_bm25_tf_saturation():
    """BM25's k1 saturation: doubling tf must less-than-double the score."""
    docs = [
        np.array([1, 1, 2, 3], dtype=np.int64),
        np.array([1, 1, 1, 1, 1, 1, 2, 3], dtype=np.int64),
        np.array([4, 5, 6, 7], dtype=np.int64),
    ]
    from repro.workloads.xapian import InvertedIndex

    index = InvertedIndex(docs, vocab_size=10)
    hits = dict(index.search(np.array([1]), top_k=3))
    # Doc 1 has 3x the tf of doc 0 for token 1 (and is longer); its score
    # advantage must be well below 3x.
    assert hits[1] < 2.0 * hits[0]


def test_bm25_length_normalization():
    """Same tf in a shorter document scores higher (b > 0)."""
    docs = [
        np.array([1, 2], dtype=np.int64),              # short, one hit of 1
        np.array([1, 3, 4, 5, 6, 7, 8, 9], dtype=np.int64),  # long, one hit
    ]
    from repro.workloads.xapian import InvertedIndex

    index = InvertedIndex(docs, vocab_size=16)
    hits = dict(index.search(np.array([1]), top_k=2))
    assert hits[0] > hits[1]


def test_bm25_search_still_ranked(engine):
    for task in engine.make_tasks(4, seed=8):
        value = engine.run_task(task)
        scores = [s for _, s in value["hits"]]
        assert scores == sorted(scores, reverse=True)


# --------------------------------------------------------------------- #
# TinyMLP classifier
# --------------------------------------------------------------------- #

def test_mlp_outputs_probability_distribution():
    mlp = TinyMLP(in_features=16)
    probs = mlp.forward(np.random.default_rng(0).random(16).astype(np.float32))
    assert probs.shape == (8,)
    assert probs.sum() == pytest.approx(1.0)
    assert np.all(probs >= 0)


def test_mlp_is_deterministic():
    a = TinyMLP(in_features=16)
    b = TinyMLP(in_features=16)
    x = np.ones(16, dtype=np.float32)
    assert np.allclose(a.forward(x), b.forward(x))


def test_mlp_distinguishes_inputs():
    mlp = TinyMLP(in_features=16)
    rng = np.random.default_rng(1)
    labels = {int(np.argmax(mlp.forward(rng.random(16).astype(np.float32))))
              for _ in range(40)}
    assert len(labels) > 1  # a constant classifier would be useless


def test_video_app_uses_classifier():
    app = ThousandIslandScanner(frames_per_chunk=2, frame_size=16)
    task = app.make_tasks(1, seed=4)[0]
    value = app.run_task(task)
    assert app.validate_result(task, value)
    assert 0.0 < value["confidence"] <= 1.0


def test_video_rejects_bad_frame_size():
    with pytest.raises(ValueError):
        ThousandIslandScanner(frame_size=10)
