"""Tests for the ServerlessPlatform facade and provider profiles."""

import pytest

from repro.platform.base import PROBE_APP, ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.providers import (
    AWS_LAMBDA,
    AZURE_FUNCTIONS,
    GOOGLE_CLOUD_FUNCTIONS,
    PROVIDERS,
)
from repro.workloads import SORT, STATELESS_COST, VIDEO


@pytest.fixture(scope="module")
def platform():
    return ServerlessPlatform(AWS_LAMBDA, seed=21)


def test_providers_registry_complete():
    assert set(PROVIDERS) == {
        "aws-lambda",
        "google-cloud-functions",
        "azure-functions",
    }


def test_only_gcf_azure_charge_egress():
    assert AWS_LAMBDA.egress_usd_per_gb == 0.0
    assert GOOGLE_CLOUD_FUNCTIONS.egress_usd_per_gb > 0.0
    assert AZURE_FUNCTIONS.egress_usd_per_gb > 0.0


def test_profile_with_overrides_is_a_copy():
    modified = AWS_LAMBDA.with_overrides(build_slots=1)
    assert modified.build_slots == 1
    assert AWS_LAMBDA.build_slots != 1
    assert modified.name == AWS_LAMBDA.name


def test_image_auto_registration(platform):
    image = platform.image_for(SORT)
    assert image.name == SORT.name
    assert platform.image_for(SORT) is image  # cached


def test_scaling_time_grows_superlinearly(platform):
    s200 = platform.measure_scaling_time(200)
    s800 = platform.measure_scaling_time(800)
    s3200 = platform.measure_scaling_time(3200)
    assert s800 > s200
    assert s3200 > s800
    # Super-linear: quadrupling C should much more than quadruple scaling.
    assert s3200 / s800 > 4.0


def test_scaling_time_app_independent(platform):
    """Fig. 5b: probes and real apps see the same scaling behaviour."""
    probe = platform.measure_scaling_time(1000, repetition=0)
    for app in (VIDEO, SORT, STATELESS_COST):
        run = platform.run_burst(BurstSpec(app=app, concurrency=1000))
        assert run.scaling_time == pytest.approx(probe, rel=0.05)


def test_exec_time_flat_across_concurrency(platform):
    """Fig. 5a: execution time of an instance is isolated from burst size."""
    execs = [
        platform.run_burst(BurstSpec(app=SORT, concurrency=c)).mean_exec_seconds
        for c in (200, 1000, 3000)
    ]
    spread = (max(execs) - min(execs)) / (sum(execs) / len(execs))
    assert spread < 0.05  # the paper's "<5% in most cases"


def test_probe_app_is_cheap_and_neutral():
    assert PROBE_APP.pressure_per_gb == 0.0
    assert PROBE_APP.base_seconds < 1.0


def test_run_counter_varies_repetitions(platform):
    a = platform.run_burst(BurstSpec(app=SORT, concurrency=50))
    b = platform.run_burst(BurstSpec(app=SORT, concurrency=50))
    assert a.service_time() != b.service_time()  # auto-incrementing repetition


def test_interference_model_reflects_profile():
    model = ServerlessPlatform(AWS_LAMBDA, seed=0).interference_model()
    assert model.cores == AWS_LAMBDA.cores_per_instance
    assert model.isolation_penalty == AWS_LAMBDA.isolation_penalty
