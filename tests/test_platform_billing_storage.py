"""Tests for billing and object-store accounting."""

import pytest

from repro.platform.billing import BillingModel
from repro.platform.metrics import InstanceRecord
from repro.platform.providers import AWS_LAMBDA, GOOGLE_CLOUD_FUNCTIONS
from repro.platform.storage import ObjectStore, StorageUsage
from repro.workloads import SORT, VIDEO


def make_record(exec_seconds=100.0, provisioned_mb=10240, n_packed=1):
    record = InstanceRecord(0, n_packed=n_packed, provisioned_mb=provisioned_mb)
    record.sched_done = 0.0
    record.built_at = 0.0
    record.shipped_at = 0.0
    record.exec_start = 0.0
    record.exec_end = exec_seconds
    return record


# --------------------------------------------------------------------- #
# BillingModel
# --------------------------------------------------------------------- #

def test_billed_memory_rounds_up_to_increment():
    billing = BillingModel(AWS_LAMBDA)
    assert billing.billed_memory_mb(1) == 128
    assert billing.billed_memory_mb(128) == 128
    assert billing.billed_memory_mb(129) == 256
    assert billing.billed_memory_mb(10240) == 10240


def test_billed_memory_rejects_nonpositive():
    with pytest.raises(ValueError):
        BillingModel(AWS_LAMBDA).billed_memory_mb(0)


def test_compute_expense_is_gb_seconds():
    billing = BillingModel(AWS_LAMBDA)
    record = make_record(exec_seconds=100.0, provisioned_mb=10240)
    expected = 100.0 * 10.0 * AWS_LAMBDA.gb_second_usd
    assert billing.instance_compute_usd(record) == pytest.approx(expected)


def test_burst_expense_line_items():
    billing = BillingModel(AWS_LAMBDA)
    records = [make_record() for _ in range(3)]
    storage = StorageUsage(put_requests=3, get_requests=3, transferred_mb=300.0)
    expense = billing.burst_expense(records, storage)
    assert expense.requests_usd == pytest.approx(3 * AWS_LAMBDA.per_request_usd)
    assert expense.storage_usd == pytest.approx(
        3 * AWS_LAMBDA.storage_put_usd + 3 * AWS_LAMBDA.storage_get_usd
    )
    assert expense.egress_usd == 0.0  # AWS charges no networking fee
    assert expense.total_usd == pytest.approx(
        expense.compute_usd + expense.requests_usd + expense.storage_usd
    )


def test_gcf_charges_egress():
    billing = BillingModel(GOOGLE_CLOUD_FUNCTIONS)
    storage = StorageUsage(put_requests=0, get_requests=0, transferred_mb=1024.0)
    expense = billing.burst_expense([], storage)
    assert expense.egress_usd == pytest.approx(
        GOOGLE_CLOUD_FUNCTIONS.egress_usd_per_gb
    )


def test_scaling_delay_is_never_billed():
    """Two records with identical exec but wildly different queueing bill
    the same (the paper's core billing observation)."""
    billing = BillingModel(AWS_LAMBDA)
    fast = make_record(exec_seconds=50.0)
    slow = make_record(exec_seconds=50.0)
    slow.exec_start = 1000.0
    slow.exec_end = 1050.0
    assert billing.instance_compute_usd(fast) == pytest.approx(
        billing.instance_compute_usd(slow)
    )


# --------------------------------------------------------------------- #
# ObjectStore
# --------------------------------------------------------------------- #

def test_instance_io_requests_per_function():
    store = ObjectStore()
    usage = store.instance_io(SORT, n_packed=5)
    assert usage.put_requests == 5
    assert usage.get_requests == 5


def test_instance_io_shares_common_bytes():
    store = ObjectStore()
    solo = store.instance_io(VIDEO, n_packed=1)
    packed = store.instance_io(VIDEO, n_packed=4)
    # Shared fraction moves once; only private bytes multiply.
    assert solo.transferred_mb == pytest.approx(VIDEO.io_mb)
    expected = VIDEO.io_mb * VIDEO.io_shared_fraction + VIDEO.io_mb * (
        1 - VIDEO.io_shared_fraction
    ) * 4
    assert packed.transferred_mb == pytest.approx(expected)
    assert packed.transferred_mb < 4 * solo.transferred_mb


def test_record_instance_accumulates():
    store = ObjectStore()
    store.record_instance(SORT, 2)
    store.record_instance(SORT, 3)
    assert store.usage.put_requests == 5
    assert store.usage.get_requests == 5
    assert store.usage.transferred_mb > 0


def test_storage_usage_iadd():
    a = StorageUsage(1, 2, 3.0)
    a += StorageUsage(10, 20, 30.0)
    assert (a.put_requests, a.get_requests, a.transferred_mb) == (11, 22, 33.0)
