"""The zero-cost-when-disabled telemetry contract, structurally.

The timing benchmark (``test_perf_telemetry_disabled_is_free``) catches
overhead after the fact; these tests pin the *mechanisms* that keep the
hot path free: no EventBus is ever constructed for an uninstrumented run,
and the audit hooks guard on a precomputed "any auditor attached?" flag
that tracks the bus's subscription version instead of re-scanning
subscriptions per event.
"""

from repro.chaos.auditor import InvariantAuditor
from repro.core.models import ExecutionTimeModel
from repro.extensions.streaming import StreamingPolicy
from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.providers import AWS_LAMBDA
from repro.serving import FixedTTL, PoissonProcess, ServingSimulator, WarmPool
from repro.telemetry import EventBus, TelemetryConfig, TelemetrySession
from repro.telemetry.instruments import ServingInstrumentation
from repro.workloads import SORT, XAPIAN

_EXEC = ExecutionTimeModel(
    coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
)


class _Clock:
    now = 0.0


def _instr(session):
    return ServingInstrumentation(
        tracer=None, registry=None, bus=session.bus, sim=_Clock(), name="t"
    )


def _count_bus_allocations(monkeypatch):
    counter = {"n": 0}
    orig = EventBus.__init__

    def counting_init(self, *args, **kwargs):
        counter["n"] += 1
        orig(self, *args, **kwargs)

    monkeypatch.setattr(EventBus, "__init__", counting_init)
    return counter


def test_disabled_telemetry_allocates_no_event_bus(monkeypatch):
    """telemetry=None runs — burst and serving — must construct zero
    EventBus objects (the regression this guards: an instrumentation
    object eagerly building a bus 'just in case')."""
    counter = _count_bus_allocations(monkeypatch)

    platform = ServerlessPlatform(AWS_LAMBDA, seed=5, telemetry=None)
    platform.run_burst(BurstSpec(app=SORT, concurrency=200))

    sim = ServingSimulator(
        AWS_LAMBDA, XAPIAN, _EXEC, pool=WarmPool(FixedTTL(60.0)), seed=7,
        telemetry=None,
    )
    sim.run(PoissonProcess(4.0), StreamingPolicy(degree=4, batch_timeout_s=2.0), 300.0)

    assert counter["n"] == 0


def test_disabled_telemetry_publishes_nothing(monkeypatch):
    """Belt and braces: even if a bus existed, the audit gate must keep
    publish() unreached when no auditor subscribed."""
    published = {"n": 0}
    orig = EventBus.publish

    def counting_publish(self, *args, **kwargs):
        published["n"] += 1
        return orig(self, *args, **kwargs)

    monkeypatch.setattr(EventBus, "publish", counting_publish)
    session = TelemetrySession(
        TelemetryConfig(tracing=False, metrics=False, events=False)
    )
    sim = ServingSimulator(
        AWS_LAMBDA, XAPIAN, _EXEC, pool=WarmPool(FixedTTL(60.0)), seed=7,
        telemetry=session,
    )
    sim.run(PoissonProcess(4.0), StreamingPolicy(degree=4, batch_timeout_s=2.0), 300.0)
    assert published["n"] == 0


def test_audit_gate_precomputed_flag_tracks_subscriptions():
    session = TelemetrySession(
        TelemetryConfig(tracing=False, metrics=False, events=False)
    )
    bus = session.bus
    instr = _instr(session)
    assert instr._audit_on is False  # no auditor yet

    auditor = InvariantAuditor().attach(bus)
    assert instr._refresh_audit_gate() is True
    assert instr._audit_on is True

    auditor.detach()
    assert instr._refresh_audit_gate() is False
    assert instr._audit_on is False


def test_audit_gate_refreshes_only_on_version_change():
    session = TelemetrySession(
        TelemetryConfig(tracing=False, metrics=False, events=False)
    )
    bus = session.bus
    instr = _instr(session)
    version = bus.subscriptions_version
    instr._refresh_audit_gate()
    assert instr._audit_version == version

    # No subscription churn: the cached verdict is reused as-is.
    assert instr._refresh_audit_gate() is False
    assert instr._audit_version == version

    bus.subscribe(lambda e: None, kind="unrelated.kind")
    assert bus.subscriptions_version > version
    # Refresh notices the bump but a non-audit subscription stays gated off.
    assert instr._refresh_audit_gate() is False
    assert instr._audit_version == bus.subscriptions_version


def test_subscriptions_version_bumps_on_subscribe_and_unsubscribe():
    bus = EventBus()
    v0 = bus.subscriptions_version
    unsub = bus.subscribe(lambda e: None, kind="audit.tick")
    v1 = bus.subscriptions_version
    assert v1 > v0
    unsub()
    assert bus.subscriptions_version > v1
    unsub()  # idempotent: second call must not bump again
    assert bus.subscriptions_version == v1 + 1


def test_mid_run_attach_detach_is_safe():
    """Attaching an auditor between events starts publication (next gate
    refresh) and detaching stops it, without breaking the run."""
    session = TelemetrySession(
        TelemetryConfig(tracing=False, metrics=False, events=False)
    )
    instr = _instr(session)
    seen = {"n": 0}

    auditor = InvariantAuditor().attach(session.bus)
    orig_events = auditor.report.events_seen
    instr._refresh_audit_gate()
    instr.on_arrival(verdict="admitted")
    assert auditor.report.events_seen == orig_events + 1
    seen["after_attach"] = auditor.report.events_seen

    auditor.detach()
    instr._refresh_audit_gate()
    instr.on_arrival(verdict="admitted")
    assert auditor.report.events_seen == seen["after_attach"]  # unchanged
