"""The real ``chaos-serving`` campaign target: resolution + execution."""

import pytest

import repro.chaos  # noqa: F401  (registers chaos-serving)
from repro.chaos import StormSpec
from repro.harness.targets import DEFAULT_REGISTRY

#: Small enough to execute twice in a unit test.
FAST = {"horizon_s": 120.0, "rate_per_s": 2.0}


@pytest.fixture()
def target():
    return DEFAULT_REGISTRY.get("chaos-serving")


def test_registered_in_default_registry(target):
    assert target.name == "chaos-serving"


def test_resolve_embeds_validated_storm_and_full_context(target):
    resolved = target.resolve({
        "storm": {"name": "x", "crash_rate": 0.2}, **FAST
    })
    assert resolved["storm"]["crash_rate"] == 0.2
    assert resolved["storm"]["gray_domains"] == 0  # defaults pinned
    assert resolved["app_spec"]["name"] == "xapian"
    assert resolved["platform_profile"]["name"]
    assert resolved["protected"] is False


def test_resolve_rejects_bad_inputs(target):
    with pytest.raises(ValueError, match="unknown params"):
        target.resolve({"storm": {}, "surprise": 1})
    with pytest.raises(ValueError, match="unknown app"):
        target.resolve({"storm": {}, "app": "nope"})
    with pytest.raises(ValueError, match="unknown platform"):
        target.resolve({"storm": {}, "platform": "nope"})
    with pytest.raises(ValueError, match="crash_rate"):
        target.resolve({"storm": {"crash_rate": 2.0}})
    with pytest.raises(ValueError, match="positive"):
        target.resolve({"storm": {}, "horizon_s": 0.0})


def test_execute_summary_contract_and_auditor_clean(target):
    resolved = target.resolve({
        "storm": StormSpec(name="mini", crash_rate=0.15).to_dict(), **FAST
    })
    output = target.execute(resolved, seed=5)
    s = output.summary
    for key in ("requests", "completed", "shed", "failed", "attainment",
                "expense_usd", "conserved", "slo_breach", "audit_events",
                "violations", "violation_kinds"):
        assert key in s
    assert s["conserved"] is True
    assert s["violations"] == 0, s["violation_kinds"]
    assert s["audit_events"] > 0
    assert s["requests"] == s["completed"] + s["shed"] + s["failed"]
    assert output.metrics_jsonl == ""  # one line per violation; none here


def test_execute_is_deterministic(target):
    resolved = target.resolve({
        "storm": StormSpec(name="mini", crash_rate=0.15).to_dict(), **FAST
    })
    assert target.execute(resolved, seed=5).summary == \
        target.execute(resolved, seed=5).summary


def test_audit_off_skips_auditing_but_not_serving(target):
    resolved = target.resolve({"storm": {}, "audit": False, **FAST})
    s = target.execute(resolved, seed=5).summary
    assert s["audit_events"] == 0
    assert s["requests"] > 0


def test_protected_flag_changes_the_run(target):
    storm = StormSpec(name="squeeze", crash_rate=0.4,
                      persistent_fraction=0.3).to_dict()
    bare = target.execute(target.resolve({"storm": storm, **FAST}), seed=5)
    prot = target.execute(
        target.resolve({"storm": storm, "protected": True, **FAST}), seed=5
    )
    assert prot.summary["protected"] is True
    assert bare.summary["protected"] is False
    assert prot.summary != bare.summary
