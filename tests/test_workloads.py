"""Tests for the workload specs and their executable kernels."""

import numpy as np
import pytest

from repro.workloads import (
    ALL_APPS,
    BENCHMARK_APPS,
    SMITH_WATERMAN,
    SORT,
    STATELESS_COST,
    VIDEO,
    MapReduceSort,
    SmithWaterman,
    StatelessCost,
    ThousandIslandScanner,
    XapianSearch,
)
from repro.workloads.smith_waterman import sw_score_matrix, sw_traceback
from repro.workloads.stateless import bilinear_resize
from repro.workloads.synthetic import SyntheticApp, make_synthetic


# --------------------------------------------------------------------- #
# Specs
# --------------------------------------------------------------------- #

def test_paper_max_packing_degrees():
    """The paper's P_max values on 10 GB instances: 40, 15, 30, 35."""
    assert VIDEO.max_packing_degree(10240) == 40
    assert SORT.max_packing_degree(10240) == 15
    assert STATELESS_COST.max_packing_degree(10240) == 30
    assert SMITH_WATERMAN.max_packing_degree(10240) == 35


def test_registries():
    assert set(BENCHMARK_APPS) == {"video", "sort", "stateless-cost"}
    assert set(ALL_APPS) == set(BENCHMARK_APPS) | {"smith-waterman", "xapian"}


def test_spec_validation():
    with pytest.raises(ValueError):
        make_synthetic(base_seconds=0.0)
    with pytest.raises(ValueError):
        make_synthetic(mem_mb=0)
    with pytest.raises(ValueError):
        make_synthetic(io_shared_fraction=1.5)
    with pytest.raises(ValueError):
        make_synthetic(pressure_per_gb=-0.1)


def test_mem_gb_conversion():
    assert make_synthetic(mem_mb=512).mem_gb == pytest.approx(0.5)


def test_max_packing_degree_floor_is_one():
    spec = make_synthetic(mem_mb=20480 // 2)
    assert spec.max_packing_degree(1024) == 1


def test_smith_waterman_is_most_compute_intensive():
    rates = {
        name: app.pressure_per_gb * app.mem_gb
        for name, app in ALL_APPS.items()
    }
    assert max(rates, key=rates.get) == "smith-waterman"


# --------------------------------------------------------------------- #
# Video kernel
# --------------------------------------------------------------------- #

def test_video_tasks_and_execution():
    app = ThousandIslandScanner(frames_per_chunk=2, frame_size=16)
    tasks = app.make_tasks(3, seed=1)
    assert len(tasks) == 3
    for task in tasks:
        value = app.run_task(task)
        assert app.validate_result(task, value)
        assert 0 <= value["label"] < 8


def test_video_deterministic_inputs():
    app = ThousandIslandScanner(frames_per_chunk=2, frame_size=16)
    a = app.make_tasks(2, seed=7)[0].payload
    b = app.make_tasks(2, seed=7)[0].payload
    assert np.array_equal(a, b)


# --------------------------------------------------------------------- #
# Sort kernel
# --------------------------------------------------------------------- #

def test_sort_partitions_cover_dataset():
    app = MapReduceSort(partition_size=500)
    tasks = app.make_tasks(4, seed=3)
    total = sum(t.payload.size for t in tasks)
    assert total == 4 * 500


def test_sort_task_really_sorts():
    app = MapReduceSort(partition_size=500)
    task = app.make_tasks(2, seed=3)[0]
    value = app.run_task(task)
    assert app.validate_result(task, value)
    arr = value["sorted"]
    assert np.all(arr[:-1] <= arr[1:])


def test_sort_reduce_produces_global_order():
    app = MapReduceSort(partition_size=400)
    tasks = app.make_tasks(5, seed=9)
    results = [app.run_task(t) for t in tasks]
    merged = MapReduceSort.reduce(results)
    assert merged.size == sum(t.payload.size for t in tasks)
    assert np.all(merged[:-1] <= merged[1:])


# --------------------------------------------------------------------- #
# Stateless (image resize) kernel
# --------------------------------------------------------------------- #

def test_bilinear_resize_shape_and_range():
    image = np.random.default_rng(0).random((32, 32, 3), dtype=np.float32)
    out = bilinear_resize(image, 16, 16)
    assert out.shape == (16, 16, 3)
    assert out.min() >= image.min() - 1e-6
    assert out.max() <= image.max() + 1e-6


def test_bilinear_resize_identity_on_constant():
    image = np.full((8, 8), 0.5)
    out = bilinear_resize(image, 16, 16)
    assert np.allclose(out, 0.5)


def test_bilinear_resize_grayscale_squeezes():
    image = np.random.default_rng(0).random((8, 8))
    assert bilinear_resize(image, 4, 4).shape == (4, 4)


def test_bilinear_resize_preserves_corners():
    image = np.arange(16, dtype=float).reshape(4, 4)
    out = bilinear_resize(image, 8, 8)
    assert out[0, 0] == pytest.approx(image[0, 0])
    assert out[-1, -1] == pytest.approx(image[-1, -1])


def test_bilinear_rejects_tiny_input():
    with pytest.raises(ValueError):
        bilinear_resize(np.ones((1, 5)), 2, 2)


def test_stateless_app_roundtrip():
    app = StatelessCost(in_size=16, out_size=8)
    task = app.make_tasks(1, seed=0)[0]
    value = app.run_task(task)
    assert app.validate_result(task, value)


# --------------------------------------------------------------------- #
# Smith-Waterman kernel
# --------------------------------------------------------------------- #

def test_sw_known_alignment():
    query = np.frombuffer(b"ACACACTA", dtype=np.uint8)
    ref = np.frombuffer(b"AGCACACA", dtype=np.uint8)
    h = sw_score_matrix(query, ref, match=2, mismatch=-1, gap=-1)
    # The canonical example: optimal local alignment score is 12.
    assert int(h.max()) == 12


def test_sw_identical_sequences_score_full_match():
    seq = np.frombuffer(b"MKTWY", dtype=np.uint8)
    h = sw_score_matrix(seq, seq, match=3, mismatch=-2, gap=-3)
    assert int(h.max()) == 3 * len(seq)


def test_sw_matrix_nonnegative_and_zero_borders():
    rng = np.random.default_rng(0)
    q = rng.choice(np.frombuffer(b"ACGT", dtype=np.uint8), size=12)
    r = rng.choice(np.frombuffer(b"ACGT", dtype=np.uint8), size=20)
    h = sw_score_matrix(q, r)
    assert h.min() >= 0
    assert np.all(h[0, :] == 0) and np.all(h[:, 0] == 0)


def test_sw_traceback_alignment_consistency():
    seq = np.frombuffer(b"HEAGAWGHEE", dtype=np.uint8)
    ref = np.frombuffer(b"PAWHEAE", dtype=np.uint8)
    h = sw_score_matrix(seq, ref)
    aligned_q, aligned_r, score = sw_traceback(h, seq, ref)
    assert len(aligned_q) == len(aligned_r)
    assert score == int(h.max())
    assert score > 0


def test_sw_rejects_empty_sequence():
    with pytest.raises(ValueError):
        sw_score_matrix(np.array([], dtype=np.uint8), np.array([65], dtype=np.uint8))


def test_sw_app_finds_embedded_query():
    app = SmithWaterman(query_len=30, reference_len=90)
    for task in app.make_tasks(3, seed=5):
        value = app.run_task(task)
        assert app.validate_result(task, value)
        # The reference embeds a mutated copy: expect a strong score.
        assert value["score"] >= 30  # >= match * ~1/3 of the query


# --------------------------------------------------------------------- #
# Xapian kernel
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def xapian_app():
    return XapianSearch(n_docs=50, doc_len=60, vocab_size=300)


def test_xapian_search_returns_ranked_hits(xapian_app):
    tasks = xapian_app.make_tasks(5, seed=2)
    for task in tasks:
        value = xapian_app.run_task(task)
        assert xapian_app.validate_result(task, value)


def test_xapian_scores_descending(xapian_app):
    task = xapian_app.make_tasks(1, seed=4)[0]
    hits = xapian_app.run_task(task)["hits"]
    scores = [s for _, s in hits]
    assert scores == sorted(scores, reverse=True)
    assert all(s > 0 for s in scores)


def test_xapian_rare_term_has_higher_idf(xapian_app):
    index = xapian_app.index
    # Token 0 is the most frequent in a Zipf corpus; a high-rank token rarer.
    rare = max(index.postings, key=lambda t: t)
    assert index.idf(rare) >= index.idf(0)


def test_xapian_unknown_token_idf_zero(xapian_app):
    assert xapian_app.index.idf(10**9) == 0.0


# --------------------------------------------------------------------- #
# Synthetic kernel
# --------------------------------------------------------------------- #

def test_synthetic_kernel_runs():
    app = SyntheticApp(working_set=128, sweeps=2)
    task = app.make_tasks(1, seed=0)[0]
    assert app.validate_result(task, app.run_task(task))
