"""Tests for the simulation trace recorder."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.trace import TraceEntry, TraceRecorder


def named_callback():
    pass


def test_records_executed_events():
    sim = Simulator()
    sim.schedule(1.0, named_callback)
    sim.schedule(2.0, named_callback)
    with TraceRecorder(sim) as trace:
        sim.run()
    assert len(trace) == 2
    assert [e.time for e in trace.entries] == [1.0, 2.0]
    assert all("named_callback" in e.callback for e in trace.entries)


def test_uninstall_stops_recording():
    sim = Simulator()
    trace = TraceRecorder(sim).install()
    sim.schedule(1.0, named_callback)
    sim.run()
    trace.uninstall()
    sim.schedule(1.0, named_callback)
    sim.run()
    assert len(trace) == 1


def test_window_filters_by_time():
    sim = Simulator()
    for t in (1.0, 5.0, 9.0):
        sim.schedule(t, named_callback)
    with TraceRecorder(sim) as trace:
        sim.run()
    assert [e.time for e in trace.window(2.0, 8.0)] == [5.0]


def test_by_callback_filters_by_name():
    sim = Simulator()
    sim.schedule(1.0, named_callback)
    sim.schedule(2.0, lambda: None)
    with TraceRecorder(sim) as trace:
        sim.run()
    assert len(trace.by_callback("named_callback")) == 1


def test_ring_buffer_drops_oldest():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i), named_callback)
    with TraceRecorder(sim, capacity=4) as trace:
        sim.run()
    assert len(trace) == 4
    assert trace.dropped == 6
    assert [e.time for e in trace.entries] == [6.0, 7.0, 8.0, 9.0]


def test_predicate_filters_entries():
    sim = Simulator()
    for i in range(6):
        sim.schedule(float(i), named_callback)
    trace = TraceRecorder(sim, predicate=lambda e: e.time >= 3.0).install()
    sim.run()
    assert [e.time for e in trace.entries] == [3.0, 4.0, 5.0]


def test_summary_counts():
    sim = Simulator()
    for _ in range(3):
        sim.schedule(1.0, named_callback)
    with TraceRecorder(sim) as trace:
        sim.run()
    summary = trace.summary()
    assert sum(summary.values()) == 3


def test_capacity_validation():
    with pytest.raises(ValueError):
        TraceRecorder(Simulator(), capacity=0)


def test_traces_platform_components():
    """The recorder sees real platform components' events (run_burst builds
    its own simulator internally, so drive one component directly)."""
    from repro.cluster.network import NetworkFabric

    sim = Simulator()
    trace = TraceRecorder(sim).install()
    net = NetworkFabric(sim, uplink_gbps=1.0)
    net.ship(10.0, named_callback)
    sim.run()
    assert len(trace) >= 1
    assert trace.entries[-1].time > 0


def test_entry_str_readable():
    entry = TraceEntry(time=1.5, seq=3, callback="X.cb")
    assert "1.5" in str(entry) and "X.cb" in str(entry)


# --------------------------------------------------------------------- #
# Window edge cases
# --------------------------------------------------------------------- #

def test_window_on_empty_buffer():
    trace = TraceRecorder(Simulator())
    assert trace.window(0.0, 100.0) == []


def test_window_inverted_bounds_is_empty():
    sim = Simulator()
    for i in range(3):
        sim.schedule(float(i), named_callback)
    with TraceRecorder(sim) as trace:
        sim.run()
    assert trace.window(2.0, 1.0) == []


def test_window_bounds_are_inclusive():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), named_callback)
    with TraceRecorder(sim) as trace:
        sim.run()
    assert [e.time for e in trace.window(1.0, 3.0)] == [1.0, 2.0, 3.0]


def test_capacity_eviction_keeps_the_newest_and_counts_drops():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i), named_callback)
    trace = TraceRecorder(sim, capacity=4).install()
    sim.run()
    assert len(trace) == 4
    assert trace.dropped == 6
    # The ring buffer holds the newest events; the old ones left the window.
    assert [e.time for e in trace.entries] == [6.0, 7.0, 8.0, 9.0]
    assert trace.window(0.0, 5.0) == []
