"""Property-based tests on the streaming dispatcher's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import ExecutionTimeModel
from repro.extensions.streaming import (
    StreamingDispatcher,
    StreamingPlanner,
    StreamingPolicy,
)
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import XAPIAN

EXEC = ExecutionTimeModel(
    coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
)


@given(
    degree=st.integers(min_value=1, max_value=20),
    timeout=st.floats(min_value=0.0, max_value=30.0),
    rate=st.floats(min_value=0.1, max_value=50.0),
    n=st.integers(min_value=1, max_value=150),
)
@settings(max_examples=40, deadline=None)
def test_streaming_conservation_and_bounds(degree, timeout, rate, n):
    dispatcher = StreamingDispatcher(AWS_LAMBDA, XAPIAN, EXEC, seed=171)
    policy = StreamingPolicy(degree=degree, batch_timeout_s=timeout)
    result = dispatcher.run(policy, rate, n)
    # Every request served exactly once.
    assert len(result.sojourn_times) == n
    assert sum(result.batch_sizes) == n
    # No batch exceeds the policy degree; no empty batches.
    assert all(1 <= b <= degree for b in result.batch_sizes)
    # Sojourn is at least the (noise-adjusted) solo execution time.
    assert min(result.sojourn_times) > EXEC.predict(1) * 0.9
    # Billing is positive and bounded by worst-case instance time.
    assert result.billed_gb_seconds > 0


@given(
    rate=st.floats(min_value=0.2, max_value=64.0),
    qos=st.floats(min_value=14.0, max_value=200.0),
)
@settings(max_examples=40, deadline=None)
def test_planner_policies_always_respect_structure(rate, qos):
    planner = StreamingPlanner(AWS_LAMBDA, XAPIAN, EXEC)
    policy = planner.plan(arrival_rate_per_s=rate, qos_sojourn_s=qos)
    assert policy.degree >= 1
    assert policy.batch_timeout_s >= 0.0
    # The structural guarantee: timeout + inflated ET fits the budget.
    if policy.degree > 1:
        assert (
            policy.batch_timeout_s + EXEC.predict(policy.degree) * 1.05
            <= qos * 0.88 + 1e-6
        )
