"""Tests for fitted-model persistence."""

import json

import pytest

from repro.core.persistence import load_models, save_models
from repro.core.propack import ProPack
from repro.platform.base import ServerlessPlatform
from repro.platform.providers import AWS_LAMBDA, GOOGLE_CLOUD_FUNCTIONS
from repro.workloads import SORT, VIDEO


@pytest.fixture()
def fitted(tmp_path):
    platform = ServerlessPlatform(AWS_LAMBDA, seed=191)
    propack = ProPack(platform)
    propack.interference_profile(SORT)
    propack.interference_profile(VIDEO)
    propack.scaling_profile()
    path = tmp_path / "models.json"
    save_models(propack, path)
    return propack, path


def test_roundtrip_preserves_models(fitted):
    original, path = fitted
    fresh = ProPack(ServerlessPlatform(AWS_LAMBDA, seed=999))
    load_models(fresh, path)
    for app in (SORT, VIDEO):
        a = original.exec_model(app)
        b = fresh.exec_model(app)
        assert a.coeff_a == b.coeff_a and a.coeff_b == b.coeff_b
    assert original.scaling_model().beta1 == fresh.scaling_model().beta1


def test_loaded_models_plan_without_profiling(fitted):
    original, path = fitted
    fresh_platform = ServerlessPlatform(AWS_LAMBDA, seed=999)
    fresh = ProPack(fresh_platform)
    load_models(fresh, path)
    plan, _ = fresh.plan(SORT, 2000)
    expected, _ = original.plan(SORT, 2000)
    assert plan.degree == expected.degree
    # No profiling overhead was incurred by the fresh instance's plan: the
    # loaded profile carries the *original* overhead accounting.
    assert fresh.interference_profile(SORT).overhead_usd == pytest.approx(
        original.interference_profile(SORT).overhead_usd
    )


def test_wrong_platform_rejected(fitted):
    _, path = fitted
    gcf = ProPack(ServerlessPlatform(GOOGLE_CLOUD_FUNCTIONS, seed=1))
    with pytest.raises(ValueError, match="re-profile"):
        load_models(gcf, path)


def test_wrong_version_rejected(fitted, tmp_path):
    _, path = fitted
    document = json.loads(path.read_text())
    document["format_version"] = 99
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(document))
    fresh = ProPack(ServerlessPlatform(AWS_LAMBDA, seed=1))
    with pytest.raises(ValueError, match="version"):
        load_models(fresh, bad)


def test_save_without_scaling_profile(tmp_path):
    propack = ProPack(ServerlessPlatform(AWS_LAMBDA, seed=5))
    propack.interference_profile(SORT)
    path = tmp_path / "partial.json"
    save_models(propack, path)
    fresh = ProPack(ServerlessPlatform(AWS_LAMBDA, seed=6))
    load_models(fresh, path)
    assert fresh._scaling_profile is None
    assert "sort" in fresh._interference_cache


def test_document_is_human_readable(fitted):
    _, path = fitted
    document = json.loads(path.read_text())
    assert document["platform"] == "aws-lambda"
    assert set(document["interference"]) == {"sort", "video"}
    assert "beta1" in document["scaling"]["model"]
