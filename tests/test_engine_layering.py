"""Import-layering gate: ``repro.engine`` never imports its consumers.

The engine is the bottom of the dispatch stack (docs/ARCHITECTURE.md):
``serving``, ``extensions``, ``resilience``, ``remediation``, and the
``harness`` campaign runner build on it, so an engine → consumer import
would be a cycle waiting to happen and
would let consumer semantics leak into the shared lifecycle. Checked two
ways: statically (AST scan of every engine module, which also catches
imports hidden inside functions) and dynamically (importing
``repro.engine`` in a clean interpreter must not load any consumer
module).
"""

import ast
import os
import pathlib
import subprocess
import sys

import repro.engine

FORBIDDEN = (
    "repro.serving",
    "repro.extensions",
    "repro.resilience",
    "repro.remediation",
    "repro.harness",
    "repro.chaos",
    "repro.fusion",
)

ENGINE_DIR = pathlib.Path(repro.engine.__file__).parent

#: repro.chaos sits at the very top of the stack (it drives serving,
#: resilience, remediation, telemetry, and the harness as black boxes), so
#: no lower layer may import it — not even lazily inside a function.
CHAOS_LOWER_LAYERS = (
    "core", "engine", "platform", "workloads", "faults", "serving",
    "extensions", "resilience", "remediation", "telemetry", "harness",
)

#: repro.fusion is a top-band peer of repro.chaos: it drives the core
#: optimizer, the interference models, the mixed-app engine path, and the
#: harness as black boxes. No lower layer may import it, and the two
#: top-band peers stay mutually import-free.
FUSION_LOWER_LAYERS = CHAOS_LOWER_LAYERS + ("interference", "chaos")


def _imported_modules(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            yield node.module


def test_engine_modules_have_no_consumer_imports():
    offenders = []
    for path in sorted(ENGINE_DIR.glob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for module in _imported_modules(tree):
            if module.startswith(FORBIDDEN):
                offenders.append(f"{path.name}: {module}")
    assert not offenders, (
        "repro.engine must not import serving/extensions/resilience "
        f"(see docs/ARCHITECTURE.md): {offenders}"
    )


def test_no_lower_layer_imports_chaos():
    src_root = ENGINE_DIR.parent
    offenders = []
    for layer in CHAOS_LOWER_LAYERS:
        layer_dir = src_root / layer
        if not layer_dir.is_dir():
            continue
        for path in sorted(layer_dir.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for module in _imported_modules(tree):
                if module == "repro.chaos" or module.startswith("repro.chaos."):
                    offenders.append(f"{path.relative_to(src_root)}: {module}")
    assert not offenders, (
        "repro.chaos is the top of the stack; lower layers must not "
        f"import it (see docs/ARCHITECTURE.md): {offenders}"
    )


def test_no_lower_layer_imports_fusion():
    src_root = ENGINE_DIR.parent
    offenders = []
    for layer in FUSION_LOWER_LAYERS:
        layer_dir = src_root / layer
        if not layer_dir.is_dir():
            continue
        for path in sorted(layer_dir.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for module in _imported_modules(tree):
                if module == "repro.fusion" or module.startswith("repro.fusion."):
                    offenders.append(f"{path.relative_to(src_root)}: {module}")
    assert not offenders, (
        "repro.fusion is a top-band peer of repro.chaos; lower layers must "
        f"not import it (see docs/ARCHITECTURE.md): {offenders}"
    )


def test_fusion_does_not_import_chaos():
    # The two top-band subsystems are peers: fusion promotes its fairness
    # invariants *into* chaos.invariants (chaos stays duck-typed), so an
    # import in either direction would collapse the band into a cycle.
    src_root = ENGINE_DIR.parent
    offenders = []
    for path in sorted((src_root / "fusion").rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for module in _imported_modules(tree):
            if module == "repro.chaos" or module.startswith("repro.chaos."):
                offenders.append(f"{path.relative_to(src_root)}: {module}")
    assert not offenders, (
        f"repro.fusion and repro.chaos are peers: {offenders}"
    )


def test_importing_engine_loads_no_consumer_module():
    # The top-level ``repro`` package eagerly re-exports every subsystem,
    # so a plain ``import repro.engine`` would load consumers through
    # ``repro/__init__`` regardless of the engine's own imports. Stub the
    # parent package to measure only the engine's transitive closure.
    # ``repro.platform`` (an allowed dependency) is imported first: its
    # ``invoker`` module is a facade over ``repro.engine.burst``, so the
    # two packages must initialize in that order, as they do under the
    # real ``repro/__init__``.
    code = (
        "import sys, types\n"
        "pkg = types.ModuleType('repro')\n"
        f"pkg.__path__ = [{str(ENGINE_DIR.parent)!r}]\n"
        "sys.modules['repro'] = pkg\n"
        "import repro.platform\n"
        "import repro.engine\n"
        "bad = [m for m in sys.modules if m.startswith("
        f"{FORBIDDEN!r})]\n"
        "print('\\n'.join(bad))\n"
        "raise SystemExit(1 if bad else 0)\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(ENGINE_DIR.parent.parent)},
    )
    assert proc.returncode == 0, (
        f"importing repro.engine loaded consumer modules:\n{proc.stdout}"
    )
