"""Property-based tests for the auto-remediation loop.

Two invariants, held across the sampled parameter space:

1. **Conservation** — a remediated serving run accounts for every request
   exactly (``arrivals == completed + shed + failed``), no matter which
   actions the loop applies or rolls back mid-run; and
2. **Byte-determinism** — running the same seeded day twice with the loop
   enabled produces bit-identical serving results *and* bit-identical
   remediation timelines: the loop draws nothing from the live RNG
   (shadow seeds come from the fork seam, which consumes no draws).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import assert_serving_invariants
from repro.core.models import ExecutionTimeModel
from repro.extensions.streaming import StreamingPolicy
from repro.faults.retry import ExponentialBackoffRetry
from repro.faults.scenario import FaultScenario
from repro.platform.providers import GOOGLE_CLOUD_FUNCTIONS
from repro.remediation import RemediationConfig, RemediationLoop
from repro.resilience import (
    CircuitBreakerBank,
    ConcurrencyLimitAdmission,
    ResiliencePolicy,
)
from repro.serving import (
    FixedTTL,
    PoissonProcess,
    ServingConfig,
    ServingSimulator,
    WarmPool,
)
from repro.workloads import XAPIAN

EXEC_MODEL = ExecutionTimeModel(
    coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
)


def _run_once(seed, rate, degree, crash_rate, limit, verify):
    config = ServingConfig(qos_sojourn_s=45.0)
    scenario = FaultScenario(
        name="prop-storm",
        crash_rate=crash_rate,
        correlated_bursts=1,
        correlated_fraction=0.5,
        correlated_window_s=90.0,
        persistent_fraction=0.5,
        poison_heal_s=300.0,
    )
    loop = RemediationLoop(RemediationConfig(
        tick_interval_s=60.0,
        shadow_horizon_s=60.0,
        cooldown_s=120.0,
        verify=verify,
    ))
    sim = ServingSimulator(
        GOOGLE_CLOUD_FUNCTIONS,
        XAPIAN,
        EXEC_MODEL,
        pool=WarmPool(FixedTTL(90.0)),
        config=config,
        resilience=ResiliencePolicy(
            admission=ConcurrencyLimitAdmission(limit=limit),
            breakers=CircuitBreakerBank(
                n_domains=config.fault_domains,
                rng=np.random.default_rng(seed),
                failure_threshold=4,
                recovery_s=45.0,
            ),
        ),
        scenario=scenario,
        retry_policy=ExponentialBackoffRetry(max_retries=2),
        seed=seed,
        remediation=loop,
    )
    return sim.run(
        PoissonProcess(rate),
        StreamingPolicy(degree=degree, batch_timeout_s=2.0),
        600.0,
    )


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    rate=st.floats(min_value=0.5, max_value=3.0),
    degree=st.integers(min_value=1, max_value=8),
    crash_rate=st.floats(min_value=0.0, max_value=0.25),
    limit=st.integers(min_value=8, max_value=96),
    verify=st.booleans(),
)
@settings(max_examples=10, deadline=None)
def test_remediated_runs_conserve_requests_exactly(
    seed, rate, degree, crash_rate, limit, verify
):
    run = _run_once(seed, rate, degree, crash_rate, limit, verify)
    assert_serving_invariants(run)
    assert run.n_requests == run.n_completed + run.n_shed + run.n_failed
    assert run.remediation is not None
    assert run.remediation.n_applied <= len(run.remediation.proposals)


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    crash_rate=st.floats(min_value=0.02, max_value=0.2),
)
@settings(max_examples=6, deadline=None)
def test_remediated_run_byte_identical_per_seed(seed, crash_rate):
    first = _run_once(seed, 1.5, 4, crash_rate, 48, True)
    second = _run_once(seed, 1.5, 4, crash_rate, 48, True)
    assert first.signature() == second.signature()
    assert first.remediation.signature() == second.remediation.signature()
    assert first.expense.total_usd == second.expense.total_usd
