"""Failure-aware planning: expected-value math, the planner's degree
back-off under failures, the adaptive controller, and provider-specific
retry billing (egress re-pay).
"""

import math

import pytest

from repro.baselines import compare_failure_awareness
from repro.core.models import ExecutionTimeModel, ScalingTimeModel
from repro.core.optimizer import ExpenseModel, ServiceTimeModel
from repro.core.propack import ProPack
from repro.core.reliability import FailurePenalty
from repro.extensions import FailureAdaptiveProPack
from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.providers import (
    AWS_LAMBDA,
    AZURE_FUNCTIONS,
    GOOGLE_CLOUD_FUNCTIONS,
)
from repro.workloads import SORT


# --------------------------------------------------------------------- #
# FailurePenalty closed forms
# --------------------------------------------------------------------- #

def test_zero_failure_rate_is_free():
    p = FailurePenalty(failure_rate=0.0, max_retries=3)
    assert p.success_probability == 1.0
    assert p.expected_attempts() == 1.0
    assert p.expected_failures() == 0.0
    assert p.expected_billed_multiplier() == pytest.approx(1.0)
    assert p.expected_tail_retries(1000) == 0.0
    assert p.expected_work_loss_ratio() == 0.0


def test_expected_attempts_geometric_series():
    q, r = 0.2, 2
    p = FailurePenalty(failure_rate=q, max_retries=r)
    # E[A] = sum_{k=0..r} q^k  (one attempt plus one per prior failure)
    assert p.expected_attempts() == pytest.approx(1 + q + q**2)
    assert p.expected_failures() == pytest.approx(q * (1 + q + q**2))
    assert p.success_probability == pytest.approx(1 - q**3)


def test_billed_multiplier_charges_half_per_failure():
    p = FailurePenalty(failure_rate=0.3, max_retries=4)
    expected = p.success_probability + 0.5 * p.expected_failures()
    assert p.expected_billed_multiplier() == pytest.approx(expected)


def test_expected_max_attempts_grows_with_group_count():
    p = FailurePenalty(failure_rate=0.1, max_retries=3)
    small = p.expected_max_attempts(10)
    large = p.expected_max_attempts(10_000)
    assert 1.0 < small < large <= p.max_retries + 1
    # Closed form: E[max] = 1 + sum_k (1 - (1 - q^k)^N)
    manual = 1.0 + sum(1.0 - (1.0 - 0.1**k) ** 10 for k in range(1, 4))
    assert p.expected_max_attempts(10) == pytest.approx(manual)


def test_work_loss_ratio_bounds():
    p = FailurePenalty(failure_rate=0.25, max_retries=2)
    assert 0.0 < p.expected_work_loss_ratio() < 1.0


def test_penalty_validates():
    with pytest.raises(ValueError):
        FailurePenalty(failure_rate=1.0, max_retries=1)
    with pytest.raises(ValueError):
        FailurePenalty(failure_rate=0.1, max_retries=-1)
    with pytest.raises(ValueError):
        FailurePenalty(failure_rate=0.1, max_retries=1, retry_overhead_s=-1.0)


def test_from_profile_uses_reliability_coefficients():
    profile = AWS_LAMBDA.with_overrides(name="x", failure_rate=0.15)
    p = FailurePenalty.from_profile(profile)
    assert p.failure_rate == 0.15
    assert p.max_retries == profile.max_retries
    assert p.retry_overhead_s == pytest.approx(
        profile.sched_base_s + profile.build_base_s
    )


# --------------------------------------------------------------------- #
# Analytical planner back-off (acceptance criterion)
# --------------------------------------------------------------------- #

EXEC = ExecutionTimeModel(coeff_a=80.0, coeff_b=0.05, mem_gb=0.5)
SCALING = ScalingTimeModel(beta1=4e-5, beta2=0.02, beta3=2.0)


def optimal_service_degree(failure, concurrency=3000, max_degree=14):
    model = ServiceTimeModel(EXEC, SCALING, concurrency, failure)
    degrees = range(1, max_degree + 1)
    return min(degrees, key=lambda d: model.predict(d))


def test_failure_aware_service_model_prefers_lower_degree():
    blind = optimal_service_degree(None)
    aware = optimal_service_degree(
        FailurePenalty(failure_rate=0.3, max_retries=2, retry_overhead_s=5.0)
    )
    assert aware < blind  # strictly lower packing under heavy failures


def test_back_off_grows_with_failure_rate():
    degrees = [
        optimal_service_degree(
            FailurePenalty(failure_rate=q, max_retries=2, retry_overhead_s=5.0)
        )
        for q in (0.0, 0.1, 0.2, 0.3)
    ]
    assert degrees == sorted(degrees, reverse=True)
    assert degrees[-1] < degrees[0]


def test_failure_raises_predicted_service_and_expense():
    penalty = FailurePenalty(failure_rate=0.2, max_retries=2, retry_overhead_s=5.0)
    blind_s = ServiceTimeModel(EXEC, SCALING, 3000)
    aware_s = ServiceTimeModel(EXEC, SCALING, 3000, penalty)
    blind_e = ExpenseModel(EXEC, AWS_LAMBDA, SORT, 3000)
    aware_e = ExpenseModel(EXEC, AWS_LAMBDA, SORT, 3000, failure=penalty)
    for degree in (1, 4, 8):
        assert aware_s.predict(degree) > blind_s.predict(degree)
        assert aware_e.predict(degree) > blind_e.predict(degree)


def test_expected_retries_scale_expense_components():
    penalty = FailurePenalty(failure_rate=0.2, max_retries=2)
    blind = ExpenseModel(EXEC, GOOGLE_CLOUD_FUNCTIONS, SORT, 1000)
    aware = ExpenseModel(EXEC, GOOGLE_CLOUD_FUNCTIONS, SORT, 1000, failure=penalty)
    # The inflation stays below the expected-attempts multiplier (PUTs are
    # not re-paid) but is strictly positive on an egress-charging provider.
    ratio = aware.predict(4) / blind.predict(4)
    assert 1.0 < ratio < penalty.expected_attempts()


# --------------------------------------------------------------------- #
# End-to-end planner integration
# --------------------------------------------------------------------- #

def test_planner_backs_off_on_flaky_platform():
    profile = AWS_LAMBDA.with_overrides(name="flaky", failure_rate=0.3)
    platform = ServerlessPlatform(profile, seed=42)
    comparison = compare_failure_awareness(platform, SORT, concurrency=2000)
    assert comparison.degree_reduction >= 1  # strictly lower degree
    assert comparison.aware.plan.degree < comparison.blind.plan.degree


def test_failure_aware_plan_is_noop_on_reliable_platform():
    platform = ServerlessPlatform(AWS_LAMBDA, seed=42)
    propack = ProPack(platform)
    blind, _ = propack.plan(SORT, 2000)
    aware, _ = propack.plan(SORT, 2000, failure_aware=True)
    assert aware.degree == blind.degree


def test_explicit_penalty_overrides_profile():
    platform = ServerlessPlatform(AWS_LAMBDA, seed=42)
    propack = ProPack(platform)
    blind, _ = propack.plan(SORT, 2000, objective="service")
    harsh = FailurePenalty(failure_rate=0.35, max_retries=2, retry_overhead_s=10.0)
    aware, _ = propack.plan(SORT, 2000, objective="service", failure=harsh)
    assert aware.degree < blind.degree


# --------------------------------------------------------------------- #
# Adaptive controller
# --------------------------------------------------------------------- #

def test_controller_degrades_under_sustained_failures():
    profile = AWS_LAMBDA.with_overrides(name="storm", failure_rate=0.3)
    platform = ServerlessPlatform(profile, seed=42)
    controller = FailureAdaptiveProPack(platform, threshold=0.1, window=2)
    degrees = [controller.run(SORT, 1000).plan.degree for _ in range(4)]
    assert controller.degrade_steps >= 2
    assert degrees[-1] < degrees[0]
    assert degrees == sorted(degrees, reverse=True)
    assert degrees[-1] <= math.ceil(degrees[0] * 0.5)


def test_controller_recovers_when_calm():
    platform = ServerlessPlatform(AWS_LAMBDA, seed=42)
    controller = FailureAdaptiveProPack(platform, threshold=0.1, window=2)
    controller._degrade_steps = 2  # pretend a storm just passed
    first = controller.run(SORT, 1000).plan.degree
    for _ in range(3):
        last = controller.run(SORT, 1000).plan.degree
    assert controller.degrade_steps == 0
    assert last > first


def test_controller_validates():
    platform = ServerlessPlatform(AWS_LAMBDA, seed=1)
    with pytest.raises(ValueError):
        FailureAdaptiveProPack(platform, threshold=0.0)
    with pytest.raises(ValueError):
        FailureAdaptiveProPack(platform, degrade_factor=1.0)


# --------------------------------------------------------------------- #
# Retries re-pay egress (provider billing satellite)
# --------------------------------------------------------------------- #

def flaky_delta(provider, seed=33, concurrency=300):
    """Expense deltas (flaky − clean) for one provider, same seed."""
    spec = BurstSpec(app=SORT, concurrency=concurrency, packing_degree=4)
    clean = ServerlessPlatform(provider, seed=seed).run_burst(spec, repetition=0)
    flaky_profile = provider.with_overrides(
        name=f"{provider.name}-flaky", failure_rate=0.2
    )
    flaky = ServerlessPlatform(flaky_profile, seed=seed).run_burst(spec, repetition=0)
    assert flaky.n_failed_attempts > 0
    return flaky.expense, clean.expense


@pytest.mark.parametrize("provider", [GOOGLE_CLOUD_FUNCTIONS, AZURE_FUNCTIONS])
def test_retries_repay_egress_on_charging_providers(provider):
    flaky, clean = flaky_delta(provider)
    # Failed attempts fetched their inputs before dying; the retry fetches
    # them again, and every transferred GB is billed.
    assert flaky.egress_usd > clean.egress_usd
    assert flaky.storage_usd > clean.storage_usd  # GETs re-paid too


def test_aws_charges_no_egress_for_retries():
    flaky, clean = flaky_delta(AWS_LAMBDA)
    assert clean.egress_usd == 0.0
    assert flaky.egress_usd == 0.0  # same-region traffic is free on Lambda
    assert flaky.storage_usd > clean.storage_usd


def test_flaky_burst_premium_is_larger_on_egress_charging_providers():
    """The same failure storm costs strictly more on GCF/Azure than on AWS
    once compute-price differences are normalized away: the egress line
    item re-pays per-GB transfer on every retried attempt."""
    for provider in (GOOGLE_CLOUD_FUNCTIONS, AZURE_FUNCTIONS):
        flaky, clean = flaky_delta(provider)
        egress_premium = flaky.egress_usd - clean.egress_usd
        assert egress_premium > 0.0
    aws_flaky, aws_clean = flaky_delta(AWS_LAMBDA)
    assert aws_flaky.egress_usd - aws_clean.egress_usd == 0.0
