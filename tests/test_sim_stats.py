"""Tests for percentile and summary-statistics helpers."""

import pytest

from repro.sim.stats import percentile, relative_spread, summarize


def test_percentile_is_order_statistic():
    values = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]
    assert percentile(values, 0.5) == 50.0    # ceil(0.5*10)=5th value
    assert percentile(values, 0.95) == 100.0  # ceil(0.95*10)=10th value
    assert percentile(values, 1.0) == 100.0


def test_percentile_unsorted_input():
    assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0


def test_percentile_matches_paper_semantics():
    """'First 95% of instances complete' = 95th order statistic."""
    values = list(range(1, 101))
    assert percentile(values, 0.95) == 95


def test_percentile_single_value():
    assert percentile([7.0], 0.5) == 7.0


def test_percentile_rejects_bad_fraction():
    with pytest.raises(ValueError):
        percentile([1.0], 0.0)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_percentile_rejects_empty():
    with pytest.raises(ValueError):
        percentile([], 0.5)


def test_summarize_basic_fields():
    stats = summarize([1.0, 2.0, 3.0, 4.0])
    assert stats.count == 4
    assert stats.mean == pytest.approx(2.5)
    assert stats.minimum == 1.0
    assert stats.maximum == 4.0
    assert stats.median == 2.0


def test_summarize_rejects_empty():
    with pytest.raises(ValueError):
        summarize([])


def test_relative_spread_constant_series_is_zero():
    assert relative_spread([5.0, 5.0, 5.0]) == 0.0


def test_relative_spread_value():
    assert relative_spread([90.0, 100.0, 110.0]) == pytest.approx(0.2)


def test_relative_spread_rejects_empty():
    with pytest.raises(ValueError):
        relative_spread([])


# --------------------------------------------------------------------- #
# Percentile edge cases
# --------------------------------------------------------------------- #

def test_percentile_single_element_any_fraction():
    # With one value, every fraction's ceil-rank is 1: always that value.
    for fraction in (0.01, 0.5, 0.95, 1.0):
        assert percentile([42.0], fraction) == 42.0


def test_percentile_fraction_one_is_the_maximum():
    assert percentile([5.0, 1.0, 3.0], 1.0) == 5.0
    assert percentile(list(range(1000)), 1.0) == 999


def test_percentile_with_ties():
    # Ties collapse ranks onto the same value; no interpolation happens.
    values = [1.0, 2.0, 2.0, 2.0, 3.0]
    assert percentile(values, 0.4) == 2.0   # ceil(0.4*5)=2nd
    assert percentile(values, 0.8) == 2.0   # ceil(0.8*5)=4th
    assert percentile(values, 1.0) == 3.0


def test_percentile_all_tied():
    assert percentile([7.0] * 10, 0.5) == 7.0
    assert percentile([7.0] * 10, 1.0) == 7.0


def test_percentile_tiny_fraction_is_first_order_statistic():
    assert percentile([10.0, 20.0, 30.0], 1e-9) == 10.0
