"""Warm-reuse parity across subsystems (property-based).

The burst invoker's wave-mode reuse and the serving layer's WarmPool hits
must give a warm dispatch the same treatment, because both route it
through the engine's :class:`~repro.engine.DispatchCosts`: a warm start
pays exactly the warm dispatch latency (no placement, no cold pipeline)
and is billed for execution seconds only — never the cold-init surcharge.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import ExecutionTimeModel
from repro.engine import DispatchCosts
from repro.extensions.streaming import StreamingPolicy
from repro.platform.base import ServerlessPlatform
from repro.platform.billing import BillingModel
from repro.platform.invoker import BurstSpec
from repro.platform.providers import AWS_LAMBDA
from repro.serving import FixedTTL, PoissonProcess, ServingSimulator, WarmPool
from repro.serving.service import ServingConfig, _ServingRun
from repro.workloads import STATELESS_COST, XAPIAN

EXEC = ExecutionTimeModel(
    coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
)
POLICY = StreamingPolicy(degree=6, batch_timeout_s=4.0)

finite = {"allow_nan": False, "allow_infinity": False}


@given(
    cold=st.floats(min_value=0.0, max_value=30.0, **finite),
    warm=st.floats(min_value=0.0, max_value=1.0, **finite),
    init=st.floats(min_value=0.0, max_value=10.0, **finite),
    exec_s=st.floats(min_value=0.0, max_value=900.0, **finite),
)
@settings(max_examples=60, deadline=None)
def test_shared_warm_treatment(cold, warm, init, exec_s):
    """The kernel-level contract both subsystems inherit."""
    costs = DispatchCosts(cold, warm, init)
    assert costs.start_latency(warm=True) == warm
    assert costs.start_latency(warm=False) == cold
    assert costs.billed_seconds(exec_s, warm=True) == exec_s
    assert costs.billed_seconds(exec_s, warm=False) == exec_s + init


@given(
    concurrency=st.integers(min_value=8, max_value=120),
    degree=st.integers(min_value=1, max_value=6),
    wave=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_wave_reuse_follows_shared_warm_treatment(concurrency, degree, wave):
    platform = ServerlessPlatform(AWS_LAMBDA, seed=77)
    spec = BurstSpec(
        app=STATELESS_COST,
        concurrency=concurrency,
        packing_degree=degree,
        wave_size=wave,
    )
    result = platform.run_burst(spec, repetition=0)
    costs = DispatchCosts(
        cold_start_s=0.0, warm_dispatch_s=spec.warm_dispatch_s
    )
    billing = BillingModel(AWS_LAMBDA)
    warm_records = [r for r in result.records if r.warm_start]
    if -(-concurrency // degree) > wave:
        assert warm_records, "wave smaller than instance count must reuse"
    for r in warm_records:
        # No placement, no cold pipeline: dispatch is the warm latency.
        assert r.sched_done == r.invoked_at
        assert r.built_at == r.shipped_at == r.exec_start
        assert r.exec_start == r.invoked_at + costs.start_latency(warm=True)
        # Billed for execution only — identical to the serving warm path.
        billed_gb = billing.billed_memory_mb(r.provisioned_mb) / 1024.0
        expected = (
            costs.billed_seconds(r.exec_seconds, warm=True)
            * billed_gb
            * AWS_LAMBDA.gb_second_usd
        )
        assert billing.instance_compute_usd(r) == expected


@given(
    cold=st.floats(min_value=0.0, max_value=30.0, **finite),
    warm=st.floats(min_value=0.0, max_value=1.0, **finite),
    init=st.floats(min_value=0.0, max_value=10.0, **finite),
)
@settings(max_examples=25, deadline=None)
def test_warmpool_hits_use_engine_dispatch_costs(cold, warm, init):
    """Serving derives its warm-vs-cold split from the same DispatchCosts."""
    cfg = ServingConfig(
        cold_start_s=cold, warm_dispatch_s=warm, cold_init_billed_s=init
    )
    simulator = ServingSimulator(
        AWS_LAMBDA,
        XAPIAN,
        EXEC,
        pool=WarmPool(FixedTTL(60.0)),
        config=cfg,
        seed=3,
    )
    run = _ServingRun(simulator, PoissonProcess(1.0), POLICY, 60.0, 0)
    assert run.costs == DispatchCosts(cold, warm, init)
    assert run.costs.start_latency(warm=True) == cfg.warm_dispatch_s
    assert run.costs.billed_seconds(5.0, warm=True) == 5.0
