"""Property-based tests on the analytical models and optimizer invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.models import ExecutionTimeModel, ScalingTimeModel
from repro.core.optimizer import PackingOptimizer, instance_layout
from repro.core.validation import chi_square_statistic
from repro.platform.providers import AWS_LAMBDA
from repro.workloads.synthetic import make_synthetic


@given(
    a=st.floats(min_value=1.0, max_value=500.0),
    b=st.floats(min_value=0.001, max_value=0.3),
)
@settings(max_examples=100, deadline=None)
def test_exec_fit_recovers_exact_parameters(a, b):
    """Log-linear LSQ must exactly recover a noiseless exponential."""
    degrees = list(range(1, 21))
    times = [a * np.exp(b * d) for d in degrees]
    model = ExecutionTimeModel.fit(degrees, times, mem_gb=1.0)
    assert abs(model.coeff_a - a) / a < 1e-6
    assert abs(model.coeff_b - b) < 1e-9


@given(
    b1=st.floats(min_value=1e-6, max_value=1e-3),
    b2=st.floats(min_value=0.0, max_value=0.5),
    b3=st.floats(min_value=-10.0, max_value=10.0),
)
@settings(max_examples=100, deadline=None)
def test_scaling_fit_recovers_exact_parameters(b1, b2, b3):
    cs = [50, 100, 400, 1000, 2500, 5000]
    scaling = [b1 * c**2 + b2 * c - b3 for c in cs]
    model = ScalingTimeModel.fit(cs, scaling)
    assert abs(model.beta1 - b1) < 1e-9 + 1e-4 * abs(b1)
    assert abs(model.beta2 - b2) < 1e-6
    assert abs(model.beta3 - b3) < 1e-4


@given(
    concurrency=st.integers(min_value=1, max_value=10_000),
    degree=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=200, deadline=None)
def test_instance_layout_conserves_functions(concurrency, degree):
    assume(degree <= concurrency)
    layout = instance_layout(concurrency, degree)
    assert sum(count * packed for count, packed in layout) == concurrency
    assert all(1 <= packed <= degree for _, packed in layout)
    assert sum(count for count, _ in layout) == -(-concurrency // degree)


@given(
    pressure=st.floats(min_value=0.01, max_value=0.4),
    mem_mb=st.integers(min_value=128, max_value=4096),
    base=st.floats(min_value=5.0, max_value=200.0),
    concurrency=st.integers(min_value=10, max_value=6000),
    w_s=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_optimizer_invariants(pressure, mem_mb, base, concurrency, w_s):
    """Joint optimum is bracketed by the single-objective optima; all
    chosen degrees are feasible."""
    app = make_synthetic(
        base_seconds=base, mem_mb=mem_mb, pressure_per_gb=pressure
    )
    exec_model = ExecutionTimeModel(
        coeff_a=base, coeff_b=pressure * mem_mb / 1024.0, mem_gb=mem_mb / 1024.0
    )
    scaling = ScalingTimeModel(beta1=8e-5, beta2=0.005, beta3=2.0)
    opt = PackingOptimizer(
        exec_model=exec_model,
        scaling_model=scaling,
        app=app,
        profile=AWS_LAMBDA,
        concurrency=concurrency,
    )
    max_degree = opt.max_degree()
    s = opt.optimal_service()
    e = opt.optimal_expense()
    j = opt.optimal_joint(w_s=w_s)
    for d in (s, e, j):
        assert 1 <= d <= max_degree
    assert min(s, e) <= j <= max(s, e)


@given(
    st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=30)
)
@settings(max_examples=100, deadline=None)
def test_chi_square_nonnegative_and_zero_iff_equal(values):
    assert chi_square_statistic(values, values) == 0.0
    shifted = [v * 1.1 for v in values]
    assert chi_square_statistic(shifted, values) > 0.0


@given(
    degree=st.integers(min_value=1, max_value=60),
    bound=st.floats(min_value=10.0, max_value=5000.0),
)
@settings(max_examples=100, deadline=None)
def test_max_degree_within_is_maximal(degree, bound):
    model = ExecutionTimeModel(coeff_a=8.0, coeff_b=0.05, mem_gb=1.0)
    cap = model.max_degree_within(bound)
    assert model.predict(cap) <= bound or cap == 1
    if cap > 1:
        assert model.predict(cap + 1) > bound
