"""Unit tests for the shared invariant library (:mod:`repro.chaos.invariants`).

The planted-bug tests are the acceptance criterion: each check must catch
a deliberately corrupted input that the legacy inline asserts would have
missed (a dropped expense line item, an illegal breaker edge, an orphan
rollback), while passing clean on honest data.
"""

import pytest

from repro.chaos import (
    Violation,
    assert_serving_invariants,
    check_admission_conservation,
    check_billed_vs_executed,
    check_breaker_transitions,
    check_expense_breakdown,
    check_monotonic_times,
    check_remediation_pairing,
    check_request_conservation,
    check_span_nesting,
    check_tenant_billing_attribution,
    check_tenant_conservation,
)
from repro.platform.metrics import ExpenseBreakdown


class _Stub:
    def __init__(self, **kw):
        self.__dict__.update(kw)


# --------------------------------------------------------------------- #
# conservation
# --------------------------------------------------------------------- #
def test_admission_conservation_clean_and_broken():
    assert check_admission_conservation(_Stub(arrivals=10, admitted=7, shed=3)) == []
    broken = check_admission_conservation(_Stub(arrivals=10, admitted=7, shed=2))
    assert [v.invariant for v in broken] == ["admission-conservation"]


def test_request_conservation_clean_and_broken():
    clean = _Stub(n_requests=10, n_completed=6, n_shed=3, n_failed=1)
    assert check_request_conservation(clean) == []
    lost = _Stub(n_requests=10, n_completed=6, n_shed=3, n_failed=0)
    assert [v.invariant for v in check_request_conservation(lost)] == [
        "request-conservation"
    ]


# --------------------------------------------------------------------- #
# billing
# --------------------------------------------------------------------- #
def test_expense_breakdown_accepts_honest_ledger():
    expense = ExpenseBreakdown(
        compute_usd=1.0, requests_usd=0.2, storage_usd=0.05,
        egress_usd=0.1, keepalive_usd=0.3,
    )
    assert check_expense_breakdown(expense) == []
    assert check_expense_breakdown(expense, reported_total=expense.total_usd) == []


def test_expense_breakdown_catches_planted_accounting_bug():
    """The planted bug: a reported total that silently dropped the
    keepalive line item — exactly the class of error a refactor of the
    expense ledger could introduce."""
    expense = ExpenseBreakdown(
        compute_usd=1.0, requests_usd=0.2, storage_usd=0.05,
        egress_usd=0.1, keepalive_usd=0.3,
    )
    buggy_total = expense.total_usd - expense.keepalive_usd
    violations = check_expense_breakdown(expense, reported_total=buggy_total)
    assert [v.invariant for v in violations] == ["expense-breakdown"]
    assert "component sum" in violations[0].message


def test_expense_breakdown_rejects_negative_and_nonfinite_components():
    bad = ExpenseBreakdown(
        compute_usd=-0.5, requests_usd=float("nan"), storage_usd=0.0,
        egress_usd=0.0, keepalive_usd=0.0,
    )
    kinds = [v.invariant for v in check_expense_breakdown(bad)]
    assert kinds.count("expense-breakdown") == 2


def test_billed_vs_executed():
    assert check_billed_vs_executed(1.5, 1.2) == []
    assert check_billed_vs_executed(1.2, 1.2) == []
    broken = check_billed_vs_executed(1.0, 1.2, time=42.0)
    assert [v.invariant for v in broken] == ["billing-legality"]
    assert broken[0].time == 42.0


# --------------------------------------------------------------------- #
# state machines
# --------------------------------------------------------------------- #
def test_breaker_transitions_legal_chain():
    log = [
        (10.0, 0, "closed", "open"),
        (70.0, 0, "open", "half-open"),
        (75.0, 0, "half-open", "open"),
        (140.0, 0, "open", "half-open"),
        (145.0, 0, "half-open", "closed"),
        (20.0, 1, "closed", "open"),  # other domain chains independently
    ]
    assert check_breaker_transitions(sorted(log)) == []


def test_breaker_transitions_illegal_edge_and_broken_chain():
    # closed -> half-open is not a legal edge, and the second transition's
    # source does not match the domain's tracked state.
    log = [
        (10.0, 0, "closed", "half-open"),
        (20.0, 0, "closed", "open"),
    ]
    kinds = [v.invariant for v in check_breaker_transitions(log)]
    assert kinds == ["breaker-legality", "breaker-legality"]


def test_breaker_transitions_time_reversal():
    log = [
        (10.0, 0, "closed", "open"),
        (5.0, 0, "open", "half-open"),
    ]
    assert any(
        "backwards" in v.message for v in check_breaker_transitions(log)
    )


def test_remediation_pairing_clean():
    report = _Stub(
        applications=[(10.0, ("quarantine", 2)), (20.0, ("limit", 32))],
        rollbacks=[(30.0, ("release", 2), ("quarantine", 2))],
    )
    assert check_remediation_pairing(report) == []


def test_remediation_pairing_orphan_rollback():
    report = _Stub(
        applications=[(10.0, ("quarantine", 2))],
        rollbacks=[
            (30.0, ("release", 2), ("quarantine", 2)),
            (40.0, ("release", 2), ("quarantine", 2)),  # double rollback
        ],
    )
    violations = check_remediation_pairing(report)
    assert [v.invariant for v in violations] == ["remediation-pairing"]
    assert violations[0].time == 40.0


def test_remediation_pairing_rollback_before_apply():
    report = _Stub(
        applications=[(50.0, ("quarantine", 2))],
        rollbacks=[(30.0, ("release", 2), ("quarantine", 2))],
    )
    assert len(check_remediation_pairing(report)) == 1


# --------------------------------------------------------------------- #
# telemetry structure
# --------------------------------------------------------------------- #
def _span(span_id, start, end, parent_id=None):
    return _Stub(
        span_id=span_id, name=f"s{span_id}", start=start, end=end,
        parent_id=parent_id,
    )


def test_span_nesting_clean():
    tracer = _Stub(spans=[_span(1, 0.0, 10.0), _span(2, 2.0, 8.0, parent_id=1)])
    assert check_span_nesting(tracer) == []


def test_span_nesting_violations():
    tracer = _Stub(spans=[
        _span(1, 5.0, 3.0),                      # ends before it starts
        _span(2, 0.0, 1.0, parent_id=99),        # missing parent
        _span(3, 0.0, 10.0),
        _span(4, 1.0, 12.0, parent_id=3),        # escapes parent interval
    ])
    kinds = [v.invariant for v in check_span_nesting(tracer)]
    assert kinds == ["span-nesting"] * 3


def test_monotonic_times():
    assert check_monotonic_times([0.0, 1.0, 1.0, 2.0]) == []
    assert len(check_monotonic_times([0.0, 2.0, 1.0, 3.0, 2.5])) == 2


# --------------------------------------------------------------------- #
# the assert entry point
# --------------------------------------------------------------------- #
def _fake_result(**overrides):
    base = dict(
        n_requests=10, n_completed=6, n_shed=3, n_failed=1,
        resilience=_Stub(arrivals=10, admitted=7, shed=3),
        expense=ExpenseBreakdown(
            compute_usd=1.0, requests_usd=0.1, storage_usd=0.0,
            egress_usd=0.0, keepalive_usd=0.0,
        ),
        remediation=None,
    )
    base.update(overrides)
    return _Stub(**base)


def test_assert_serving_invariants_passes_clean():
    assert_serving_invariants(_fake_result())


def test_assert_serving_invariants_raises_with_catalog():
    with pytest.raises(AssertionError, match="request-conservation"):
        assert_serving_invariants(_fake_result(n_failed=0))


def test_violation_str_is_readable():
    v = Violation("billing-legality", 12.5, "billed 1s < executed 2s")
    assert str(v) == "[billing-legality @ t=12.5] billed 1s < executed 2s"


# --------------------------------------------------------------------- #
# multi-tenant fleet fairness
# --------------------------------------------------------------------- #
def _account(tenant="a", submitted=10, admitted=7, rejected=3):
    return _Stub(
        tenant=tenant, submitted=submitted, admitted=admitted, rejected=rejected
    )


def test_tenant_conservation_clean_and_broken():
    assert check_tenant_conservation([_account(), _account(tenant="b")]) == []
    broken = check_tenant_conservation([_account(admitted=8)])
    assert len(broken) == 1
    assert broken[0].invariant == "tenant-conservation"
    negative = check_tenant_conservation([_account(rejected=-3, admitted=13)])
    assert any("negative" in v.message for v in negative)


def test_tenant_billing_attribution_clean_and_broken():
    bills = [_Stub(tenant="a", total_usd=0.75), _Stub(tenant="b", total_usd=0.25)]
    assert check_tenant_billing_attribution(1.0, bills) == []
    lost = check_tenant_billing_attribution(1.1, bills)
    assert len(lost) == 1 and lost[0].invariant == "billing-attribution"
    negative = check_tenant_billing_attribution(
        0.25, [_Stub(tenant="a", total_usd=-0.5), _Stub(tenant="b", total_usd=0.75)]
    )
    assert any("'a'" in v.message for v in negative)


def test_tenant_billing_attribution_tolerates_float_noise():
    bills = [_Stub(tenant="a", total_usd=0.1 + 0.2)]
    assert check_tenant_billing_attribution(0.3, bills) == []
