"""Tests for interference and scaling profilers."""

import pytest

from repro.core.profiler import (
    DEFAULT_SCALING_SAMPLES,
    InterferenceProfiler,
    ScalingProfiler,
    sample_degrees,
)
from repro.platform.base import ServerlessPlatform
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT, STATELESS_COST, VIDEO
from repro.workloads.synthetic import make_synthetic


@pytest.fixture(scope="module")
def platform():
    return ServerlessPlatform(AWS_LAMBDA, seed=31)


def test_sample_degrees_skips_alternates():
    assert sample_degrees(7) == [1, 3, 5, 7]
    assert sample_degrees(8) == [1, 3, 5, 7, 8]
    assert sample_degrees(1) == [1]


def test_sample_counts_match_paper():
    """Paper Sec. 2.1: 20, 8, 15 sample points for Video, Sort, Stateless."""
    assert len(sample_degrees(VIDEO.max_packing_degree(10240))) == 21
    assert len(sample_degrees(SORT.max_packing_degree(10240))) == 8
    assert len(sample_degrees(STATELESS_COST.max_packing_degree(10240))) == 16


def test_sample_degrees_rejects_bad_input():
    with pytest.raises(ValueError):
        sample_degrees(0)


def test_interference_profile_recovers_pressure(platform):
    profile = InterferenceProfiler(platform).profile(SORT)
    assert profile.model.alpha == pytest.approx(SORT.pressure_per_gb, rel=0.05)
    assert profile.model.coeff_a == pytest.approx(SORT.base_seconds, rel=0.1)


def test_interference_profile_monotonic_observations(platform):
    profile = InterferenceProfiler(platform).profile(STATELESS_COST)
    times = profile.exec_times
    # Small noise allowed; the trend must be strongly increasing.
    assert times[-1] > times[0] * 1.5


def test_interference_profile_accounts_overhead(platform):
    profile = InterferenceProfiler(platform).profile(SORT)
    assert profile.overhead_usd > 0.0
    assert profile.overhead_gb_seconds > 0.0
    assert profile.overhead_wall_s > 0.0


def test_interference_overhead_is_small_vs_one_burst(platform):
    """Paper: exploration overhead is ~1% — tiny next to one real burst."""
    from repro.platform.invoker import BurstSpec

    profile = InterferenceProfiler(platform).profile(SORT)
    burst = platform.run_burst(BurstSpec(app=SORT, concurrency=5000))
    assert profile.overhead_usd < 0.05 * burst.expense.total_usd


def test_interference_custom_degrees(platform):
    profile = InterferenceProfiler(platform).profile(SORT, degrees=[1, 5, 10, 15])
    assert profile.degrees == [1, 5, 10, 15]


def test_interference_rejects_oversized_degree(platform):
    with pytest.raises(ValueError, match="max packing degree"):
        InterferenceProfiler(platform).profile(SORT, degrees=[1, 16])


def test_interference_skips_timeout_degrees():
    app = make_synthetic(base_seconds=400.0, mem_mb=1024, pressure_per_gb=0.4)
    platform = ServerlessPlatform(AWS_LAMBDA, seed=2)
    profile = InterferenceProfiler(platform).profile(app)
    # Degrees whose execution exceeded the platform cap are not fitted.
    assert max(profile.degrees) < app.max_packing_degree(10240)
    assert len(profile.degrees) >= 2


def test_interference_repetitions_average(platform):
    one = InterferenceProfiler(platform, repetitions=1).profile(SORT)
    three = InterferenceProfiler(platform, repetitions=3).profile(SORT)
    assert three.overhead_usd > one.overhead_usd
    assert three.model.alpha == pytest.approx(one.model.alpha, rel=0.05)


def test_interference_rejects_bad_repetitions(platform):
    with pytest.raises(ValueError):
        InterferenceProfiler(platform, repetitions=0)


def test_scaling_profile_fits_observed(platform):
    profile = ScalingProfiler(platform).profile()
    assert profile.concurrencies == list(DEFAULT_SCALING_SAMPLES)
    for c, observed in profile.observed().items():
        assert profile.model.predict(c) == pytest.approx(observed, rel=0.25, abs=3.0)


def test_scaling_profile_extrapolates_to_high_concurrency(platform):
    profile = ScalingProfiler(platform).profile()
    measured = platform.measure_scaling_time(5000)
    assert profile.model.predict(5000) == pytest.approx(measured, rel=0.1)


def test_scaling_profile_custom_grid(platform):
    profile = ScalingProfiler(platform).profile(concurrencies=(100, 500, 1000))
    assert profile.concurrencies == [100, 500, 1000]
    assert profile.overhead_wall_s > 0.0
