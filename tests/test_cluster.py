"""Tests for the datacenter substrate: servers, network, image registry."""

import pytest

from repro.cluster.network import NetworkFabric
from repro.cluster.registry import FunctionImage, ImageRegistry
from repro.cluster.server import Server, ServerPool
from repro.sim.engine import Simulator


# --------------------------------------------------------------------- #
# Server / ServerPool
# --------------------------------------------------------------------- #

def test_server_allocation_and_release():
    server = Server(0, cores=8, memory_mb=1024)
    assert server.can_host(4, 512)
    server.allocate(4, 512)
    assert server.instances == 1 and server.busy
    server.release(4, 512)
    assert server.instances == 0 and not server.busy
    assert server.used_cores == 0 and server.used_memory_mb == 0


def test_server_rejects_overallocation():
    server = Server(0, cores=2, memory_mb=100)
    with pytest.raises(ValueError):
        server.allocate(3, 50)


def test_server_release_without_instance_fails():
    with pytest.raises(ValueError):
        Server(0, cores=2, memory_mb=100).release(1, 10)


def test_pool_round_robin_spreads_load():
    pool = ServerPool(4, cores_per_server=2, memory_mb_per_server=100)
    placed = {pool.place(1, 10).server_id for _ in range(4)}
    assert placed == {0, 1, 2, 3}


def test_pool_busy_and_instance_counters():
    pool = ServerPool(2, cores_per_server=4, memory_mb_per_server=100)
    pool.place(1, 10)
    pool.place(1, 10)
    assert pool.total_instances == 2
    assert 1 <= pool.busy_servers <= 2


def test_pool_exhaustion_raises():
    pool = ServerPool(1, cores_per_server=1, memory_mb_per_server=10)
    pool.place(1, 10)
    with pytest.raises(RuntimeError, match="fleet exhausted"):
        pool.place(1, 10)


def test_pool_first_fit_skips_full_servers():
    pool = ServerPool(2, cores_per_server=1, memory_mb_per_server=10)
    first = pool.place(1, 10)
    second = pool.place(1, 10)
    assert first.server_id != second.server_id


def test_pool_requires_servers():
    with pytest.raises(ValueError):
        ServerPool(0, 1, 1)


# --------------------------------------------------------------------- #
# NetworkFabric
# --------------------------------------------------------------------- #

def test_network_transfer_time_from_bandwidth():
    sim = Simulator()
    net = NetworkFabric(sim, uplink_gbps=1.0)  # 125 MB/s
    done = []
    net.ship(125.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(1.0)]


def test_network_sharing_between_transfers():
    sim = Simulator()
    net = NetworkFabric(sim, uplink_gbps=1.0)
    done = []
    net.ship(125.0, lambda: done.append(sim.now))
    net.ship(125.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(2.0), pytest.approx(2.0)]


def test_network_accounts_bytes():
    sim = Simulator()
    net = NetworkFabric(sim, uplink_gbps=1.0)
    net.ship(10.0, lambda: None)
    net.ship(20.0, lambda: None)
    assert net.bytes_shipped_mb == pytest.approx(30.0)


def test_network_rejects_bad_inputs():
    with pytest.raises(ValueError):
        NetworkFabric(Simulator(), uplink_gbps=0.0)
    net = NetworkFabric(Simulator(), uplink_gbps=1.0)
    with pytest.raises(ValueError):
        net.ship(-1.0, lambda: None)


def test_network_in_flight_counter():
    sim = Simulator()
    net = NetworkFabric(sim, uplink_gbps=1.0)
    net.ship(125.0, lambda: None)
    assert net.in_flight == 1
    sim.run()
    assert net.in_flight == 0


# --------------------------------------------------------------------- #
# ImageRegistry
# --------------------------------------------------------------------- #

def test_image_size_accounting():
    image = FunctionImage("app", code_mb=10, runtime_mb=50, dependencies_mb=40)
    assert image.total_mb == 100
    assert image.install_mb == 90  # code isn't "installed"


def test_image_rejects_negative_sizes():
    with pytest.raises(ValueError):
        FunctionImage("bad", code_mb=-1, runtime_mb=0, dependencies_mb=0)


def test_registry_roundtrip():
    registry = ImageRegistry()
    image = FunctionImage("app", 1, 2, 3)
    registry.register(image)
    assert "app" in registry
    assert registry.get("app") is image
    assert len(registry) == 1


def test_registry_upsert_replaces():
    registry = ImageRegistry()
    registry.register(FunctionImage("app", 1, 2, 3))
    registry.register(FunctionImage("app", 9, 9, 9))
    assert registry.get("app").code_mb == 9
    assert len(registry) == 1


def test_registry_missing_key_raises():
    with pytest.raises(KeyError, match="nope"):
        ImageRegistry().get("nope")
