"""Tests for the experiment harness: tables, config, runner, CLI plumbing.

Figure *content* assertions live in benchmarks/ (they are the shape checks
of the reproduction); here we test the harness machinery itself plus two
cheap figures end to end.
"""

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ALL_FIGURES, fig4, validation_chi2
from repro.experiments.runner import ExperimentContext, improvement
from repro.experiments.tables import FigureResult, render_all


# --------------------------------------------------------------------- #
# FigureResult
# --------------------------------------------------------------------- #

def test_add_enforces_schema():
    fig = FigureResult("X", "t", ["a", "b"])
    fig.add(a=1, b=2)
    with pytest.raises(ValueError):
        fig.add(a=1)
    with pytest.raises(ValueError):
        fig.add(a=1, b=2, c=3)


def test_column_and_select():
    fig = FigureResult("X", "t", ["app", "v"])
    fig.add(app="a", v=1)
    fig.add(app="b", v=2)
    fig.add(app="a", v=3)
    assert fig.column("v") == [1, 2, 3]
    assert [r["v"] for r in fig.select(app="a")] == [1, 3]
    with pytest.raises(KeyError):
        fig.column("nope")


def test_text_and_markdown_render():
    fig = FigureResult("X", "title", ["a"])
    fig.add(a=1.23456)
    fig.notes.append("a note")
    text = fig.to_text()
    assert "X: title" in text and "1.23" in text and "a note" in text
    md = fig.to_markdown()
    assert md.startswith("### X: title")
    assert "| 1.23 |" in md


def test_render_all_concatenates():
    figs = [FigureResult("A", "t", ["x"]), FigureResult("B", "t", ["x"])]
    out = render_all(figs)
    assert "A: t" in out and "B: t" in out


def test_tiny_floats_use_scientific():
    fig = FigureResult("X", "t", ["v"])
    fig.add(v=0.00001)
    assert "e-05" in fig.to_text()


# --------------------------------------------------------------------- #
# Config / runner
# --------------------------------------------------------------------- #

def test_quick_config_is_smaller():
    quick = ExperimentConfig.quick()
    full = ExperimentConfig.full()
    assert max(quick.concurrencies) < max(full.concurrencies)
    assert quick.high_concurrency < full.high_concurrency


def test_improvement_metric():
    assert improvement(100.0, 50.0) == pytest.approx(50.0)
    assert improvement(100.0, 120.0) == pytest.approx(-20.0)
    with pytest.raises(ValueError):
        improvement(0.0, 1.0)


def test_context_caches_platforms_and_propack():
    ctx = ExperimentContext()
    assert ctx.platform() is ctx.platform()
    assert ctx.propack() is ctx.propack()
    assert ctx.funcx() is ctx.funcx()


def test_registry_covers_every_paper_artifact():
    expected = {
        "fig1", "fig2", "fig4", "fig5a", "fig5b", "fig6", "fig7", "fig8",
        "validation", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
        "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
        "ablation_models", "ablation_alternatives", "ablation_mitigation",
        "ablation_skew", "ablation_amortization", "ablation_rightsizing",
        "streaming", "multitenant", "decentralization", "faults",
        "serving",
        "overload",
        "selfhealing",
        "chaos",
        "fusion",
    }
    assert set(ALL_FIGURES) == expected


# --------------------------------------------------------------------- #
# Two cheap figures end to end
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(config=ExperimentConfig.quick())


def test_fig4_fits_within_small_error(ctx):
    fig = fig4(ctx)
    assert max(fig.column("error_pct")) < 5.0
    assert {r["app"] for r in fig.rows} == {"video", "sort", "stateless-cost"}


def test_validation_figure_accepts_all(ctx):
    fig = validation_chi2(ctx)
    assert all(fig.column("accepted"))


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

def test_parser_accepts_known_args():
    args = build_parser().parse_args(["fig4", "--quick", "--markdown"])
    assert args.figures == ["fig4"] and args.quick and args.markdown


def test_cli_rejects_unknown_figure(capsys):
    assert main(["figXX", "--quick"]) == 2


def test_cli_runs_single_figure(capsys):
    assert main(["fig4", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "F4" in out


def test_cli_writes_output_file(tmp_path):
    out_file = tmp_path / "results.md"
    assert main(["fig4", "--quick", "--markdown", "--out", str(out_file)]) == 0
    assert "### F4" in out_file.read_text()


def test_cli_list_figures(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out and "multitenant" in out


def test_cli_no_figures_is_an_error(capsys):
    assert main([]) == 2
