"""Tests for adaptive re-profiling and overhead-amortization campaigns."""

import pytest

from repro.extensions.adaptive import AdaptiveProPack
from repro.extensions.campaigns import run_campaign
from repro.platform.base import ServerlessPlatform
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT, STATELESS_COST


# --------------------------------------------------------------------- #
# AdaptiveProPack
# --------------------------------------------------------------------- #

def test_stable_platform_never_reprofiles():
    adaptive = AdaptiveProPack(ServerlessPlatform(AWS_LAMBDA, seed=101))
    for _ in range(4):
        adaptive.run(SORT, 1500)
    assert adaptive.reprofile_count == 0
    assert all(o.relative_error < 0.15 for o in adaptive.history)


def test_drift_triggers_reprofiling():
    """A provider-side improvement (much cheaper scheduling) makes the old
    scaling model wrong — the adaptor must notice and re-profile."""
    adaptive = AdaptiveProPack(
        ServerlessPlatform(AWS_LAMBDA, seed=102), error_threshold=0.15, patience=2
    )
    adaptive.run(SORT, 2000)  # fit models on the original platform
    improved = AWS_LAMBDA.with_overrides(sched_search_s=1.6e-5)  # 10x better
    adaptive.switch_platform(ServerlessPlatform(improved, seed=102))
    for _ in range(3):
        adaptive.run(SORT, 2000)
    assert adaptive.reprofile_count >= 1


def test_reprofiled_models_recover_accuracy():
    adaptive = AdaptiveProPack(
        ServerlessPlatform(AWS_LAMBDA, seed=103), error_threshold=0.15, patience=1
    )
    adaptive.run(SORT, 2000)
    improved = AWS_LAMBDA.with_overrides(sched_search_s=1.6e-5)
    adaptive.switch_platform(ServerlessPlatform(improved, seed=103))
    for _ in range(3):
        adaptive.run(SORT, 2000)
    # After re-profiling, predictions track reality again.
    assert adaptive.last_error < 0.15


def test_provider_mitigation_lowers_packing_degree():
    """Paper Sec. 5: effective provider-side mitigation → lower P_opt."""
    adaptive = AdaptiveProPack(
        ServerlessPlatform(AWS_LAMBDA, seed=104), patience=1
    )
    before = adaptive.run(SORT, 3000).plan.degree
    improved = AWS_LAMBDA.with_overrides(sched_search_s=1.6e-5)
    adaptive.switch_platform(ServerlessPlatform(improved, seed=104))
    adaptive.run(SORT, 3000)          # detects drift, schedules re-profile
    after = adaptive.run(SORT, 3000).plan.degree
    assert after < before


def test_adaptive_parameter_validation():
    platform = ServerlessPlatform(AWS_LAMBDA, seed=1)
    with pytest.raises(ValueError):
        AdaptiveProPack(platform, error_threshold=0.0)
    with pytest.raises(ValueError):
        AdaptiveProPack(platform, patience=0)


# --------------------------------------------------------------------- #
# Campaigns
# --------------------------------------------------------------------- #

def test_campaign_overhead_paid_once():
    platform = ServerlessPlatform(AWS_LAMBDA, seed=105)
    report = run_campaign(platform, STATELESS_COST, 1000, runs=4)
    assert report.runs == 4
    assert report.overhead_usd > 0
    assert len(report.per_run_packed_usd) == 4


def test_campaign_improvement_grows_with_runs():
    """Amortization: the overhead-inclusive improvement rises toward the
    per-run improvement as runs accumulate."""
    platform = ServerlessPlatform(AWS_LAMBDA, seed=106)
    report = run_campaign(platform, STATELESS_COST, 1000, runs=5)
    curve = [pct for _, pct in report.amortization_curve()]
    assert curve[-1] > curve[0]
    assert curve == sorted(curve)


def test_campaign_overhead_share_shrinks():
    platform = ServerlessPlatform(AWS_LAMBDA, seed=107)
    short = run_campaign(platform, STATELESS_COST, 1000, runs=1)
    long = run_campaign(
        ServerlessPlatform(AWS_LAMBDA, seed=107), STATELESS_COST, 1000, runs=5
    )
    assert long.overhead_share_final_pct < short.overhead_share_final_pct


def test_campaign_validation():
    platform = ServerlessPlatform(AWS_LAMBDA, seed=1)
    with pytest.raises(ValueError):
        run_campaign(platform, STATELESS_COST, 100, runs=0)
    report = run_campaign(platform, STATELESS_COST, 200, runs=2)
    with pytest.raises(ValueError):
        report.cumulative_improvement_pct(3)
