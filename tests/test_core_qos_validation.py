"""Tests for the QoS weight search (Eqs. 8-9) and χ² validation (Sec. 2.4)."""

import numpy as np
import pytest

from repro.core.models import ExecutionTimeModel, ScalingTimeModel
from repro.core.optimizer import PackingOptimizer
from repro.core.qos import QoSWeightSearch
from repro.core.validation import (
    GoodnessOfFit,
    chi_square_statistic,
    validate_fit,
)
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import XAPIAN


def make_optimizer(concurrency=5000):
    exec_model = ExecutionTimeModel(
        coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
    )
    scaling = ScalingTimeModel(beta1=8e-5, beta2=0.01, beta3=5.0)
    return PackingOptimizer(
        exec_model=exec_model,
        scaling_model=scaling,
        app=XAPIAN,
        profile=AWS_LAMBDA,
        concurrency=concurrency,
    )


# --------------------------------------------------------------------- #
# QoS weight search
# --------------------------------------------------------------------- #

def test_loose_bound_keeps_expense_weight():
    search = QoSWeightSearch(make_optimizer())
    decision = search.search(qos_bound_s=10_000.0)
    assert decision.feasible
    assert decision.w_s == 0.0  # any weight meets a huge bound; pick cheapest


def test_tight_bound_raises_service_weight():
    search = QoSWeightSearch(make_optimizer())
    loose = search.search(qos_bound_s=10_000.0)
    _, best_tail = search.tail_at_weight(1.0)
    tight = search.search(qos_bound_s=best_tail * 1.3)
    assert tight.feasible
    assert tight.w_s > loose.w_s
    assert tight.predicted_tail_s <= tight.qos_bound_s


def test_impossible_bound_falls_back_infeasible():
    search = QoSWeightSearch(make_optimizer())
    decision = search.search(qos_bound_s=0.001)
    assert not decision.feasible
    # Fallback is the lowest-tail configuration available.
    _, best_tail = search.tail_at_weight(1.0)
    assert decision.predicted_tail_s == pytest.approx(best_tail, rel=0.01)


def test_weights_always_sum_to_one():
    search = QoSWeightSearch(make_optimizer())
    decision = search.search(qos_bound_s=500.0)
    assert decision.w_s + decision.w_e == pytest.approx(1.0)


def test_safety_margin_tightens_effective_bound():
    tight = QoSWeightSearch(make_optimizer(), safety_margin=0.5)
    loose = QoSWeightSearch(make_optimizer(), safety_margin=0.0)
    bound = 40.0
    assert tight.search(bound).w_s >= loose.search(bound).w_s


def test_invalid_parameters():
    with pytest.raises(ValueError):
        QoSWeightSearch(make_optimizer(), step=0.0)
    with pytest.raises(ValueError):
        QoSWeightSearch(make_optimizer(), safety_margin=1.0)
    with pytest.raises(ValueError):
        QoSWeightSearch(make_optimizer()).search(0.0)


def test_qos_degree_between_service_and_expense_optima():
    """Fig. 20a: QoS-joint degree lies between the two extremes."""
    opt = make_optimizer()
    search = QoSWeightSearch(opt)
    _, best_tail = search.tail_at_weight(1.0)
    decision = search.search(best_tail * 1.5)
    service_deg = opt.optimal_joint(w_s=1.0, merit="tail")
    expense_deg = opt.optimal_joint(w_s=0.0, merit="tail")
    assert service_deg <= decision.degree <= expense_deg


# --------------------------------------------------------------------- #
# χ² validation
# --------------------------------------------------------------------- #

def test_chi_square_zero_for_perfect_fit():
    assert chi_square_statistic([1.0, 2.0], [1.0, 2.0]) == 0.0


def test_chi_square_formula():
    # (10-8)^2/8 + (5-4)^2/4 = 0.5 + 0.25
    assert chi_square_statistic([10.0, 5.0], [8.0, 4.0]) == pytest.approx(0.75)


def test_chi_square_input_validation():
    with pytest.raises(ValueError):
        chi_square_statistic([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        chi_square_statistic([], [])
    with pytest.raises(ValueError):
        chi_square_statistic([1.0], [0.0])


def test_critical_value_matches_paper():
    """dof=14, confidence 99.5% → 4.075 (paper Sec. 2.4)."""
    gof = GoodnessOfFit(statistic=0.0, dof=14, confidence=0.995)
    assert gof.critical_value == pytest.approx(4.075, abs=0.001)


def test_acceptance_threshold():
    assert GoodnessOfFit(3.81, 14, 0.995).accepted      # paper's max passes
    assert not GoodnessOfFit(4.2, 14, 0.995).accepted


def test_validate_fit_roundtrip():
    observed = np.array([100.0, 110.0, 121.0])
    expected = observed * 1.01
    gof = validate_fit(observed, expected)
    assert gof.dof == 14
    assert gof.accepted
