"""Manifest identity, serialization round-trips, and artifact layout."""

import json

import pytest

from repro.harness import ArtifactStore, RunManifest
from repro.harness.manifest import canonical_json, config_digest
from repro.harness.targets import DEFAULT_REGISTRY


def _manifest(**overrides):
    defaults = dict(
        campaign="c",
        stage="s",
        target="burst",
        params={"app": "sort", "concurrency": 16},
        resolved_config={"app": "sort", "concurrency": 16, "nested": {"x": 1}},
        seed=7,
    )
    defaults.update(overrides)
    return RunManifest(**defaults)


def test_run_id_is_deterministic_and_config_sensitive():
    a = _manifest()
    b = _manifest()
    assert a.run_id == b.run_id
    assert a == b
    c = _manifest(seed=8)
    d = _manifest(resolved_config={"app": "sort", "concurrency": 32})
    assert len({a.run_id, c.run_id, d.run_id}) == 3


def test_digest_is_order_insensitive():
    assert config_digest("t", {"a": 1, "b": 2}, 0) == config_digest(
        "t", {"b": 2, "a": 1}, 0
    )


def test_json_round_trip_preserves_identity_and_equality():
    a = _manifest()
    b = RunManifest.from_json(a.to_json())
    assert b == a
    assert b.run_id == a.run_id


def test_tuples_normalize_to_lists_for_stable_equality():
    a = _manifest(resolved_config={"grid": (1, 2, 3)})
    b = RunManifest.from_json(a.to_json())
    assert a.resolved_config == {"grid": [1, 2, 3]}
    assert a == b


def test_tampered_run_id_is_rejected():
    a = _manifest()
    payload = json.loads(a.to_json())
    payload["seed"] = 999  # recipe edited without re-deriving the id
    with pytest.raises(ValueError, match="does not match the resolved config"):
        RunManifest.from_dict(payload)


def test_unknown_keys_and_schema_are_rejected():
    payload = json.loads(_manifest().to_json())
    payload["wall_clock"] = 123.0
    with pytest.raises(ValueError, match="unknown manifest keys"):
        RunManifest.from_dict(payload)
    payload = json.loads(_manifest().to_json())
    payload["schema"] = 999
    with pytest.raises(ValueError, match="unsupported manifest schema"):
        RunManifest.from_dict(payload)


def test_canonical_json_is_whitespace_free_and_sorted():
    text = canonical_json({"b": [1, 2], "a": {"y": 1, "x": 2}})
    assert text == '{"a":{"x":2,"y":1},"b":[1,2]}'


def test_manifest_round_trips_through_target_resolution():
    """manifest.json ↔ resolved config: resolving the manifest's params
    again yields exactly the stored resolved_config (burst + experiment)."""
    burst = DEFAULT_REGISTRY.get("burst")
    params = {"app": "sort", "concurrency": 24, "packing_degree": 2}
    manifest = _manifest(
        params=params, resolved_config=burst.resolve(params), seed=3
    )
    reloaded = RunManifest.from_json(manifest.to_json())
    renormalized = json.loads(canonical_json(burst.resolve(reloaded.params)))
    assert renormalized == reloaded.resolved_config

    experiment = DEFAULT_REGISTRY.get("experiment")
    params = {"figure": "fig1", "grid": "quick", "repetitions": 2}
    manifest = _manifest(
        target="experiment",
        params=params,
        resolved_config=experiment.resolve(params),
        seed=3,
    )
    reloaded = RunManifest.from_json(manifest.to_json())
    renormalized = json.loads(canonical_json(experiment.resolve(reloaded.params)))
    assert renormalized == reloaded.resolved_config
    # The pinned grid really carries the override.
    assert reloaded.resolved_config["config"]["repetitions"] == 2


def test_artifact_store_layout_and_completion(tmp_path):
    store = ArtifactStore(tmp_path)
    manifest = _manifest()
    store.begin_run(manifest)
    run_dir = tmp_path / "c" / manifest.run_id
    assert (run_dir / "manifest.json").exists()
    # Manifest alone is an incomplete run.
    assert not store.is_complete("c", manifest.run_id)
    assert store.completed_runs("c") == []
    [status] = store.statuses("c")
    assert status.state == "incomplete"

    store.finish_run(manifest, {"x": 1.5}, metrics_jsonl='{"e":1}\n')
    assert store.is_complete("c", manifest.run_id)
    assert store.completed_runs("c") == [manifest.run_id]
    assert store.load_summary("c", manifest.run_id) == {"x": 1.5}
    assert (run_dir / "metrics.jsonl").read_text() == '{"e":1}\n'
    assert store.load_manifest("c", manifest.run_id) == manifest
