"""Unit tests for the FIFO and processor-sharing queueing resources."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.resources import FifoResource, ProcessorSharingResource


# --------------------------------------------------------------------- #
# FIFO multi-server queue
# --------------------------------------------------------------------- #

def test_fifo_single_server_serializes():
    sim = Simulator()
    fifo = FifoResource(sim, servers=1)
    done = []
    for i in range(3):
        fifo.submit(1.0, lambda i=i: done.append((i, sim.now)))
    sim.run()
    assert done == [(0, 1.0), (1, 2.0), (2, 3.0)]


def test_fifo_parallel_servers():
    sim = Simulator()
    fifo = FifoResource(sim, servers=2)
    done = []
    for i in range(4):
        fifo.submit(1.0, lambda i=i: done.append((i, sim.now)))
    sim.run()
    # Two run at once: finish times 1,1,2,2.
    assert [t for _, t in done] == [1.0, 1.0, 2.0, 2.0]


def test_fifo_order_preserved_with_unequal_work():
    sim = Simulator()
    fifo = FifoResource(sim, servers=1)
    done = []
    fifo.submit(5.0, lambda: done.append("long"))
    fifo.submit(0.1, lambda: done.append("short"))
    sim.run()
    assert done == ["long", "short"]  # FIFO: no overtaking


def test_fifo_busy_and_queue_counters():
    sim = Simulator()
    fifo = FifoResource(sim, servers=2)
    for _ in range(5):
        fifo.submit(1.0, lambda: None)
    assert fifo.busy_servers == 2
    assert fifo.queued_jobs == 3
    sim.run()
    assert fifo.busy_servers == 0
    assert fifo.queued_jobs == 0
    assert fifo.total_jobs == 5


def test_fifo_zero_work_completes_immediately():
    sim = Simulator()
    fifo = FifoResource(sim, servers=1)
    done = []
    fifo.submit(0.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [0.0]


def test_fifo_rejects_negative_work():
    with pytest.raises(SimulationError):
        FifoResource(Simulator(), servers=1).submit(-1.0, lambda: None)


def test_fifo_rejects_zero_servers():
    with pytest.raises(SimulationError):
        FifoResource(Simulator(), servers=0)


def test_fifo_callback_args_passed_through():
    sim = Simulator()
    fifo = FifoResource(sim, servers=1)
    got = []
    fifo.submit(1.0, lambda a, b: got.append((a, b)), "x", 42)
    sim.run()
    assert got == [("x", 42)]


# --------------------------------------------------------------------- #
# Processor-sharing queue
# --------------------------------------------------------------------- #

def test_ps_single_job_runs_at_full_capacity():
    sim = Simulator()
    ps = ProcessorSharingResource(sim, capacity=2.0)
    done = []
    ps.submit(4.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(2.0)]


def test_ps_two_equal_jobs_share_capacity():
    sim = Simulator()
    ps = ProcessorSharingResource(sim, capacity=1.0)
    done = []
    ps.submit(1.0, lambda: done.append(sim.now))
    ps.submit(1.0, lambda: done.append(sim.now))
    sim.run()
    # Each gets half capacity: both finish at t=2.
    assert done == [pytest.approx(2.0), pytest.approx(2.0)]


def test_ps_unequal_jobs_finish_in_size_order():
    sim = Simulator()
    ps = ProcessorSharingResource(sim, capacity=1.0)
    done = []
    ps.submit(1.0, lambda: done.append(("small", sim.now)))
    ps.submit(3.0, lambda: done.append(("big", sim.now)))
    sim.run()
    # Shared until small leaves at t=2 (each got 1.0 of work), then big runs
    # alone for its remaining 2.0 → t=4.
    assert done[0] == ("small", pytest.approx(2.0))
    assert done[1] == ("big", pytest.approx(4.0))


def test_ps_late_arrival_shares_remaining():
    sim = Simulator()
    ps = ProcessorSharingResource(sim, capacity=1.0)
    done = []
    ps.submit(2.0, lambda: done.append(("first", sim.now)))
    sim.schedule(1.0, ps.submit, 2.0, lambda: done.append(("second", sim.now)))
    sim.run()
    # First runs alone [0,1] (1 unit done), then shares: needs 1 more at
    # rate 0.5 → finishes at 3. Second then runs alone: has 1 left → 4.
    assert done[0] == ("first", pytest.approx(3.0))
    assert done[1] == ("second", pytest.approx(4.0))


def test_ps_work_conservation_total_time():
    """Total completion time of the last job equals total work / capacity
    when the queue never idles."""
    sim = Simulator()
    ps = ProcessorSharingResource(sim, capacity=2.0)
    last = []
    works = [1.0, 2.0, 3.0, 4.0]
    for w in works:
        ps.submit(w, lambda: last.append(sim.now))
    sim.run()
    assert max(last) == pytest.approx(sum(works) / 2.0)


def test_ps_many_jobs_all_complete():
    sim = Simulator()
    ps = ProcessorSharingResource(sim, capacity=10.0)
    count = []
    for i in range(500):
        ps.submit(1.0 + (i % 7) * 0.1, lambda: count.append(1))
    sim.run()
    assert len(count) == 500
    assert ps.active_jobs == 0


def test_ps_zero_work_job():
    sim = Simulator()
    ps = ProcessorSharingResource(sim, capacity=1.0)
    done = []
    ps.submit(0.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(0.0)]


def test_ps_rejects_bad_capacity():
    with pytest.raises(SimulationError):
        ProcessorSharingResource(Simulator(), capacity=0.0)


def test_ps_rejects_negative_work():
    with pytest.raises(SimulationError):
        ProcessorSharingResource(Simulator(), capacity=1.0).submit(-1.0, lambda: None)


def test_ps_active_jobs_counter():
    sim = Simulator()
    ps = ProcessorSharingResource(sim, capacity=1.0)
    ps.submit(1.0, lambda: None)
    ps.submit(1.0, lambda: None)
    assert ps.active_jobs == 2
    sim.run()
    assert ps.active_jobs == 0
