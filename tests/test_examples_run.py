"""Smoke tests: every shipped example must run end to end.

These are the ultimate integration tests — they execute the exact scripts
a new user would, asserting only that each completes and prints its
headline output.
"""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "service time improvement" in out
    assert "accepted" in out


def test_sort_pipeline(capsys):
    out = run_example("sort_pipeline.py", capsys)
    assert "globally sorted and verified" in out
    assert "Oracle" in out


def test_bioinformatics(capsys):
    out = run_example("bioinformatics_smith_waterman.py", capsys)
    assert "best alignment" in out
    assert "chosen degree" in out


def test_qos_latency_search(capsys):
    out = run_example("qos_latency_search.py", capsys)
    assert "QoS search settled" in out
    assert "bound held" in out


def test_multicloud_cost_planner(capsys):
    out = run_example("multicloud_cost_planner.py", capsys)
    assert "fastest packed platform" in out
    assert "cheapest packed platform" in out


def test_video_workflow(capsys):
    out = run_example("video_workflow.py", capsys)
    assert "workflow makespan improvement" in out
    assert "critical path" in out


def test_streaming_service(capsys):
    out = run_example("streaming_service.py", capsys)
    assert "p95 sojourn" in out
    assert "VIOLATED" not in out


def test_adaptive_operations(capsys):
    out = run_example("adaptive_operations.py", capsys)
    assert "re-profiles triggered: 1" in out
    assert "lowers the optimal degree" in out


def test_serving_day(capsys):
    out = run_example("serving_day.py", capsys)
    assert "hybrid-histogram" in out
    assert "wins on BOTH cold-start fraction and cost per request" in out


def test_trace_a_burst(capsys):
    out = run_example("trace_a_burst.py", capsys)
    assert "exact match" in out
    assert "MISMATCH" not in out


def test_overload_flashcrowd(capsys):
    out = run_example("overload_flashcrowd.py", capsys)
    assert "flash-crowd" in out
    assert "protected" in out
    assert "cheaper per completed request" in out


def test_self_healing_day(capsys):
    out = run_example("self_healing_day.py", capsys)
    assert "poison-storm" in out
    assert "remediation loop:" in out
    assert "apply     quarantine-domain" in out
    assert "Nobody touched a dial" in out
