"""Tests for the decentralized (sharded) placement scheduler."""

import pytest

from repro.cluster.server import ServerPool
from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.providers import AWS_LAMBDA
from repro.platform.scheduler_decentralized import DecentralizedScheduler
from repro.sim.engine import Simulator
from repro.workloads import SORT


def make(shards, base=0.0, search=1.0, sync=0.0):
    sim = Simulator()
    pool = ServerPool(256, cores_per_server=64, memory_mb_per_server=10**6)
    sched = DecentralizedScheduler(
        sim, pool, base_cost_s=base, search_cost_s=search,
        shards=shards, sync_cost_s=sync,
    )
    return sim, sched


def test_validation():
    with pytest.raises(ValueError):
        make(0)
    with pytest.raises(ValueError):
        make(2, sync=-1.0)


def test_single_shard_no_bus():
    sim, sched = make(1, base=1.0, search=0.0, sync=99.0)
    done = []
    sched.request_placement(1, 10, lambda server: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(1.0)]  # sync bus inactive at 1 shard
    assert sched.bus_cost_s == 0.0


def test_shards_divide_the_quadratic():
    def last_placement(shards):
        sim, sched = make(shards, search=0.01, sync=0.0)
        done = []
        for _ in range(100):
            sched.request_placement(1, 10, lambda server: done.append(sim.now))
        sim.run()
        return max(done)

    # Quadratic term ~ (C/k)^2 per shard: 4 shards ≈ 16x faster tail.
    assert last_placement(4) < 0.3 * last_placement(1)


def test_sync_bus_serializes():
    sim, sched = make(4, search=0.0, sync=1.0)
    done = []
    for _ in range(8):
        sched.request_placement(1, 10, lambda server: done.append(sim.now))
    sim.run()
    # Bus cost = 1.0 * log2(5); placements clear the bus one at a time.
    assert max(done) == pytest.approx(8 * sched.bus_cost_s, rel=1e-6)


def test_placements_counter_aggregates():
    sim, sched = make(4, search=0.0, sync=0.0)
    for _ in range(10):
        sched.request_placement(1, 10, lambda server: None)
    sim.run()
    assert sched.placements_made == 10


def test_excessive_decentralization_u_shape():
    """Paper Sec. 5: some decentralization helps; too much re-bottlenecks
    on synchronization."""
    def scaling(shards):
        profile = AWS_LAMBDA.with_overrides(
            name=f"s{shards}", scheduler_shards=shards
        )
        return ServerlessPlatform(profile, seed=5).measure_scaling_time(4000)

    centralized = scaling(1)
    sweet_spot = scaling(4)
    excessive = scaling(256)
    assert sweet_spot < 0.2 * centralized
    assert excessive > 1.5 * sweet_spot


def test_packing_composes_with_decentralization():
    """The paper's complementarity claim: packing still helps a sharded
    platform, and the combination beats either alone on service time."""
    from repro.core.propack import ProPack

    c = 4000
    central = ServerlessPlatform(AWS_LAMBDA, seed=6)
    sharded = ServerlessPlatform(
        AWS_LAMBDA.with_overrides(name="aws-s4", scheduler_shards=4), seed=6
    )
    central_packed = ProPack(central).run(SORT, c).result.service_time()
    sharded_base = sharded.run_burst(BurstSpec(app=SORT, concurrency=c)).service_time()
    sharded_packed = ProPack(sharded).run(SORT, c).result.service_time()
    assert sharded_packed < sharded_base       # packing helps even sharded
    assert sharded_packed < central_packed * 1.05  # combination >= either
