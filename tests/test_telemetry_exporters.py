"""Exporter round-trips: Chrome schema, Prometheus parse, determinism."""

import io
import json

from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.providers import AWS_LAMBDA
from repro.telemetry import (
    EventBus,
    EventLog,
    MetricsRegistry,
    TelemetryConfig,
    Tracer,
    chrome_trace,
    events_jsonl,
    parse_events_jsonl,
    parse_prometheus_text,
    prometheus_text,
    write_chrome_trace,
)
from repro.workloads import SORT


def _run_instrumented(seed=42, concurrency=200):
    platform = ServerlessPlatform(
        AWS_LAMBDA, seed=seed, telemetry=TelemetryConfig()
    )
    platform.run_burst(BurstSpec(app=SORT, concurrency=concurrency))
    return platform.telemetry


# --------------------------------------------------------------------- #
# Chrome trace_event schema
# --------------------------------------------------------------------- #
def test_chrome_trace_schema():
    session = _run_instrumented()
    document = session.chrome_trace()
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    assert events, "trace must not be empty"

    metadata = [e for e in events if e["ph"] == "M"]
    assert len(metadata) == 1  # one burst → one process band
    assert metadata[0]["name"] == "process_name"
    assert "SORT".lower() in metadata[0]["args"]["name"].lower()

    complete = [e for e in events if e["ph"] == "X"]
    assert complete
    pids = {m["pid"] for m in metadata}
    for event in complete:
        # the complete-event contract the viewers rely on
        assert set(event) >= {"ph", "ts", "dur", "pid", "tid", "name", "cat"}
        assert event["pid"] in pids
        assert event["ts"] >= 0.0 and event["dur"] >= 0.0


def test_chrome_trace_phase_spans_nest_inside_instance_span():
    session = _run_instrumented(concurrency=40)
    events = session.chrome_trace()["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    instances = {e["tid"]: e for e in complete if e["cat"] == "instance"}
    phases = [e for e in complete if e["cat"] == "phase"]
    assert instances and phases
    for phase in phases:
        parent = instances[phase["tid"]]
        assert parent["ts"] <= phase["ts"]
        assert phase["ts"] + phase["dur"] <= parent["ts"] + parent["dur"] + 1e-6


def test_write_chrome_trace_to_file_and_stream(tmp_path):
    session = _run_instrumented(concurrency=20)
    path = tmp_path / "trace.json"
    session.write_chrome_trace(str(path))
    buffer = io.StringIO()
    write_chrome_trace(buffer, session.tracer)
    on_disk = json.loads(path.read_text())
    assert on_disk == json.loads(buffer.getvalue())
    assert on_disk == json.loads(json.dumps(session.chrome_trace(), sort_keys=True))


# --------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------- #
def test_prometheus_text_parses_and_matches_registry():
    session = _run_instrumented()
    text = session.prometheus_text()
    samples = parse_prometheus_text(text)
    assert samples  # something was exported
    # counters round-trip exactly
    ok = samples['propack_burst_attempt_outcomes_total{outcome="ok"}']
    assert ok == 200
    # histogram invariants: +Inf bucket equals _count
    count = samples['propack_instance_phase_seconds_count{phase="exec"}']
    inf_bucket = samples['propack_instance_phase_seconds_bucket{phase="exec",le="+Inf"}']
    assert count == inf_bucket == 200


def test_prometheus_histogram_buckets_are_cumulative():
    registry = MetricsRegistry()
    h = registry.histogram("propack_t_seconds", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 3.0, 9.0):
        h.observe(v)
    samples = parse_prometheus_text(prometheus_text(registry))
    buckets = [
        samples['propack_t_seconds_bucket{le="1"}'],
        samples['propack_t_seconds_bucket{le="2"}'],
        samples['propack_t_seconds_bucket{le="4"}'],
        samples['propack_t_seconds_bucket{le="+Inf"}'],
    ]
    assert buckets == sorted(buckets) == [1, 2, 3, 4]
    assert samples["propack_t_seconds_sum"] == 14.0


# --------------------------------------------------------------------- #
# JSONL event log
# --------------------------------------------------------------------- #
def test_events_jsonl_round_trip():
    bus = EventBus()
    log = EventLog().attach(bus)
    bus.publish("retry", 1.5, chain=3, delay=0.25)
    bus.publish("crash", 2.0, correlated=False)
    text = events_jsonl(log.events)
    parsed = parse_events_jsonl(text)
    assert parsed == [
        {"kind": "retry", "time": 1.5, "chain": 3, "delay": 0.25},
        {"kind": "crash", "time": 2.0, "correlated": False},
    ]
    assert events_jsonl([]) == ""


# --------------------------------------------------------------------- #
# Determinism: same seed → byte-identical exports
# --------------------------------------------------------------------- #
def test_same_seed_exports_byte_identical():
    a, b = _run_instrumented(seed=9), _run_instrumented(seed=9)
    assert json.dumps(a.chrome_trace(), sort_keys=True) == json.dumps(
        b.chrome_trace(), sort_keys=True
    )
    assert a.prometheus_text() == b.prometheus_text()
    assert a.events_jsonl() == b.events_jsonl()


def test_different_seed_exports_differ():
    a, b = _run_instrumented(seed=9), _run_instrumented(seed=10)
    assert json.dumps(a.chrome_trace(), sort_keys=True) != json.dumps(
        b.chrome_trace(), sort_keys=True
    )


def test_empty_tracer_exports_cleanly():
    document = chrome_trace(Tracer())
    assert document == {"traceEvents": [], "displayTimeUnit": "ms"}
