"""The CI perf-regression gate: pure comparison logic plus the CLI exit
codes the ``perf-smoke`` job depends on."""

import json

import pytest

from repro.tools.perf_gate import compare, run_gate


def test_throughput_within_tolerance_passes():
    verdicts, errors = compare(
        {"chains_per_s": 100_000.0}, {"chains_per_s": 85_000.0}
    )
    assert not errors
    (v,) = verdicts
    assert v.gated and not v.failed
    assert v.ratio == pytest.approx(0.85)


def test_throughput_drop_beyond_tolerance_fails():
    verdicts, _ = compare(
        {"chains_per_s": 100_000.0}, {"chains_per_s": 79_000.0}
    )
    assert verdicts[0].failed


def test_throughput_gain_never_fails():
    verdicts, _ = compare(
        {"chains_per_s": 100_000.0}, {"chains_per_s": 500_000.0}
    )
    assert not verdicts[0].failed


def test_wall_keys_informational_by_default():
    """Wall clocks on shared CI runners are noisy: a 3x slowdown is
    reported but does not gate unless --wall-tolerance opts in."""
    verdicts, _ = compare(
        {"burst_c1e4_wall_s": 0.05}, {"burst_c1e4_wall_s": 0.15}
    )
    (v,) = verdicts
    assert v.is_wall and not v.gated and not v.failed


def test_wall_tolerance_gates_when_requested():
    verdicts, _ = compare(
        {"burst_c1e4_wall_s": 0.05},
        {"burst_c1e4_wall_s": 0.15},
        wall_tolerance=0.5,
    )
    assert verdicts[0].failed
    verdicts, _ = compare(
        {"burst_c1e4_wall_s": 0.05},
        {"burst_c1e4_wall_s": 0.06},
        wall_tolerance=0.5,
    )
    assert not verdicts[0].failed


def test_only_shared_keys_compared_and_require_enforces_presence():
    baseline = {"chains_per_s": 1.0, "events_per_s": 1.0}
    fresh = {"chains_per_s": 1.0, "brand_new_key": 9.9}
    verdicts, errors = compare(baseline, fresh)
    assert [v.key for v in verdicts] == ["chains_per_s"]
    assert not errors

    _, errors = compare(baseline, fresh, require=("events_per_s",))
    assert errors and "events_per_s" in errors[0]


def test_non_positive_baseline_is_hard_error():
    _, errors = compare({"chains_per_s": 0.0}, {"chains_per_s": 5.0})
    assert errors


def test_cli_exit_codes(tmp_path, capsys):
    base = tmp_path / "base.json"
    fresh = tmp_path / "fresh.json"
    base.write_text(json.dumps({"chains_per_s": 100.0, "x_wall_s": 1.0}))

    fresh.write_text(json.dumps({"chains_per_s": 95.0, "x_wall_s": 5.0}))
    assert run_gate([str(base), str(fresh)]) == 0
    assert "passed" in capsys.readouterr().out

    fresh.write_text(json.dumps({"chains_per_s": 10.0}))
    assert run_gate([str(base), str(fresh)]) == 1
    assert "FAILED" in capsys.readouterr().out

    # missing required key fails even when shared keys are healthy
    fresh.write_text(json.dumps({"chains_per_s": 100.0}))
    assert run_gate(
        [str(base), str(fresh), "--require", "fluid_chains_per_s"]
    ) == 1


def test_cli_no_shared_keys_fails(tmp_path):
    base = tmp_path / "base.json"
    fresh = tmp_path / "fresh.json"
    base.write_text(json.dumps({"a": 1.0}))
    fresh.write_text(json.dumps({"b": 1.0}))
    assert run_gate([str(base), str(fresh)]) == 1
