"""The runtime invariant auditor: online checks over the audit.* stream.

Two families: synthetic-bus tests plant specific bugs event by event and
assert the auditor flags exactly them; integration tests attach the
auditor to a real serving run and require a clean bill (the auditor must
never cry wolf on the actual engine) while proving the audit.* family
publishes nothing when nobody subscribed.
"""

import numpy as np

from repro.chaos import AUDIT_KINDS, InvariantAuditor
from repro.core.models import ExecutionTimeModel
from repro.extensions.streaming import StreamingPolicy
from repro.faults.retry import ExponentialBackoffRetry
from repro.faults.scenario import SCENARIOS
from repro.platform.providers import GOOGLE_CLOUD_FUNCTIONS
from repro.resilience import (
    CircuitBreakerBank,
    ConcurrencyLimitAdmission,
    ResiliencePolicy,
)
from repro.serving import (
    FixedTTL,
    PoissonProcess,
    ServingConfig,
    ServingSimulator,
    WarmPool,
)
from repro.telemetry.bus import EventBus
from repro.telemetry.config import TelemetryConfig, TelemetrySession
from repro.workloads import XAPIAN

EXEC = ExecutionTimeModel(
    coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
)
POLICY = StreamingPolicy(degree=4, batch_timeout_s=2.0)


def attached_auditor():
    bus = EventBus()
    return bus, InvariantAuditor().attach(bus)


# --------------------------------------------------------------------- #
# synthetic-bus planted bugs
# --------------------------------------------------------------------- #
def test_clean_lifecycle_is_clean():
    bus, auditor = attached_auditor()
    bus.publish("audit.arrival", 0.0, verdict="admitted")
    bus.publish("audit.arrival", 0.5, verdict="shed-admission")
    bus.publish("audit.dispatch", 1.0, dispatch=1, batch=1, warm=False, domain=0)
    bus.publish("audit.complete", 2.0, dispatch=1, n=1, exec_s=1.0, billed_s=1.1)
    report = auditor.finalize()
    assert report.ok
    assert report.events_seen == 4
    assert report.checks_run > 0


def test_billed_below_executed_is_flagged_online():
    bus, auditor = attached_auditor()
    bus.publish("audit.arrival", 0.0, verdict="admitted")
    bus.publish("audit.dispatch", 1.0, dispatch=1, batch=1, warm=True, domain=0)
    bus.publish("audit.complete", 2.0, dispatch=1, n=1, exec_s=2.0, billed_s=1.5)
    assert auditor.report.violations  # caught at the event, not at finalize
    assert auditor.finalize().violation_kinds() == ["billing-legality"]


def test_double_launch_and_unknown_termination():
    bus, auditor = attached_auditor()
    bus.publish("audit.dispatch", 1.0, dispatch=7, batch=2, warm=False, domain=0)
    bus.publish("audit.dispatch", 2.0, dispatch=7, batch=2, warm=False, domain=0)
    bus.publish("audit.crash", 3.0, dispatch=9, batch=2)
    kinds = auditor.report.violations
    assert [v.invariant for v in kinds] == [
        "dispatch-lifecycle", "dispatch-lifecycle"
    ]


def test_completion_with_wrong_batch_size():
    bus, auditor = attached_auditor()
    bus.publish("audit.arrival", 0.0, verdict="admitted")
    bus.publish("audit.arrival", 0.1, verdict="admitted")
    bus.publish("audit.dispatch", 1.0, dispatch=1, batch=2, warm=False, domain=0)
    bus.publish("audit.complete", 2.0, dispatch=1, n=3, exec_s=1.0, billed_s=1.0)
    report = auditor.finalize()
    assert "request-conservation" in report.violation_kinds()


def test_time_reversal_is_flagged():
    bus, auditor = attached_auditor()
    bus.publish("audit.tick", 5.0, backlog=0)
    bus.publish("audit.tick", 4.0, backlog=0)
    assert auditor.finalize().violation_kinds() == ["sim-time-monotonic"]


def test_rollback_without_apply():
    bus, auditor = attached_auditor()
    bus.publish("audit.remediation", 1.0, stage="apply", action="quarantine:2")
    bus.publish("audit.remediation", 2.0, stage="rollback", action="quarantine:2")
    bus.publish("audit.remediation", 3.0, stage="rollback", action="quarantine:2")
    assert auditor.finalize().violation_kinds() == ["remediation-pairing"]


def test_never_terminated_dispatch_flagged_at_finalize():
    bus, auditor = attached_auditor()
    bus.publish("audit.arrival", 0.0, verdict="admitted")
    bus.publish("audit.dispatch", 1.0, dispatch=1, batch=1, warm=False, domain=0)
    report = auditor.finalize()
    assert report.violation_kinds() == ["dispatch-lifecycle"]
    assert "never terminated" in report.violations[0].message


def test_finalize_is_idempotent():
    bus, auditor = attached_auditor()
    bus.publish("audit.dispatch", 1.0, dispatch=1, batch=1, warm=False, domain=0)
    first = auditor.finalize()
    again = auditor.finalize()
    assert first is again
    assert len(again.violations) == 1


def test_detach_restores_publish_nothing_state():
    bus, auditor = attached_auditor()
    for kind in AUDIT_KINDS:
        assert bus.has_kind_subscribers(kind)
    auditor.detach()
    for kind in AUDIT_KINDS:
        assert not bus.has_kind_subscribers(kind)


# --------------------------------------------------------------------- #
# real serving runs
# --------------------------------------------------------------------- #
def run_with_session(session, scenario_name="stormy", protected=True, seed=7):
    cfg = ServingConfig()
    resilience = None
    if protected:
        resilience = ResiliencePolicy(
            admission=ConcurrencyLimitAdmission(limit=48),
            breakers=CircuitBreakerBank(
                n_domains=cfg.fault_domains,
                rng=np.random.default_rng(seed),
                failure_threshold=3,
                recovery_s=60.0,
            ),
        )
    sim = ServingSimulator(
        GOOGLE_CLOUD_FUNCTIONS,
        XAPIAN,
        EXEC,
        pool=WarmPool(FixedTTL(120.0)),
        config=cfg,
        resilience=resilience,
        scenario=SCENARIOS[scenario_name],
        retry_policy=ExponentialBackoffRetry(max_retries=3),
        seed=seed,
        telemetry=session,
    )
    run = sim.run(PoissonProcess(3.0), POLICY, 400.0)
    return run, resilience


def test_real_stormy_run_audits_clean():
    session = TelemetrySession(
        TelemetryConfig(tracing=False, metrics=False, events=False)
    )
    auditor = InvariantAuditor().attach(session.bus)
    run, resilience = run_with_session(session)
    report = auditor.finalize(run, breakers=resilience.breakers)
    assert report.ok, report.summary()
    assert report.events_seen > run.n_requests  # arrivals + dispatch traffic


def test_no_auditor_means_no_audit_events():
    """The zero-cost gate: a full-telemetry session without an auditor
    must see zero audit.* events in its log (and the run is unchanged)."""
    session = TelemetrySession(TelemetryConfig())
    run, _ = run_with_session(session)
    kinds = {e.kind for e in session.event_log.events}
    assert kinds  # the ordinary event families did flow
    assert not any(k.startswith("audit.") for k in kinds)

    # Byte-identity against a fully untelemetered run.
    bare, _ = run_with_session(None)
    assert bare.signature() == run.signature()


def test_audited_run_is_byte_identical_to_unaudited():
    """Attaching the auditor must not perturb the simulation — it only
    observes. Signatures (counts, expense, p99, backlog) must match."""
    session = TelemetrySession(
        TelemetryConfig(tracing=False, metrics=False, events=False)
    )
    InvariantAuditor().attach(session.bus)
    audited, _ = run_with_session(session)
    bare, _ = run_with_session(None)
    assert audited.signature() == bare.signature()
