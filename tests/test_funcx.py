"""Tests for the FuncX on-prem substrate (paper Fig. 18)."""

import pytest

from repro.funcx import FuncXEndpoint, PodSpec, funcx_profile
from repro.funcx.pods import ClusterSpec
from repro.platform.base import ServerlessPlatform
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT


@pytest.fixture(scope="module")
def endpoint():
    return FuncXEndpoint(seed=61)


@pytest.fixture(scope="module")
def aws():
    return ServerlessPlatform(AWS_LAMBDA, seed=61)


def test_pod_spec_validation():
    with pytest.raises(ValueError):
        PodSpec(workers_per_pod=0)
    with pytest.raises(ValueError):
        PodSpec(cache_hit_install_fraction=0.0)


def test_cluster_spec_defaults_match_paper():
    cluster = ClusterSpec()
    assert cluster.nodes == 100
    assert cluster.total_cores == 1000


def test_profile_shape():
    profile = funcx_profile()
    assert profile.name == "funcx"
    assert profile.isolation_penalty > 1.0          # pods isolate worse
    assert profile.build_base_s < AWS_LAMBDA.build_base_s  # pods start faster
    assert profile.build_cache_factor < 1.0         # k8s image caching
    assert profile.per_request_usd == 0.0           # on-prem: no request fee


def test_funcx_scales_faster_than_lambda(endpoint, aws):
    """Paper Fig. 18: ~15% faster scaling at C=5000."""
    fx = endpoint.measure_scaling_time(5000)
    lam = aws.measure_scaling_time(5000)
    assert fx < lam
    assert 0.7 < fx / lam < 0.95


def test_funcx_packed_execution_slower_than_lambda(endpoint, aws):
    """Firecracker isolates better: packed instances run faster on Lambda."""
    from repro.platform.invoker import BurstSpec

    fx = endpoint.map(SORT, 500, packing_degree=8)
    lam = aws.run_burst(BurstSpec(app=SORT, concurrency=500, packing_degree=8))
    assert fx.mean_exec_seconds > lam.mean_exec_seconds


def test_funcx_map_runs_all_functions(endpoint):
    result = endpoint.map(SORT, 30, packing_degree=4)
    assert sum(r.n_packed for r in result.records) == 30


def test_funcx_no_lambda_timeout(endpoint):
    assert endpoint.profile.max_execution_seconds > 900.0


def test_funcx_propack_integration(endpoint):
    """ProPack mitigates FuncX's (smaller) bottleneck too."""
    from repro.baselines.nopack import run_unpacked
    from repro.core.propack import ProPack

    propack = ProPack(endpoint.platform)
    outcome = propack.run(SORT, 4000)
    baseline = run_unpacked(endpoint.platform, SORT, 4000)
    assert outcome.result.service_time() < baseline.service_time()
