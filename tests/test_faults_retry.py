"""Unit tests for retry policies, the retry budget, hedging, and the
token bucket — the pluggable resilience primitives of :mod:`repro.faults`."""

import numpy as np
import pytest

from repro.faults import (
    ExponentialBackoffRetry,
    FixedDelayRetry,
    HedgePolicy,
    ImmediateRetry,
    RetryBudget,
)
from repro.faults.throttle import TokenBucket


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


# --------------------------------------------------------------------- #
# Policies
# --------------------------------------------------------------------- #

def test_immediate_retry_matches_legacy_loop(rng):
    policy = ImmediateRetry(max_retries=2)
    assert policy.next_delay(1, 0.0, rng) == 0.0
    assert policy.next_delay(2, 0.0, rng) == 0.0
    assert policy.next_delay(3, 0.0, rng) is None  # budget exhausted


def test_fixed_delay(rng):
    policy = FixedDelayRetry(delay_s=1.5, max_retries=3)
    assert policy.next_delay(1, 0.0, rng) == 1.5
    assert policy.next_delay(3, 0.0, rng) == 1.5
    assert policy.next_delay(4, 0.0, rng) is None


def test_fixed_delay_validates():
    with pytest.raises(ValueError):
        FixedDelayRetry(delay_s=-1.0, max_retries=1)


def test_exponential_backoff_decorrelated_jitter_bounds(rng):
    policy = ExponentialBackoffRetry(base_s=0.2, cap_s=20.0, max_retries=100)
    prev = 0.0
    for attempt in range(1, 50):
        delay = policy.next_delay(attempt, prev, rng)
        # Decorrelated jitter: uniform in [base, 3 * max(prev, base)], capped.
        upper = min(20.0, 3.0 * max(prev, 0.2))
        assert 0.2 <= delay <= upper
        prev = delay


def test_exponential_backoff_caps(rng):
    policy = ExponentialBackoffRetry(base_s=5.0, cap_s=8.0, max_retries=100)
    delays = [policy.next_delay(i, 8.0, rng) for i in range(1, 30)]
    assert max(delays) <= 8.0
    assert policy.next_delay(101, 0.0, rng) is None


def test_exponential_backoff_validates():
    with pytest.raises(ValueError):
        ExponentialBackoffRetry(base_s=0.0)
    with pytest.raises(ValueError):
        ExponentialBackoffRetry(base_s=2.0, cap_s=1.0)


def test_policies_are_stateless_across_fresh(rng):
    policy = FixedDelayRetry(delay_s=1.0, max_retries=2)
    assert policy.fresh() is policy  # immutable policies share the instance


# --------------------------------------------------------------------- #
# Retry budget
# --------------------------------------------------------------------- #

def test_budget_caps_total_retries(rng):
    budget = RetryBudget(ImmediateRetry(max_retries=10), budget=3)
    # Three grants across *different* groups, then a global stop.
    assert budget.next_delay(1, 0.0, rng) == 0.0
    assert budget.next_delay(1, 0.0, rng) == 0.0
    assert budget.next_delay(1, 0.0, rng) == 0.0
    assert budget.spent == 3
    assert budget.next_delay(1, 0.0, rng) is None


def test_budget_defers_to_inner_policy(rng):
    budget = RetryBudget(ImmediateRetry(max_retries=1), budget=100)
    assert budget.next_delay(1, 0.0, rng) == 0.0
    assert budget.next_delay(2, 0.0, rng) is None  # inner gave up first
    assert budget.spent == 1  # a refusal costs nothing


def test_budget_fresh_resets_spend(rng):
    budget = RetryBudget(ImmediateRetry(max_retries=10), budget=1)
    assert budget.next_delay(1, 0.0, rng) == 0.0
    assert budget.next_delay(1, 0.0, rng) is None
    clone = budget.fresh()
    assert clone is not budget
    assert clone.spent == 0
    assert clone.next_delay(1, 0.0, rng) == 0.0


def test_budget_validates():
    with pytest.raises(ValueError):
        RetryBudget(ImmediateRetry(1), budget=-1)


# --------------------------------------------------------------------- #
# Hedging
# --------------------------------------------------------------------- #

def test_hedge_trigger_scales_reference():
    hedge = HedgePolicy(trigger_factor=2.0, max_hedges_per_group=1)
    assert hedge.trigger_seconds(10.0) == pytest.approx(20.0)


def test_hedge_validates():
    with pytest.raises(ValueError):
        HedgePolicy(trigger_factor=0.5)
    with pytest.raises(ValueError):
        HedgePolicy(max_hedges_per_group=-1)


# --------------------------------------------------------------------- #
# Token bucket
# --------------------------------------------------------------------- #

def test_bucket_burst_then_starve():
    bucket = TokenBucket(capacity=3, refill_per_s=1.0)
    assert all(bucket.try_acquire(0.0) for _ in range(3))
    assert not bucket.try_acquire(0.0)
    assert bucket.admitted == 3 and bucket.rejected == 1


def test_bucket_refills_continuously():
    bucket = TokenBucket(capacity=2, refill_per_s=2.0)
    assert bucket.try_acquire(0.0) and bucket.try_acquire(0.0)
    assert not bucket.try_acquire(0.1)   # only 0.2 tokens back
    assert bucket.try_acquire(0.5)       # 1.0 token accumulated
    assert bucket.seconds_until_token(0.5) == pytest.approx(0.5)


def test_bucket_never_exceeds_capacity():
    bucket = TokenBucket(capacity=2, refill_per_s=10.0)
    assert bucket.try_acquire(0.0) and bucket.try_acquire(0.0)
    # A long idle stretch refills to capacity, not beyond.
    assert bucket.try_acquire(100.0) and bucket.try_acquire(100.0)
    assert not bucket.try_acquire(100.0)


def test_bucket_rejects_clock_reversal():
    bucket = TokenBucket(capacity=1, refill_per_s=1.0)
    bucket.try_acquire(5.0)
    with pytest.raises(ValueError):
        bucket.try_acquire(4.0)


def test_bucket_validates():
    with pytest.raises(ValueError):
        TokenBucket(capacity=0, refill_per_s=1.0)
    with pytest.raises(ValueError):
        TokenBucket(capacity=1, refill_per_s=0.0)


# --------------------------------------------------------------------- #
# validated JSON round-trips
# --------------------------------------------------------------------- #
from repro.faults import retry_policy_from_dict, retry_policy_to_dict  # noqa: E402


class TestRetrySerialization:
    @pytest.mark.parametrize("policy", [
        ImmediateRetry(max_retries=3),
        FixedDelayRetry(delay_s=2.5, max_retries=1),
        ExponentialBackoffRetry(base_s=0.5, cap_s=10.0, max_retries=5),
        RetryBudget(ExponentialBackoffRetry(max_retries=4), budget=7),
        RetryBudget(RetryBudget(ImmediateRetry(), budget=3), budget=9),
    ])
    def test_round_trip_preserves_behaviour(self, policy, rng):
        clone = retry_policy_from_dict(retry_policy_to_dict(policy))
        assert type(clone) is type(policy)
        assert retry_policy_to_dict(clone) == retry_policy_to_dict(policy)
        # Behavioural equality where it matters: identical delay schedule.
        a, b = policy.fresh(), clone.fresh()
        prev_a = prev_b = 0.0
        for attempt in range(1, 8):
            da = a.next_delay(attempt, prev_a, np.random.default_rng(42))
            db = b.next_delay(attempt, prev_b, np.random.default_rng(42))
            assert da == db
            if da is None:
                break
            prev_a, prev_b = da, db

    def test_budget_excludes_runtime_spend(self):
        budget = RetryBudget(ImmediateRetry(), budget=2)
        gen = np.random.default_rng(0)
        budget.next_delay(1, 0.0, gen)
        payload = retry_policy_to_dict(budget)
        assert "spent" not in payload
        assert retry_policy_from_dict(payload).spent == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown retry policy kind"):
            retry_policy_from_dict({"kind": "telepathic"})

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError):
            retry_policy_from_dict({"max_retries": 2})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            retry_policy_from_dict({"kind": "immediate", "max_retries": 2,
                                    "surprise": True})

    def test_invalid_values_rejected_by_constructor_validation(self):
        with pytest.raises(ValueError):
            retry_policy_from_dict({"kind": "fixed-delay", "delay_s": -1.0,
                                    "max_retries": 2})
        with pytest.raises(ValueError):
            retry_policy_from_dict({"kind": "budget", "budget": -1,
                                    "inner": {"kind": "immediate",
                                              "max_retries": 2}})

    def test_unserializable_policy_rejected(self):
        class Odd:
            pass

        with pytest.raises(ValueError, match="cannot serialize"):
            retry_policy_to_dict(Odd())
