"""Byte-identity of the three kernel modes (scalar / batched / fluid).

The refactor's correctness contract: ``batched`` draws RNG values through
the block-buffered facade (same floats, fewer Generator calls — see
``tests/test_batched_draws.py`` for the facade's own identity suite) and
``fluid`` replays eligible bursts in closed form. Neither may change a
single bit of any result, so every test here runs the identical workload
under two or three modes and asserts full equality — records, expense,
fault stats, signatures — not approximate agreement.
"""

import pytest

from repro.chaos.auditor import InvariantAuditor
from repro.core.models import ExecutionTimeModel
from repro.engine.fluid import run_fluid_aggregates
from repro.extensions.mixed import MixedPacker
from repro.extensions.mixed_sim import MixedBurstSimulator
from repro.extensions.streaming import StreamingPolicy
from repro.faults.retry import ExponentialBackoffRetry, HedgePolicy
from repro.faults.scenario import FaultScenario
from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.providers import AWS_LAMBDA, GOOGLE_CLOUD_FUNCTIONS
from repro.serving import FixedTTL, PoissonProcess, ServingSimulator, WarmPool
from repro.telemetry import TelemetryConfig, TelemetrySession
from repro.workloads import SORT, VIDEO, XAPIAN

MODES = ("scalar", "batched", "fluid")

FAULTS = FaultScenario(
    name="modes",
    crash_rate=0.08,
    straggler_rate=0.05,
    throttle_capacity=128,
    throttle_refill_per_s=800.0,
)


def _burst(mode, spec, provider=AWS_LAMBDA, seed=77):
    # repetition pinned so the RNG family is independent of call order
    platform = ServerlessPlatform(provider, seed=seed, kernel_mode=mode)
    return platform.run_burst(spec, repetition=0)


@pytest.mark.parametrize(
    "spec",
    [
        BurstSpec(app=SORT, concurrency=500),
        BurstSpec(app=VIDEO, concurrency=1000, packing_degree=8),
        BurstSpec(app=SORT, concurrency=2000, wave_size=300),
    ],
    ids=["plain", "packed", "waved"],
)
def test_clean_burst_identical_across_all_modes(spec):
    """Fault-free bursts are fluid-eligible: all three modes must agree on
    every field of the RunResult (dataclass equality is recursive through
    records, expense, and fault stats)."""
    scalar, batched, fluid = (_burst(m, spec) for m in MODES)
    assert scalar == batched
    assert batched == fluid


def test_faulted_burst_scalar_batched_identical_and_fluid_falls_back():
    """With faults the fluid path is ineligible — mode='fluid' must fall
    back to the event loop and still match scalar byte-for-byte."""
    spec = BurstSpec(
        app=SORT,
        concurrency=800,
        scenario=FAULTS,
        retry_policy=ExponentialBackoffRetry(base_s=0.05, max_retries=3),
    )
    scalar, batched, fluid = (_burst(m, spec) for m in MODES)
    assert scalar.fault_stats.signature() == batched.fault_stats.signature()
    assert scalar == batched == fluid
    assert scalar.fault_stats.crashed_attempts > 0  # the scenario bit


def test_hedged_burst_identical_across_modes():
    spec = BurstSpec(
        app=XAPIAN,
        concurrency=400,
        scenario=FaultScenario(name="strag", straggler_rate=0.2),
        hedge=HedgePolicy(trigger_factor=1.5),
    )
    scalar, batched, fluid = (_burst(m, spec) for m in MODES)
    assert scalar == batched == fluid
    assert scalar.fault_stats.hedged_attempts > 0


def test_second_provider_identical_across_modes():
    spec = BurstSpec(app=VIDEO, concurrency=600, packing_degree=4)
    results = [_burst(m, spec, provider=GOOGLE_CLOUD_FUNCTIONS) for m in MODES]
    assert results[0] == results[1] == results[2]


def test_fluid_aggregates_match_materialized_result():
    """The million-scale aggregate replay must reproduce the materialized
    run's totals exactly — same arithmetic over the same floats."""
    spec = BurstSpec(app=SORT, concurrency=1500, wave_size=400)
    platform = ServerlessPlatform(AWS_LAMBDA, seed=42, kernel_mode="batched")
    want = platform.run_burst(spec, repetition=0)

    from repro.engine.burst import BurstDispatchKernel  # build a twin kernel
    platform2 = ServerlessPlatform(AWS_LAMBDA, seed=42, kernel_mode="fluid")
    # Drive the aggregates entry point through a real kernel the same way
    # BurstInvoker does, by intercepting run(): simplest faithful route is
    # a fluid-mode full run (byte-identical, asserted above) plus the
    # aggregate twin for the totals.
    got_full = platform2.run_burst(spec, repetition=0)
    assert got_full == want

    class _Capture(Exception):
        pass

    captured = {}
    orig = BurstDispatchKernel.run

    def capture(self, spec_, image):
        captured["aggregates"] = run_fluid_aggregates(self, spec_, image)
        raise _Capture

    BurstDispatchKernel.run = capture
    try:
        platform3 = ServerlessPlatform(AWS_LAMBDA, seed=42, kernel_mode="fluid")
        with pytest.raises(_Capture):
            platform3.run_burst(spec, repetition=0)
    finally:
        BurstDispatchKernel.run = orig

    agg = captured["aggregates"]
    assert agg.n_records == want.n_instances
    assert agg.n_warm_starts == sum(1 for r in want.records if r.warm_start)
    assert agg.scaling_time_s == want.scaling_time
    assert agg.makespan_s == want.service_time()
    assert agg.expense == want.expense
    assert agg.total_billed_gb_seconds == want.fault_stats.total_billed_gb_seconds


def test_fluid_aggregates_rejects_ineligible_burst():
    from repro.engine.burst import BurstDispatchKernel

    spec = BurstSpec(app=SORT, concurrency=100, scenario=FAULTS)

    class _Capture(Exception):
        pass

    orig = BurstDispatchKernel.run

    def capture(self, spec_, image):
        with pytest.raises(ValueError, match="not fluid-eligible"):
            run_fluid_aggregates(self, spec_, image)
        raise _Capture

    BurstDispatchKernel.run = capture
    try:
        with pytest.raises(_Capture):
            ServerlessPlatform(AWS_LAMBDA, seed=1).run_burst(spec, repetition=0)
    finally:
        BurstDispatchKernel.run = orig


# --------------------------------------------------------------------- #
# Serving / mixed-sim / chaos-audited consumers: same modes, same bits.
# --------------------------------------------------------------------- #

_EXEC = ExecutionTimeModel(
    coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
)


def _serving_run(mode, telemetry=None):
    sim = ServingSimulator(
        AWS_LAMBDA,
        XAPIAN,
        _EXEC,
        pool=WarmPool(FixedTTL(60.0)),
        seed=11,
        telemetry=telemetry,
        kernel_mode=mode,
    )
    return sim.run(
        PoissonProcess(6.0),
        StreamingPolicy(degree=6, batch_timeout_s=4.0),
        1800.0,
    )


def test_serving_scalar_batched_identical():
    assert _serving_run("scalar").signature() == _serving_run("batched").signature()


def test_serving_chaos_audited_identical_and_clean():
    """Mode must not change results even with a live auditor subscribed —
    and the audited runs must be violation-free under both modes."""
    signatures = []
    for mode in ("scalar", "batched"):
        session = TelemetrySession(
            TelemetryConfig(tracing=False, metrics=False, events=False)
        )
        auditor = InvariantAuditor().attach(session.bus)
        result = _serving_run(mode, telemetry=session)
        report = auditor.finalize(result)
        assert report.ok, report.summary()
        assert report.events_seen > 0
        signatures.append(result.signature())
    assert signatures[0] == signatures[1]


def test_mixed_sim_scalar_batched_identical():
    packer = MixedPacker(AWS_LAMBDA)
    plan = packer.pack_mixed({SORT: 60, VIDEO: 40})
    results = [
        MixedBurstSimulator(AWS_LAMBDA, seed=121, kernel_mode=m).run(plan)
        for m in ("scalar", "batched")
    ]
    assert results[0].run == results[1].run
    assert results[0].storage == results[1].storage
