"""Tests for the streaming (sustained-arrival) packing extension."""

import pytest

from repro.core.models import ExecutionTimeModel
from repro.extensions.streaming import (
    StreamingDispatcher,
    StreamingPlanner,
    StreamingPolicy,
)
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import XAPIAN

EXEC = ExecutionTimeModel(
    coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
)


@pytest.fixture()
def dispatcher():
    return StreamingDispatcher(AWS_LAMBDA, XAPIAN, EXEC, seed=161)


# --------------------------------------------------------------------- #
# Policy and dispatcher mechanics
# --------------------------------------------------------------------- #

def test_policy_validation():
    with pytest.raises(ValueError):
        StreamingPolicy(degree=0, batch_timeout_s=1.0)
    with pytest.raises(ValueError):
        StreamingPolicy(degree=1, batch_timeout_s=-1.0)


def test_dispatcher_input_validation(dispatcher):
    policy = StreamingPolicy(degree=2, batch_timeout_s=1.0)
    with pytest.raises(ValueError):
        dispatcher.run(policy, arrival_rate_per_s=0.0, n_requests=10)
    with pytest.raises(ValueError):
        dispatcher.run(policy, arrival_rate_per_s=1.0, n_requests=0)


def test_every_request_is_served(dispatcher):
    policy = StreamingPolicy(degree=4, batch_timeout_s=2.0)
    result = dispatcher.run(policy, arrival_rate_per_s=5.0, n_requests=200)
    assert len(result.sojourn_times) == 200
    assert sum(result.batch_sizes) == 200


def test_batches_never_exceed_degree(dispatcher):
    policy = StreamingPolicy(degree=4, batch_timeout_s=2.0)
    result = dispatcher.run(policy, arrival_rate_per_s=10.0, n_requests=300)
    assert max(result.batch_sizes) <= 4
    # Heavy traffic fills most batches.
    assert result.mean_batch_size > 2.5


def test_timeout_flushes_partial_batches(dispatcher):
    """At a trickle arrival rate, the timeout dispatches undersized batches."""
    policy = StreamingPolicy(degree=8, batch_timeout_s=0.5)
    result = dispatcher.run(policy, arrival_rate_per_s=0.2, n_requests=40)
    assert result.mean_batch_size < 2.0


def test_degree_one_has_no_batching_delay(dispatcher):
    policy = StreamingPolicy(degree=1, batch_timeout_s=0.0)
    result = dispatcher.run(policy, arrival_rate_per_s=2.0, n_requests=100)
    # Sojourn = start latency + ET(1) (±noise); no queueing for a batch.
    floor = EXEC.predict(1)
    assert result.mean_sojourn_s < floor * 1.2 + dispatcher.cold_start_s


def test_warm_reuse_avoids_cold_starts(dispatcher):
    policy = StreamingPolicy(degree=2, batch_timeout_s=1.0)
    result = dispatcher.run(policy, arrival_rate_per_s=5.0, n_requests=200)
    assert result.cold_starts < 5  # first batch cold, then warm reuse


def test_packing_cuts_cost_per_request(dispatcher):
    solo = dispatcher.run(
        StreamingPolicy(degree=1, batch_timeout_s=0.0), 5.0, 200
    )
    packed = dispatcher.run(
        StreamingPolicy(degree=8, batch_timeout_s=3.0), 5.0, 200, repetition=1
    )
    assert packed.cost_per_request_usd(AWS_LAMBDA) < 0.5 * solo.cost_per_request_usd(
        AWS_LAMBDA
    )


def test_packing_adds_batching_latency(dispatcher):
    solo = dispatcher.run(
        StreamingPolicy(degree=1, batch_timeout_s=0.0), 2.0, 150
    )
    packed = dispatcher.run(
        StreamingPolicy(degree=10, batch_timeout_s=10.0), 2.0, 150, repetition=1
    )
    assert packed.mean_sojourn_s > solo.mean_sojourn_s


# --------------------------------------------------------------------- #
# Planner
# --------------------------------------------------------------------- #

def test_planner_loose_bound_packs_deep():
    planner = StreamingPlanner(AWS_LAMBDA, XAPIAN, EXEC)
    policy = planner.plan(arrival_rate_per_s=10.0, qos_sojourn_s=500.0)
    assert policy.degree > 10


def test_planner_tight_bound_packs_shallow():
    planner = StreamingPlanner(AWS_LAMBDA, XAPIAN, EXEC)
    loose = planner.plan(arrival_rate_per_s=10.0, qos_sojourn_s=500.0)
    tight = planner.plan(arrival_rate_per_s=10.0, qos_sojourn_s=16.0)
    assert tight.degree < loose.degree


def test_planner_impossible_bound_falls_back_to_solo():
    planner = StreamingPlanner(AWS_LAMBDA, XAPIAN, EXEC)
    policy = planner.plan(arrival_rate_per_s=1.0, qos_sojourn_s=0.5)
    assert policy.degree == 1


def test_planner_bound_validation():
    planner = StreamingPlanner(AWS_LAMBDA, XAPIAN, EXEC)
    with pytest.raises(ValueError):
        planner.plan(arrival_rate_per_s=1.0, qos_sojourn_s=0.0)


def test_planned_policy_meets_qos_in_simulation(dispatcher):
    """The analytic plan must hold up in the discrete-event simulation."""
    planner = StreamingPlanner(AWS_LAMBDA, XAPIAN, EXEC)
    rate, bound = 8.0, 25.0
    policy = planner.plan(arrival_rate_per_s=rate, qos_sojourn_s=bound)
    assert policy.degree > 1  # the bound leaves room to pack
    result = dispatcher.run(policy, arrival_rate_per_s=rate, n_requests=400)
    assert result.p95_sojourn_s <= bound
