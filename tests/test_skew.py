"""Tests for heterogeneous per-function work (input skew)."""

import numpy as np
import pytest

from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT


@pytest.fixture(scope="module")
def platform():
    return ServerlessPlatform(AWS_LAMBDA, seed=91)


def test_zero_skew_is_default_and_neutral(platform):
    a = platform.run_burst(BurstSpec(app=SORT, concurrency=50), repetition=5)
    b = platform.run_burst(
        BurstSpec(app=SORT, concurrency=50, skew_cv=0.0), repetition=5
    )
    assert a.service_time() == b.service_time()


def test_negative_skew_rejected():
    with pytest.raises(ValueError):
        BurstSpec(app=SORT, concurrency=10, skew_cv=-0.1)


def test_skew_preserves_mean_at_degree_one(platform):
    """Unit-mean draws: unpacked mean execution time is roughly unchanged."""
    plain = platform.run_burst(BurstSpec(app=SORT, concurrency=400), repetition=1)
    skewed = platform.run_burst(
        BurstSpec(app=SORT, concurrency=400, skew_cv=0.3), repetition=1
    )
    assert skewed.mean_exec_seconds == pytest.approx(
        plain.mean_exec_seconds, rel=0.05
    )


def test_skew_widens_execution_spread(platform):
    plain = platform.run_burst(BurstSpec(app=SORT, concurrency=300), repetition=2)
    skewed = platform.run_burst(
        BurstSpec(app=SORT, concurrency=300, skew_cv=0.5), repetition=2
    )
    def spread(result):
        execs = [r.exec_seconds for r in result.records]
        return float(np.std(execs) / np.mean(execs))

    assert spread(skewed) > 5 * spread(plain)


def test_packed_instances_run_at_slowest_function(platform):
    """Straggler effect: packed execution inflates beyond the homogeneous
    prediction because the instance waits for its slowest function."""
    plain = platform.run_burst(
        BurstSpec(app=SORT, concurrency=300, packing_degree=10), repetition=3
    )
    skewed = platform.run_burst(
        BurstSpec(app=SORT, concurrency=300, packing_degree=10, skew_cv=0.5),
        repetition=3,
    )
    assert skewed.mean_exec_seconds > 1.3 * plain.mean_exec_seconds


def test_straggler_penalty_grows_with_degree(platform):
    """E[max of n] grows with n: higher packing suffers more from skew."""
    def inflation(degree):
        plain = platform.run_burst(
            BurstSpec(app=SORT, concurrency=300, packing_degree=degree),
            repetition=4,
        )
        skewed = platform.run_burst(
            BurstSpec(app=SORT, concurrency=300, packing_degree=degree, skew_cv=0.5),
            repetition=4,
        )
        return skewed.mean_exec_seconds / plain.mean_exec_seconds

    assert inflation(10) > inflation(2) > 1.0
