"""Tests for the P² streaming quantiles and the windowed SLO tracker."""

import numpy as np
import pytest

from repro.serving.quantiles import P2Quantile, QuantileDigest, WindowedSLOTracker


# --------------------------------------------------------------------- #
# P² estimator
# --------------------------------------------------------------------- #

def test_rejects_bad_quantile():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


def test_value_requires_observations():
    with pytest.raises(ValueError):
        P2Quantile(0.5).value


def test_small_counts_are_exact_order_statistics():
    est = P2Quantile(0.5)
    est.add(30.0)
    assert est.value == 30.0
    est.add(10.0)
    assert est.value == 10.0  # ceil(0.5*2) = 1st of sorted
    est.add(20.0)
    assert est.value == 20.0


def test_five_observations_exact():
    est = P2Quantile(0.95)
    for x in (5.0, 1.0, 4.0, 2.0, 3.0):
        est.add(x)
    assert est.value == 5.0  # ceil(0.95*5) = 5th of sorted


@pytest.mark.parametrize(
    ("p", "sampler"),
    [
        (0.5, lambda g, n: g.random(n)),                 # uniform
        (0.95, lambda g, n: g.exponential(1.0, n)),      # heavy-ish tail
        (0.99, lambda g, n: 10.0 + g.standard_normal(n)),  # shifted normal
    ],
    ids=["uniform-p50", "exponential-p95", "normal-p99"],
)
def test_p2_within_two_percent_of_exact_on_a_million_samples(p, sampler):
    gen = np.random.default_rng(2023)
    samples = sampler(gen, 1_000_000)
    est = P2Quantile(p)
    for x in samples.tolist():
        est.add(x)
    exact = float(np.quantile(samples, p))
    assert est.value == pytest.approx(exact, rel=0.02)
    assert est.count == 1_000_000


def test_constant_stream_converges_to_the_constant():
    est = P2Quantile(0.99)
    for _ in range(1000):
        est.add(7.0)
    assert est.value == pytest.approx(7.0)


def test_markers_stay_ordered_under_adversarial_input():
    est = P2Quantile(0.95)
    # Alternating extremes stress the parabolic adjustment.
    for i in range(10_000):
        est.add(float(i % 7) * (-1.0 if i % 2 else 1.0))
    assert est._q == sorted(est._q)


# --------------------------------------------------------------------- #
# Digest
# --------------------------------------------------------------------- #

def test_digest_tracks_default_quantiles():
    digest = QuantileDigest()
    gen = np.random.default_rng(5)
    xs = gen.exponential(1.0, 50_000)
    for x in xs.tolist():
        digest.add(x)
    assert digest.count == 50_000
    for p in QuantileDigest.DEFAULT_QUANTILES:
        assert digest.quantile(p) == pytest.approx(float(np.quantile(xs, p)), rel=0.05)
    assert set(digest.summary()) == {"p50", "p95", "p99"}


# --------------------------------------------------------------------- #
# Windowed SLO tracker
# --------------------------------------------------------------------- #

def test_slo_validation():
    with pytest.raises(ValueError):
        WindowedSLOTracker(0.0)
    with pytest.raises(ValueError):
        WindowedSLOTracker(1.0, window_s=10.0, bucket_s=60.0)
    with pytest.raises(ValueError):
        WindowedSLOTracker(1.0).record(-1.0, 0.5)


def test_empty_tracker_reports_zero():
    tracker = WindowedSLOTracker(1.0)
    assert tracker.violation_fraction == 0.0
    assert tracker.worst_window() == (0.0, 0.0)
    assert tracker.bucket_series() == []


def test_violation_fraction_counts_breaches():
    tracker = WindowedSLOTracker(10.0, window_s=120.0, bucket_s=60.0)
    for t, sojourn in ((5.0, 2.0), (65.0, 12.0), (70.0, 9.0), (130.0, 30.0)):
        tracker.record(t, sojourn)
    assert tracker.total == 4
    assert tracker.violation_fraction == pytest.approx(0.5)


def test_worst_window_localizes_the_bad_hour():
    tracker = WindowedSLOTracker(1.0, window_s=120.0, bucket_s=60.0)
    for minute in range(10):
        t = minute * 60.0 + 1.0
        # Minutes 6-7 are the incident: everything breaches there.
        tracker.record(t, 5.0 if minute in (6, 7) else 0.5)
        tracker.record(t + 1.0, 5.0 if minute in (6, 7) else 0.5)
    start, fraction = tracker.worst_window()
    assert start == 6 * 60.0
    assert fraction == 1.0


def test_bucket_series_reports_mean_sojourn():
    tracker = WindowedSLOTracker(10.0, window_s=60.0, bucket_s=60.0)
    tracker.record(10.0, 2.0)
    tracker.record(20.0, 4.0)
    ((start, count, violations, mean),) = tracker.bucket_series()
    assert (start, count, violations) == (0.0, 2, 0)
    assert mean == pytest.approx(3.0)
