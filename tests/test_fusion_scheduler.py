"""FusionScheduler: fused execution, tenant attribution, and re-billing.

Fused plans run on the exact mixed-app engine path, so per-seed byte
determinism is inherited; what these tests pin down is the ledger on top:
per-tenant bills always sum to the run's expense breakdown, a single
tenant gets the whole bill, and the same records re-billed under a
coarser schedule never get cheaper.
"""

import pytest

from repro.chaos.invariants import check_tenant_billing_attribution
from repro.fusion.scheduler import FusionScheduler, attribute_expense, rebill
from repro.fusion.spec import FusionGroup, FusionPlan
from repro.platform.billing import BillingModel
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT, STATELESS_COST, VIDEO


def two_tenant_plan():
    fused = FusionGroup((("a", SORT, 2), ("b", STATELESS_COST, 3)))
    solo = FusionGroup((("a", SORT, 5),))
    return FusionPlan(bundles=((fused, 4), (solo, 3)))


def test_execution_is_byte_deterministic():
    plan = two_tenant_plan()
    r1 = FusionScheduler(AWS_LAMBDA, seed=7).execute(plan)
    r2 = FusionScheduler(AWS_LAMBDA, seed=7).execute(plan)
    assert r1.run.records == r2.run.records
    assert r1.expense == r2.expense
    assert r1.bills == r2.bills
    r3 = FusionScheduler(AWS_LAMBDA, seed=8).execute(plan)
    assert r1.run.records != r3.run.records


def test_bills_sum_to_the_expense_breakdown():
    report = FusionScheduler(AWS_LAMBDA, seed=3).execute(two_tenant_plan())
    assert check_tenant_billing_attribution(
        report.expense_usd, report.bills
    ) == []
    assert sum(b.total_usd for b in report.bills) == pytest.approx(
        report.expense_usd, rel=1e-12
    )
    # Component-wise conservation, not just the total.
    assert sum(b.compute_usd for b in report.bills) == pytest.approx(
        report.expense.compute_usd, rel=1e-12
    )
    assert sum(b.requests_usd for b in report.bills) == pytest.approx(
        report.expense.requests_usd, rel=1e-12
    )


def test_single_tenant_gets_the_whole_bill():
    plan = FusionPlan(bundles=((FusionGroup((("solo", SORT, 4),)), 5),))
    report = FusionScheduler(AWS_LAMBDA, seed=3).execute(plan)
    assert len(report.bills) == 1
    bill = report.bill_for("solo")
    assert bill.total_usd == pytest.approx(report.expense_usd, rel=1e-12)
    assert bill.functions == 20
    with pytest.raises(KeyError):
        report.bill_for("nobody")


def test_attribution_follows_memory_footprint():
    """In a fused instance, the tenant holding more memory pays a larger
    share of that instance's compute and request fee."""
    fused = FusionGroup((("big", VIDEO, 4), ("small", STATELESS_COST, 1)))
    plan = FusionPlan(bundles=((fused, 3),))
    report = FusionScheduler(AWS_LAMBDA, seed=1).execute(plan)
    weights = fused.tenant_weights()
    big, small = report.bill_for("big"), report.bill_for("small")
    assert big.compute_usd / small.compute_usd == pytest.approx(
        weights["big"] / weights["small"], rel=1e-9
    )
    assert big.requests_usd > small.requests_usd


def test_rebill_changes_dollars_not_dynamics():
    plan = two_tenant_plan()
    exact = FusionScheduler(AWS_LAMBDA, seed=11).execute(plan)
    rounded_profile = AWS_LAMBDA.with_overrides(
        billing_granularity_s=0.1, min_billed_duration_s=0.1
    )
    rounded = rebill(exact, rounded_profile)
    # Same records, same timings — only the dollars moved, and only up.
    assert rounded.run.records == exact.run.records
    assert rounded.service_time == exact.service_time
    assert rounded.expense_usd >= exact.expense_usd
    assert check_tenant_billing_attribution(
        rounded.expense_usd, rounded.bills
    ) == []
    # Re-billing under the original schedule is the identity.
    again = rebill(exact, AWS_LAMBDA)
    assert again.expense == exact.expense
    assert again.bills == exact.bills


def test_rebill_matches_direct_execution_under_that_profile():
    plan = two_tenant_plan()
    rounded_profile = AWS_LAMBDA.with_overrides(
        billing_granularity_s=0.1, min_billed_duration_s=0.1
    )
    direct = FusionScheduler(rounded_profile, seed=5).execute(plan)
    rebilled = rebill(
        FusionScheduler(AWS_LAMBDA, seed=5).execute(plan), rounded_profile
    )
    assert rebilled.expense == direct.expense
    assert rebilled.bills == direct.bills


def test_attribution_detects_plan_record_drift():
    plan = two_tenant_plan()
    report = FusionScheduler(AWS_LAMBDA, seed=2).execute(plan)
    # A different plan whose expansion disagrees with the records must be
    # rejected loudly, never silently mis-billed.
    wrong = FusionPlan(bundles=((FusionGroup((("a", SORT, 1),)), 7),))
    with pytest.raises(RuntimeError, match="drifted"):
        attribute_expense(
            wrong, report.run.records, report.storage, BillingModel(AWS_LAMBDA)
        )
