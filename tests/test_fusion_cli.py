"""End-to-end ``propack-fusion`` CLI: plan, compare, dump, errors."""

import json

from repro.fusion.cli import main
from repro.harness.reproduce import reproduce_run

#: Small but remainder-bearing scale keeps each mode sub-second.
FAST = ["--mix", "trio", "--scale", "23"]


def test_plan_prints_bundles_and_score(capsys):
    assert main(["plan", *FAST, "--mode", "both"]) == 0
    out = capsys.readouterr().out
    assert "mode=both mix=trio scale=23" in out
    assert "instances:" in out
    assert "predicted:" in out
    assert "joint=" in out


def test_compare_all_three_modes(capsys):
    assert main(["compare", *FAST, "--rounded"]) == 0
    out = capsys.readouterr().out
    for mode in ("propack", "fusion", "both"):
        assert mode in out
    assert "billing=rounded" in out
    assert "cheaper per 1k functions" in out


def test_compare_json_is_parseable(capsys):
    assert main(["compare", *FAST, "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert [row["mode"] for row in rows] == ["propack", "fusion", "both"]
    assert all(row["conserved"] for row in rows)
    assert all(row["constraint_violations"] == 0 for row in rows)


def test_compare_persists_reproducible_manifests(tmp_path, capsys):
    root = tmp_path / "results"
    assert main(["compare", *FAST, "--rounded", "--root", str(root)]) == 0
    capsys.readouterr()
    run_dirs = sorted((root / "fusion").iterdir())
    assert len(run_dirs) == 3
    for run_dir in run_dirs:
        report = reproduce_run(run_dir / "manifest.json")
        assert report.matched, report.diffs


def test_dump_emits_canonical_json(capsys):
    assert main(["dump", *FAST, "--granularity", "0.1"]) == 0
    resolved = json.loads(capsys.readouterr().out)
    assert resolved["billing_granularity_s"] == 0.1
    assert resolved["demands"]
    assert resolved["platform_profile"]["name"]


def test_bad_inputs_exit_2(capsys):
    assert main(["plan", "--mix", "trio", "--scale", "0"]) == 2
    assert main(["dump", "--platform", "nope"]) == 2
