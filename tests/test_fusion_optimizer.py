"""FusionOptimizer: the fusion-aware Eq. 1–7 planner.

The central guarantee: the greedy merge search only ever accepts a merge
that *strictly* improves the joint fractional score, so the fused plan is
never worse than the unfused baseline under the planner's own models —
and when the interference matrix makes every fusion hostile, the baseline
comes back untouched.
"""

import pytest

from repro.fusion.optimizer import (
    FusionOptimizer,
    analytic_exec_model,
    default_scaling_model,
)
from repro.fusion.spec import FusionConstraints, TenantDemand
from repro.interference.model import PairwiseInterference
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import ALL_APPS, SORT, STATELESS_COST, VIDEO
from repro.core.optimizer import PackingOptimizer

#: Counts chosen to leave remainder groups at the ProPack degrees — the
#: raw material platform fusion consolidates.
TRIO = (
    TenantDemand("analytics", SORT, 203),
    TenantDemand("media", VIDEO, 152),
    TenantDemand("api", STATELESS_COST, 305),
)


def make_optimizer(**kwargs):
    return FusionOptimizer(AWS_LAMBDA, TRIO, **kwargs)


# --------------------------------------------------------------------- #
# baselines
# --------------------------------------------------------------------- #
def test_propack_degree_matches_core_optimizer():
    opt = make_optimizer()
    for demand in TRIO:
        expected = PackingOptimizer(
            analytic_exec_model(demand.app, AWS_LAMBDA.isolation_penalty),
            default_scaling_model(AWS_LAMBDA),
            demand.app,
            AWS_LAMBDA,
            demand.count,
        ).optimal_joint(0.5, 0.5)
        assert opt.propack_degree(demand) == expected


def test_baseline_plan_covers_every_function():
    opt = make_optimizer()
    for user_side in (True, False):
        plan = opt.baseline_plan(user_side)
        assert plan.n_functions == sum(d.count for d in TRIO)
        assert plan.fused_instances == 0
        assert plan.tenant_functions() == {
            d.tenant: d.count for d in TRIO
        }
    assert opt.baseline_plan(False).n_instances == sum(d.count for d in TRIO)


# --------------------------------------------------------------------- #
# the never-worse guarantee
# --------------------------------------------------------------------- #
def test_merges_strictly_improve_the_joint_score():
    decision = make_optimizer().optimize(user_side=True)
    assert decision.merges > 0
    assert decision.score.joint < 1.0
    assert decision.plan.n_instances < decision.baseline.n_instances
    assert decision.plan.n_functions == decision.baseline.n_functions


def test_never_worse_than_baseline():
    decision = make_optimizer().optimize(user_side=True)
    assert decision.score.joint <= 1.0 + 1e-12


def test_hostile_matrix_returns_the_baseline_untouched():
    """When every cross-pair is strongly hostile and even self-merges
    explode the exponent, no merge can improve the score — the plan must
    be the unfused ProPack baseline, bundle for bundle."""
    names = [d.app.name for d in TRIO]
    hostile = PairwiseInterference(
        AWS_LAMBDA.isolation_penalty,
        affinity={(v, a): 50.0 for v in names for a in names},
    )
    decision = make_optimizer(model=hostile).optimize(user_side=True)
    assert decision.merges == 0
    assert decision.plan.mode == "propack"
    assert [
        (g.signature(), r) for g, r in decision.plan.bundles
    ] == [(g.signature(), r) for g, r in decision.baseline.bundles]


# --------------------------------------------------------------------- #
# constraints shape the search space
# --------------------------------------------------------------------- #
def test_chosen_plan_respects_constraints():
    opt = make_optimizer()
    for user_side in (True, False):
        decision = opt.optimize(user_side)
        assert decision.plan.constraint_violations(
            opt.constraints, opt.model
        ) == []


def test_strict_isolation_never_mixes_tenants():
    constraints = FusionConstraints(
        max_memory_mb=AWS_LAMBDA.max_memory_mb,
        max_execution_seconds=AWS_LAMBDA.max_execution_seconds,
        isolation="strict",
    )
    decision = make_optimizer(constraints=constraints).optimize(user_side=True)
    for group, _ in decision.plan.bundles:
        assert len(group.tenants) == 1


def test_self_merge_packs_from_unpacked_baseline():
    """Pure platform-side fusion: starting from degree-1 functions, the
    self-merge move must discover same-app packing on its own."""
    decision = make_optimizer().optimize(user_side=False)
    assert decision.merges > 0
    assert decision.plan.n_instances < decision.baseline.n_instances
    assert any(g.size > 1 for g, _ in decision.plan.bundles)


def test_search_is_deterministic():
    a = make_optimizer().optimize(user_side=True)
    b = make_optimizer().optimize(user_side=True)
    assert [
        (g.signature(), r) for g, r in a.plan.bundles
    ] == [(g.signature(), r) for g, r in b.plan.bundles]
    assert a.score == b.score


# --------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------- #
def test_weight_validation():
    with pytest.raises(ValueError, match="sum to 1"):
        make_optimizer(w_service=0.5, w_expense=0.6)
    with pytest.raises(ValueError, match="W_S"):
        make_optimizer(w_service=1.5, w_expense=-0.5)
    with pytest.raises(ValueError, match="at least one tenant"):
        FusionOptimizer(AWS_LAMBDA, [])


def test_all_apps_have_analytic_models():
    for app in ALL_APPS.values():
        model = analytic_exec_model(app, AWS_LAMBDA.isolation_penalty)
        assert model.predict(1) == pytest.approx(app.base_seconds)
