"""Tests for memory-proportional CPU (Lambda semantics)."""

import pytest

from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT, VIDEO


@pytest.fixture(scope="module")
def platform():
    return ServerlessPlatform(AWS_LAMBDA, seed=141)


def test_max_memory_is_the_calibration_point(platform):
    """At maximum memory the penalty is exactly 1 for every packing degree
    (existing calibrations are untouched)."""
    for degree in (1, 6, 15):
        full = platform.run_burst(
            BurstSpec(app=SORT, concurrency=30, packing_degree=degree),
            repetition=degree,
        )
        explicit = platform.run_burst(
            BurstSpec(
                app=SORT,
                concurrency=30,
                packing_degree=degree,
                provisioned_mb=AWS_LAMBDA.max_memory_mb,
            ),
            repetition=degree,
        )
        assert full.mean_exec_seconds == pytest.approx(explicit.mean_exec_seconds)


def test_right_sized_function_runs_slower(platform):
    """A 256 MB Video function gets ~1/6.7 of a core: much slower."""
    full = platform.run_burst(BurstSpec(app=VIDEO, concurrency=20), repetition=0)
    sized = platform.run_burst(
        BurstSpec(app=VIDEO, concurrency=20, provisioned_mb=VIDEO.mem_mb),
        repetition=0,
    )
    mem_per_core = AWS_LAMBDA.max_memory_mb / AWS_LAMBDA.cores_per_instance
    expected_penalty = mem_per_core / VIDEO.mem_mb
    assert sized.mean_exec_seconds == pytest.approx(
        full.mean_exec_seconds * expected_penalty, rel=0.02
    )


def test_penalty_kicks_in_only_below_core_equivalent(platform):
    """Provisioning at or above one core-equivalent per function is free."""
    mem_per_core = AWS_LAMBDA.max_memory_mb // AWS_LAMBDA.cores_per_instance
    at_core = platform.run_burst(
        BurstSpec(app=SORT, concurrency=20, provisioned_mb=mem_per_core + 64),
        repetition=1,
    )
    full = platform.run_burst(BurstSpec(app=SORT, concurrency=20), repetition=1)
    assert at_core.mean_exec_seconds == pytest.approx(
        full.mean_exec_seconds, rel=0.01
    )


def test_rightsized_gb_seconds_comparable_to_packed(platform):
    """GB-seconds are nearly invariant for CPU-bound work: right-sizing
    trades time for memory at roughly constant cost."""
    full = platform.run_burst(BurstSpec(app=VIDEO, concurrency=50), repetition=2)
    sized = platform.run_burst(
        BurstSpec(app=VIDEO, concurrency=50, provisioned_mb=VIDEO.mem_mb),
        repetition=2,
    )
    # Right-sized costs far less than the 10 GB baseline but the same
    # order as packed instances; it is nowhere near free.
    assert sized.expense.compute_usd < full.expense.compute_usd
    assert sized.expense.compute_usd > 0.1 * full.expense.compute_usd
