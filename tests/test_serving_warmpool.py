"""Tests for the warm pool and its keep-alive/eviction policies."""

import pytest

from repro.serving.warmpool import (
    FixedTTL,
    GreedyLRUCap,
    HybridHistogram,
    NoKeepAlive,
    WarmPool,
    pool_size_for,
)


class RecordingTTL(FixedTTL):
    """Fixed TTL that records the reuse gaps it observes."""

    def __init__(self, ttl_s):
        super().__init__(ttl_s)
        self.gaps = []

    def observe_reuse(self, idle_gap_s):
        self.gaps.append(idle_gap_s)


# --------------------------------------------------------------------- #
# Policy validation and naming
# --------------------------------------------------------------------- #

def test_policy_validation():
    with pytest.raises(ValueError):
        FixedTTL(-1.0)
    with pytest.raises(ValueError):
        GreedyLRUCap(0)
    with pytest.raises(ValueError):
        HybridHistogram(percentile=1.0)
    with pytest.raises(ValueError):
        HybridHistogram(ttl_min_s=10.0, ttl_max_s=5.0)


def test_policy_names():
    assert NoKeepAlive().name == "no-keep-alive"
    assert FixedTTL(60.0).name == "fixed-ttl-60s"
    assert HybridHistogram().name == "hybrid-histogram"
    assert GreedyLRUCap(8).name == "lru-cap-8"


# --------------------------------------------------------------------- #
# Pool mechanics
# --------------------------------------------------------------------- #

def test_no_keepalive_is_always_cold_and_never_billed_idle():
    pool = WarmPool(NoKeepAlive())
    assert pool.acquire(0.0) is False
    pool.release(10.0)
    assert len(pool) == 0
    assert pool.acquire(10.1) is False
    pool.drain(100.0)
    assert pool.stats.immediate_releases == 1
    assert pool.stats.cold_starts == 2
    assert pool.stats.idle_seconds == 0.0
    assert pool.warm_fraction == 0.0


def test_fixed_ttl_reuse_within_ttl():
    pool = WarmPool(FixedTTL(30.0))
    pool.release(100.0)
    assert pool.acquire(110.0) is True
    assert pool.stats.reuses == 1
    assert pool.stats.idle_seconds == pytest.approx(10.0)
    assert pool.warm_fraction == 1.0


def test_fixed_ttl_expires_after_ttl():
    pool = WarmPool(FixedTTL(30.0))
    pool.release(100.0)
    assert pool.acquire(131.0) is False  # expired at 130
    assert pool.stats.evictions == 1
    # The evicted instance is billed for its full granted TTL, not the gap.
    assert pool.stats.idle_seconds == pytest.approx(30.0)


def test_reuse_is_lifo_hottest_first():
    policy = RecordingTTL(100.0)
    pool = WarmPool(policy)
    pool.release(0.0)
    pool.release(50.0)
    assert pool.acquire(60.0) is True
    # The instance idle since t=50 (gap 10) is reused, not the one from t=0.
    assert policy.gaps == [pytest.approx(10.0)]
    assert pool.acquire(60.0) is True
    assert policy.gaps[1] == pytest.approx(60.0)


def test_capacity_overflow_evicts_the_oldest():
    pool = WarmPool(GreedyLRUCap(2, ttl_s=1000.0))
    pool.release(0.0)
    pool.release(10.0)
    pool.release(20.0)  # over capacity: the t=0 instance is evicted
    assert len(pool) == 2
    assert pool.stats.evictions == 1
    assert pool.stats.idle_seconds == pytest.approx(20.0)


def test_set_capacity_validation_and_override():
    pool = WarmPool(FixedTTL(100.0))
    with pytest.raises(ValueError):
        pool.set_capacity(0)
    pool.set_capacity(1)
    pool.release(0.0)
    pool.release(5.0)
    assert len(pool) == 1  # the replanner's cap applies immediately
    pool.set_capacity(None)
    assert pool.capacity is None


def test_drain_closes_idle_accrual():
    pool = WarmPool(FixedTTL(1000.0))
    pool.release(0.0)
    pool.drain(25.0)
    assert len(pool) == 0
    assert pool.stats.idle_seconds == pytest.approx(25.0)
    assert pool.stats.evictions == 0  # drained, not aged out


# --------------------------------------------------------------------- #
# Hybrid histogram adaptation
# --------------------------------------------------------------------- #

def test_hybrid_defaults_until_enough_observations():
    policy = HybridHistogram(default_ttl_s=30.0, min_observations=5)
    assert policy.keep_alive_s() == 30.0


def test_hybrid_learns_short_gaps():
    policy = HybridHistogram(
        bucket_s=1.0, percentile=0.95, margin=1.0, min_observations=5,
        ttl_min_s=1.0, ttl_max_s=120.0,
    )
    for _ in range(100):
        policy.observe_reuse(4.5)  # every reuse comes back within 5s
    # 95th percentile bucket is [4, 5): upper edge 5s.
    assert policy.keep_alive_s() == pytest.approx(5.0)


def test_hybrid_censored_evictions_push_the_ttl_up():
    policy = HybridHistogram(
        bucket_s=1.0, percentile=0.9, margin=1.0, min_observations=5,
        ttl_min_s=1.0, ttl_max_s=120.0,
    )
    for _ in range(50):
        policy.observe_reuse(2.5)
    short = policy.keep_alive_s()
    for _ in range(200):
        policy.observe_eviction(short)  # gaps were at least the granted TTL
    assert policy.keep_alive_s() > short


def test_hybrid_clamps_to_bounds():
    policy = HybridHistogram(
        bucket_s=1.0, margin=1.0, min_observations=1,
        ttl_min_s=10.0, ttl_max_s=20.0,
    )
    policy.observe_reuse(0.5)
    assert policy.keep_alive_s() == 10.0
    for _ in range(100):
        policy.observe_reuse(500.0)
    assert policy.keep_alive_s() == 20.0


# --------------------------------------------------------------------- #
# Little's-law sizing
# --------------------------------------------------------------------- #

def test_pool_size_for_littles_law():
    # 2 req/s, 30s executions, packed 4 per instance: 15 in flight, ×1.25.
    assert pool_size_for(2.0, 30.0, 4, headroom=1.25) == 19
    assert pool_size_for(0.001, 1.0, 1) == 1  # floor at one instance
    with pytest.raises(ValueError):
        pool_size_for(1.0, 1.0, 0)
