"""Tests for the workflow DAG extension."""

import pytest

from repro.core.propack import ProPack
from repro.platform.base import ServerlessPlatform
from repro.platform.providers import AWS_LAMBDA
from repro.workflows import Stage, WorkflowGraph, WorkflowRunner
from repro.workloads import SORT, STATELESS_COST, VIDEO


def diamond():
    """split → (encode, index) → merge, at bottleneck-regime concurrencies."""
    return WorkflowGraph([
        Stage("split", STATELESS_COST, 1000),
        Stage("encode", VIDEO, 4000, depends_on=("split",)),
        Stage("index", STATELESS_COST, 2500, depends_on=("split",)),
        Stage("merge", SORT, 1000, depends_on=("encode", "index")),
    ])


# --------------------------------------------------------------------- #
# DAG validation and analysis
# --------------------------------------------------------------------- #

def test_stage_validation():
    with pytest.raises(ValueError):
        Stage("", SORT, 10)
    with pytest.raises(ValueError):
        Stage("s", SORT, 0)
    with pytest.raises(ValueError):
        Stage("s", SORT, 10, depends_on=("s",))


def test_graph_rejects_duplicates_unknown_deps_and_cycles():
    with pytest.raises(ValueError, match="duplicate"):
        WorkflowGraph([Stage("a", SORT, 1), Stage("a", SORT, 1)])
    with pytest.raises(ValueError, match="unknown dependency"):
        WorkflowGraph([Stage("a", SORT, 1, depends_on=("ghost",))])
    with pytest.raises(ValueError, match="cycle"):
        WorkflowGraph([
            Stage("a", SORT, 1, depends_on=("b",)),
            Stage("b", SORT, 1, depends_on=("a",)),
        ])
    with pytest.raises(ValueError, match="at least one stage"):
        WorkflowGraph([])


def test_topological_order_respects_deps():
    order = [s.name for s in diamond().topological_order()]
    assert order.index("split") < order.index("encode")
    assert order.index("split") < order.index("index")
    assert order.index("merge") == 3


def test_roots_and_sinks():
    graph = diamond()
    assert graph.roots() == ["split"]
    assert graph.sinks() == ["merge"]


def test_critical_path_longest_chain():
    graph = diamond()
    durations = {"split": 10.0, "encode": 100.0, "index": 20.0, "merge": 5.0}
    path, length = graph.critical_path(durations)
    assert path == ["split", "encode", "merge"]
    assert length == pytest.approx(115.0)


def test_critical_path_requires_all_durations():
    with pytest.raises(ValueError, match="missing durations"):
        diamond().critical_path({"split": 1.0})


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def platform():
    return ServerlessPlatform(AWS_LAMBDA, seed=111)


def test_unpacked_run_covers_all_stages(platform):
    result = WorkflowRunner(platform).run(diamond())
    assert set(result.outcomes) == {"split", "encode", "index", "merge"}
    assert all(o.packing_degree == 1 for o in result.outcomes.values())


def test_stage_timing_respects_barriers(platform):
    result = WorkflowRunner(platform).run(diamond())
    split = result.outcomes["split"]
    encode = result.outcomes["encode"]
    merge = result.outcomes["merge"]
    assert split.start_s == 0.0
    assert encode.start_s == pytest.approx(split.end_s)
    assert merge.start_s == pytest.approx(
        max(encode.end_s, result.outcomes["index"].end_s)
    )
    assert result.makespan_s == merge.end_s


def test_realized_critical_path(platform):
    result = WorkflowRunner(platform).run(diamond())
    path = result.critical_path()
    assert path[0] == "split" and path[-1] == "merge"
    assert path[1] in ("encode", "index")


def test_packed_workflow_is_faster_and_cheaper(platform):
    unpacked = WorkflowRunner(platform).run(diamond())
    packed = WorkflowRunner(platform, propack=ProPack(platform)).run(diamond())
    assert packed.makespan_s < unpacked.makespan_s
    assert packed.expense_usd < unpacked.expense_usd
    assert any(o.packing_degree > 1 for o in packed.outcomes.values())


def test_profiling_charged_once_per_app(platform):
    propack = ProPack(platform)
    # Two stages share STATELESS_COST: its profile must be charged once.
    result = WorkflowRunner(platform, propack=propack).run(diamond())
    profile_usd = sum(
        propack.interference_profile(app).overhead_usd
        for app in (STATELESS_COST, VIDEO, SORT)
    )
    assert result.profiling_overhead_usd == pytest.approx(profile_usd)


def test_single_stage_workflow(platform):
    graph = WorkflowGraph([Stage("only", SORT, 50)])
    result = WorkflowRunner(platform).run(graph)
    assert result.makespan_s == result.outcomes["only"].end_s
    assert result.critical_path() == ["only"]
