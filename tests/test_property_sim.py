"""Property-based tests (hypothesis) on the simulation substrate."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.resources import FifoResource, ProcessorSharingResource
from repro.sim.stats import percentile

works = st.lists(
    st.floats(min_value=0.01, max_value=50.0, allow_nan=False), min_size=1, max_size=40
)


@given(works)
@settings(max_examples=60, deadline=None)
def test_ps_conserves_work(work_list):
    """With all jobs submitted at t=0, the last completion equals
    total work / capacity (processor sharing never idles)."""
    sim = Simulator()
    capacity = 2.5
    ps = ProcessorSharingResource(sim, capacity=capacity)
    ends = []
    for w in work_list:
        ps.submit(w, lambda: ends.append(sim.now))
    sim.run()
    assert len(ends) == len(work_list)
    expected = sum(work_list) / capacity
    assert abs(max(ends) - expected) < 1e-6 * max(1.0, expected)


@given(works)
@settings(max_examples=60, deadline=None)
def test_ps_completion_order_is_size_order(work_list):
    """Jobs submitted together finish in (work, arrival) order under PS."""
    sim = Simulator()
    ps = ProcessorSharingResource(sim, capacity=1.0)
    order = []
    for i, w in enumerate(work_list):
        ps.submit(w, lambda i=i: order.append(i))
    sim.run()
    expected = [i for _, i in sorted((w, i) for i, w in enumerate(work_list))]
    assert order == expected


@given(works, st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_fifo_makespan_bounds(work_list, servers):
    """FIFO-k makespan is within [total/k, total/k + max] (list scheduling)."""
    sim = Simulator()
    fifo = FifoResource(sim, servers=servers)
    ends = []
    for w in work_list:
        fifo.submit(w, lambda: ends.append(sim.now))
    sim.run()
    total = sum(work_list)
    assert len(ends) == len(work_list)
    assert max(ends) >= total / servers - 1e-9
    assert max(ends) <= total / servers + max(work_list) + 1e-9


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1,
             max_size=200),
    st.floats(min_value=0.01, max_value=1.0),
)
@settings(max_examples=80, deadline=None)
def test_percentile_properties(values, fraction):
    p = percentile(values, fraction)
    arr = sorted(values)
    assert arr[0] <= p <= arr[-1]
    assert p in values
    # At least `fraction` of the values are <= p.
    assert sum(v <= p for v in values) >= fraction * len(values) - 1e-9


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                          st.integers(min_value=0, max_value=10**6)),
                min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_simulator_never_goes_backwards(events):
    sim = Simulator()
    seen = []
    for delay, _ in events:
        sim.schedule(delay, lambda: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
