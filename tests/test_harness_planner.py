"""Campaign specs, grid expansion, and the run DAG."""

import pytest

from repro.harness import CampaignSpec, SweepStage, builtin_specs, plan_campaign
from repro.workflows.dag import TaskGraph


def _spec(**overrides):
    defaults = dict(
        name="camp",
        stages=(
            SweepStage(
                name="a",
                target="burst",
                params={"app": "sort", "packing_degree": 1},
                axes={"concurrency": (8, 16)},
                seeds=(1, 2),
            ),
            SweepStage(
                name="b",
                target="burst",
                params={"app": "sort", "packing_degree": 4, "concurrency": 8},
                seeds=(1,),
                depends_on=("a",),
            ),
        ),
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


# --------------------------------------------------------------------- #
# TaskGraph (the generic dependency substrate)
# --------------------------------------------------------------------- #
def test_task_graph_ready_tracks_completion():
    dag = TaskGraph(["a", "b", "c"], [("a", "b"), ("a", "c"), ("b", "c")])
    assert dag.ready([]) == ["a"]
    assert dag.ready(["a"]) == ["b"]
    assert dag.ready(["a", "b"]) == ["c"]
    assert dag.ready(["a", "b", "c"]) == []
    assert dag.roots() == ["a"] and dag.sinks() == ["c"]
    assert dag.dependencies("c") == ["a", "b"]


def test_task_graph_rejects_cycles_and_bad_edges():
    with pytest.raises(ValueError, match="cycle"):
        TaskGraph(["a", "b"], [("a", "b"), ("b", "a")])
    with pytest.raises(ValueError, match="unknown dependency"):
        TaskGraph(["a"], [("ghost", "a")])
    with pytest.raises(ValueError, match="depend on itself"):
        TaskGraph(["a"], [("a", "a")])
    with pytest.raises(ValueError, match="duplicate"):
        TaskGraph(["a", "a"])


# --------------------------------------------------------------------- #
# Spec validation + serialization
# --------------------------------------------------------------------- #
def test_spec_counts_runs_and_round_trips_json():
    spec = _spec()
    assert spec.stages[0].n_runs == 4  # 2 concurrencies x 2 seeds
    assert spec.stages[1].n_runs == 1
    assert spec.n_runs == 5
    again = CampaignSpec.from_json(spec.to_json())
    assert again == spec


def test_spec_rejects_bad_shapes():
    with pytest.raises(ValueError, match="at least one stage"):
        CampaignSpec(name="x", stages=())
    with pytest.raises(ValueError, match="duplicate stage names"):
        _spec(stages=(_spec().stages[0], _spec().stages[0]))
    with pytest.raises(ValueError, match="unknown dependencies"):
        CampaignSpec(
            name="x",
            stages=(SweepStage(name="a", target="burst", depends_on=("ghost",)),),
        )
    with pytest.raises(ValueError, match="both a fixed param and an axis"):
        SweepStage(
            name="a",
            target="burst",
            params={"concurrency": 8},
            axes={"concurrency": (8, 16)},
        )
    with pytest.raises(ValueError, match="filesystem-safe"):
        CampaignSpec(name="bad/name", stages=_spec().stages)
    with pytest.raises(ValueError, match="at least one seed"):
        SweepStage(name="a", target="burst", seeds=())


# --------------------------------------------------------------------- #
# Planning
# --------------------------------------------------------------------- #
def test_plan_expands_grid_with_barrier_dependencies():
    plan = plan_campaign(_spec())
    assert len(plan) == 5
    stage_a = plan.by_stage("a")
    [stage_b] = plan.by_stage("b")
    assert len(stage_a) == 4
    # Barrier: the b run depends on every a run.
    assert set(stage_b.depends_on) == {r.run_id for r in stage_a}
    # The DAG agrees and orders a before b.
    order = plan.dag.topological_order()
    assert order.index(stage_b.run_id) == len(order) - 1
    # Manifests resolved at plan time: full profile pinned in the config.
    assert stage_a[0].manifest.resolved_config["platform_profile"]["gb_second_usd"]


def test_plan_is_deterministic():
    a = plan_campaign(_spec())
    b = plan_campaign(_spec())
    assert [r.run_id for r in a.runs] == [r.run_id for r in b.runs]
    assert [r.manifest for r in a.runs] == [r.manifest for r in b.runs]


def test_plan_rejects_duplicate_grid_points():
    stage = SweepStage(
        name="a",
        target="burst",
        params={"app": "sort"},
        seeds=(1, 1),  # same seed twice -> same resolved run
    )
    with pytest.raises(ValueError, match="duplicate grid point"):
        plan_campaign(CampaignSpec(name="x", stages=(stage,)))


def test_plan_rejects_unknown_target():
    spec = CampaignSpec(
        name="x", stages=(SweepStage(name="a", target="no-such-target"),)
    )
    with pytest.raises(KeyError, match="unknown target"):
        plan_campaign(spec)


def test_builtin_specs_plan_cleanly():
    for name, spec in builtin_specs().items():
        plan = plan_campaign(spec)
        assert len(plan) == spec.n_runs, name
        assert spec.name == name
