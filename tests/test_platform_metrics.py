"""Tests for run records and burst-level metrics."""

import pytest

from repro.platform.metrics import ExpenseBreakdown, InstanceRecord, RunResult


def make_record(i, start, end, n_packed=1):
    r = InstanceRecord(i, n_packed=n_packed, provisioned_mb=10240)
    r.sched_done = start * 0.5
    r.built_at = start * 0.6
    r.shipped_at = start
    r.exec_start = start
    r.exec_end = end
    return r


def make_result(starts_ends, concurrency=None, degree=1):
    records = [make_record(i, s, e) for i, (s, e) in enumerate(starts_ends)]
    return RunResult(
        platform_name="test",
        app_name="app",
        concurrency=concurrency or len(records),
        packing_degree=degree,
        records=records,
    )


def test_scaling_time_is_last_start():
    result = make_result([(1.0, 5.0), (3.0, 4.0), (2.0, 9.0)])
    assert result.scaling_time == 3.0


def test_total_service_time_is_last_end():
    result = make_result([(1.0, 5.0), (3.0, 4.0), (2.0, 9.0)])
    assert result.service_time() == 9.0
    assert result.service_time("total") == 9.0


def test_tail_and_median_service_times():
    # 20 instances ending at 1..20.
    result = make_result([(0.0, float(i)) for i in range(1, 21)])
    assert result.service_time("tail") == 19.0   # ceil(0.95*20) = 19th end
    assert result.service_time("median") == 10.0


def test_unknown_merit_rejected():
    with pytest.raises(ValueError):
        make_result([(0.0, 1.0)]).service_time("p99")


def test_mean_exec_and_function_hours():
    result = make_result([(0.0, 3600.0), (0.0, 7200.0)])
    assert result.mean_exec_seconds == pytest.approx(5400.0)
    assert result.function_hours == pytest.approx(3.0)


def test_exec_seconds_requires_completion():
    record = InstanceRecord(0, n_packed=1)
    with pytest.raises(ValueError):
        _ = record.exec_seconds


def test_breakdown_means():
    result = make_result([(2.0, 3.0), (4.0, 5.0)])
    breakdown = result.breakdown()
    assert breakdown["scheduling"] == pytest.approx((1.0 + 2.0) / 2)
    assert set(breakdown) == {"scheduling", "startup", "shipping"}


def test_component_totals_are_maxima():
    result = make_result([(2.0, 3.0), (4.0, 5.0)])
    totals = result.component_totals()
    assert totals["scheduling"] == 2.0
    assert totals["startup"] == pytest.approx(2.4)
    assert totals["shipping"] == 4.0


def test_expense_breakdown_addition_and_total():
    a = ExpenseBreakdown(1.0, 2.0, 3.0, 4.0)
    b = ExpenseBreakdown(0.5, 0.5, 0.5, 0.5)
    c = a + b
    assert c.total_usd == pytest.approx(12.0)
    assert c.compute_usd == 1.5
