"""Integration tests: skew-aware planning through the ProPack facade."""

import pytest

from repro.core.propack import ProPack
from repro.platform.base import ServerlessPlatform
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT


@pytest.fixture(scope="module")
def propack():
    platform = ServerlessPlatform(AWS_LAMBDA, seed=201, enforce_timeout=False)
    return ProPack(platform)


def test_skew_cv_zero_is_identity(propack):
    plain, _ = propack.plan(SORT, 2000)
    explicit, _ = propack.plan(SORT, 2000, skew_cv=0.0)
    assert plain.degree == explicit.degree


def test_skew_aware_plan_packs_less(propack):
    naive, _ = propack.plan(SORT, 2000, objective="service")
    skewed, _ = propack.plan(SORT, 2000, objective="service", skew_cv=0.8)
    assert skewed.degree < naive.degree


def test_skew_aware_run_executes_with_skew(propack):
    outcome = propack.run(SORT, 1000, skew_cv=0.5)
    execs = [r.exec_seconds for r in outcome.result.records]
    spread = (max(execs) - min(execs)) / (sum(execs) / len(execs))
    assert spread > 0.10  # the burst really ran with skewed inputs


def test_skew_aware_run_beats_naive_plan_under_skew(propack):
    """At cv=0.8 single runs are heavy-tailed (a straggler can swing any
    one burst), so compare mean service over repetitions."""
    from dataclasses import replace

    import numpy as np

    cv = 0.8
    aware_plan, _ = propack.plan(SORT, 2000, skew_cv=cv)
    naive_plan, _ = propack.plan(SORT, 2000)
    assert aware_plan.degree < naive_plan.degree

    def mean_service(plan):
        spec = replace(plan.burst_spec(), skew_cv=cv)
        return float(np.mean([
            propack.platform.run_burst(spec, repetition=r).service_time()
            for r in range(6)
        ]))

    assert mean_service(aware_plan) < mean_service(naive_plan)
