"""End-to-end integration tests tying the whole stack together.

Each test exercises the full pipeline (profile → fit → optimize → execute →
bill) and asserts a paper-level claim, at reduced scale so the suite stays
fast.
"""

import pytest

from repro import (
    AWS_LAMBDA,
    GOOGLE_CLOUD_FUNCTIONS,
    BurstSpec,
    Oracle,
    ProPack,
    PywrenManager,
    ServerlessPlatform,
    run_unpacked,
)
from repro.workloads import SORT, STATELESS_COST, VIDEO, XAPIAN


@pytest.fixture(scope="module")
def platform():
    return ServerlessPlatform(AWS_LAMBDA, seed=71)


@pytest.fixture(scope="module")
def propack(platform):
    return ProPack(platform)


def test_public_api_surface():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_headline_claim_service_and_expense(propack, platform):
    """At high concurrency ProPack cuts service time and expense by large
    factors over no packing (paper: 85% / 66% at C=5000)."""
    c = 4000
    outcome = propack.run(SORT, c)
    baseline = run_unpacked(platform, SORT, c)
    service_cut = 1 - outcome.result.service_time() / baseline.service_time()
    expense_cut = 1 - outcome.total_expense_usd / baseline.expense.total_usd
    assert service_cut > 0.60
    assert expense_cut > 0.50


def test_improvement_grows_with_concurrency(propack, platform):
    cuts = []
    for c in (1000, 2000, 4000):
        outcome = propack.run(SORT, c)
        baseline = run_unpacked(platform, SORT, c)
        cuts.append(1 - outcome.result.service_time() / baseline.service_time())
    assert cuts == sorted(cuts)


def test_propack_tracks_oracle(propack, platform):
    """ProPack's model-picked degree performs within a few percent of the
    brute-force Oracle's measured optimum."""
    c = 2000
    sweep = Oracle(platform).sweep(SORT, c)
    oracle_best = sweep.best_result("joint")
    outcome = propack.run(SORT, c)
    assert outcome.result.service_time() <= 1.10 * oracle_best.service_time()
    assert outcome.result.expense.total_usd <= 1.15 * oracle_best.expense.total_usd


def test_propack_beats_pywren(propack, platform):
    c = 3000
    pywren = PywrenManager(platform).map(SORT, c)
    outcome = propack.run(SORT, c)
    assert outcome.result.service_time() < pywren.service_time()
    assert outcome.total_expense_usd < pywren.expense.total_usd


def test_qos_bound_respected_in_realized_tail(propack):
    """The QoS-aware plan meets the bound in the *measured* tail too."""
    bound = 100.0
    outcome = propack.run(XAPIAN, 2000, qos_tail_bound_s=bound)
    assert outcome.qos_decision.feasible
    assert outcome.result.service_time("tail") <= bound


def test_gcf_expense_improvement_larger_than_aws():
    """Fig. 21: packing saves more on platforms with egress fees."""
    c = 1000
    cuts = {}
    for profile in (AWS_LAMBDA, GOOGLE_CLOUD_FUNCTIONS):
        platform = ServerlessPlatform(profile, seed=13)
        propack = ProPack(platform)
        outcome = propack.run(VIDEO, c)
        baseline = run_unpacked(platform, VIDEO, c)
        cuts[profile.name] = 1 - outcome.total_expense_usd / baseline.expense.total_usd
    assert cuts["google-cloud-functions"] > cuts["aws-lambda"]


def test_all_functions_complete_under_packing(platform):
    """No function is lost regardless of packing layout."""
    for degree in (1, 3, 7, 15):
        result = platform.run_burst(
            BurstSpec(app=SORT, concurrency=100, packing_degree=degree)
        )
        assert sum(r.n_packed for r in result.records) == 100


def test_mixed_apps_share_scaling_model(propack):
    """The scaling model is fit once and reused across applications."""
    propack.run(SORT, 1000)
    scaling_a = propack.scaling_profile()
    propack.run(STATELESS_COST, 1000)
    assert propack.scaling_profile() is scaling_a
