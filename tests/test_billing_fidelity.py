"""BillingFidelity: exact unit tests for the billed-seconds schedule.

The defaults are the *exact* schedule, under which ``billed_seconds`` must
return its input byte-identically (no float round-trip) — that is the
guarantee that keeps every pre-fusion golden unchanged. The rounded
schedules reproduce provider metering: CPU throttling stretches the
duration, the minimum billed duration floors it, and the granularity
rounds the result *up*.
"""

import math

import pytest

from repro.platform.billing import EXACT_BILLING, BillingFidelity, BillingModel
from repro.platform.providers import AWS_LAMBDA


# --------------------------------------------------------------------- #
# the exact schedule: byte identity
# --------------------------------------------------------------------- #
def test_defaults_are_exact():
    assert EXACT_BILLING.exact
    assert BillingFidelity().exact


def test_exact_schedule_returns_input_byte_identically():
    # Not approx: the exact path must not round-trip through any float
    # arithmetic, or pre-fusion goldens would drift in the last ulp.
    for value in (0.0, 1e-9, 0.1, 0.30000000000000004, 7.25, 863.0001, 1e6):
        assert EXACT_BILLING.billed_seconds(value) == value


def test_default_profiles_are_exact():
    fidelity = BillingFidelity.from_profile(AWS_LAMBDA)
    assert fidelity.exact
    assert fidelity == EXACT_BILLING


# --------------------------------------------------------------------- #
# granularity rounding: per-ms vs the legacy 100 ms schedule
# --------------------------------------------------------------------- #
def test_per_ms_vs_100ms_rounding():
    per_ms = BillingFidelity(granularity_s=0.001)
    coarse = BillingFidelity(granularity_s=0.1)
    assert per_ms.billed_seconds(0.2501) == pytest.approx(0.251)
    assert coarse.billed_seconds(0.2501) == pytest.approx(0.3)
    # 100 ms rounding overcharges strictly more on non-multiples.
    assert coarse.billed_seconds(0.2501) > per_ms.billed_seconds(0.2501)


def test_exact_multiple_pays_no_extra_tick():
    coarse = BillingFidelity(granularity_s=0.1)
    # 0.3 / 0.1 is 2.999...96 in floats; the epsilon keeps it at 3 ticks.
    assert coarse.billed_seconds(0.3) == pytest.approx(0.3)
    assert round(coarse.billed_seconds(0.3) / 0.1) == 3
    assert coarse.billed_seconds(0.2) == pytest.approx(0.2)


def test_rounding_is_always_up():
    coarse = BillingFidelity(granularity_s=0.1)
    assert coarse.billed_seconds(0.301) == pytest.approx(0.4)
    assert coarse.billed_seconds(0.001) == pytest.approx(0.1)
    assert coarse.billed_seconds(0.0) == pytest.approx(0.0)


# --------------------------------------------------------------------- #
# minimum billed duration boundaries
# --------------------------------------------------------------------- #
def test_min_duration_boundaries():
    fidelity = BillingFidelity(min_billed_s=0.1)
    assert fidelity.billed_seconds(0.0) == pytest.approx(0.1)
    assert fidelity.billed_seconds(0.05) == pytest.approx(0.1)
    assert fidelity.billed_seconds(0.1) == 0.1       # exactly at the floor
    assert fidelity.billed_seconds(0.1000001) == 0.1000001  # above: untouched


def test_min_duration_applies_before_rounding():
    fidelity = BillingFidelity(granularity_s=0.1, min_billed_s=0.25)
    # floor to 0.25, then round up to 0.3 — not round 0.05 then floor.
    assert fidelity.billed_seconds(0.05) == pytest.approx(0.3)


# --------------------------------------------------------------------- #
# CPU-throttle multiplier
# --------------------------------------------------------------------- #
def test_throttle_multiplier_stretches_billed_time():
    fidelity = BillingFidelity(throttle_multiplier=1.5)
    assert fidelity.billed_seconds(2.0) == pytest.approx(3.0)


def test_throttle_applies_before_floor_and_rounding():
    fidelity = BillingFidelity(
        granularity_s=0.1, min_billed_s=0.5, throttle_multiplier=2.0
    )
    # 0.2 -> ×2 = 0.4 -> floored to 0.5 -> already a multiple of 0.1.
    assert fidelity.billed_seconds(0.2) == pytest.approx(0.5)
    # 0.33 -> 0.66 -> above the floor -> rounds up to 0.7.
    assert fidelity.billed_seconds(0.33) == pytest.approx(0.7)


# --------------------------------------------------------------------- #
# legality and validation
# --------------------------------------------------------------------- #
def test_billed_never_less_than_executed():
    schedules = (
        EXACT_BILLING,
        BillingFidelity(granularity_s=0.1),
        BillingFidelity(min_billed_s=0.1),
        BillingFidelity(throttle_multiplier=1.7),
        BillingFidelity(granularity_s=0.001, min_billed_s=0.01,
                        throttle_multiplier=1.2),
    )
    samples = [i * 0.0137 for i in range(200)]
    for fidelity in schedules:
        for exec_s in samples:
            assert fidelity.billed_seconds(exec_s) >= exec_s - 1e-12


def test_billed_seconds_is_monotone():
    fidelity = BillingFidelity(granularity_s=0.1, min_billed_s=0.1,
                               throttle_multiplier=1.3)
    samples = [i * 0.0173 for i in range(100)]
    billed = [fidelity.billed_seconds(s) for s in samples]
    assert billed == sorted(billed)


def test_validation_rejects_bad_knobs():
    with pytest.raises(ValueError, match="granularity"):
        BillingFidelity(granularity_s=-0.1)
    with pytest.raises(ValueError, match="granularity"):
        BillingFidelity(granularity_s=math.inf)
    with pytest.raises(ValueError, match="minimum billed"):
        BillingFidelity(min_billed_s=-1.0)
    with pytest.raises(ValueError, match="throttle"):
        BillingFidelity(throttle_multiplier=0.5)
    with pytest.raises(ValueError, match="throttle"):
        BillingFidelity(throttle_multiplier=math.nan)
    with pytest.raises(ValueError, match="non-negative"):
        EXACT_BILLING.billed_seconds(-0.1)


# --------------------------------------------------------------------- #
# BillingModel integration
# --------------------------------------------------------------------- #
def test_profile_knobs_flow_into_the_billing_model():
    rounded = AWS_LAMBDA.with_overrides(
        billing_granularity_s=0.1, min_billed_duration_s=0.1
    )
    model = BillingModel(rounded)
    assert model.fidelity == BillingFidelity(granularity_s=0.1, min_billed_s=0.1)
    assert model.billed_seconds(0.123) == pytest.approx(0.2)


def test_default_model_bills_exactly():
    model = BillingModel(AWS_LAMBDA)
    for value in (0.0, 0.123456789, 42.000000001):
        assert model.billed_seconds(value) == value


def test_explicit_fidelity_overrides_the_profile():
    model = BillingModel(AWS_LAMBDA, fidelity=BillingFidelity(granularity_s=1.0))
    assert model.billed_seconds(0.2) == pytest.approx(1.0)
