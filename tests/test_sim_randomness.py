"""Tests for deterministic per-subsystem RNG streams."""

import numpy as np

from repro.sim.randomness import RandomStreams


def test_same_seed_same_draws():
    a = RandomStreams(42).stream("exec").random(10)
    b = RandomStreams(42).stream("exec").random(10)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = RandomStreams(1).stream("exec").random(10)
    b = RandomStreams(2).stream("exec").random(10)
    assert not np.array_equal(a, b)


def test_labels_are_independent_streams():
    streams = RandomStreams(7)
    a = streams.stream("build").random(10)
    b = streams.stream("exec").random(10)
    assert not np.array_equal(a, b)


def test_stream_is_cached_and_stateful():
    streams = RandomStreams(7)
    first = streams.stream("x").random(5)
    second = streams.stream("x").random(5)
    assert not np.array_equal(first, second)  # continues, doesn't restart


def test_lognormal_factor_zero_sigma_is_exactly_one():
    assert RandomStreams(3).lognormal_factor("exec", 0.0) == 1.0


def test_lognormal_factor_is_positive():
    streams = RandomStreams(3)
    for _ in range(100):
        assert streams.lognormal_factor("exec", 0.5) > 0.0


def test_lognormal_factor_median_near_one():
    streams = RandomStreams(11)
    draws = [streams.lognormal_factor("exec", 0.1) for _ in range(2000)]
    assert 0.98 < float(np.median(draws)) < 1.02


def test_spawn_derives_independent_family():
    parent = RandomStreams(5)
    child_a = parent.spawn("rep1")
    child_b = parent.spawn("rep2")
    assert not np.array_equal(
        child_a.stream("exec").random(5), child_b.stream("exec").random(5)
    )


def test_spawn_is_deterministic():
    a = RandomStreams(5).spawn("rep1").stream("e").random(5)
    b = RandomStreams(5).spawn("rep1").stream("e").random(5)
    assert np.array_equal(a, b)
