"""Tests for the composable arrival processes."""

import numpy as np
import pytest

from repro.serving.arrivals import (
    AzureTraceProcess,
    DiurnalProcess,
    InhomogeneousPoissonProcess,
    MarkovModulatedProcess,
    PoissonProcess,
    SuperposedProcess,
)
from repro.sim.randomness import RandomStreams


def rng(seed=42):
    return RandomStreams(seed)


# --------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------- #

def test_poisson_rejects_bad_rate():
    with pytest.raises(ValueError):
        PoissonProcess(0.0)


def test_poisson_rejects_bad_horizon():
    with pytest.raises(ValueError):
        PoissonProcess(1.0).sample(rng(), 0.0)


def test_sample_n_rejects_zero():
    with pytest.raises(ValueError):
        PoissonProcess(1.0).sample_n(rng(), 0)


def test_diurnal_validation():
    with pytest.raises(ValueError):
        DiurnalProcess(0.0)
    with pytest.raises(ValueError):
        DiurnalProcess(1.0, amplitude=1.5)
    with pytest.raises(ValueError):
        DiurnalProcess(1.0, period_s=0.0)


def test_mmpp_validation():
    with pytest.raises(ValueError):
        MarkovModulatedProcess(0.0, 0.0, 1.0, 1.0)
    with pytest.raises(ValueError):
        MarkovModulatedProcess(1.0, 0.0, 0.0, 1.0)


def test_azure_validation():
    with pytest.raises(ValueError):
        AzureTraceProcess(0.0)
    with pytest.raises(ValueError):
        AzureTraceProcess(1.0, n_functions=0)


def test_superposed_rejects_empty():
    with pytest.raises(ValueError):
        SuperposedProcess([])


def test_thinning_rejects_underestimated_dominating_rate():
    process = InhomogeneousPoissonProcess(lambda t: 5.0 + 0.0 * t, 2.0)
    with pytest.raises(ValueError, match="dominating"):
        process.sample(rng(), 100.0)


# --------------------------------------------------------------------- #
# Determinism and byte-compatibility
# --------------------------------------------------------------------- #

@pytest.mark.parametrize(
    "process",
    [
        PoissonProcess(2.0),
        DiurnalProcess(2.0, amplitude=0.8, period_s=600.0),
        MarkovModulatedProcess(4.0, 0.5, 30.0, 60.0),
        AzureTraceProcess(0.05, n_functions=10, period_s=600.0),
        SuperposedProcess([PoissonProcess(1.0), PoissonProcess(0.5)]),
    ],
    ids=["poisson", "diurnal", "mmpp", "azure", "superposed"],
)
def test_same_seed_same_schedule(process):
    a = process.sample(rng(7), 300.0)
    b = process.sample(rng(7), 300.0)
    c = process.sample(rng(8), 300.0)
    np.testing.assert_array_equal(a, b)
    assert len(a) > 0
    assert not (len(a) == len(c) and np.array_equal(a, c))


@pytest.mark.parametrize(
    "process",
    [
        PoissonProcess(2.0),
        DiurnalProcess(2.0, amplitude=0.8, period_s=600.0),
        MarkovModulatedProcess(4.0, 0.5, 30.0, 60.0),
        AzureTraceProcess(0.05, n_functions=10, period_s=600.0),
        SuperposedProcess([PoissonProcess(1.0), PoissonProcess(0.5)]),
    ],
    ids=["poisson", "diurnal", "mmpp", "azure", "superposed"],
)
def test_samples_sorted_and_in_horizon(process):
    times = process.sample(rng(3), 300.0)
    assert np.all(np.diff(times) >= 0.0)
    assert times[0] >= 0.0
    assert times[-1] < 300.0


def test_sample_n_matches_historical_inline_generator():
    """The exact draw the streaming dispatcher historically inlined."""
    rate, n = 5.0, 500
    old = RandomStreams(161).spawn("stream/r0")
    expected = np.cumsum(old.stream("arrivals").exponential(1.0 / rate, n))
    new = RandomStreams(161).spawn("stream/r0")
    got = PoissonProcess(rate).sample_n(new, n)
    np.testing.assert_array_equal(got, expected)
    assert len(got) == n


# --------------------------------------------------------------------- #
# Statistical shape
# --------------------------------------------------------------------- #

def test_poisson_count_matches_rate():
    times = PoissonProcess(10.0).sample(rng(1), 1000.0)
    assert len(times) == pytest.approx(10_000, rel=0.05)


def test_diurnal_peak_busier_than_trough():
    period = 2000.0
    process = DiurnalProcess(5.0, amplitude=0.9, period_s=period)
    times = process.sample(rng(5), period)
    # Trough at t=0 and t=period, peak at t=period/2.
    outer = np.sum((times < period / 4) | (times >= 3 * period / 4))
    inner = np.sum((times >= period / 4) & (times < 3 * period / 4))
    assert inner > 2 * outer
    assert len(times) == pytest.approx(5.0 * period, rel=0.1)
    assert process.mean_rate_per_s == 5.0


def test_mmpp_mean_rate_mixes_sojourns():
    process = MarkovModulatedProcess(9.0, 1.0, mean_on_s=10.0, mean_off_s=30.0)
    assert process.mean_rate_per_s == pytest.approx((9 * 10 + 1 * 30) / 40)
    times = process.sample(rng(9), 5000.0)
    assert len(times) == pytest.approx(process.mean_rate_per_s * 5000.0, rel=0.2)


def test_mmpp_pure_onoff_has_silent_gaps():
    process = MarkovModulatedProcess(20.0, 0.0, mean_on_s=5.0, mean_off_s=50.0)
    times = process.sample(rng(11), 2000.0)
    # OFF periods contribute nothing, so the largest gap dwarfs the ON-state
    # inter-arrival time (1/20 s).
    assert np.max(np.diff(times)) > 10.0


def test_azure_rates_are_heavy_tailed():
    process = AzureTraceProcess(
        0.01, n_functions=200, tail_alpha=1.2, period_s=3600.0
    )
    times = process.sample(rng(13), 3600.0)
    assert len(times) > 0
    assert process.mean_rate_per_s > 0.01 * 200  # tail mean > 1


def test_superposition_merges_components():
    parts = [PoissonProcess(1.0), PoissonProcess(3.0)]
    combined = SuperposedProcess(parts)
    assert combined.mean_rate_per_s == pytest.approx(4.0)
    times = combined.sample(rng(17), 500.0)
    expected = sum(
        len(p.sample(rng(17).spawn(f"superpose/{i}"), 500.0))
        for i, p in enumerate(parts)
    )
    assert len(times) == expected
