"""The storm composer: bounds, multi-phase composition, operators, JSON."""

import numpy as np
import pytest

from repro.chaos import CORPUS, PARAM_BOUNDS, StormSpec, corpus


# --------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------- #
def test_defaults_are_quiet_and_valid():
    spec = StormSpec()
    assert spec.quiet()
    scenario = spec.compose(900.0)
    assert scenario.crash_rate is None
    assert scenario.throttle_capacity is None
    assert scenario.initially_poisoned == ()
    assert not scenario.gray_active


@pytest.mark.parametrize("knob,value", [
    ("crash_rate", 0.7),
    ("crash_rate", -0.1),
    ("gray_slowdown", 0.5),
    ("gray_slowdown", 17.0),
    ("correlated_bursts", 7),
    ("poisoned_domains", -1),
    ("gray_onset_frac", 1.5),
])
def test_out_of_bounds_knobs_rejected(knob, value):
    with pytest.raises(ValueError):
        StormSpec(**{knob: value})


def test_non_integer_int_knob_rejected():
    with pytest.raises(ValueError):
        StormSpec(correlated_bursts=1.5, correlated_fraction=0.5)


def test_bursts_without_fraction_rejected():
    with pytest.raises(ValueError, match="kill fraction"):
        StormSpec(correlated_bursts=2, correlated_fraction=0.0)


def test_compose_rejects_bad_horizon():
    with pytest.raises(ValueError):
        StormSpec().compose(0.0)


# --------------------------------------------------------------------- #
# multi-phase composition
# --------------------------------------------------------------------- #
def test_poisoned_front_gray_back():
    spec = StormSpec(poisoned_domains=2, gray_domains=1, gray_slowdown=4.0)
    scenario = spec.compose(1000.0, fault_domains=4)
    assert scenario.initially_poisoned == (0, 1)
    assert scenario.gray_domains == (3,)
    assert scenario.gray_slowdown == 4.0


def test_gray_window_maps_fracs_to_seconds():
    spec = StormSpec(gray_domains=1, gray_slowdown=3.0,
                     gray_onset_frac=0.25, gray_heal_frac=0.5)
    scenario = spec.compose(1000.0, fault_domains=4)
    assert scenario.gray_onset_s == 250.0
    assert scenario.gray_heal_s == 500.0
    assert scenario.gray_factor(3, 200.0) == 1.0       # before onset
    assert scenario.gray_factor(3, 400.0) == 3.0       # inside window
    assert scenario.gray_factor(3, 800.0) == 1.0       # healed
    assert scenario.gray_factor(0, 400.0) == 1.0       # healthy domain


def test_gray_never_heals_when_frac_zero():
    spec = StormSpec(gray_domains=1, gray_slowdown=2.0, gray_heal_frac=0.0)
    scenario = spec.compose(1000.0, fault_domains=2)
    assert scenario.gray_heal_s is None
    assert scenario.gray_factor(1, 999.0) == 2.0


def test_domain_counts_clamp_to_available_domains():
    spec = StormSpec(poisoned_domains=8, gray_domains=8, gray_slowdown=2.0)
    scenario = spec.compose(600.0, fault_domains=3)
    assert scenario.initially_poisoned == (0, 1, 2)
    assert scenario.gray_domains == (0, 1, 2)


# --------------------------------------------------------------------- #
# operators
# --------------------------------------------------------------------- #
def test_mutation_is_seeded_and_deterministic():
    spec = CORPUS[0]
    a = spec.mutate(np.random.default_rng(3))
    b = spec.mutate(np.random.default_rng(3))
    assert a == b
    assert a != spec.mutate(np.random.default_rng(4)) or a == spec


def test_shrink_candidates_are_strictly_simpler():
    spec = StormSpec(crash_rate=0.4, gray_domains=2, gray_slowdown=6.0)
    candidates = spec.shrink_candidates()
    assert candidates, "an active storm must have shrink candidates"
    for candidate in candidates:
        assert candidate != spec
        # Each candidate quiets or halves exactly one phase knob; none may
        # amplify anything.
        for knob in PARAM_BOUNDS:
            cur, new = getattr(spec, knob), getattr(candidate, knob)
            assert abs(new - PARAM_BOUNDS[knob][0]) <= abs(
                cur - PARAM_BOUNDS[knob][0]
            ) + 1e-12 or knob == "correlated_fraction"


def test_quiet_spec_has_no_shrink_candidates():
    assert StormSpec().shrink_candidates() == []


def test_shrinking_bursts_to_zero_repairs_fraction():
    spec = StormSpec(correlated_bursts=2, correlated_fraction=0.5)
    candidates = spec.shrink_candidates()
    for candidate in candidates:
        if candidate.correlated_bursts == 0:
            assert candidate.correlated_fraction == 0.0


# --------------------------------------------------------------------- #
# serialization
# --------------------------------------------------------------------- #
def test_round_trip_identity():
    for spec in CORPUS:
        assert StormSpec.from_dict(spec.to_dict()) == spec


def test_from_dict_rejects_unknown_keys():
    payload = StormSpec().to_dict()
    payload["surprise"] = 1
    with pytest.raises(ValueError, match="unknown StormSpec keys"):
        StormSpec.from_dict(payload)


def test_from_dict_revalidates_bounds():
    payload = StormSpec().to_dict()
    payload["crash_rate"] = 0.99
    with pytest.raises(ValueError, match="crash_rate"):
        StormSpec.from_dict(payload)


def test_corpus_is_valid_and_distinctly_named():
    names = [spec.name for spec in CORPUS]
    assert len(set(names)) == len(names)
    for spec in CORPUS:
        assert not spec.quiet()
        spec.compose(900.0)  # must be constructible
    fresh = corpus()
    fresh.append(StormSpec(name="extra"))
    assert len(CORPUS) == len(fresh) - 1  # the tuple is not aliased
