"""The CLI console helper: verbosity mapping, stream separation, flags."""

import argparse
import logging

from repro.experiments import cli as experiments_cli
from repro.telemetry.logging import (
    add_verbosity_flags,
    echo,
    get_console_logger,
    verbosity_to_level,
)
from repro.tools import plan_cli


def test_verbosity_mapping():
    assert verbosity_to_level() == logging.INFO
    assert verbosity_to_level(verbose=1) == logging.DEBUG
    assert verbosity_to_level(quiet=1) == logging.WARNING
    assert verbosity_to_level(quiet=2) == logging.ERROR
    # clamped at both ends
    assert verbosity_to_level(verbose=5) == logging.DEBUG
    assert verbosity_to_level(quiet=9) == logging.ERROR
    # flags cancel out
    assert verbosity_to_level(verbose=1, quiet=1) == logging.INFO


def test_logger_writes_to_stderr_and_echo_to_stdout(capsys):
    log = get_console_logger("propack.test")
    log.info("diagnostic")
    echo("payload")
    captured = capsys.readouterr()
    assert captured.err == "diagnostic\n"
    assert captured.out == "payload\n"


def test_logger_quiet_suppresses_info(capsys):
    log = get_console_logger("propack.test", quiet=1)
    log.info("hidden")
    log.error("shown")
    assert capsys.readouterr().err == "shown\n"


def test_logger_reconfigures_without_duplicate_handlers(capsys):
    get_console_logger("propack.test")
    log = get_console_logger("propack.test")  # second call must not double-log
    log.info("once")
    assert capsys.readouterr().err == "once\n"


def test_add_verbosity_flags_counts():
    parser = argparse.ArgumentParser()
    add_verbosity_flags(parser)
    args = parser.parse_args(["-vv"])
    assert args.verbose == 2 and args.quiet == 0
    args = parser.parse_args(["-q", "-q"])
    assert args.quiet == 2


# --------------------------------------------------------------------- #
# The CLIs through the helper
# --------------------------------------------------------------------- #
def test_experiments_cli_errors_on_stderr(capsys):
    assert experiments_cli.main(["no-such-figure"]) == 2
    captured = capsys.readouterr()
    assert "unknown figures" in captured.err
    assert captured.out == ""


def test_experiments_cli_list_on_stdout(capsys):
    assert experiments_cli.main(["--list"]) == 0
    captured = capsys.readouterr()
    assert "fig" in captured.out
    assert captured.err == ""


def test_plan_cli_quiet_keeps_payload(capsys):
    rc = plan_cli.main(
        ["--app", "sort", "--concurrency", "200", "--json", "-q"]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert '"degree"' in captured.out
    assert captured.err == ""


def test_plan_cli_unknown_app_on_stderr(capsys):
    assert plan_cli.main(["--app", "nope", "--concurrency", "10"]) == 2
    captured = capsys.readouterr()
    assert "unknown app" in captured.err
    assert captured.out == ""
