"""Tests for the placement scheduler's search-cost growth."""

import pytest

from repro.cluster.server import ServerPool
from repro.platform.scheduler import PlacementScheduler
from repro.sim.engine import Simulator


def make_scheduler(base=0.0, search=1.0, servers=100):
    sim = Simulator()
    pool = ServerPool(servers, cores_per_server=64, memory_mb_per_server=10**6)
    return sim, PlacementScheduler(sim, pool, base_cost_s=base, search_cost_s=search)


def test_first_placement_costs_base_only():
    sim, sched = make_scheduler(base=2.0, search=1.0)
    done = []
    sched.request_placement(1, 10, lambda server: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(2.0)]


def test_search_cost_grows_with_placements():
    sim, sched = make_scheduler(base=0.0, search=1.0)
    done = []
    for _ in range(4):
        sched.request_placement(1, 10, lambda server: done.append(sim.now))
    sim.run()
    # Costs 0, 1, 2, 3 → cumulative completion at 0, 1, 3, 6.
    assert done == [pytest.approx(t) for t in (0.0, 1.0, 3.0, 6.0)]


def test_cumulative_delay_is_quadratic():
    sim, sched = make_scheduler(base=0.0, search=0.001, servers=512)
    last = []
    n = 200
    for _ in range(n):
        sched.request_placement(1, 10, lambda server: last.append(sim.now))
    sim.run()
    expected = 0.001 * (n - 1) * n / 2
    assert last[-1] == pytest.approx(expected)


def test_requests_served_in_order():
    sim, sched = make_scheduler(base=1.0, search=0.0)
    order = []
    for i in range(5):
        sched.request_placement(1, 10, lambda server, i=i: order.append(i))
    sim.run()
    assert order == list(range(5))


def test_callback_receives_server():
    sim, sched = make_scheduler()
    got = []
    sched.request_placement(2, 64, lambda server: got.append(server))
    sim.run()
    assert got[0].used_cores == 2
    assert got[0].used_memory_mb == 64


def test_placements_made_counter():
    sim, sched = make_scheduler()
    for _ in range(3):
        sched.request_placement(1, 10, lambda server: None)
    sim.run()
    assert sched.placements_made == 3


def test_late_request_after_idle():
    sim, sched = make_scheduler(base=1.0, search=0.5)
    done = []
    sched.request_placement(1, 10, lambda server: done.append(sim.now))
    sim.run()
    # A later burst still pays search proportional to total placements.
    sched.request_placement(1, 10, lambda server: done.append(sim.now))
    sim.run()
    assert done[0] == pytest.approx(1.0)
    assert done[1] == pytest.approx(1.0 + 1.0 + 0.5)  # base + search*1
