"""Property-based tests on the mixed-packing planner's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.mixed import MixedPacker
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SMITH_WATERMAN, SORT, STATELESS_COST, VIDEO, XAPIAN

APPS = (SORT, VIDEO, STATELESS_COST, SMITH_WATERMAN, XAPIAN)

demands = st.fixed_dictionaries(
    {},
    optional={app: st.integers(min_value=0, max_value=60) for app in APPS},
)


@given(demand=demands)
@settings(max_examples=50, deadline=None)
def test_mixed_packer_invariants(demand):
    packer = MixedPacker(AWS_LAMBDA)
    plan = packer.pack_mixed(demand)
    # Conservation: every demanded function is packed exactly once.
    expected = {app.name: count for app, count in demand.items() if count > 0}
    assert plan.functions_packed() == expected
    # Feasibility: every group fits memory and the execution cap.
    for group in plan.groups:
        assert group.memory_mb <= AWS_LAMBDA.max_memory_mb
        et = packer.model.instance_execution_seconds(group)
        assert et <= AWS_LAMBDA.max_execution_seconds
    # Group sizes are positive.
    assert all(group.size >= 1 for group in plan.groups)


@given(
    counts=st.tuples(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
    )
)
@settings(max_examples=40, deadline=None)
def test_mixed_never_needs_more_instances_than_singletons(counts):
    """The packer must never be worse than one-function-per-instance."""
    packer = MixedPacker(AWS_LAMBDA)
    demand = {SMITH_WATERMAN: counts[0], STATELESS_COST: counts[1]}
    plan = packer.pack_mixed(demand)
    assert plan.n_instances <= sum(counts)


@given(
    degree_a=st.integers(min_value=1, max_value=15),
    degree_b=st.integers(min_value=1, max_value=30),
    count_a=st.integers(min_value=1, max_value=50),
    count_b=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=40, deadline=None)
def test_segregated_layout_math(degree_a, degree_b, count_a, count_b):
    packer = MixedPacker(AWS_LAMBDA)
    plan = packer.pack_segregated(
        {SORT: count_a, STATELESS_COST: count_b},
        {SORT: degree_a, STATELESS_COST: degree_b},
    )
    assert plan.functions_packed() == {
        "sort": count_a, "stateless-cost": count_b
    }
    expected_instances = -(-count_a // degree_a) + -(-count_b // degree_b)
    assert plan.n_instances == expected_instances
    assert all(group.is_homogeneous() for group in plan.groups)
