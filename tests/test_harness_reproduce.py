"""``reproduce`` semantics (byte-exact for seeded sims) and run diffs."""

import json

from repro.harness import (
    ArtifactStore,
    CampaignExecutor,
    CampaignSpec,
    SweepStage,
    diff_runs,
    plan_campaign,
    reproduce_run,
)
from repro.harness.reproduce import compare_summaries
from repro.harness.targets import RunOutput, TargetRegistry, make_target


def _run_tiny_campaign(tmp_path, seeds=(5,)):
    spec = CampaignSpec(
        name="repro-camp",
        stages=(
            SweepStage(
                name="sweep",
                target="burst",
                params={"app": "stateless-cost", "packing_degree": 2},
                axes={"concurrency": (8, 16)},
                seeds=seeds,
            ),
        ),
    )
    report = CampaignExecutor(ArtifactStore(tmp_path)).run(spec)
    assert report.ok
    return spec, plan_campaign(spec)


def test_reproduce_fresh_manifest_is_byte_exact(tmp_path):
    spec, plan = _run_tiny_campaign(tmp_path)
    for planned in plan.runs:
        manifest_path = tmp_path / spec.name / planned.run_id / "manifest.json"
        report = reproduce_run(manifest_path)
        assert report.matched
        assert report.byte_identical
        assert report.mismatches == []
        assert report.resolution_drift == []


def test_reproduce_detects_tampered_summary(tmp_path):
    spec, plan = _run_tiny_campaign(tmp_path)
    run_dir = tmp_path / spec.name / plan.runs[0].run_id
    summary = json.loads((run_dir / "summary.json").read_text())
    summary["expense_usd"] *= 1.5
    (run_dir / "summary.json").write_text(json.dumps(summary, indent=2) + "\n")
    report = reproduce_run(run_dir / "manifest.json")
    assert not report.matched
    assert [m.key for m in report.mismatches] == ["expense_usd"]
    # The loose tolerance accepts the 50% drift, exact does not.
    loose = reproduce_run(run_dir / "manifest.json", tolerance=0.9)
    assert loose.matched and not loose.byte_identical


def test_compare_summaries_tolerance_and_missing_keys():
    assert compare_summaries({"a": 1.0}, {"a": 1.0}) == []
    assert compare_summaries({"a": 1.0}, {"a": 1.0 + 1e-9}, tolerance=1e-6) == []
    exact = compare_summaries({"a": 1.0}, {"a": 1.0 + 1e-9})
    assert [m.key for m in exact] == ["a"]
    missing = compare_summaries({"a": 1, "b": 2}, {"a": 1})
    assert [m.key for m in missing] == ["b"]
    # Non-numeric values always compare exactly.
    assert compare_summaries({"s": "x"}, {"s": "y"}, tolerance=0.5) != []


def test_reproduce_flags_resolution_drift(tmp_path):
    registry = TargetRegistry()
    coeff = {"value": 1.0}
    make_target(
        "drifty",
        lambda p: {**p, "coeff": coeff["value"]},
        lambda resolved, seed: RunOutput(summary={"out": resolved["coeff"]}),
        registry=registry,
    )
    spec = CampaignSpec(
        name="drift",
        stages=(SweepStage(name="s", target="drifty", seeds=(1,)),),
    )
    executor = CampaignExecutor(ArtifactStore(tmp_path), registry=registry)
    executor.run(spec)
    [planned] = plan_campaign(spec, registry).runs
    manifest_path = tmp_path / "drift" / planned.run_id / "manifest.json"
    # No drift initially.
    assert reproduce_run(manifest_path, registry=registry).resolution_drift == []
    # Re-tune the "profile": execution from the stored config still
    # matches, but the drift is reported.
    coeff["value"] = 2.0
    report = reproduce_run(manifest_path, registry=registry)
    assert report.matched
    assert report.resolution_drift == ["coeff"]


def test_diff_runs_localizes_the_changed_coefficient(tmp_path):
    spec, plan = _run_tiny_campaign(tmp_path)
    dir_a = tmp_path / spec.name / plan.runs[0].run_id
    dir_b = tmp_path / spec.name / plan.runs[1].run_id
    diff = diff_runs(dir_a, dir_b)
    assert not diff.identical
    assert [c.key for c in diff.config_changes] == ["concurrency"]
    assert {c.key for c in diff.summary_changes} >= {"expense_usd"}
    assert diff.provenance_changes == []
    same = diff_runs(dir_a, dir_a)
    assert same.identical
