"""Fusion vocabulary: groups, constraints, and plan expansion."""

import pytest

from repro.fusion.spec import (
    FusionConstraints,
    FusionGroup,
    FusionPlan,
    TenantDemand,
)
from repro.interference.model import PairwiseInterference
from repro.workloads import SORT, STATELESS_COST, VIDEO
from repro.workloads.base import AppSpec


def group(*members):
    return FusionGroup(tuple(members))


JAVA_APP = AppSpec(
    name="jvm-batch", base_seconds=30.0, mem_mb=512, io_mb=10.0,
    io_shared_fraction=0.5, pressure_per_gb=0.1, runtime_tag="java",
)


# --------------------------------------------------------------------- #
# demands and groups
# --------------------------------------------------------------------- #
def test_demand_validation():
    with pytest.raises(ValueError, match="count"):
        TenantDemand("a", SORT, 0)
    with pytest.raises(ValueError, match="tenant"):
        TenantDemand("", SORT, 1)


def test_group_aggregates():
    g = group(("a", SORT, 3), ("b", VIDEO, 2))
    assert g.size == 5
    assert g.memory_mb == 3 * SORT.mem_mb + 2 * VIDEO.mem_mb
    assert g.tenants == ("a", "b")
    assert g.is_fused()
    assert not group(("a", SORT, 4)).is_fused()


def test_group_rejects_duplicates_and_bad_counts():
    with pytest.raises(ValueError, match="duplicate"):
        group(("a", SORT, 1), ("a", SORT, 2))
    with pytest.raises(ValueError, match="counts"):
        group(("a", SORT, 0))
    with pytest.raises(ValueError, match="at least one member"):
        FusionGroup(())


def test_residents_merge_same_app_across_tenants():
    g = group(("a", SORT, 2), ("b", SORT, 3), ("b", VIDEO, 1))
    assert g.residents() == [(SORT, 5), (VIDEO, 1)]


def test_signature_is_order_independent():
    g1 = group(("a", SORT, 2), ("b", VIDEO, 1))
    g2 = group(("b", VIDEO, 1), ("a", SORT, 2))
    assert g1.signature() == g2.signature()


def test_merged_sums_counts():
    g = group(("a", SORT, 2)).merged(group(("a", SORT, 3), ("b", VIDEO, 1)))
    assert g.signature() == (("a", "sort", 5), ("b", "video", 1))


def test_tenant_weights_are_memory_shares():
    g = group(("a", SORT, 2), ("b", VIDEO, 1))
    weights = g.tenant_weights()
    assert weights["a"] == pytest.approx(2 * SORT.mem_gb)
    assert weights["b"] == pytest.approx(VIDEO.mem_gb)


# --------------------------------------------------------------------- #
# constraints
# --------------------------------------------------------------------- #
def test_memory_ceiling():
    constraints = FusionConstraints(max_memory_mb=2 * SORT.mem_mb)
    assert constraints.admits(group(("a", SORT, 2)))
    violations = constraints.violations(group(("a", SORT, 3)))
    assert violations and "memory" in violations[0]


def test_strict_isolation_blocks_cross_tenant_groups():
    strict = FusionConstraints(max_memory_mb=10240, isolation="strict")
    shared = FusionConstraints(max_memory_mb=10240, isolation="shared")
    mixed_tenants = group(("a", SORT, 1), ("b", VIDEO, 1))
    assert not strict.admits(mixed_tenants)
    assert shared.admits(mixed_tenants)
    # Same tenant, different apps is fine even under strict isolation.
    assert strict.admits(group(("a", SORT, 1), ("a", VIDEO, 1)))


def test_runtime_tags_gate_cross_runtime_fusion():
    closed = FusionConstraints(max_memory_mb=10240)
    open_ = FusionConstraints(max_memory_mb=10240, allow_cross_runtime=True)
    polyglot = group(("a", SORT, 1), ("a", JAVA_APP, 1))
    violations = closed.violations(polyglot)
    assert violations and "runtimes" in violations[0]
    assert open_.admits(polyglot)


def test_makespan_cap_needs_a_model():
    constraints = FusionConstraints(
        max_memory_mb=10240, max_execution_seconds=SORT.base_seconds * 1.01,
        latency_safety=1.0,
    )
    heavy = group(("a", SORT, 4))
    assert constraints.admits(heavy)  # no model, no makespan check
    assert not constraints.admits(heavy, PairwiseInterference())


def test_constraints_validation():
    with pytest.raises(ValueError, match="isolation"):
        FusionConstraints(max_memory_mb=1024, isolation="none")
    with pytest.raises(ValueError, match="memory"):
        FusionConstraints(max_memory_mb=0)
    with pytest.raises(ValueError, match="safety"):
        FusionConstraints(max_memory_mb=1024, latency_safety=0.0)


# --------------------------------------------------------------------- #
# plans
# --------------------------------------------------------------------- #
def test_plan_counts_and_expansion_order():
    g1 = group(("a", SORT, 2))
    g2 = group(("a", SORT, 1), ("b", STATELESS_COST, 3))
    plan = FusionPlan(bundles=((g1, 3), (g2, 2)))
    assert plan.n_instances == 5
    assert plan.n_functions == 3 * 2 + 2 * 4
    assert plan.fused_instances == 2
    assert plan.instance_groups() == [g1, g1, g1, g2, g2]
    assert plan.tenant_functions() == {"a": 8, "b": 6}


def test_plan_to_mixed_plan_flags_segregation():
    pure = FusionPlan(bundles=((group(("a", SORT, 2)), 2),))
    fused = FusionPlan(bundles=((group(("a", SORT, 1), ("b", VIDEO, 1)), 1),))
    assert pure.to_mixed_plan().segregated
    assert not fused.to_mixed_plan().segregated
    assert pure.to_mixed_plan().n_instances == 2


def test_plan_constraint_violations_cover_all_bundles():
    constraints = FusionConstraints(max_memory_mb=SORT.mem_mb, isolation="strict")
    plan = FusionPlan(
        bundles=(
            (group(("a", SORT, 2)), 1),                     # over memory
            (group(("a", SORT, 1), ("b", VIDEO, 1)), 1),    # cross-tenant
        )
    )
    violations = plan.constraint_violations(constraints)
    assert len(violations) >= 2


def test_plan_validation():
    with pytest.raises(ValueError, match="at least one bundle"):
        FusionPlan(bundles=())
    with pytest.raises(ValueError, match="replica"):
        FusionPlan(bundles=((group(("a", SORT, 1)), 0),))
