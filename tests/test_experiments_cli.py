"""``propack-experiments`` CLI: argument parsing and figure selection."""

import pytest

import repro.experiments.cli as cli
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.tables import FigureResult


@pytest.fixture()
def stub_figures(monkeypatch):
    """Replace the (slow) figure registry with instant stubs that record
    which figures ran and with what config."""
    calls = []

    def figure(name):
        def run(ctx):
            """Stub figure for CLI tests."""
            calls.append((name, ctx.config))
            return FigureResult(
                figure_id=name,
                title=f"stub {name}",
                columns=["x", "y"],
                rows=[{"x": 1, "y": 2.0}],
            )

        return run

    registry = {"figA": figure("figA"), "figB": figure("figB")}
    monkeypatch.setattr(cli, "ALL_FIGURES", registry)
    return calls


def test_list_prints_every_figure_id(capsys):
    assert cli.main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ALL_FIGURES:
        assert name in out


def test_no_figures_is_a_usage_error():
    assert cli.main([]) == 2


def test_unknown_figure_is_a_usage_error(stub_figures):
    assert cli.main(["figA", "nope", "-q"]) == 2
    assert stub_figures == []  # nothing ran


def test_selected_figures_run_in_request_order(stub_figures, capsys):
    assert cli.main(["figB", "figA", "-q"]) == 0
    assert [name for name, _ in stub_figures] == ["figB", "figA"]
    assert "stub figB" in capsys.readouterr().out


def test_all_expands_to_the_whole_registry(stub_figures):
    assert cli.main(["all", "-q"]) == 0
    assert [name for name, _ in stub_figures] == ["figA", "figB"]


def test_quick_and_seed_flags_shape_the_config(stub_figures):
    assert cli.main(["figA", "--quick", "--seed", "123", "-q"]) == 0
    [(_, config)] = stub_figures
    assert config.seed == 123
    # Quick grids are strictly smaller than the full ones.
    from repro.experiments.config import ExperimentConfig

    assert config.repetitions == ExperimentConfig.quick().repetitions
    assert config.repetitions < ExperimentConfig.full().repetitions


def test_default_config_is_the_full_grid(stub_figures):
    assert cli.main(["figA", "-q"]) == 0
    [(_, config)] = stub_figures
    from repro.experiments.config import ExperimentConfig

    assert config == ExperimentConfig.full()


def test_out_writes_rendered_tables_to_a_file(stub_figures, tmp_path, capsys):
    out_file = tmp_path / "tables.md"
    assert cli.main(["figA", "--markdown", "--out", str(out_file), "-q"]) == 0
    text = out_file.read_text()
    assert "stub figA" in text and "|" in text
    # Nothing rendered to stdout when --out is given.
    assert "stub figA" not in capsys.readouterr().out
