"""Tests for the analytical model fits (Eq. 1, Eq. 2, model families)."""

import numpy as np
import pytest

from repro.core.models import (
    ExecutionTimeModel,
    ScalingTimeModel,
    fit_model_family,
)


# --------------------------------------------------------------------- #
# ExecutionTimeModel (Eq. 1)
# --------------------------------------------------------------------- #

def test_exec_fit_recovers_exact_exponential():
    degrees = list(range(1, 16))
    times = [80.0 * np.exp(0.07 * d) for d in degrees]
    model = ExecutionTimeModel.fit(degrees, times, mem_gb=0.5)
    assert model.coeff_a == pytest.approx(80.0, rel=1e-6)
    assert model.coeff_b == pytest.approx(0.07, rel=1e-6)


def test_exec_alpha_definition():
    model = ExecutionTimeModel(coeff_a=100.0, coeff_b=0.06, mem_gb=0.5)
    assert model.alpha == pytest.approx(0.12)  # B = M * alpha


def test_exec_predict_matches_formula():
    model = ExecutionTimeModel(coeff_a=50.0, coeff_b=0.1, mem_gb=1.0)
    assert model.predict(3) == pytest.approx(50.0 * np.exp(0.3))


def test_exec_predict_many_vectorized():
    model = ExecutionTimeModel(coeff_a=50.0, coeff_b=0.1, mem_gb=1.0)
    many = model.predict_many([1, 2, 3])
    assert many == pytest.approx([model.predict(d) for d in (1, 2, 3)])


def test_exec_fit_tolerates_noise():
    rng = np.random.default_rng(0)
    degrees = list(range(1, 31))
    times = [60.0 * np.exp(0.05 * d) * rng.lognormal(0, 0.01) for d in degrees]
    model = ExecutionTimeModel.fit(degrees, times, mem_gb=0.25)
    assert model.coeff_b == pytest.approx(0.05, rel=0.05)


def test_exec_fit_requires_two_samples():
    with pytest.raises(ValueError):
        ExecutionTimeModel.fit([1], [10.0], mem_gb=1.0)


def test_exec_fit_rejects_nonpositive_times():
    with pytest.raises(ValueError):
        ExecutionTimeModel.fit([1, 2], [1.0, 0.0], mem_gb=1.0)


def test_exec_predict_rejects_degree_below_one():
    model = ExecutionTimeModel(coeff_a=1.0, coeff_b=0.1, mem_gb=1.0)
    with pytest.raises(ValueError):
        model.predict(0)
    with pytest.raises(ValueError):
        model.predict_many([0, 1])


def test_max_degree_within_latency_bound():
    model = ExecutionTimeModel(coeff_a=100.0, coeff_b=0.1, mem_gb=1.0)
    cap = model.max_degree_within(900.0)
    assert model.predict(cap) <= 900.0
    assert model.predict(cap + 1) > 900.0


def test_max_degree_bound_below_base_returns_one():
    model = ExecutionTimeModel(coeff_a=100.0, coeff_b=0.1, mem_gb=1.0)
    assert model.max_degree_within(50.0) == 1


def test_max_degree_flat_model_unbounded():
    model = ExecutionTimeModel(coeff_a=10.0, coeff_b=0.0, mem_gb=1.0)
    assert model.max_degree_within(900.0) > 10**6


def test_max_degree_rejects_bad_bound():
    model = ExecutionTimeModel(coeff_a=1.0, coeff_b=0.1, mem_gb=1.0)
    with pytest.raises(ValueError):
        model.max_degree_within(0.0)


# --------------------------------------------------------------------- #
# ScalingTimeModel (Eq. 2)
# --------------------------------------------------------------------- #

def test_scaling_fit_recovers_polynomial():
    c = [100, 500, 1000, 2000, 4000]
    s = [8e-5 * x**2 + 0.01 * x - 2.0 for x in c]
    model = ScalingTimeModel.fit(c, s)
    assert model.beta1 == pytest.approx(8e-5, rel=1e-6)
    assert model.beta2 == pytest.approx(0.01, rel=1e-4)
    assert model.beta3 == pytest.approx(2.0, rel=1e-3)


def test_scaling_predict_floors_at_zero():
    model = ScalingTimeModel(beta1=1e-5, beta2=0.0, beta3=100.0)
    assert model.predict(10) == 0.0


def test_scaling_predict_many():
    model = ScalingTimeModel(beta1=1e-5, beta2=0.01, beta3=0.0)
    out = model.predict_many([100, 200])
    assert out[0] == pytest.approx(model.predict(100))
    assert out[1] == pytest.approx(model.predict(200))


def test_scaling_fit_needs_three_points():
    with pytest.raises(ValueError):
        ScalingTimeModel.fit([1, 2], [1.0, 2.0])


def test_scaling_rejects_negative_concurrency():
    model = ScalingTimeModel(beta1=1.0, beta2=1.0, beta3=0.0)
    with pytest.raises(ValueError):
        model.predict(-1)


# --------------------------------------------------------------------- #
# Model-family selection (paper Sec. 2.2)
# --------------------------------------------------------------------- #

def test_exponential_wins_on_exponential_data():
    x = np.arange(1, 20)
    y = 50.0 * np.exp(0.08 * x)
    fits = fit_model_family(x, y)
    assert fits[0].family in ("exponential", "cubic")
    exp_fit = next(f for f in fits if f.family == "exponential")
    assert exp_fit.sse < 1e-6 * float(np.sum(y**2))


def test_quadratic_wins_on_quadratic_data():
    x = np.linspace(100, 4000, 10)
    y = 8e-5 * x**2 + 0.01 * x - 2
    fits = fit_model_family(x, y, families=("linear", "quadratic", "logarithmic"))
    assert fits[0].family == "quadratic"


def test_linear_beats_log_on_linear_data():
    x = np.linspace(1, 50, 20)
    y = 3.0 * x + 1.0
    fits = fit_model_family(x, y, families=("linear", "logarithmic"))
    assert fits[0].family == "linear"


def test_family_fit_predict_roundtrip():
    x = np.arange(1, 10, dtype=float)
    y = 2.0 * x + 5.0
    fits = fit_model_family(x, y, families=("linear",))
    assert fits[0].predict(x) == pytest.approx(y)


def test_unfittable_families_are_skipped():
    # Two points cannot fit a 4-parameter sinusoid; it must be dropped
    # rather than crash.
    fits = fit_model_family([1.0, 2.0], [1.0, 2.0], families=("sinusoidal", "linear"))
    assert all(np.isfinite(f.sse) for f in fits)
    assert any(f.family == "linear" for f in fits)
