"""Tests for the simulated execution of mixed packing plans."""

import pytest

from repro.core.profiler import ScalingProfiler
from repro.extensions.mixed import MixedPacker
from repro.extensions.mixed_sim import MixedBurstSimulator, _group_image
from repro.extensions.mixed import MixedGroup
from repro.platform.base import ServerlessPlatform
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SMITH_WATERMAN, SORT, STATELESS_COST, VIDEO


@pytest.fixture(scope="module")
def packer():
    return MixedPacker(AWS_LAMBDA)


@pytest.fixture(scope="module")
def simulator():
    return MixedBurstSimulator(AWS_LAMBDA, seed=121)


def test_group_image_union():
    group = MixedGroup(((SORT, 2), (VIDEO, 3)))
    image = _group_image(group)
    assert image.name == "sort+video"
    # Union carries both apps' code over one shared runtime.
    assert image.code_mb == SORT.code_mb + VIDEO.code_mb
    assert image.runtime_mb == max(SORT.runtime_mb, VIDEO.runtime_mb)


def test_mixed_sim_runs_every_group(packer, simulator):
    plan = packer.pack_mixed({SORT: 30, STATELESS_COST: 50})
    result = simulator.run(plan)
    assert result.run.n_instances == plan.n_instances
    assert sum(r.n_packed for r in result.run.records) == 80


def test_mixed_sim_rejects_empty_plan(packer, simulator):
    with pytest.raises(ValueError):
        simulator.run(packer.pack_mixed({}))


def test_mixed_sim_matches_analytic_service_prediction(packer, simulator):
    """The planner's analytic service-time prediction must track the DES."""
    plan = packer.pack_mixed({SORT: 100, VIDEO: 200, STATELESS_COST: 150})
    # Fit the scaling model from the real platform, as ProPack would.
    platform = ServerlessPlatform(AWS_LAMBDA, seed=121)
    scaling = ScalingProfiler(platform).profile().model
    predicted = plan.predicted_service_time(packer.model, scaling)
    result = simulator.run(plan)
    assert result.service_time == pytest.approx(predicted, rel=0.15)


def test_mixed_sim_expense_scales_with_instances(packer, simulator):
    small = simulator.run(packer.pack_mixed({SORT: 20}))
    large = simulator.run(packer.pack_mixed({SORT: 200}))
    assert large.expense_usd > 5 * small.expense_usd


def test_mixed_vs_segregated_in_simulation(packer, simulator):
    """Riding light functions along with heavy ones: the mixed plan uses
    fewer instances, so it scales faster in the DES too."""
    demand = {SMITH_WATERMAN: 120, STATELESS_COST: 240}
    mixed = packer.pack_mixed(demand)
    segregated = packer.pack_segregated(
        demand, {SMITH_WATERMAN: 4, STATELESS_COST: 8}
    )
    mixed_run = simulator.run(mixed, repetition=1)
    seg_run = simulator.run(segregated, repetition=1)
    assert mixed.n_instances < segregated.n_instances
    assert mixed_run.scaling_time < seg_run.scaling_time


def test_mixed_sim_deterministic(packer):
    plan = packer.pack_mixed({SORT: 40, VIDEO: 40})
    a = MixedBurstSimulator(AWS_LAMBDA, seed=5).run(plan)
    b = MixedBurstSimulator(AWS_LAMBDA, seed=5).run(plan)
    assert a.service_time == b.service_time
    assert a.expense_usd == b.expense_usd
