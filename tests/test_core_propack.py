"""Tests for the ProPack facade and the packing planner."""

import pytest

from repro.core.planner import build_plan
from repro.core.propack import ProPack
from repro.platform.base import ServerlessPlatform
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT, VIDEO, XAPIAN


@pytest.fixture(scope="module")
def propack():
    return ProPack(ServerlessPlatform(AWS_LAMBDA, seed=41))


# --------------------------------------------------------------------- #
# Caching / amortization
# --------------------------------------------------------------------- #

def test_interference_profile_is_cached(propack):
    first = propack.interference_profile(SORT)
    second = propack.interference_profile(SORT)
    assert first is second


def test_scaling_profile_is_shared_across_apps(propack):
    propack.interference_profile(SORT)
    a = propack.scaling_profile()
    propack.interference_profile(VIDEO)
    assert propack.scaling_profile() is a


# --------------------------------------------------------------------- #
# Planning
# --------------------------------------------------------------------- #

def test_plan_objectives_are_ordered(propack):
    service, _ = propack.plan(SORT, 2000, objective="service")
    joint, _ = propack.plan(SORT, 2000, objective="joint")
    expense, _ = propack.plan(SORT, 2000, objective="expense")
    assert service.degree <= joint.degree <= expense.degree


def test_plan_degree_grows_with_concurrency(propack):
    degrees = [propack.plan(SORT, c)[0].degree for c in (1000, 2000, 5000)]
    assert degrees == sorted(degrees)


def test_plan_carries_predictions(propack):
    plan, _ = propack.plan(SORT, 2000)
    assert plan.predicted_service_s > 0
    assert plan.predicted_expense_usd > 0
    assert plan.predicted_tail_s <= plan.predicted_service_s
    assert plan.n_instances == -(-2000 // plan.degree)


def test_plan_unknown_objective_rejected(propack):
    with pytest.raises(ValueError):
        propack.plan(SORT, 100, objective="latency")


def test_plan_respects_memory_cap(propack):
    plan, _ = propack.plan(SORT, 5000)
    assert plan.degree <= SORT.max_packing_degree(AWS_LAMBDA.max_memory_mb)


def test_qos_planning_requires_joint(propack):
    with pytest.raises(ValueError):
        propack.plan(XAPIAN, 1000, objective="service", qos_tail_bound_s=30.0)


def test_qos_planning_returns_decision(propack):
    plan, decision = propack.plan(XAPIAN, 2000, qos_tail_bound_s=60.0)
    assert decision is not None
    assert decision.feasible
    assert plan.w_s == decision.w_s


def test_burst_spec_roundtrip(propack):
    plan, _ = propack.plan(SORT, 500)
    spec = plan.burst_spec()
    assert spec.concurrency == 500
    assert spec.packing_degree == plan.degree
    assert spec.provisioned_mb == AWS_LAMBDA.max_memory_mb


# --------------------------------------------------------------------- #
# End-to-end run
# --------------------------------------------------------------------- #

def test_run_beats_baseline_at_high_concurrency(propack):
    from repro.baselines.nopack import run_unpacked

    outcome = propack.run(SORT, 5000)
    baseline = run_unpacked(propack.platform, SORT, 5000)
    assert outcome.result.service_time() < 0.5 * baseline.service_time()
    assert outcome.total_expense_usd < 0.6 * baseline.expense.total_usd


def test_run_includes_overhead_in_expense(propack):
    outcome = propack.run(SORT, 1000)
    assert outcome.overhead_usd > 0
    assert outcome.total_expense_usd == pytest.approx(
        outcome.result.expense.total_usd + outcome.overhead_usd
    )


def test_run_prediction_close_to_observation(propack):
    outcome = propack.run(SORT, 2000)
    assert outcome.plan.predicted_service_s == pytest.approx(
        outcome.result.service_time(), rel=0.1
    )


def test_validate_models_passes_paper_threshold(propack):
    gof = propack.validate_models(SORT, 2000)
    assert gof["service"].accepted
    assert gof["expense"].accepted
    assert gof["expense"].statistic < 0.055  # paper's reported max


# --------------------------------------------------------------------- #
# Planner internals
# --------------------------------------------------------------------- #

def test_build_plan_single_objective_weights(propack):
    optimizer = propack.optimizer(SORT, 1000)
    service_plan = build_plan(optimizer, objective="service")
    expense_plan = build_plan(optimizer, objective="expense")
    assert service_plan.w_s == 1.0 and service_plan.w_e == 0.0
    assert expense_plan.w_s == 0.0 and expense_plan.w_e == 1.0


def test_build_plan_rejects_unknown_objective(propack):
    with pytest.raises(ValueError):
        build_plan(propack.optimizer(SORT, 100), objective="nope")
