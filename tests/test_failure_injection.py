"""Tests for failure injection and Lambda-style retries."""

import pytest

from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT, STATELESS_COST

FLAKY = AWS_LAMBDA.with_overrides(name="flaky-lambda", failure_rate=0.2)


@pytest.fixture()
def flaky_platform():
    """A fresh seeded platform per test.

    Platform RNG state advances with every burst (`_run_counter`), so a
    shared module-scoped platform would make assertions depend on test
    execution order. Constructing per test keeps each test's draws pinned
    to the seed alone.
    """
    return ServerlessPlatform(FLAKY, seed=81)


def test_defaults_are_failure_free():
    platform = ServerlessPlatform(AWS_LAMBDA, seed=81)
    result = platform.run_burst(BurstSpec(app=SORT, concurrency=100))
    assert result.n_failed_attempts == 0
    assert result.lost_functions == 0
    assert len(result.successful_records) == 100


def test_failures_occur_and_are_retried(flaky_platform):
    result = flaky_platform.run_burst(BurstSpec(app=SORT, concurrency=200))
    assert result.n_failed_attempts > 10  # ~20% of ~200+ attempts
    # Every function eventually completed (retry budget is generous).
    completed = sum(r.n_packed for r in result.successful_records)
    assert completed + result.lost_functions == 200
    assert result.lost_functions <= 5  # 0.2^3 per function → rare


def test_retry_records_have_incremented_attempt(flaky_platform):
    result = flaky_platform.run_burst(BurstSpec(app=SORT, concurrency=200))
    retries = [r for r in result.records if r.attempt > 1]
    assert retries
    assert all(r.attempt <= FLAKY.max_retries + 1 for r in result.records)


def test_failed_attempts_are_billed(flaky_platform):
    """Providers charge for crashed attempts — expense exceeds the
    failure-free cost of the same burst."""
    clean = ServerlessPlatform(AWS_LAMBDA, seed=81).run_burst(
        BurstSpec(app=SORT, concurrency=200), repetition=0
    )
    flaky = flaky_platform.run_burst(BurstSpec(app=SORT, concurrency=200), repetition=0)
    assert flaky.expense.total_usd > clean.expense.total_usd


def test_failures_inflate_tail_service_time(flaky_platform):
    clean = ServerlessPlatform(AWS_LAMBDA, seed=81).run_burst(
        BurstSpec(app=SORT, concurrency=300), repetition=0
    )
    flaky = flaky_platform.run_burst(BurstSpec(app=SORT, concurrency=300), repetition=0)
    assert flaky.service_time("total") > clean.service_time("total")


def test_zero_retries_loses_functions():
    profile = AWS_LAMBDA.with_overrides(
        name="no-retry", failure_rate=0.3, max_retries=0
    )
    platform = ServerlessPlatform(profile, seed=7)
    result = platform.run_burst(BurstSpec(app=STATELESS_COST, concurrency=100))
    assert result.lost_functions > 0
    completed = sum(r.n_packed for r in result.successful_records)
    assert completed + result.lost_functions == 100


def test_service_metrics_exclude_failed_attempts(flaky_platform):
    result = flaky_platform.run_burst(BurstSpec(app=SORT, concurrency=100))
    failed_ends = [r.exec_end for r in result.records if r.failed]
    assert failed_ends  # crashes happened
    # No failed attempt's end time is treated as a service completion.
    total = result.service_time("total")
    ok = result.successful_records
    assert max(r.exec_end for r in ok) == total


def test_packed_failures_retry_whole_instance(flaky_platform):
    result = flaky_platform.run_burst(
        BurstSpec(app=SORT, concurrency=100, packing_degree=5)
    )
    completed = sum(r.n_packed for r in result.successful_records)
    assert completed + result.lost_functions == 100
    # Retried attempts keep the original packing degree.
    for r in result.records:
        if r.attempt > 1:
            assert 1 <= r.n_packed <= 5


def test_all_attempts_failing_drains_cleanly():
    profile = AWS_LAMBDA.with_overrides(
        name="always-fails", failure_rate=1.0, max_retries=1
    )
    platform = ServerlessPlatform(profile, seed=9)
    result = platform.run_burst(BurstSpec(app=STATELESS_COST, concurrency=10))
    assert result.lost_functions == 10
    assert not result.successful_records
    with pytest.raises(ValueError, match="no instance completed"):
        result.service_time()


def test_fault_stats_track_default_path_crashes(flaky_platform):
    result = flaky_platform.run_burst(BurstSpec(app=SORT, concurrency=200))
    stats = result.fault_stats
    assert stats.crashed_attempts == result.n_failed_attempts
    assert stats.retries_scheduled > 0
    assert stats.wasted_billed_gb_seconds > 0.0
    assert 0.0 < stats.work_loss_ratio < 1.0
