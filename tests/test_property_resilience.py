"""Property-based tests on the resilience layer's invariants.

Three invariants, pinned across the whole parameter space:

1. no admission controller ever lets the admitted-but-unfinished load
   exceed its concurrency limit;
2. ``admitted + shed == arrivals`` exactly, for every policy and seed;
3. an open circuit breaker never admits a dispatch before its recovery
   deadline.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import check_admission_conservation
from repro.resilience import (
    AIMDAdmission,
    CircuitBreaker,
    ConcurrencyLimitAdmission,
    PriorityMix,
    TokenBucketAdmission,
    UnboundedAdmission,
)
from repro.resilience.breaker import OPEN


def build_controller(kind, limit, seed):
    if kind == "unbounded":
        return UnboundedAdmission()
    if kind == "limit":
        return ConcurrencyLimitAdmission(limit=limit)
    if kind == "bucket":
        return TokenBucketAdmission(capacity=limit, refill_per_s=1.0 + seed % 5)
    return AIMDAdmission(
        initial_limit=limit, min_limit=1, max_limit=4 * limit,
        additive_step=2.0, decrease_factor=0.5,
    )


@given(
    kind=st.sampled_from(["unbounded", "limit", "bucket", "aimd"]),
    limit=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=1, max_value=300),
)
@settings(max_examples=60, deadline=None)
def test_admission_never_exceeds_limit_and_accounts_exactly(kind, limit, seed, n):
    """Drive a synthetic arrival/completion mixture through a controller."""
    ctl = build_controller(kind, limit, seed)
    gen = np.random.default_rng(seed)
    mix = PriorityMix()
    now, outstanding = 0.0, 0
    for _ in range(n):
        now += float(gen.exponential(0.5))
        # Random completions drain the outstanding load between arrivals.
        outstanding -= int(gen.integers(0, outstanding + 1)) if outstanding else 0
        priority = mix.draw(gen)
        cap = ctl.concurrency_limit
        if ctl.decide(now, priority, queue_depth=0, in_flight=outstanding):
            # Invariant 1: an admission is only ever granted while the
            # load sits strictly below the live concurrency limit — the
            # controller never admits past its cap. (The cap itself may
            # later shrink below already-admitted load; that's drainage,
            # not over-admission.)
            if math.isfinite(cap):
                assert outstanding < cap
            outstanding += 1
        if gen.random() < 0.3:
            ctl.observe_window(now, float(gen.random()))
    # Invariant 2: exact accounting, bit-for-bit.
    stats = ctl.stats
    assert not check_admission_conservation(stats)
    assert stats.arrivals == n
    assert stats.admitted + sum(stats.shed_by_priority) == n


@given(
    kind=st.sampled_from(["limit", "bucket", "aimd"]),
    limit=st.integers(min_value=1, max_value=32),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_same_seed_same_decisions(kind, limit, seed):
    """One seed fixes the whole admit/shed sequence for every policy."""
    def trace():
        ctl = build_controller(kind, limit, seed)
        gen = np.random.default_rng(seed)
        verdicts = []
        for i in range(100):
            verdicts.append(
                ctl.decide(0.1 * i, int(gen.integers(3)),
                           int(gen.integers(10)), int(gen.integers(10)))
            )
            if i % 7 == 0:
                ctl.observe_window(0.1 * i, float(gen.random()))
        return verdicts, ctl.stats.signature()

    assert trace() == trace()


@given(
    failure_threshold=st.integers(min_value=1, max_value=5),
    recovery_s=st.floats(min_value=0.5, max_value=60.0),
    jitter=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=10, max_value=200),
)
@settings(max_examples=60, deadline=None)
def test_breaker_never_dispatches_while_open(
    failure_threshold, recovery_s, jitter, seed, n
):
    """Invariant 3: ``allow`` is False strictly before the open deadline."""
    breaker = CircuitBreaker(
        failure_threshold=failure_threshold,
        recovery_s=recovery_s,
        jitter=jitter,
        rng=np.random.default_rng(seed),
    )
    gen = np.random.default_rng(seed + 1)
    now = 0.0
    for _ in range(n):
        now += float(gen.exponential(recovery_s / 3.0))
        was_open = breaker.state == OPEN
        deadline = breaker.open_until
        allowed = breaker.allow(now)
        if was_open and now < deadline:
            assert not allowed
        if allowed:
            breaker.record_failure(now) if gen.random() < 0.5 else (
                breaker.record_success(now)
            )
    # Transition log is time-ordered and alternates out of each state.
    times = [t for (t, _, _) in breaker.transitions]
    assert times == sorted(times)
    for (_, src, dst) in breaker.transitions:
        assert src != dst
