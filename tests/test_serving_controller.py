"""Tests for the online replanner (hysteresis, cooldown, optimizer cap)."""

import pytest

from repro.core.models import ExecutionTimeModel, ScalingTimeModel
from repro.platform.providers import AWS_LAMBDA
from repro.serving.controller import OnlineReplanner
from repro.workloads import XAPIAN

EXEC = ExecutionTimeModel(
    coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
)
SCALING = ScalingTimeModel(beta1=8e-5, beta2=0.01, beta3=5.0)


def make_replanner(**overrides):
    kwargs = dict(
        profile=AWS_LAMBDA,
        app=XAPIAN,
        exec_model=EXEC,
        qos_sojourn_s=30.0,
        window_s=100.0,
        hysteresis=0.25,
        cooldown_s=180.0,
    )
    kwargs.update(overrides)
    return OnlineReplanner(**kwargs)


def feed_rate(replanner, rate_per_s, start, end):
    t = start
    gap = 1.0 / rate_per_s
    while t < end:
        replanner.record_arrival(t)
        t += gap


def test_validation():
    with pytest.raises(ValueError):
        make_replanner(window_s=0.0)
    with pytest.raises(ValueError):
        make_replanner(hysteresis=-0.1)
    with pytest.raises(ValueError):
        make_replanner(cooldown_s=-1.0)


def test_sliding_window_rate_estimate():
    replanner = make_replanner(window_s=100.0)
    feed_rate(replanner, 2.0, 0.0, 200.0)
    # Only the last 100s of arrivals count: 200 arrivals / 100s.
    assert replanner.observed_rate(200.0) == pytest.approx(2.0, rel=0.05)
    # An idle stretch empties the window entirely.
    assert replanner.observed_rate(1000.0) == 0.0


def test_first_replan_adopts_initial_plan():
    replanner = make_replanner()
    feed_rate(replanner, 2.0, 0.0, 100.0)
    decision = replanner.replan(100.0)
    assert decision.changed
    assert decision.reason == "initial"
    assert decision.policy.degree >= 1
    assert decision.pool_target >= 1
    assert replanner.policy == decision.policy


def test_small_drift_is_held_by_hysteresis():
    replanner = make_replanner(hysteresis=0.25)
    feed_rate(replanner, 2.0, 0.0, 100.0)
    replanner.replan(100.0)
    feed_rate(replanner, 2.2, 100.0, 200.0)  # 10% drift < 25% deadband
    decision = replanner.replan(200.0)
    assert not decision.changed
    assert decision.reason == "hysteresis-hold"
    assert replanner.changes == 1


def test_large_drift_in_cooldown_is_held():
    replanner = make_replanner(hysteresis=0.25, cooldown_s=500.0)
    feed_rate(replanner, 2.0, 0.0, 100.0)
    replanner.replan(100.0)
    feed_rate(replanner, 8.0, 100.0, 200.0)  # 4x the planned rate
    decision = replanner.replan(200.0)
    assert not decision.changed
    assert decision.reason == "cooldown-hold"


def test_large_drift_past_cooldown_is_adopted():
    replanner = make_replanner(hysteresis=0.25, cooldown_s=50.0)
    feed_rate(replanner, 0.2, 0.0, 100.0)
    first = replanner.replan(100.0)
    feed_rate(replanner, 8.0, 100.0, 200.0)
    decision = replanner.replan(200.0)
    assert decision.changed
    assert decision.reason == "rate-drift"
    # Much more traffic: the planner packs deeper and targets a bigger pool.
    assert decision.policy.degree > first.policy.degree
    assert decision.pool_target > first.pool_target
    assert replanner.changes == 2
    assert replanner.replans == 2


def test_decisions_are_logged():
    replanner = make_replanner()
    feed_rate(replanner, 1.0, 0.0, 100.0)
    replanner.replan(100.0)
    feed_rate(replanner, 1.0, 100.0, 160.0)
    replanner.replan(160.0)
    assert [d.reason for d in replanner.decisions] == [
        "initial", "hysteresis-hold"
    ]


def test_optimizer_caps_the_degree():
    """With a scaling model, the joint burst optimum bounds the degree."""
    uncapped = make_replanner()
    feed_rate(uncapped, 8.0, 0.0, 100.0)
    planned = uncapped.replan(100.0).policy

    # A scaling model with a huge quadratic term makes deep packing
    # pointless for the burst optimizer, which then caps the degree.
    harsh = ScalingTimeModel(beta1=0.0, beta2=0.0, beta3=0.0)
    capped = make_replanner(scaling_model=harsh)
    feed_rate(capped, 8.0, 0.0, 100.0)
    decision = capped.replan(100.0)
    assert decision.policy.degree < planned.degree
    # The planner's timeout survives the cap (still QoS-feasible).
    assert decision.policy.batch_timeout_s == pytest.approx(
        planned.batch_timeout_s
    )
