"""Admission controllers: decisions, accounting, and priority ordering."""

import math

import numpy as np
import pytest

from repro.chaos import check_admission_conservation
from repro.resilience import (
    HIGH,
    LOW,
    NORMAL,
    AIMDAdmission,
    AdmissionStats,
    ConcurrencyLimitAdmission,
    PriorityMix,
    TokenBucketAdmission,
    UnboundedAdmission,
)


class TestPriorityMix:
    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            PriorityMix(high=0.5, normal=0.5, low=0.5)

    def test_shares_must_be_non_negative(self):
        with pytest.raises(ValueError):
            PriorityMix(high=-0.1, normal=0.6, low=0.5)

    def test_draw_is_deterministic_per_seed(self):
        mix = PriorityMix(high=0.3, normal=0.5, low=0.2)
        a = [mix.draw(np.random.default_rng(7)) for _ in range(1)]
        b = [mix.draw(np.random.default_rng(7)) for _ in range(1)]
        assert a == b

    def test_draw_matches_shares(self):
        mix = PriorityMix(high=0.25, normal=0.5, low=0.25)
        gen = np.random.default_rng(2023)
        draws = [mix.draw(gen) for _ in range(20000)]
        assert abs(draws.count(HIGH) / 20000 - 0.25) < 0.02
        assert abs(draws.count(NORMAL) / 20000 - 0.5) < 0.02
        assert abs(draws.count(LOW) / 20000 - 0.25) < 0.02

    def test_degenerate_mix_always_draws_that_class(self):
        mix = PriorityMix(high=0.0, normal=0.0, low=1.0)
        gen = np.random.default_rng(1)
        assert all(mix.draw(gen) == LOW for _ in range(50))


class TestAdmissionStats:
    def test_conservation_identity(self):
        stats = AdmissionStats()
        gen = np.random.default_rng(5)
        for _ in range(500):
            stats.record(int(gen.integers(3)), bool(gen.random() < 0.6))
        assert not check_admission_conservation(stats)
        assert stats.arrivals == 500
        assert stats.admitted + stats.shed == 500

    def test_shed_tracked_per_priority(self):
        stats = AdmissionStats()
        stats.record(HIGH, False)
        stats.record(LOW, False)
        stats.record(LOW, False)
        stats.record(NORMAL, True)
        assert stats.shed_by_priority == [1, 0, 2]
        assert stats.shed == 3


class TestUnbounded:
    def test_admits_everything(self):
        ctl = UnboundedAdmission()
        assert all(
            ctl.decide(t, p, 10**6, 10**6)
            for t in (0.0, 1.0)
            for p in (HIGH, NORMAL, LOW)
        )
        assert ctl.stats.shed == 0
        assert ctl.concurrency_limit == math.inf


class TestConcurrencyLimit:
    def test_admits_below_limit_sheds_at_limit(self):
        ctl = ConcurrencyLimitAdmission(limit=10, priority_watermarks=(1.0, 1.0, 1.0))
        assert ctl.decide(0.0, HIGH, queue_depth=4, in_flight=5)
        assert not ctl.decide(0.0, HIGH, queue_depth=5, in_flight=5)
        assert not check_admission_conservation(ctl.stats)

    def test_low_priority_sheds_first(self):
        ctl = ConcurrencyLimitAdmission(limit=10, priority_watermarks=(1.0, 0.9, 0.7))
        # Load 7: below every watermark except low's (7 >= 10*0.7).
        assert ctl.admit(0.0, HIGH, 7, 0)
        assert ctl.admit(0.0, NORMAL, 7, 0)
        assert not ctl.admit(0.0, LOW, 7, 0)

    def test_watermarks_must_not_increase(self):
        with pytest.raises(ValueError):
            ConcurrencyLimitAdmission(limit=10, priority_watermarks=(0.7, 0.9, 1.0))

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            ConcurrencyLimitAdmission(limit=0)


class TestTokenBucket:
    def test_burst_drains_then_sheds(self):
        ctl = TokenBucketAdmission(capacity=5, refill_per_s=1.0,
                                   reserve_fractions=(0.0, 0.0, 0.0))
        verdicts = [ctl.decide(0.0, HIGH, 0, 0) for _ in range(7)]
        assert verdicts == [True] * 5 + [False] * 2
        assert ctl.stats.shed == 2

    def test_refill_restores_admission(self):
        ctl = TokenBucketAdmission(capacity=2, refill_per_s=1.0,
                                   reserve_fractions=(0.0, 0.0, 0.0))
        assert ctl.decide(0.0, HIGH, 0, 0)
        assert ctl.decide(0.0, HIGH, 0, 0)
        assert not ctl.decide(0.0, HIGH, 0, 0)
        assert ctl.decide(2.5, HIGH, 0, 0)

    def test_reserve_protects_high_priority(self):
        ctl = TokenBucketAdmission(capacity=10, refill_per_s=1.0,
                                   reserve_fractions=(0.0, 0.0, 0.5))
        # Drain to 4 tokens: low priority needs 1 + 0.5*10 = 6 available.
        for _ in range(6):
            assert ctl.decide(0.0, HIGH, 0, 0)
        assert not ctl.decide(0.0, LOW, 0, 0)
        assert ctl.decide(0.0, HIGH, 0, 0)

    def test_reserves_must_not_decrease(self):
        with pytest.raises(ValueError):
            TokenBucketAdmission(capacity=10, refill_per_s=1.0,
                                 reserve_fractions=(0.25, 0.1, 0.0))


class TestAIMD:
    def test_healthy_windows_grow_limit(self):
        ctl = AIMDAdmission(initial_limit=16, additive_step=4.0)
        for i in range(3):
            ctl.observe_window(float(i), 0.0)
        assert ctl.concurrency_limit == 28
        assert ctl.increases == 3

    def test_breach_halves_limit(self):
        ctl = AIMDAdmission(initial_limit=64, decrease_factor=0.5,
                            breach_threshold=0.02)
        ctl.observe_window(0.0, 0.5)
        assert ctl.concurrency_limit == 32
        assert ctl.decreases == 1

    def test_limit_stays_within_bounds(self):
        ctl = AIMDAdmission(initial_limit=8, min_limit=4, max_limit=16,
                            additive_step=8.0, decrease_factor=0.1)
        for _ in range(10):
            ctl.observe_window(0.0, 1.0)
        assert ctl.concurrency_limit == 4
        for _ in range(10):
            ctl.observe_window(0.0, 0.0)
        assert ctl.concurrency_limit == 16

    def test_admit_uses_live_limit(self):
        ctl = AIMDAdmission(initial_limit=8,
                            priority_watermarks=(1.0, 1.0, 1.0))
        assert ctl.decide(0.0, HIGH, 3, 4)
        assert not ctl.decide(0.0, HIGH, 4, 4)
        ctl.observe_window(1.0, 1.0)  # halve to 4
        assert not ctl.decide(1.0, HIGH, 2, 2)
        assert not check_admission_conservation(ctl.stats)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            AIMDAdmission(initial_limit=2, min_limit=4)
        with pytest.raises(ValueError):
            AIMDAdmission(decrease_factor=1.0)
