"""Tests for deadline-driven workflow planning."""

import pytest

from repro.core.propack import ProPack
from repro.platform.base import ServerlessPlatform
from repro.platform.providers import AWS_LAMBDA
from repro.workflows import Stage, WorkflowGraph, WorkflowRunner
from repro.workflows.deadline import DeadlinePlanner
from repro.workloads import SORT, STATELESS_COST, VIDEO


@pytest.fixture(scope="module")
def setup():
    platform = ServerlessPlatform(AWS_LAMBDA, seed=211)
    propack = ProPack(platform)
    workflow = WorkflowGraph([
        Stage("split", STATELESS_COST, 1000),
        Stage("encode", VIDEO, 3000, depends_on=("split",)),
        Stage("index", STATELESS_COST, 1500, depends_on=("split",)),
        Stage("merge", SORT, 1000, depends_on=("encode", "index")),
    ])
    return platform, propack, workflow


def test_loose_deadline_keeps_expense_optimal_degrees(setup):
    _, propack, workflow = setup
    planner = DeadlinePlanner(propack)
    plan = planner.plan(workflow, deadline_s=100_000.0)
    assert plan.feasible
    for stage in workflow.topological_order():
        expense_opt = propack.optimizer(
            stage.app, stage.concurrency
        ).optimal_expense()
        assert plan.degrees[stage.name] == expense_opt


def test_tight_deadline_trades_expense_for_speed(setup):
    _, propack, workflow = setup
    planner = DeadlinePlanner(propack)
    loose = planner.plan(workflow, deadline_s=100_000.0)
    tight = planner.plan(workflow, deadline_s=loose.predicted_makespan_s * 0.7)
    assert tight.feasible
    assert tight.predicted_makespan_s < loose.predicted_makespan_s
    assert tight.predicted_expense_usd > loose.predicted_expense_usd


def test_tighter_deadlines_cost_monotonically_more(setup):
    _, propack, workflow = setup
    planner = DeadlinePlanner(propack)
    loose = planner.plan(workflow, deadline_s=100_000.0)
    base = loose.predicted_makespan_s
    expenses = [
        planner.plan(workflow, deadline_s=base * f).predicted_expense_usd
        for f in (1.0, 0.8, 0.6)
    ]
    assert expenses == sorted(expenses)


def test_impossible_deadline_reported_infeasible(setup):
    _, propack, workflow = setup
    plan = DeadlinePlanner(propack).plan(workflow, deadline_s=1.0)
    assert not plan.feasible
    assert plan.predicted_makespan_s > 1.0  # honest: best effort reported


def test_plan_only_touches_critical_path_stages(setup):
    """Off-critical stages keep their cheap degrees: the planner pays for
    speed only where the makespan demands it."""
    _, propack, workflow = setup
    planner = DeadlinePlanner(propack)
    loose = planner.plan(workflow, deadline_s=100_000.0)
    tight = planner.plan(workflow, deadline_s=loose.predicted_makespan_s * 0.8)
    changed = [n for n in tight.degrees if tight.degrees[n] != loose.degrees[n]]
    assert changed  # something had to speed up
    assert set(changed) <= set(loose.critical_path) | set(tight.critical_path)


def test_realized_makespan_meets_deadline(setup):
    platform, propack, workflow = setup
    planner = DeadlinePlanner(propack)
    loose = planner.plan(workflow, deadline_s=100_000.0)
    deadline = loose.predicted_makespan_s * 0.75
    plan = planner.plan(workflow, deadline)
    assert plan.feasible
    result = WorkflowRunner(platform).run(workflow, degrees=plan.degrees)
    assert result.makespan_s <= deadline


def test_deadline_validation(setup):
    _, propack, workflow = setup
    with pytest.raises(ValueError):
        DeadlinePlanner(propack).plan(workflow, deadline_s=0.0)
    with pytest.raises(ValueError):
        DeadlinePlanner(propack, safety=0.0)
