"""Tests for the container build + ship pipeline."""

import pytest

from repro.cluster.network import NetworkFabric
from repro.cluster.registry import FunctionImage
from repro.platform.container import ContainerPipeline
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams

IMAGE = FunctionImage("app", code_mb=10.0, runtime_mb=50.0, dependencies_mb=40.0)


def make_pipeline(slots=2, rate=10.0, base=1.0, cache=1.0, noise=0.0, uplink=1.0):
    sim = Simulator()
    net = NetworkFabric(sim, uplink_gbps=uplink)
    pipeline = ContainerPipeline(
        sim,
        net,
        RandomStreams(0),
        build_slots=slots,
        build_rate_mb_s=rate,
        build_base_s=base,
        ship_overhead_mb=5.0,
        build_cache_factor=cache,
        build_noise_sigma=noise,
    )
    return sim, pipeline


def test_build_seconds_formula():
    _, pipeline = make_pipeline(rate=10.0, base=1.0)
    # install = runtime + deps = 90 MB at 10 MB/s plus 1s base.
    assert pipeline.build_seconds(IMAGE) == pytest.approx(10.0)


def test_build_cache_factor_shrinks_install():
    _, pipeline = make_pipeline(rate=10.0, base=1.0, cache=0.5)
    assert pipeline.build_seconds(IMAGE) == pytest.approx(1.0 + 45.0 / 10.0)


def test_build_factor_discount():
    _, pipeline = make_pipeline(rate=10.0, base=1.0)
    assert pipeline.build_seconds(IMAGE, build_factor=0.5) == pytest.approx(5.5)


def test_ship_size_includes_overhead():
    _, pipeline = make_pipeline()
    assert pipeline.ship_size_mb(IMAGE) == pytest.approx(105.0)


def test_ship_factor_discounts_image_but_not_overhead():
    _, pipeline = make_pipeline()
    assert pipeline.ship_size_mb(IMAGE, ship_factor=0.5) == pytest.approx(55.0)


def test_build_completion_fires_callback():
    sim, pipeline = make_pipeline(slots=1, rate=90.0, base=0.0)
    done = []
    pipeline.build(IMAGE, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(1.0)]
    assert pipeline.containers_built == 1


def test_builds_queue_on_slots():
    sim, pipeline = make_pipeline(slots=1, rate=90.0, base=0.0)
    done = []
    pipeline.build(IMAGE, lambda: done.append(sim.now))
    pipeline.build(IMAGE, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(1.0), pytest.approx(2.0)]


def test_ship_uses_network():
    sim, pipeline = make_pipeline(uplink=1.0)  # 125 MB/s
    done = []
    pipeline.ship(IMAGE, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(105.0 / 125.0)]


def test_callbacks_receive_args():
    sim, pipeline = make_pipeline(slots=1, rate=90.0, base=0.0)
    got = []
    pipeline.build(IMAGE, lambda tag: got.append(tag), "built-1")
    pipeline.ship(IMAGE, lambda tag: got.append(tag), "shipped-1")
    sim.run()
    assert set(got) == {"built-1", "shipped-1"}


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        make_pipeline(rate=0.0)
    with pytest.raises(ValueError):
        make_pipeline(cache=0.0)
    with pytest.raises(ValueError):
        make_pipeline(cache=1.5)


def test_build_noise_perturbs_duration():
    sim, pipeline = make_pipeline(slots=1, rate=90.0, base=0.0, noise=0.2)
    done = []
    pipeline.build(IMAGE, lambda: done.append(sim.now))
    sim.run()
    assert done[0] != pytest.approx(1.0)
    assert 0.3 < done[0] < 3.0
