"""``propack-campaign`` CLI: run/status/reproduce/diff and error paths."""

import json

import pytest

from repro.harness import CampaignSpec, SweepStage, plan_campaign
from repro.harness.cli import main
from repro.harness.spec import builtin_specs


@pytest.fixture()
def quickstart_root(tmp_path):
    """A completed quickstart campaign under ``tmp_path / results``."""
    root = tmp_path / "results"
    assert main(["run", "quickstart", "--root", str(root), "-q"]) == 0
    return root


def _quickstart_run_dirs(root):
    plan = plan_campaign(builtin_specs()["quickstart"])
    return [root / "quickstart" / planned.run_id for planned in plan.runs]


def test_run_executes_builtin_spec_and_resumes(quickstart_root, capsys):
    for run_dir in _quickstart_run_dirs(quickstart_root):
        assert (run_dir / "summary.json").exists()
    # Second invocation resumes: everything is skipped.
    assert main(["run", "quickstart", "--root", str(quickstart_root), "-q"]) == 0
    out = capsys.readouterr().out
    assert "0 executed, 3 skipped, 0 failed" in out


def test_run_accepts_spec_file_and_parallelism(tmp_path, capsys):
    spec = CampaignSpec(
        name="from-file",
        stages=(
            SweepStage(
                name="s",
                target="burst",
                params={"app": "sort", "packing_degree": 2},
                axes={"concurrency": (8, 16)},
                seeds=(3,),
            ),
        ),
    )
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(spec.to_json())
    root = tmp_path / "results"
    code = main(
        ["run", str(spec_path), "--root", str(root), "--parallelism", "2", "-q"]
    )
    assert code == 0
    assert "2 executed" in capsys.readouterr().out


def test_run_dry_run_prints_plan_without_artifacts(tmp_path, capsys):
    root = tmp_path / "results"
    assert main(["run", "smoke", "--root", str(root), "--dry-run", "-q"]) == 0
    out = capsys.readouterr().out
    assert "campaign smoke: 4 runs" in out
    assert not root.exists()


def test_run_rejects_unknown_spec(tmp_path):
    with pytest.raises(SystemExit, match="neither a built-in spec"):
        main(["run", "no-such-spec", "--root", str(tmp_path), "-q"])


def test_status_reports_completion_and_detects_gaps(quickstart_root, capsys):
    campaign_dir = quickstart_root / "quickstart"
    assert main(["status", str(campaign_dir), "-q"]) == 0
    assert "3/3 runs complete" in capsys.readouterr().out
    # Remove one summary: status exits non-zero and flags the hole.
    run_dir = _quickstart_run_dirs(quickstart_root)[0]
    (run_dir / "summary.json").unlink()
    assert main(["status", str(campaign_dir), "-q"]) == 1
    assert "2/3 runs complete" in capsys.readouterr().out
    # Missing directory is a usage error.
    assert main(["status", str(quickstart_root / "ghost"), "-q"]) == 2


def test_reproduce_passes_then_fails_after_tamper(quickstart_root, capsys):
    run_dir = _quickstart_run_dirs(quickstart_root)[0]
    manifest = run_dir / "manifest.json"
    assert main(["reproduce", str(manifest), "-q"]) == 0
    assert "REPRODUCED (byte-identical)" in capsys.readouterr().out
    summary = json.loads((run_dir / "summary.json").read_text())
    summary["expense_usd"] *= 2
    (run_dir / "summary.json").write_text(json.dumps(summary))
    assert main(["reproduce", str(manifest), "-q"]) == 1
    assert "MISMATCH" in capsys.readouterr().out
    assert main(["reproduce", str(run_dir / "nope.json"), "-q"]) == 2


def test_diff_compares_two_runs(quickstart_root, capsys):
    dirs = _quickstart_run_dirs(quickstart_root)
    assert main(["diff", str(dirs[0]), str(dirs[0]), "-q"]) == 0
    assert "identical" in capsys.readouterr().out
    assert main(["diff", str(dirs[0]), str(dirs[1]), "-q"]) == 1
    out = capsys.readouterr().out
    assert "recipe: concurrency:" in out


def test_targets_and_specs_listings(capsys):
    assert main(["targets", "-q"]) == 0
    out = capsys.readouterr().out
    assert "burst" in out and "experiment" in out
    assert main(["specs", "-q"]) == 0
    out = capsys.readouterr().out
    for name in builtin_specs():
        assert name in out
