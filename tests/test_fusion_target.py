"""The ``fusion-fleet`` campaign target: resolution, execution, reproduce."""

import pytest

import repro.fusion  # noqa: F401  (registers fusion-fleet)
from repro.fusion.target import mix_demands
from repro.harness.artifacts import ArtifactStore
from repro.harness.manifest import RunManifest
from repro.harness.reproduce import reproduce_run
from repro.harness.targets import DEFAULT_REGISTRY

#: Small enough to execute several times in a unit test, with remainders
#: at the ProPack degrees so merges actually happen.
FAST = {"scale": 23}


@pytest.fixture()
def target():
    return DEFAULT_REGISTRY.get("fusion-fleet")


def test_registered_in_default_registry(target):
    assert target.name == "fusion-fleet"


def test_mix_demands_expansion():
    rows = mix_demands("trio", 100)
    assert rows == [
        ("analytics", "sort", 100),
        ("media", "video", 75),
        ("api", "stateless-cost", 150),
    ]
    with pytest.raises(ValueError, match="unknown mix"):
        mix_demands("nope", 10)
    with pytest.raises(ValueError, match="scale"):
        mix_demands("trio", 0)


def test_resolve_embeds_the_full_recipe(target):
    resolved = target.resolve(FAST)
    assert resolved["mode"] == "both"
    assert resolved["demands"] == [list(r) for r in mix_demands("trio", 23)]
    assert set(resolved["app_specs"]) == {"sort", "video", "stateless-cost"}
    assert resolved["platform_profile"]["name"]
    # Billing knobs land in the embedded profile (default: exact).
    assert resolved["platform_profile"]["billing_granularity_s"] == 0.0


def test_resolve_rejects_bad_inputs(target):
    with pytest.raises(ValueError, match="unknown params"):
        target.resolve({"surprise": 1})
    with pytest.raises(ValueError, match="unknown platform"):
        target.resolve({"platform": "nope"})
    with pytest.raises(ValueError, match="unknown mode"):
        target.resolve({"mode": "nope"})
    with pytest.raises(ValueError, match="unknown isolation"):
        target.resolve({"isolation": "nope"})
    with pytest.raises(ValueError, match="unknown mix"):
        target.resolve({"mix": "nope"})


def test_execute_summary_contract(target):
    resolved = target.resolve(FAST)
    output = target.execute(resolved, seed=5)
    s = output.summary
    for key in ("mix", "mode", "functions", "instances", "fused_instances",
                "baseline_instances", "merges", "service_s", "expense_usd",
                "usd_per_1k_functions", "tenants", "conserved",
                "constraint_violations"):
        assert key in s
    assert s["conserved"] is True
    assert s["constraint_violations"] == 0
    assert s["functions"] == sum(n for _, _, n in mix_demands("trio", 23))
    # One metrics line per tenant bill.
    assert output.metrics_jsonl.count("\n") == len(s["tenants"])


def test_execute_is_deterministic(target):
    resolved = target.resolve(FAST)
    assert target.execute(resolved, seed=5).summary == \
        target.execute(resolved, seed=5).summary


def test_rounded_billing_costs_more(target):
    exact = target.execute(target.resolve(FAST), seed=5).summary
    rounded = target.execute(
        target.resolve({**FAST, "billing_granularity_s": 0.5,
                        "min_billed_duration_s": 0.5}),
        seed=5,
    ).summary
    assert rounded["expense_usd"] > exact["expense_usd"]
    assert rounded["service_s"] == exact["service_s"]  # dynamics unchanged


def test_reproduce_run_is_byte_identical(target, tmp_path):
    params = {**FAST, "mode": "both", "billing_granularity_s": 0.1,
              "min_billed_duration_s": 0.1}
    resolved = target.resolve(params)
    output = target.execute(resolved, seed=9)
    store = ArtifactStore(tmp_path)
    manifest = RunManifest(
        campaign="fusion", stage="both", target=target.name,
        params=params, resolved_config=resolved, seed=9,
    )
    run_dir = store.finish_run(
        manifest, output.summary, metrics_jsonl=output.metrics_jsonl
    )
    report = reproduce_run(run_dir / "manifest.json")
    assert report.matched, report.diffs
