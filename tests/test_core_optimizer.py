"""Tests for the packing-degree optimizer (Eqs. 3-7)."""

import math

import numpy as np
import pytest

from repro.core.models import ExecutionTimeModel, ScalingTimeModel
from repro.core.optimizer import (
    ExpenseModel,
    PackingOptimizer,
    ServiceTimeModel,
    instance_layout,
)
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT

EXEC = ExecutionTimeModel(coeff_a=90.0, coeff_b=0.09, mem_gb=SORT.mem_gb)
SCALING = ScalingTimeModel(beta1=8e-5, beta2=0.01, beta3=5.0)


def make_optimizer(concurrency=2000, exec_model=EXEC, app=SORT):
    return PackingOptimizer(
        exec_model=exec_model,
        scaling_model=SCALING,
        app=app,
        profile=AWS_LAMBDA,
        concurrency=concurrency,
    )


# --------------------------------------------------------------------- #
# instance_layout
# --------------------------------------------------------------------- #

def test_layout_exact_division():
    assert instance_layout(10, 5) == [(2, 5)]


def test_layout_with_remainder():
    assert instance_layout(10, 3) == [(3, 3), (1, 1)]


def test_layout_degree_one():
    assert instance_layout(7, 1) == [(7, 1)]


def test_layout_total_functions_conserved():
    for c in (1, 7, 100, 999):
        for d in (1, 2, 5, 13):
            if d > c:
                continue
            assert sum(n * p for n, p in instance_layout(c, d)) == c


# --------------------------------------------------------------------- #
# ServiceTimeModel
# --------------------------------------------------------------------- #

def test_service_prediction_is_scaling_plus_exec():
    service = ServiceTimeModel(EXEC, SCALING, concurrency=2000)
    expected = SCALING.predict(math.ceil(2000 / 4)) + EXEC.predict(4)
    assert service.predict(4) == pytest.approx(expected)


def test_service_merits_ordering():
    service = ServiceTimeModel(EXEC, SCALING, concurrency=2000)
    total = service.predict(2, "total")
    tail = service.predict(2, "tail")
    median = service.predict(2, "median")
    assert median <= tail <= total


def test_service_unknown_merit():
    with pytest.raises(ValueError):
        ServiceTimeModel(EXEC, SCALING, 100).predict(1, "p50")


def test_service_curve_matches_pointwise():
    service = ServiceTimeModel(EXEC, SCALING, concurrency=500)
    degs = [1, 2, 3]
    assert service.curve(degs) == pytest.approx([service.predict(d) for d in degs])


# --------------------------------------------------------------------- #
# ExpenseModel
# --------------------------------------------------------------------- #

def test_expense_counts_all_line_items():
    expense = ExpenseModel(EXEC, AWS_LAMBDA, SORT, concurrency=100)
    value = expense.predict(1)
    compute = 100 * EXEC.predict(1) * 10.0 * AWS_LAMBDA.gb_second_usd
    assert value > compute  # requests + storage on top


def test_expense_decreases_with_moderate_packing():
    expense = ExpenseModel(EXEC, AWS_LAMBDA, SORT, concurrency=1000)
    assert expense.predict(5) < expense.predict(1)


def test_expense_eventually_rises_again():
    """Eq. 4: the exponential beats 1/P at high degree → interior minimum."""
    exec_model = ExecutionTimeModel(coeff_a=90.0, coeff_b=0.12, mem_gb=1.0)
    expense = ExpenseModel(exec_model, AWS_LAMBDA, SORT, concurrency=1000)
    curve = expense.curve(range(1, 16))
    best = int(np.argmin(curve)) + 1
    assert 1 < best < 15


def test_expense_provisioned_memory_matters():
    small = ExpenseModel(EXEC, AWS_LAMBDA, SORT, 100, provisioned_mb=1024)
    large = ExpenseModel(EXEC, AWS_LAMBDA, SORT, 100, provisioned_mb=10240)
    assert small.predict(1) < large.predict(1)


# --------------------------------------------------------------------- #
# PackingOptimizer
# --------------------------------------------------------------------- #

def test_max_degree_respects_memory_cap():
    opt = make_optimizer()
    assert opt.max_degree() <= SORT.max_packing_degree(AWS_LAMBDA.max_memory_mb)


def test_max_degree_respects_latency_cap():
    # Strong interference: predicted ET crosses the 900 s cap early.
    exec_model = ExecutionTimeModel(coeff_a=300.0, coeff_b=0.4, mem_gb=1.0)
    opt = make_optimizer(exec_model=exec_model)
    cap = opt.max_degree()
    assert exec_model.predict(cap) <= AWS_LAMBDA.max_execution_seconds
    assert cap < SORT.max_packing_degree(AWS_LAMBDA.max_memory_mb)


def test_max_degree_never_exceeds_concurrency():
    opt = make_optimizer(concurrency=3)
    assert opt.max_degree() <= 3


def test_optimal_service_balances_terms():
    opt = make_optimizer(concurrency=2000)
    best = opt.optimal_service()
    curve = opt.service.curve(opt.degrees())
    assert curve[best - 1] == min(curve)
    assert 1 < best < opt.max_degree()  # interior optimum in this regime


def test_optimal_expense_differs_from_service():
    """The paper's central observation: the two optima differ."""
    opt = make_optimizer(concurrency=2000)
    assert opt.optimal_expense() > opt.optimal_service()


def test_joint_falls_between_extremes():
    opt = make_optimizer(concurrency=2000)
    joint = opt.optimal_joint(w_s=0.5)
    assert opt.optimal_service() <= joint <= opt.optimal_expense()


def test_joint_weights_shift_the_choice():
    opt = make_optimizer(concurrency=2000)
    service_heavy = opt.optimal_joint(w_s=0.95)
    expense_heavy = opt.optimal_joint(w_s=0.05)
    assert service_heavy <= expense_heavy


def test_joint_extreme_weights_match_single_objectives():
    opt = make_optimizer(concurrency=2000)
    assert opt.optimal_joint(w_s=1.0) == opt.optimal_service()
    assert opt.optimal_joint(w_s=0.0) == opt.optimal_expense()


def test_regrets_are_zero_at_respective_optima():
    opt = make_optimizer(concurrency=2000)
    delta_s, delta_e = opt.regrets()
    assert min(delta_s) == 0.0
    assert min(delta_e) == 0.0
    assert all(d >= 0 for d in delta_s)
    assert all(d >= 0 for d in delta_e)


def test_weights_must_sum_to_one():
    opt = make_optimizer()
    with pytest.raises(ValueError):
        opt.optimal_joint(w_s=0.5, w_e=0.6)
    with pytest.raises(ValueError):
        opt.optimal_joint(w_s=1.5, w_e=-0.5)


def test_optimizer_rejects_bad_concurrency():
    with pytest.raises(ValueError):
        make_optimizer(concurrency=0)


def test_degree_grows_with_concurrency():
    """Paper Fig. 8: higher concurrency → higher optimal packing degree."""
    degrees = [make_optimizer(concurrency=c).optimal_joint() for c in (500, 2000, 5000)]
    assert degrees == sorted(degrees)
    assert degrees[-1] > degrees[0]
