"""The FU1 fusion figure: the PR's headline acceptance test.

Platform-side fusion on top of user-side ProPack (``both``) must be
strictly cheaper per 1k functions than user-side ProPack alone under
100 ms-rounded billing, at burst and serving scale, with zero constraint
violations and an auditor-clean fairness ledger — the figure itself
asserts all of that, so this test mostly needs to run it and pin the
table's shape.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ALL_FIGURES, fusion_comparison
from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="module")
def figure():
    ctx = ExperimentContext(ExperimentConfig.quick())
    return fusion_comparison(ctx)


def test_registered():
    assert ALL_FIGURES["fusion"] is fusion_comparison


def test_table_shape(figure):
    # 2 scales × 3 modes × 2 billing schedules.
    assert len(figure.rows) == 12
    assert figure.figure_id == "FU1"
    for scale in ("burst", "serving"):
        for mode in ("propack", "fusion", "both"):
            assert len(figure.select(scale=scale, mode=mode)) == 2


def test_fusion_beats_user_side_propack_under_rounded_billing(figure):
    for scale in ("burst", "serving"):
        propack = figure.select(scale=scale, mode="propack",
                                billing="rounded-100ms")[0]
        both = figure.select(scale=scale, mode="both",
                             billing="rounded-100ms")[0]
        assert both["usd_per_1k_functions"] < propack["usd_per_1k_functions"]
        assert both["instances"] < propack["instances"]
        assert both["merges"] > 0
        assert both["functions"] == propack["functions"]


def test_rounded_billing_never_cheaper_than_exact(figure):
    for scale in ("burst", "serving"):
        for mode in ("propack", "fusion", "both"):
            exact, rounded = (
                figure.select(scale=scale, mode=mode, billing=b)[0]
                for b in ("exact", "rounded-100ms")
            )
            assert rounded["expense_usd"] >= exact["expense_usd"]
            # Dynamics are billing-independent: identical service columns.
            assert rounded["service_s"] == exact["service_s"]


def test_every_run_is_violation_free(figure):
    assert all(row["violations"] == 0 for row in figure.rows)
    assert any("auditor-clean" in note for note in figure.notes)
