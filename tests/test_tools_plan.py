"""Tests for the propack-plan CLI."""


from repro.tools.plan_cli import main


def test_plan_known_app(capsys):
    assert main(["--app", "sort", "--concurrency", "2000"]) == 0
    out = capsys.readouterr().out
    assert "packing degree:" in out
    assert "predicted service:" in out
    assert "sort" in out


def test_plan_unknown_app(capsys):
    assert main(["--app", "nope", "--concurrency", "100"]) == 2
    assert "unknown app" in capsys.readouterr().err


def test_plan_unknown_platform(capsys):
    assert main(["--app", "sort", "--concurrency", "100",
                 "--platform", "ibm"]) == 2
    assert "unknown platform" in capsys.readouterr().err


def test_plan_synthetic_app(capsys):
    assert main([
        "--app", "synthetic", "--concurrency", "1000",
        "--base-seconds", "30", "--mem-mb", "1024", "--pressure", "0.15",
    ]) == 0
    out = capsys.readouterr().out
    assert "M_func=1024 MB" in out


def test_plan_with_qos(capsys):
    assert main(["--app", "xapian", "--concurrency", "2000",
                 "--qos-tail", "60"]) == 0
    out = capsys.readouterr().out
    assert "qos tail bound" in out
    assert "met" in out


def test_plan_funcx_platform(capsys):
    assert main(["--app", "sort", "--concurrency", "500",
                 "--platform", "funcx"]) == 0
    assert "funcx" in capsys.readouterr().out


def test_plan_objective_expense(capsys):
    assert main(["--app", "video", "--concurrency", "1000",
                 "--objective", "expense"]) == 0
    out = capsys.readouterr().out
    assert "W_S=0.00" in out


def test_plan_execute(capsys):
    assert main(["--app", "sort", "--concurrency", "800", "--execute"]) == 0
    out = capsys.readouterr().out
    assert "realized service:" in out
    assert "baseline" in out


def test_plan_json_output(capsys):
    import json

    assert main(["--app", "sort", "--concurrency", "800", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["app"] == "sort"
    assert document["degree"] >= 1
    assert document["predicted_expense_usd"] > 0
    assert document["qos"] is None


def test_plan_json_with_execute_and_qos(capsys):
    import json

    assert main(["--app", "xapian", "--concurrency", "1000",
                 "--qos-tail", "60", "--json", "--execute"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["qos"]["feasible"] is True
    assert document["realized"]["service_s"] > 0
    assert document["realized"]["baseline_expense_usd"] > document["realized"]["expense_usd"]
