"""Property-based tests on the fusion planner's invariants.

Two guarantees, over randomized multi-tenant demand sets and constraint
regimes:

1. every plan the optimizer emits — baseline or fused — respects the
   memory ceiling, the tenant-isolation policy, and runtime-tag
   compatibility, and conserves every admitted function exactly once;
2. fusing is never chosen when the interference matrix makes it strictly
   worse: the joint score never exceeds the unfused baseline's, and under
   a uniformly hostile matrix the baseline comes back untouched.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fusion.optimizer import FusionOptimizer
from repro.fusion.spec import FusionConstraints, TenantDemand
from repro.interference.model import PairwiseInterference
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT, STATELESS_COST, VIDEO, XAPIAN

APPS = (SORT, VIDEO, STATELESS_COST, XAPIAN)
TENANTS = ("acme", "globex", "initech")


@st.composite
def demand_sets(draw):
    rows = draw(
        st.lists(
            st.tuples(
                st.sampled_from(TENANTS),
                st.sampled_from(APPS),
                st.integers(min_value=1, max_value=40),
            ),
            min_size=1,
            max_size=4,
            unique_by=lambda row: (row[0], row[1].name),
        )
    )
    return [TenantDemand(t, app, n) for t, app, n in rows]


constraint_regimes = st.builds(
    FusionConstraints,
    max_memory_mb=st.just(AWS_LAMBDA.max_memory_mb),
    max_execution_seconds=st.just(AWS_LAMBDA.max_execution_seconds),
    isolation=st.sampled_from(("strict", "shared")),
    allow_cross_runtime=st.booleans(),
)


@given(
    demands=demand_sets(),
    constraints=constraint_regimes,
    user_side=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_plans_always_respect_constraints_and_conserve_functions(
    demands, constraints, user_side
):
    optimizer = FusionOptimizer(AWS_LAMBDA, demands, constraints=constraints)
    decision = optimizer.optimize(user_side=user_side)
    for plan in (decision.baseline, decision.plan):
        assert plan.constraint_violations(constraints, optimizer.model) == []
        expected = {}
        for demand in demands:
            expected[demand.tenant] = expected.get(demand.tenant, 0) + demand.count
        assert plan.tenant_functions() == expected
    if constraints.isolation == "strict":
        for group, _ in decision.plan.bundles:
            assert len(group.tenants) == 1


@given(demands=demand_sets(), user_side=st.booleans())
@settings(max_examples=40, deadline=None)
def test_fused_plan_never_scores_worse_than_the_baseline(demands, user_side):
    decision = FusionOptimizer(AWS_LAMBDA, demands).optimize(user_side=user_side)
    assert decision.score.joint <= 1.0 + 1e-9
    if decision.merges == 0:
        assert decision.score.joint == 1.0


@given(
    demands=demand_sets(),
    gamma=st.floats(min_value=150.0, max_value=400.0),
)
@settings(max_examples=30, deadline=None)
def test_hostile_matrix_means_no_fusion(demands, gamma):
    """When every pair (including self-pairs) is strongly hostile, any
    merge inflates the exponent so much that it can never win — the
    optimizer must return the baseline bundle-for-bundle.

    Consolidating two instances into one can at best halve expense (and
    never helps the makespan), so fusion is strictly worse once every
    victim's slowdown factor exceeds 2×. The smallest pressure term among
    the apps here is xapian's ≈ 0.03, so γ ≥ 150 forces a slowdown of at
    least exp(150 · 0.03) ≈ 90× on every fused member — far past the
    break-even. (At mild γ like 20 fusing two low-pressure functions
    genuinely wins: a 1.8× slowdown is cheaper than two request fees —
    which is the point of the model, not a bug.)"""
    names = [app.name for app in APPS]
    hostile = PairwiseInterference(
        AWS_LAMBDA.isolation_penalty,
        affinity={(v, a): gamma for v in names for a in names},
    )
    decision = FusionOptimizer(AWS_LAMBDA, demands, model=hostile).optimize(
        user_side=False
    )
    assert decision.merges == 0
    assert [
        (g.signature(), r) for g, r in decision.plan.bundles
    ] == [(g.signature(), r) for g, r in decision.baseline.bundles]
