"""Faults × serving composition: scenarios injected into the serving loop."""

import pytest

from repro.chaos import assert_serving_invariants
from repro.core.models import ExecutionTimeModel
from repro.extensions.streaming import StreamingPolicy
from repro.faults.retry import ExponentialBackoffRetry
from repro.faults.scenario import FaultScenario
from repro.platform.providers import AWS_LAMBDA, GOOGLE_CLOUD_FUNCTIONS
from repro.resilience import (
    BrownoutController,
    CircuitBreakerBank,
    ConcurrencyLimitAdmission,
    ResiliencePolicy,
)
from repro.serving import (
    FixedTTL,
    PoissonProcess,
    ServingConfig,
    ServingSimulator,
    WarmPool,
)
from repro.workloads import XAPIAN

import numpy as np

EXEC = ExecutionTimeModel(
    coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
)
POLICY = StreamingPolicy(degree=6, batch_timeout_s=4.0)

CRASHY = FaultScenario(name="crashy", crash_rate=0.2, persistent_fraction=0.1,
                       poison_heal_s=120.0)


def make_simulator(profile=AWS_LAMBDA, scenario=None, resilience=None,
                   retry_policy=None, seed=11, config=ServingConfig()):
    return ServingSimulator(
        profile,
        XAPIAN,
        EXEC,
        pool=WarmPool(FixedTTL(60.0)),
        config=config,
        resilience=resilience,
        scenario=scenario,
        retry_policy=retry_policy,
        seed=seed,
    )


def full_protection(seed=11, config=ServingConfig()):
    return ResiliencePolicy(
        admission=ConcurrencyLimitAdmission(limit=48),
        breakers=CircuitBreakerBank(
            n_domains=config.fault_domains,
            rng=np.random.default_rng(seed),
            failure_threshold=3,
            recovery_s=30.0,
        ),
        brownout=BrownoutController(
            violation_threshold=0.02,
            backlog_threshold=config.backlog_threshold,
        ),
    )


def test_empty_resilience_policy_matches_legacy_bit_for_bit():
    legacy = make_simulator().run(PoissonProcess(2.0), POLICY, 600.0)
    empty = make_simulator(resilience=ResiliencePolicy()).run(
        PoissonProcess(2.0), POLICY, 600.0
    )
    assert legacy.signature() == empty.signature()
    assert legacy.expense.total_usd == empty.expense.total_usd


def test_faulted_run_conserves_requests():
    result = make_simulator(scenario=CRASHY).run(PoissonProcess(2.0), POLICY, 900.0)
    assert_serving_invariants(result)
    assert result.resilience.crashes > 0
    assert result.resilience.retries > 0


def test_faulted_protected_run_is_deterministic():
    def one():
        sim = make_simulator(
            scenario=CRASHY,
            resilience=full_protection(),
            retry_policy=ExponentialBackoffRetry(max_retries=3),
        )
        return sim.run(PoissonProcess(3.0), POLICY, 900.0)

    a, b = one(), one()
    assert a.signature() == b.signature()
    assert a.expense.total_usd == b.expense.total_usd
    assert a.resilience.signature() == b.resilience.signature()


def test_crashes_bill_wasted_work():
    calm = make_simulator().run(PoissonProcess(2.0), POLICY, 900.0)
    faulted = make_simulator(scenario=CRASHY).run(PoissonProcess(2.0), POLICY, 900.0)
    assert faulted.resilience.wasted_gb_seconds > 0.0
    assert calm.resilience.wasted_gb_seconds == 0.0
    # Crashed attempts are billed up to the crash point, so the same
    # traffic costs more on a faulty platform.
    assert faulted.expense.total_usd > calm.expense.total_usd


def test_retry_egress_billed_on_gcf():
    result = make_simulator(
        profile=GOOGLE_CLOUD_FUNCTIONS, scenario=CRASHY
    ).run(PoissonProcess(2.0), POLICY, 900.0)
    assert result.resilience.retries > 0
    assert result.resilience.retry_egress_gb > 0.0
    assert result.expense.egress_usd > 0.0


def test_retry_egress_free_on_lambda():
    # AWS_LAMBDA prices intra-region egress at zero: the GB are tracked,
    # the dollars are not.
    result = make_simulator(profile=AWS_LAMBDA, scenario=CRASHY).run(
        PoissonProcess(2.0), POLICY, 900.0
    )
    assert result.resilience.retry_egress_gb > 0.0
    assert result.expense.egress_usd == 0.0


def test_persistent_crashes_poison_domains_and_breakers_react():
    scenario = FaultScenario(name="poison", crash_rate=0.3,
                             persistent_fraction=0.5)
    sim = make_simulator(scenario=scenario, resilience=full_protection())
    result = sim.run(PoissonProcess(3.0), POLICY, 900.0)
    assert result.resilience.crashes > 0
    assert result.resilience.breaker_transitions > 0
    assert result.resilience.breaker_opens > 0


def test_poison_healing_reduces_failures():
    def run(heal):
        scenario = FaultScenario(name="poison", crash_rate=0.25,
                                 persistent_fraction=0.6, poison_heal_s=heal)
        return make_simulator(scenario=scenario).run(
            PoissonProcess(2.0), POLICY, 1800.0
        )

    never_heals = run(None)
    heals_fast = run(60.0)
    assert heals_fast.resilience.crashes < never_heals.resilience.crashes
    assert heals_fast.n_failed <= never_heals.n_failed


def test_correlated_bursts_kill_in_flight_work():
    scenario = FaultScenario(name="burst", correlated_bursts=4,
                             correlated_fraction=0.8,
                             correlated_window_s=600.0)
    result = make_simulator(scenario=scenario).run(
        PoissonProcess(3.0), POLICY, 600.0
    )
    assert result.resilience.correlated_kills > 0
    assert result.resilience.retries >= result.resilience.correlated_kills
    assert_serving_invariants(result)


def test_throttling_delays_or_drops_batches():
    scenario = FaultScenario(name="squeeze", throttle_capacity=2,
                             throttle_refill_per_s=0.05,
                             throttle_max_retries=2,
                             throttle_backoff_s=1.0)
    result = make_simulator(scenario=scenario).run(
        PoissonProcess(3.0), POLICY, 600.0
    )
    assert result.resilience.throttled_attempts > 0
    assert_serving_invariants(result)


def test_admission_sheds_under_load_and_accounts_exactly():
    resilience = ResiliencePolicy(admission=ConcurrencyLimitAdmission(limit=8))
    result = make_simulator(resilience=resilience).run(
        PoissonProcess(5.0), POLICY, 600.0
    )
    rep = result.resilience
    assert rep.shed_admission > 0
    assert rep.arrivals == rep.admitted + rep.shed
    assert sum(rep.shed_by_priority) == rep.shed
    assert result.n_requests == result.n_completed + result.n_shed + result.n_failed


def test_brownout_escalates_under_fault_pressure():
    config = ServingConfig(backlog_threshold=4)
    resilience = ResiliencePolicy(
        brownout=BrownoutController(violation_threshold=0.01,
                                    backlog_threshold=config.backlog_threshold)
    )
    result = make_simulator(
        scenario=CRASHY, resilience=resilience, config=config
    ).run(PoissonProcess(5.0), POLICY, 900.0)
    assert result.resilience.brownout_escalations > 0
    assert result.resilience.brownout_max_level >= 1


def test_backlog_stats_are_observed():
    result = make_simulator().run(PoissonProcess(5.0), POLICY, 600.0)
    assert result.backlog.max_depth > 0
    assert 0.0 <= result.backlog.mean_depth <= result.backlog.max_depth
    assert result.backlog.time_over_threshold_s >= 0.0


def test_windowed_attainment_and_cost_per_completed():
    result = make_simulator(scenario=CRASHY).run(PoissonProcess(2.0), POLICY, 900.0)
    assert 0.0 <= result.windowed_p99_attainment() <= 1.0
    assert result.cost_per_completed_request_usd() == pytest.approx(
        result.expense.total_usd / result.n_completed
    )


def test_config_validates_new_fields():
    with pytest.raises(ValueError):
        ServingConfig(backlog_threshold=0)
    with pytest.raises(ValueError):
        ServingConfig(fault_domains=0)
    with pytest.raises(ValueError):
        ServingConfig(max_breaker_deferrals=0)


# --------------------------------------------------------------------- #
# gray failures in the serving loop
# --------------------------------------------------------------------- #
def test_gray_domains_slow_completions_without_crashing():
    gray = FaultScenario(name="gray-window", gray_domains=(0, 1, 2, 3),
                         gray_slowdown=6.0, gray_onset_s=0.0)
    slowed = make_simulator(scenario=gray).run(PoissonProcess(2.0), POLICY, 600.0)
    baseline = make_simulator(
        scenario=FaultScenario(name="calm")
    ).run(PoissonProcess(2.0), POLICY, 600.0)
    # Gray never trips crash detectors: no crashes, no retries, everything
    # conserves — but the storm is visible in latency and billed compute.
    assert slowed.resilience.crashes == baseline.resilience.crashes
    assert_serving_invariants(slowed)
    assert slowed.n_requests == baseline.n_requests  # same arrival draws
    assert slowed.p99_sojourn_s > baseline.p99_sojourn_s
    assert slowed.expense.total_usd > baseline.expense.total_usd


def test_gray_outside_window_is_baseline_identical():
    """A gray window that never opens must be byte-identical to no gray
    at all — the model consumes zero RNG draws."""
    dormant = FaultScenario(name="dormant", gray_domains=(0,),
                            gray_slowdown=8.0, gray_onset_s=1e9)
    gray_run = make_simulator(scenario=dormant).run(
        PoissonProcess(2.0), POLICY, 600.0
    )
    plain_run = make_simulator(
        scenario=FaultScenario(name="calm")
    ).run(PoissonProcess(2.0), POLICY, 600.0)
    assert gray_run.signature() == plain_run.signature()
