"""Unit tests for the telemetry primitives: bus, tracer, metrics."""

import pytest

from repro.telemetry import (
    EventBus,
    EventLog,
    MetricsRegistry,
    TelemetryConfig,
    TelemetrySession,
    Tracer,
    resolve_session,
)


# --------------------------------------------------------------------- #
# EventBus
# --------------------------------------------------------------------- #
def test_bus_kind_and_catchall_subscriptions():
    bus = EventBus()
    kinds, everything = [], []
    bus.subscribe(lambda e: kinds.append(e), kind="retry")
    bus.subscribe(lambda e: everything.append(e))
    bus.publish("retry", 1.0, attempt=2)
    bus.publish("crash", 2.0)
    assert [e.kind for e in kinds] == ["retry"]
    assert [e.kind for e in everything] == ["retry", "crash"]
    assert bus.published == 2


def test_bus_unsubscribe_is_idempotent():
    bus = EventBus()
    seen = []
    unsubscribe = bus.subscribe(seen.append, kind="x")
    bus.publish("x", 0.0)
    unsubscribe()
    unsubscribe()  # second call is a no-op
    bus.publish("x", 1.0)
    assert len(seen) == 1


def test_event_fields_sorted_and_accessible():
    bus = EventBus()
    event = bus.publish("e", 3.0, zulu=1, alpha=2)
    assert event.fields == (("alpha", 2), ("zulu", 1))
    assert event.get("zulu") == 1
    assert event.get("missing", "d") == "d"
    assert event.as_dict() == {"kind": "e", "time": 3.0, "alpha": 2, "zulu": 1}


def test_event_log_bounded():
    bus = EventBus()
    log = EventLog(capacity=2).attach(bus)
    for i in range(5):
        bus.publish("e", float(i))
    assert len(log) == 2
    assert log.dropped == 3
    assert [e.time for e in log.events] == [0.0, 1.0]


# --------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------- #
def test_tracer_parent_child_links_and_track_inheritance():
    clock = [0.0]
    tracer = Tracer(clock=lambda: clock[0])
    tracer.new_process("burst")
    root = tracer.start_span("instance#0", category="instance", track=7)
    child = tracer.start_span("sched", category="phase", parent=root)
    assert child.parent_id == root.span_id
    assert child.track == 7  # children inherit the parent's track
    clock[0] = 2.5
    tracer.end_span(child)
    tracer.end_span(root, outcome="ok")
    assert child.duration == 2.5
    assert root.attrs["outcome"] == "ok"


def test_tracer_double_end_raises():
    tracer = Tracer()
    span = tracer.start_span("s")
    tracer.end_span(span)
    with pytest.raises(ValueError):
        tracer.end_span(span)


def test_tracer_context_manager_and_finished_filter():
    clock = [1.0]
    tracer = Tracer(clock=lambda: clock[0])
    with tracer.span("work", category="phase"):
        clock[0] = 4.0
    open_span = tracer.start_span("dangling", category="phase")
    finished = tracer.finished("phase")
    assert [s.name for s in finished] == ["work"]
    assert finished[0].duration == 3.0
    assert not open_span.closed


def test_tracer_span_ids_reset_on_clear():
    tracer = Tracer()
    first = tracer.start_span("a").span_id
    tracer.clear()
    assert tracer.start_span("b").span_id == first == 1


# --------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------- #
def test_counter_monotonic():
    reg = MetricsRegistry()
    ctr = reg.counter("propack_test_total")
    ctr.inc()
    ctr.inc(3)
    assert ctr.value == 4
    with pytest.raises(ValueError):
        ctr.inc(-1)


def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("propack_depth")
    g.set(5.0)
    g.inc(2.0)
    g.dec(3.0)
    assert g.value == 4.0


def test_histogram_buckets_and_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("propack_lat_seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count == 5
    assert h.sum == pytest.approx(56.05)
    assert h.cumulative() == [1, 3, 4, 5]  # le=0.1, 1.0, 10.0, +Inf


def test_registry_get_or_create_and_conflicts():
    reg = MetricsRegistry()
    a = reg.counter("propack_x_total", verdict="ok")
    b = reg.counter("propack_x_total", verdict="ok")
    c = reg.counter("propack_x_total", verdict="bad")
    assert a is b and a is not c
    with pytest.raises(ValueError):
        reg.gauge("propack_x_total")  # kind conflict
    with pytest.raises(ValueError):
        reg.histogram("propack_h", buckets=(1.0, 2.0))
        reg.histogram("propack_h", buckets=(1.0, 3.0))  # bucket conflict
    with pytest.raises(ValueError):
        reg.counter("0-bad-name")


def test_registry_collect_is_sorted():
    reg = MetricsRegistry()
    reg.counter("propack_zzz_total")
    reg.counter("propack_aaa_total", b="2")
    reg.counter("propack_aaa_total", b="1")
    names = [name for name, _, _, _ in reg.collect()]
    assert names == sorted(names)
    rows = dict((name, rows) for name, _, _, rows in reg.collect())
    labels = [labels for labels, _ in rows["propack_aaa_total"]]
    assert labels == sorted(labels)


# --------------------------------------------------------------------- #
# Config / session plumbing
# --------------------------------------------------------------------- #
def test_disabled_config_yields_no_session():
    assert TelemetryConfig.off().session() is None
    assert TelemetryConfig(
        enabled=True, tracing=False, metrics=False, events=False
    ).session() is None
    assert resolve_session(None) is None
    assert resolve_session(TelemetryConfig.off()) is None


def test_session_subsystem_toggles():
    session = TelemetryConfig(tracing=False, events=False).session()
    assert session.tracer is None and session.event_log is None
    assert session.registry is not None
    with pytest.raises(ValueError):
        session.chrome_trace()
    with pytest.raises(ValueError):
        session.events_jsonl()
    assert session.prometheus_text() == "\n"  # empty registry renders cleanly


def test_resolve_session_passes_prebuilt_through():
    session = TelemetrySession()
    assert resolve_session(session) is session


def test_has_kind_subscribers_ignores_catchalls():
    """The audit.* gate: a catch-all subscriber (the EventLog attaches as
    one) must not trick opt-in publishers into emitting their family."""
    bus = EventBus()
    bus.subscribe(lambda e: None)  # catch-all
    assert bus.has_subscribers("audit.complete")
    assert not bus.has_kind_subscribers("audit.complete")
    unsubscribe = bus.subscribe(lambda e: None, kind="audit.complete")
    assert bus.has_kind_subscribers("audit.complete")
    assert not bus.has_kind_subscribers("audit.crash")
    unsubscribe()
    assert not bus.has_kind_subscribers("audit.complete")
