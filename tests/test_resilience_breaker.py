"""Circuit breakers: state machine, probe budget, and bank routing."""

import numpy as np
import pytest

from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitBreakerBank,
)


def trip(breaker, now=0.0):
    for _ in range(breaker.failure_threshold):
        breaker.record_failure(now)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        b = CircuitBreaker()
        assert b.state == CLOSED
        assert b.allow(0.0)

    def test_opens_after_consecutive_failures(self):
        b = CircuitBreaker(failure_threshold=3, recovery_s=10.0, jitter=0.0)
        b.record_failure(0.0)
        b.record_failure(1.0)
        assert b.state == CLOSED
        b.record_failure(2.0)
        assert b.state == OPEN
        assert not b.allow(2.0)
        assert b.open_until == 12.0

    def test_success_resets_failure_streak(self):
        b = CircuitBreaker(failure_threshold=3)
        b.record_failure(0.0)
        b.record_failure(1.0)
        b.record_success(2.0)
        b.record_failure(3.0)
        b.record_failure(4.0)
        assert b.state == CLOSED

    def test_half_open_after_recovery_pause(self):
        b = CircuitBreaker(failure_threshold=1, recovery_s=5.0, jitter=0.0)
        trip(b)
        assert not b.allow(4.999)
        assert b.allow(5.0)
        assert b.state == HALF_OPEN

    def test_half_open_probe_budget(self):
        b = CircuitBreaker(failure_threshold=1, recovery_s=5.0,
                           half_open_probes=2, jitter=0.0)
        trip(b)
        assert b.allow(5.0)
        assert b.allow(5.0)
        assert not b.allow(5.0)  # budget exhausted

    def test_probe_success_closes(self):
        b = CircuitBreaker(failure_threshold=1, recovery_s=5.0, jitter=0.0)
        trip(b)
        assert b.allow(5.0)
        b.record_success(6.0)
        assert b.state == CLOSED
        # Recovery pause resets to the base after a close.
        trip(b, now=7.0)
        assert b.open_until == pytest.approx(12.0)

    def test_probe_failure_reopens_with_backoff(self):
        b = CircuitBreaker(failure_threshold=1, recovery_s=5.0,
                           backoff_factor=2.0, jitter=0.0)
        trip(b)                      # open until 5, next pause 10
        assert b.allow(5.0)          # half-open probe
        b.record_failure(5.5)        # re-open until 15.5
        assert b.state == OPEN
        assert b.open_until == pytest.approx(15.5)

    def test_backoff_caps_at_max_recovery(self):
        b = CircuitBreaker(failure_threshold=1, recovery_s=5.0,
                           backoff_factor=10.0, max_recovery_s=20.0,
                           jitter=0.0)
        trip(b)
        t = b.open_until
        for _ in range(3):
            assert b.allow(t)
            b.record_failure(t)
            assert b.open_until - t <= 20.0
            t = b.open_until

    def test_jitter_is_seeded(self):
        def pauses(seed):
            b = CircuitBreaker(failure_threshold=1, recovery_s=5.0,
                               jitter=0.5, rng=np.random.default_rng(seed))
            trip(b)
            return b.open_until

        assert pauses(3) == pauses(3)
        assert pauses(3) != pauses(4)

    def test_transitions_are_logged(self):
        b = CircuitBreaker(failure_threshold=1, recovery_s=5.0, jitter=0.0)
        trip(b)
        b.allow(5.0)
        b.record_success(6.0)
        assert [(src, dst) for (_, src, dst) in b.transitions] == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_s=10.0, max_recovery_s=5.0)
        with pytest.raises(ValueError):
            CircuitBreaker(backoff_factor=0.5)


class TestCircuitBreakerBank:
    def test_rotor_round_robins_healthy_domains(self):
        bank = CircuitBreakerBank(n_domains=3)
        assert [bank.pick(0.0) for _ in range(4)] == [0, 1, 2, 0]

    def test_pick_skips_open_domains(self):
        bank = CircuitBreakerBank(n_domains=3, failure_threshold=1,
                                  recovery_s=100.0, jitter=0.0)
        bank.record(1, success=False, now=0.0)
        picks = [bank.pick(1.0) for _ in range(4)]
        assert 1 not in picks

    def test_pick_returns_none_when_all_open(self):
        bank = CircuitBreakerBank(n_domains=2, failure_threshold=1,
                                  recovery_s=100.0, jitter=0.0)
        bank.record(0, success=False, now=0.0)
        bank.record(1, success=False, now=0.0)
        assert bank.pick(1.0) is None
        assert bank.n_open == 2

    def test_earliest_retry(self):
        bank = CircuitBreakerBank(n_domains=2, failure_threshold=1,
                                  recovery_s=10.0, jitter=0.0)
        assert bank.earliest_retry(0.0) is None
        bank.record(0, success=False, now=0.0)
        bank.record(1, success=False, now=3.0)
        assert bank.earliest_retry(5.0) == pytest.approx(10.0)

    def test_poison_tracking(self):
        bank = CircuitBreakerBank(n_domains=2)
        assert not bank.is_poisoned(0)
        bank.poison(0)
        assert bank.is_poisoned(0)

    def test_transition_log_sorted_across_domains(self):
        bank = CircuitBreakerBank(n_domains=2, failure_threshold=1,
                                  recovery_s=10.0, jitter=0.0)
        bank.record(1, success=False, now=1.0)
        bank.record(0, success=False, now=2.0)
        log = bank.transition_log()
        assert log == [(1.0, 1, CLOSED, OPEN), (2.0, 0, CLOSED, OPEN)]
        assert bank.n_transitions == 2

    def test_needs_at_least_one_domain(self):
        with pytest.raises(ValueError):
            CircuitBreakerBank(n_domains=0)


class TestQuarantineAndFlaps:
    """Administrative quarantine + flap counting (remediation seams)."""

    def test_flap_counts_reopenings_only(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=10.0,
                                 jitter=0.0)
        trip(breaker, now=0.0)
        assert breaker.flaps == 0          # closed -> open is not a flap
        assert breaker.allow(10.5)         # half-open probe admitted
        breaker.record_failure(10.5)       # probe fails: half-open -> open
        assert breaker.flaps == 1
        assert breaker.allow(31.0)         # backoff doubled the pause
        breaker.record_success(31.0)       # probe succeeds: recovery
        assert breaker.flaps == 1

    def test_bank_flap_aggregation(self):
        bank = CircuitBreakerBank(n_domains=2, failure_threshold=1,
                                  recovery_s=10.0, jitter=0.0)
        bank.record(0, success=False, now=0.0)
        assert bank.breakers[0].allow(10.5)
        bank.record(0, success=False, now=10.5)
        assert bank.n_flaps == 1
        assert bank.flaps_by_domain() == [1, 0]

    def test_quarantined_domain_receives_no_traffic(self):
        bank = CircuitBreakerBank(n_domains=3)
        bank.quarantine(1)
        assert 1 not in {bank.pick(0.0) for _ in range(6)}
        bank.release(1)
        assert 1 in {bank.pick(0.0) for _ in range(6)}

    def test_quarantine_guards_last_routable_domain(self):
        bank = CircuitBreakerBank(n_domains=2)
        bank.quarantine(0)
        with pytest.raises(ValueError):
            bank.quarantine(1)
        with pytest.raises(ValueError):
            bank.quarantine(5)
        with pytest.raises(ValueError):
            CircuitBreakerBank(n_domains=1).quarantine(0)

    def test_earliest_retry_skips_quarantined(self):
        bank = CircuitBreakerBank(n_domains=2, failure_threshold=1,
                                  recovery_s=10.0, jitter=0.0)
        bank.record(0, success=False, now=0.0)
        bank.quarantine(0)
        assert bank.earliest_retry(1.0) is None

    def test_bind_metrics_exports_transitions_flaps_quarantine(self):
        from repro.telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
        bank = CircuitBreakerBank(n_domains=2, failure_threshold=1,
                                  recovery_s=10.0, jitter=0.0)
        bank.bind_metrics(registry)
        bank.record(0, success=False, now=0.0)       # closed -> open
        assert bank.breakers[0].allow(10.5)          # open -> half-open
        bank.record(0, success=False, now=10.5)      # half-open -> open (flap)
        bank.quarantine(1)
        # Unlabeled aggregate is preserved for existing dashboards.
        assert registry.get("propack_breaker_transitions_total").value == 3
        assert registry.get(
            "propack_breaker_state_changes_total", to=OPEN
        ).value == 2
        assert registry.get(
            "propack_breaker_state_changes_total", to=HALF_OPEN
        ).value == 1
        assert registry.get("propack_breaker_flaps_total").value == 1
        assert registry.get("propack_breaker_quarantined_domains").value == 1
        bank.release(1)
        assert registry.get("propack_breaker_quarantined_domains").value == 0
