"""PairwiseInterference: the directional-affinity interference matrix.

The guarantee under test: with every γ = 1 the matrix reduces to the
homogeneous mixed-app model (same formula, so equal to within one ulp of
float summation order), and for a homogeneous group of ``p`` clones to
the paper's Eq. 1 exponent — so the fusion planner's model is a strict
generalization, never a new family.
"""

import math

import pytest

from repro.extensions.mixed import MixedGroup, MixedInterferenceModel
from repro.interference.model import InterferenceModel, PairwiseInterference
from repro.workloads import SORT, STATELESS_COST, VIDEO


def residents(*pairs):
    return list(pairs)


# --------------------------------------------------------------------- #
# reduction to the homogeneous models
# --------------------------------------------------------------------- #
def test_neutral_matrix_matches_mixed_model_exactly():
    pairwise = PairwiseInterference(isolation_penalty=1.0)
    mixed = MixedInterferenceModel(isolation_penalty=1.0)
    group = MixedGroup(((SORT, 3), (VIDEO, 2), (STATELESS_COST, 4)))
    for app in (SORT, VIDEO, STATELESS_COST):
        assert pairwise.member_execution_seconds(
            app, group.members
        ) == pytest.approx(mixed.member_execution_seconds(group, app), rel=1e-14)
    assert pairwise.makespan_seconds(group.members) == pytest.approx(
        mixed.instance_execution_seconds(group), rel=1e-14
    )


def test_homogeneous_group_reduces_to_eq1():
    """p clones of one app: exponent must be pressure · mem_gb · (p − 1)."""
    pairwise = PairwiseInterference(isolation_penalty=1.0)
    single_app = InterferenceModel(cores=2, isolation_penalty=1.0)
    for p in (1, 2, 5, 15):
        assert pairwise.makespan_seconds(
            residents((SORT, p))
        ) == pytest.approx(single_app.execution_seconds(SORT, p))


def test_single_resident_runs_at_base_time():
    pairwise = PairwiseInterference()
    assert pairwise.makespan_seconds(residents((VIDEO, 1))) == VIDEO.base_seconds


# --------------------------------------------------------------------- #
# directional affinities
# --------------------------------------------------------------------- #
def test_gamma_defaults_to_one_and_is_directional():
    pairwise = PairwiseInterference(affinity={("sort", "video"): 2.0})
    assert pairwise.gamma("sort", "video") == 2.0
    assert pairwise.gamma("video", "sort") == 1.0  # direction matters
    assert pairwise.gamma("sort", "stateless-cost") == 1.0
    assert not pairwise.is_neutral()
    assert PairwiseInterference().is_neutral()
    assert PairwiseInterference(affinity={("a", "b"): 1.0}).is_neutral()


def test_hostile_affinity_slows_only_the_victim():
    neutral = PairwiseInterference()
    hostile = PairwiseInterference(affinity={("sort", "video"): 3.0})
    group = residents((SORT, 2), (VIDEO, 2))
    # Sort (the victim of video) slows down...
    assert hostile.member_execution_seconds(
        SORT, group
    ) > neutral.member_execution_seconds(SORT, group)
    # ...while video's own time is untouched (γ is directional).
    assert hostile.member_execution_seconds(
        VIDEO, group
    ) == neutral.member_execution_seconds(VIDEO, group)


def test_zero_affinity_isolates_the_victim_from_that_aggressor():
    isolated = PairwiseInterference(
        affinity={("sort", "video"): 0.0, ("sort", "sort"): 0.0}
    )
    group = residents((SORT, 1), (VIDEO, 5))
    assert isolated.member_execution_seconds(SORT, group) == SORT.base_seconds


def test_complementary_affinity_reduces_pressure():
    neutral = PairwiseInterference()
    friendly = PairwiseInterference(affinity={("sort", "video"): 0.25})
    group = residents((SORT, 2), (VIDEO, 2))
    assert friendly.pressure_on(SORT, group) < neutral.pressure_on(SORT, group)


def test_self_pressure_excludes_the_victim_itself():
    pairwise = PairwiseInterference()
    # One sort clone alongside videos: the (sort, 1) entry contributes
    # nothing to sort's own pressure (count − 1 = 0).
    with_self = pairwise.pressure_on(SORT, residents((SORT, 1), (VIDEO, 2)))
    without = pairwise.pressure_on(SORT, residents((VIDEO, 2),))
    assert with_self == without


# --------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------- #
def test_validation():
    with pytest.raises(ValueError, match="isolation"):
        PairwiseInterference(isolation_penalty=0.0)
    with pytest.raises(ValueError, match="affinity"):
        PairwiseInterference(affinity={("a", "b"): -1.0})
    with pytest.raises(ValueError, match="affinity"):
        PairwiseInterference(affinity={("a", "b"): math.inf})
    with pytest.raises(ValueError, match="at least one resident"):
        PairwiseInterference().makespan_seconds([])
    with pytest.raises(ValueError, match="non-negative"):
        PairwiseInterference().pressure_on(SORT, residents((VIDEO, -1),))
