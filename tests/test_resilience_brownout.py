"""Brownout controller: stepwise escalation and hysteretic recovery."""

import pytest

from repro.resilience import BrownoutController, ResiliencePolicy
from repro.resilience.admission import HIGH, LOW, NORMAL, UnboundedAdmission


class TestBrownoutController:
    def test_starts_normal(self):
        b = BrownoutController()
        assert b.level == 0
        assert b.level_name == "normal"
        assert b.degree_multiplier == 1.0
        assert not b.sheds(LOW)

    def test_escalates_one_level_per_breach(self):
        b = BrownoutController(violation_threshold=0.02)
        assert b.observe(0.0, 0.5, backlog=0) == 1
        assert b.degree_multiplier == b.degree_boost
        assert b.observe(1.0, 0.5, backlog=0) == 2
        assert b.sheds(LOW)
        assert not b.sheds(NORMAL)
        assert not b.sheds(HIGH)

    def test_caps_at_max_level(self):
        b = BrownoutController(max_level=1)
        for t in range(5):
            b.observe(float(t), 1.0, backlog=0)
        assert b.level == 1
        assert b.max_level_seen == 1

    def test_backlog_alone_triggers(self):
        b = BrownoutController(violation_threshold=0.5, backlog_threshold=10)
        assert b.observe(0.0, 0.0, backlog=11) == 1
        assert b.observe(1.0, 0.0, backlog=5) == 1  # healthy, but hysteresis

    def test_no_backlog_threshold_ignores_backlog(self):
        b = BrownoutController(violation_threshold=0.5, backlog_threshold=None)
        assert b.observe(0.0, 0.0, backlog=10**6) == 0

    def test_recovery_is_hysteretic(self):
        b = BrownoutController(recover_ticks=3)
        b.observe(0.0, 1.0, backlog=0)
        b.observe(1.0, 1.0, backlog=0)
        assert b.level == 2
        # Two healthy ticks are not enough to step down…
        assert b.observe(2.0, 0.0, 0) == 2
        assert b.observe(3.0, 0.0, 0) == 2
        # …the third is, and the streak resets per level.
        assert b.observe(4.0, 0.0, 0) == 1
        assert b.observe(5.0, 0.0, 0) == 1
        assert b.observe(6.0, 0.0, 0) == 1
        assert b.observe(7.0, 0.0, 0) == 0
        assert b.recoveries == 2

    def test_breach_resets_healthy_streak(self):
        b = BrownoutController(recover_ticks=2, max_level=1)
        b.observe(0.0, 1.0, 0)
        b.observe(1.0, 0.0, 0)
        b.observe(2.0, 1.0, 0)  # breach: streak back to zero
        b.observe(3.0, 0.0, 0)
        assert b.level == 1
        b.observe(4.0, 0.0, 0)
        assert b.level == 0

    def test_transitions_logged(self):
        b = BrownoutController(recover_ticks=1)
        b.observe(0.0, 1.0, 0)
        b.observe(1.0, 0.0, 0)
        assert b.transitions == [(0.0, 0, 1), (1.0, 1, 0)]
        assert b.escalations == 1
        assert b.recoveries == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BrownoutController(violation_threshold=1.0)
        with pytest.raises(ValueError):
            BrownoutController(degree_boost=0.5)
        with pytest.raises(ValueError):
            BrownoutController(recover_ticks=0)
        with pytest.raises(ValueError):
            BrownoutController(max_level=3)


class TestResiliencePolicy:
    def test_empty_policy_is_inactive(self):
        assert not ResiliencePolicy().active

    def test_any_component_activates(self):
        assert ResiliencePolicy(admission=UnboundedAdmission()).active
        assert ResiliencePolicy(brownout=BrownoutController()).active
