"""Instrumentation wiring: bursts, serving, faults, and phase breakdowns.

The acceptance test of the telemetry subsystem lives here: the Chrome
trace of a C=1000 burst must reproduce the paper's scaling time (start of
the last instance's execution) exactly from the exported spans.
"""

import numpy as np
import pytest

from repro.core.models import ExecutionTimeModel
from repro.extensions.streaming import StreamingPolicy
from repro.faults.retry import ExponentialBackoffRetry
from repro.faults.scenario import FaultScenario
from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.metrics import InstanceRecord
from repro.platform.providers import AWS_LAMBDA, GOOGLE_CLOUD_FUNCTIONS
from repro.resilience import (
    BrownoutController,
    CircuitBreakerBank,
    ConcurrencyLimitAdmission,
    ResiliencePolicy,
)
from repro.serving import (
    FixedTTL,
    PoissonProcess,
    ServingConfig,
    ServingSimulator,
    WarmPool,
)
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder
from repro.telemetry import EventBus, TelemetryConfig, parse_prometheus_text
from repro.workloads import SORT, XAPIAN

SEED = 2023


# --------------------------------------------------------------------- #
# The acceptance criterion: the trace reproduces the headline metric
# --------------------------------------------------------------------- #
def test_c1000_trace_reproduces_scaling_time():
    platform = ServerlessPlatform(
        AWS_LAMBDA, seed=SEED, telemetry=TelemetryConfig()
    )
    result = platform.run_burst(BurstSpec(app=SORT, concurrency=1000))
    events = platform.telemetry.chrome_trace()["traceEvents"]
    exec_spans = [
        e for e in events if e.get("ph") == "X" and e["name"] == "exec"
    ]
    assert len(exec_spans) == len(result.records)
    first_invocation = min(e["ts"] for e in events if e.get("ph") == "X")
    last_exec_start = max(e["ts"] for e in exec_spans)
    assert first_invocation == 0.0
    assert (last_exec_start - first_invocation) / 1e6 == pytest.approx(
        result.scaling_time, abs=1e-9
    )


def test_burst_metrics_match_run_result():
    platform = ServerlessPlatform(
        AWS_LAMBDA, seed=7, telemetry=TelemetryConfig()
    )
    result = platform.run_burst(
        BurstSpec(app=SORT, concurrency=400, packing_degree=4)
    )
    samples = parse_prometheus_text(platform.telemetry.prometheus_text())
    assert samples['propack_burst_attempt_outcomes_total{outcome="ok"}'] == (
        len(result.successful_records)
    )
    exec_sum = samples['propack_instance_phase_seconds_sum{phase="exec"}']
    assert exec_sum == pytest.approx(
        sum(r.exec_seconds for r in result.records)
    )
    assert samples["propack_sched_placements_total"] == len(result.records)


def test_telemetry_does_not_perturb_results():
    """Observation must be pure: identical results with telemetry on/off."""
    bare = ServerlessPlatform(AWS_LAMBDA, seed=31).run_burst(
        BurstSpec(app=SORT, concurrency=300, packing_degree=2)
    )
    observed = ServerlessPlatform(
        AWS_LAMBDA, seed=31, telemetry=TelemetryConfig()
    ).run_burst(BurstSpec(app=SORT, concurrency=300, packing_degree=2))
    assert bare.scaling_time == observed.scaling_time
    assert bare.service_time() == observed.service_time()
    assert bare.expense.total_usd == observed.expense.total_usd


def test_faulty_burst_traces_every_outcome():
    scenario = FaultScenario(
        name="chaos", crash_rate=0.3, persistent_fraction=0.2,
        straggler_rate=0.1,
    )
    platform = ServerlessPlatform(
        AWS_LAMBDA, seed=SEED, telemetry=TelemetryConfig()
    )
    result = platform.run_burst(
        BurstSpec(
            app=SORT, concurrency=200, packing_degree=2, scenario=scenario,
            retry_policy=ExponentialBackoffRetry(max_retries=3),
        )
    )
    assert result.fault_stats.crashed_attempts > 0
    samples = parse_prometheus_text(platform.telemetry.prometheus_text())
    assert samples['propack_burst_attempt_outcomes_total{outcome="crash"}'] == (
        result.fault_stats.crashed_attempts
    )
    crash_draws = sum(
        v for k, v in samples.items()
        if k.startswith("propack_fault_crashes_total")
    )
    assert crash_draws == result.fault_stats.crashed_attempts
    # every record, including failed attempts, produced a closed root span
    roots = platform.telemetry.tracer.finished("instance")
    assert len(roots) == len(result.records)


# --------------------------------------------------------------------- #
# InstanceRecord.phase_durations — the pinned definitions
# --------------------------------------------------------------------- #
def test_phase_durations_definitions():
    record = InstanceRecord(
        instance_id=0, n_packed=1, invoked_at=0.0,
        sched_done=2.0, built_at=3.0, shipped_at=4.5,
        exec_start=4.5, exec_end=10.0,
    )
    durations = record.phase_durations()
    assert durations == {
        "sched": 2.0,          # sched_done - invoked_at
        "build": 3.0,          # built_at - invoked_at (builds start at invoke)
        "ship": 1.5,           # shipped_at - max(built_at, sched_done)
        "exec": 5.5,           # exec_end - exec_start
    }


def test_phase_durations_ship_waits_for_both_build_and_placement():
    # placement finishes after the build: shipping starts at sched_done
    record = InstanceRecord(
        instance_id=0, n_packed=1, invoked_at=0.0,
        sched_done=5.0, built_at=1.0, shipped_at=6.0,
        exec_start=6.0, exec_end=7.0,
    )
    assert record.phase_durations()["ship"] == 1.0


def test_phase_durations_partial_record():
    record = InstanceRecord(
        instance_id=0, n_packed=1, invoked_at=0.0, sched_done=1.0
    )
    assert record.phase_durations() == {"sched": 1.0}
    assert InstanceRecord(instance_id=1, n_packed=1).phase_durations() == {}


def test_breakdown_uses_phase_durations():
    platform = ServerlessPlatform(AWS_LAMBDA, seed=3)
    result = platform.run_burst(BurstSpec(app=SORT, concurrency=100))
    breakdown = result.breakdown()
    durations = [r.phase_durations() for r in result.records]
    assert breakdown["scheduling"] == pytest.approx(
        float(np.mean([d["sched"] for d in durations]))
    )
    assert breakdown["shipping"] == pytest.approx(
        float(np.mean([d["ship"] for d in durations]))
    )


# --------------------------------------------------------------------- #
# Serving instrumentation
# --------------------------------------------------------------------- #
def test_serving_run_instrumented_under_overload():
    config = ServingConfig()
    scenario = FaultScenario(
        name="overload", crash_rate=0.15, persistent_fraction=0.25,
        poison_heal_s=300.0, straggler_rate=0.01,
    )
    resilience = ResiliencePolicy(
        admission=ConcurrencyLimitAdmission(limit=40),
        breakers=CircuitBreakerBank(
            n_domains=config.fault_domains,
            rng=np.random.default_rng(SEED),
            failure_threshold=3, recovery_s=60.0,
        ),
        brownout=BrownoutController(
            violation_threshold=0.02,
            backlog_threshold=config.backlog_threshold,
        ),
    )
    exec_model = ExecutionTimeModel(
        coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
    )
    sim = ServingSimulator(
        GOOGLE_CLOUD_FUNCTIONS, XAPIAN, exec_model,
        pool=WarmPool(FixedTTL(60.0)), config=config,
        resilience=resilience, scenario=scenario,
        retry_policy=ExponentialBackoffRetry(max_retries=3),
        seed=SEED, telemetry=TelemetryConfig(),
    )
    run = sim.run(
        PoissonProcess(4.0), StreamingPolicy(degree=6, batch_timeout_s=4.0),
        900.0,
    )
    samples = parse_prometheus_text(sim.telemetry.prometheus_text())
    assert samples["propack_serving_arrivals_total"] == run.n_requests
    assert samples["propack_serving_requests_completed_total"] == run.n_completed
    shed = sum(v for k, v in samples.items()
               if k.startswith("propack_serving_shed_total"))
    admission_shed = sum(
        v for k, v in samples.items()
        if k.startswith("propack_admission_decisions_total")
        and 'verdict="shed"' in k
    )
    assert shed == run.n_requests - samples["propack_serving_admitted_total"]
    assert admission_shed == resilience.admission.stats.shed
    assert samples["propack_breaker_transitions_total"] == (
        resilience.breakers.n_transitions
    )
    assert samples['propack_brownout_shifts_total{direction="escalate"}'] == (
        resilience.brownout.escalations
    )
    # dispatch spans closed for every completion and crash
    spans = sim.telemetry.tracer.finished("dispatch")
    assert len(spans) >= run.resilience.crashes


# --------------------------------------------------------------------- #
# TraceRecorder on the event bus
# --------------------------------------------------------------------- #
def test_trace_recorder_publishes_on_shared_bus():
    sim = Simulator()
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append, kind="sim.event")
    recorder = TraceRecorder(sim, bus=bus)
    fired = []
    with recorder:
        for i in range(5):
            sim.schedule(float(i), fired.append, i)
        sim.run()
    assert fired == [0, 1, 2, 3, 4]
    assert len(recorder) == len(seen) == 5
    # the ring buffer and the bus subscriber saw the identical stream
    assert [e.time for e in seen] == [entry.time for entry in recorder.entries]
    # uninstalling detaches the subscriber: further sim events are silent
    sim.schedule(9.0, fired.append, 9)
    sim.run()
    assert len(recorder) == len(seen) == 5


def test_trace_recorder_public_api_preserved():
    sim = Simulator()
    recorder = TraceRecorder(sim, capacity=3)
    with recorder:
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
    assert len(recorder) == 3  # bounded ring
    assert recorder.dropped == 2
    assert recorder.window(3.0, 4.0)
    assert recorder.by_callback("lambda")
    assert sum(recorder.summary().values()) == 3


def test_remediation_loop_instrumented():
    """A remediated run exports per-stage counters and bus events."""
    from repro.remediation import RemediationConfig, RemediationLoop

    config = ServingConfig(qos_sojourn_s=45.0)
    scenario = FaultScenario(
        name="remediated", crash_rate=0.05, correlated_bursts=2,
        correlated_fraction=0.5, correlated_window_s=120.0,
        persistent_fraction=0.5, poison_heal_s=600.0,
    )
    exec_model = ExecutionTimeModel(
        coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
    )
    sim = ServingSimulator(
        GOOGLE_CLOUD_FUNCTIONS, XAPIAN, exec_model,
        pool=WarmPool(FixedTTL(120.0)), config=config,
        resilience=ResiliencePolicy(
            admission=ConcurrencyLimitAdmission(limit=64),
            breakers=CircuitBreakerBank(
                n_domains=config.fault_domains,
                rng=np.random.default_rng(SEED),
                failure_threshold=5, recovery_s=45.0,
            ),
        ),
        scenario=scenario,
        retry_policy=ExponentialBackoffRetry(max_retries=3),
        seed=SEED,
        telemetry=TelemetryConfig(),
        remediation=RemediationLoop(RemediationConfig(
            tick_interval_s=60.0, shadow_horizon_s=120.0
        )),
    )
    events = []
    sim.telemetry.bus.subscribe(events.append)
    run = sim.run(
        PoissonProcess(1.5), StreamingPolicy(degree=4, batch_timeout_s=2.0),
        900.0,
    )
    rep = run.remediation
    assert rep is not None and rep.n_applied > 0
    samples = parse_prometheus_text(sim.telemetry.prometheus_text())
    per_stage = {
        k: v for k, v in samples.items()
        if k.startswith("propack_remediation_events_total")
    }
    assert per_stage['propack_remediation_events_total{stage="detection"}'] \
        == rep.n_detections
    assert per_stage['propack_remediation_events_total{stage="apply"}'] \
        == rep.n_applied
    kinds = {e.kind for e in events if e.kind.startswith("remediation.")}
    assert "remediation.detection" in kinds
    assert "remediation.apply" in kinds
    # Crash events carry their fault domain for the poison detector.
    crash_domains = [
        dict(e.fields).get("domain")
        for e in events if e.kind == "dispatch.crash"
    ]
    assert crash_domains and all(d is not None for d in crash_domains)
