"""Tests for the co-runner interference model."""

import math

import pytest

from repro.interference.model import InterferenceModel
from repro.workloads import SMITH_WATERMAN, SORT
from repro.workloads.synthetic import make_synthetic


def test_degree_one_has_no_slowdown():
    model = InterferenceModel(cores=6)
    assert model.slowdown(SORT, 1) == pytest.approx(1.0)


def test_slowdown_is_exponential_in_degree():
    model = InterferenceModel(cores=6)
    s2 = model.slowdown(SORT, 2)
    s3 = model.slowdown(SORT, 3)
    s4 = model.slowdown(SORT, 4)
    # Constant multiplicative factor per added co-runner.
    assert s3 / s2 == pytest.approx(s4 / s3)
    assert s2 > 1.0


def test_slowdown_rate_matches_spec():
    model = InterferenceModel(cores=6)
    rate = SORT.pressure_per_gb * SORT.mem_gb
    assert model.slowdown(SORT, 5) == pytest.approx(math.exp(rate * 4))


def test_compute_bound_app_interferes_more():
    model = InterferenceModel(cores=6)
    sw_rate = SMITH_WATERMAN.pressure_per_gb * SMITH_WATERMAN.mem_gb
    sort_rate = SORT.pressure_per_gb * SORT.mem_gb
    assert sw_rate > sort_rate  # Smith-Waterman packs worse (paper Fig. 17)


def test_isolation_penalty_amplifies():
    weak = InterferenceModel(cores=6, isolation_penalty=2.0)
    strong = InterferenceModel(cores=6, isolation_penalty=1.0)
    assert weak.slowdown(SORT, 5) > strong.slowdown(SORT, 5)


def test_execution_time_scales_base_seconds():
    model = InterferenceModel(cores=6)
    et = model.execution_seconds(SORT, 1)
    assert et == pytest.approx(SORT.base_seconds)


def test_perfect_isolation_ignores_concurrency():
    model = InterferenceModel(cores=6, concurrency_leak=0.0)
    assert model.execution_seconds(SORT, 3, concurrency_level=1) == pytest.approx(
        model.execution_seconds(SORT, 3, concurrency_level=5000)
    )


def test_concurrency_leak_slows_execution():
    leaky = InterferenceModel(cores=6, concurrency_leak=0.1)
    lone = leaky.execution_seconds(SORT, 1, concurrency_level=1)
    crowded = leaky.execution_seconds(SORT, 1, concurrency_level=5000)
    assert crowded > lone
    assert crowded == pytest.approx(lone * 1.5)


def test_cpu_sharing_variant_adds_kink():
    plain = InterferenceModel(cores=6, cpu_sharing=False)
    kinked = InterferenceModel(cores=6, cpu_sharing=True)
    app = make_synthetic(pressure_per_gb=0.1, mem_mb=512)
    # Below the core count the variants agree...
    assert kinked.slowdown(app, 4) == pytest.approx(plain.slowdown(app, 4))
    # ...above it, time slicing appears.
    assert kinked.slowdown(app, 12) == pytest.approx(plain.slowdown(app, 12) * 2.0)


def test_invalid_degree_rejected():
    with pytest.raises(ValueError):
        InterferenceModel(cores=6).slowdown(SORT, 0)
