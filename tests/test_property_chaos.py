"""Property tests for the storm composer and the shrinking loop.

Pinned properties:

1. **Mutation closure** — a mutated spec always validates and every knob
   stays inside :data:`PARAM_BOUNDS`, for any seed and starting point;
2. **Composition totality** — every valid spec composes into a
   constructible :class:`FaultScenario` for any horizon/domain count;
3. **Shrink soundness** — shrink candidates are valid, strictly different,
   and the greedy shrink loop's result triggers (at least) the same
   violation classes as the parent, under an arbitrary deterministic
   damage model;
4. **Round-trip identity** — ``from_dict(to_dict(s)) == s`` everywhere.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.chaos import PARAM_BOUNDS, SearchConfig, StormSpec
from repro.chaos.search import ChaosSearch
from repro.harness.targets import CampaignTarget, RunOutput, TargetRegistry


def storm_specs():
    """Valid specs drawn uniformly from the declared bounds."""

    def build(draw_values):
        knobs = {}
        for knob, (lo, hi, kind) in sorted(PARAM_BOUNDS.items()):
            frac = draw_values[knob]
            if kind == "int":
                knobs[knob] = int(lo) + int(round(frac * (int(hi) - int(lo))))
            else:
                knobs[knob] = lo + frac * (hi - lo)
        if knobs["correlated_bursts"] > 0 and knobs["correlated_fraction"] <= 0.0:
            knobs["correlated_fraction"] = 0.1
        return StormSpec(**knobs)

    return st.fixed_dictionaries(
        {k: st.floats(0.0, 1.0) for k in PARAM_BOUNDS}
    ).map(build)


@given(spec=storm_specs(), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_mutation_stays_inside_declared_bounds(spec, seed):
    mutated = spec.mutate(np.random.default_rng(seed))
    for knob, (lo, hi, kind) in PARAM_BOUNDS.items():
        value = getattr(mutated, knob)
        assert lo <= value <= hi
        if kind == "int":
            assert value == int(value)
    # Constructibility is the real contract: __post_init__ re-validates.
    StormSpec.from_dict(mutated.to_dict())


@given(
    spec=storm_specs(),
    horizon=st.floats(1.0, 1e5),
    domains=st.integers(1, 12),
)
@settings(max_examples=60, deadline=None)
def test_every_valid_spec_composes(spec, horizon, domains):
    scenario = spec.compose(horizon, fault_domains=domains)
    assert len(scenario.initially_poisoned) <= domains
    assert len(scenario.gray_domains) <= domains
    assert scenario.gray_slowdown >= 1.0
    if scenario.gray_heal_s is not None:
        assert scenario.gray_heal_s > 0.0


@given(spec=storm_specs())
@settings(max_examples=60, deadline=None)
def test_round_trip_identity(spec):
    assert StormSpec.from_dict(spec.to_dict()) == spec


@given(spec=storm_specs())
@settings(max_examples=60, deadline=None)
def test_shrink_candidates_are_valid_and_distinct(spec):
    for candidate in spec.shrink_candidates():
        assert candidate != spec
        StormSpec.from_dict(candidate.to_dict())  # bounds re-validate


class _ThresholdTarget(CampaignTarget):
    """An arbitrary damage model: each knob above a per-instance threshold
    contributes its own violation class. Shrinking must preserve the
    parent's classes no matter how the thresholds fall."""

    name = "chaos-serving"

    def __init__(self, thresholds):
        self.thresholds = thresholds

    def resolve(self, params):
        return dict(params)

    def execute(self, resolved, seed):
        spec = StormSpec.from_dict(resolved["storm"])
        kinds = sorted(
            f"knob-{knob}"
            for knob, cut in self.thresholds.items()
            if getattr(spec, knob) > cut
        )
        summary = {
            "requests": 100, "completed": 100, "shed": 0, "failed": 0,
            "attainment": 1.0, "max_backlog": 0, "crashes": 0, "retries": 0,
            "throttled": 0, "throttle_drops": 0, "breaker_opens": 0,
            "conserved": True, "slo_breach": False, "audit_events": 0,
            "violations": len(kinds), "violation_kinds": kinds,
        }
        return RunOutput(summary=summary, metrics_jsonl="")


@given(
    spec=storm_specs(),
    cuts=st.fixed_dictionaries({
        "crash_rate": st.floats(0.0, 0.6),
        "gray_slowdown": st.floats(1.0, 16.0),
        "poisoned_domains": st.integers(0, 8),
    }),
)
@settings(max_examples=40, deadline=None)
def test_shrunk_spec_triggers_same_violation_classes(spec, cuts):
    registry = TargetRegistry()
    registry.register(_ThresholdTarget(cuts))
    search = ChaosSearch(
        SearchConfig(seed=0, rounds=0, shrink_budget=50), registry=registry
    )
    parent = search.evaluate(spec)
    shrunk = search.shrink(parent)
    assert parent.classes <= shrunk.classes
    # Shrinking never moves a knob away from quiet, so it cannot *add*
    # SLO damage; with this target, classes are exactly preserved.
    if parent.classes:
        assert shrunk.spec.shrink_candidates() is not None
