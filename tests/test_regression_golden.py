"""Golden-band regression tests.

These pin the headline reproduction metrics inside loose bands so that
future calibration or refactoring changes that silently break the
paper-shape guarantees fail loudly here (rather than only in the slower
benchmark suite). Bands are deliberately wide — they encode "the paper's
story still holds", not exact values.
"""

import pytest

from repro import (
    AWS_LAMBDA,
    ProPack,
    PywrenManager,
    ServerlessPlatform,
    run_unpacked,
)
from repro.workloads import SORT, STATELESS_COST, VIDEO

SEED = 2023


@pytest.fixture(scope="module")
def platform():
    return ServerlessPlatform(AWS_LAMBDA, seed=SEED)


@pytest.fixture(scope="module")
def propack(platform):
    return ProPack(platform)


def test_golden_scaling_share_at_5000(platform):
    run = run_unpacked(platform, SORT, 5000)
    share = run.scaling_time / run.service_time()
    assert 0.85 < share < 0.99  # paper: >80%


def test_golden_service_improvement_at_5000(platform, propack):
    base = run_unpacked(platform, VIDEO, 5000)
    out = propack.run(VIDEO, 5000)
    cut = 1 - out.result.service_time() / base.service_time()
    assert 0.80 < cut < 0.97  # paper: 85% average


def test_golden_expense_improvement_at_5000(platform, propack):
    base = run_unpacked(platform, VIDEO, 5000)
    out = propack.run(VIDEO, 5000)
    cut = 1 - out.total_expense_usd / base.expense.total_usd
    assert 0.55 < cut < 0.95  # paper: 66% average


def test_golden_fig12_absolutes(platform, propack):
    """Fig. 12's striking absolute agreement at C=2000."""
    base = run_unpacked(platform, SORT, 2000)
    out = propack.run(SORT, 2000)
    assert base.function_hours > 45.0          # paper: "more than 50 hours"
    assert out.result.function_hours < 16.0    # paper: "less than 14 hours"
    assert base.expense.total_usd > 25.0       # paper: "more than $25"
    assert out.total_expense_usd < 14.0        # paper: "less than $12"


def test_golden_pywren_gap(platform, propack):
    pywren = PywrenManager(platform).map(SORT, 4000)
    out = propack.run(SORT, 4000)
    service_cut = 1 - out.result.service_time() / pywren.service_time()
    expense_cut = 1 - out.total_expense_usd / pywren.expense.total_usd
    assert 0.35 < service_cut < 0.90  # paper: 52% average
    assert 0.60 < expense_cut < 0.95  # paper: 78% average


def test_golden_chi_square(propack):
    gof = propack.validate_models(SORT, 2000)
    assert gof["service"].statistic < 4.075
    assert gof["expense"].statistic < 0.055


def test_golden_packing_degrees_reasonable(propack):
    """Joint degrees stay in the paper's reported neighbourhoods."""
    assert 4 <= propack.plan(SORT, 2000)[0].degree <= 12      # paper: 12
    assert 6 <= propack.plan(VIDEO, 5000)[0].degree <= 20
    assert 8 <= propack.plan(STATELESS_COST, 1000)[0].degree <= 18  # paper: ~10
