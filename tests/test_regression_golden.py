"""Golden-band regression tests.

These pin the headline reproduction metrics inside loose bands so that
future calibration or refactoring changes that silently break the
paper-shape guarantees fail loudly here (rather than only in the slower
benchmark suite). Bands are deliberately wide — they encode "the paper's
story still holds", not exact values.
"""

import numpy as np
import pytest

from repro import (
    AWS_LAMBDA,
    ProPack,
    PywrenManager,
    ServerlessPlatform,
    run_unpacked,
)
from repro.chaos import assert_serving_invariants
from repro.core.models import ExecutionTimeModel
from repro.extensions.streaming import StreamingPolicy
from repro.faults.retry import ExponentialBackoffRetry
from repro.faults.scenario import FaultScenario
from repro.platform.providers import GOOGLE_CLOUD_FUNCTIONS
from repro.resilience import (
    BrownoutController,
    CircuitBreakerBank,
    ConcurrencyLimitAdmission,
    ResiliencePolicy,
)
from repro.serving import (
    FixedTTL,
    PoissonProcess,
    ServingConfig,
    ServingSimulator,
    WarmPool,
)
from repro.workloads import SORT, STATELESS_COST, VIDEO, XAPIAN

SEED = 2023


@pytest.fixture(scope="module")
def platform():
    return ServerlessPlatform(AWS_LAMBDA, seed=SEED)


@pytest.fixture(scope="module")
def propack(platform):
    return ProPack(platform)


def test_golden_scaling_share_at_5000(platform):
    run = run_unpacked(platform, SORT, 5000)
    share = run.scaling_time / run.service_time()
    assert 0.85 < share < 0.99  # paper: >80%


def test_golden_service_improvement_at_5000(platform, propack):
    base = run_unpacked(platform, VIDEO, 5000)
    out = propack.run(VIDEO, 5000)
    cut = 1 - out.result.service_time() / base.service_time()
    assert 0.80 < cut < 0.97  # paper: 85% average


def test_golden_expense_improvement_at_5000(platform, propack):
    base = run_unpacked(platform, VIDEO, 5000)
    out = propack.run(VIDEO, 5000)
    cut = 1 - out.total_expense_usd / base.expense.total_usd
    assert 0.55 < cut < 0.95  # paper: 66% average


def test_golden_fig12_absolutes(platform, propack):
    """Fig. 12's striking absolute agreement at C=2000."""
    base = run_unpacked(platform, SORT, 2000)
    out = propack.run(SORT, 2000)
    assert base.function_hours > 45.0          # paper: "more than 50 hours"
    assert out.result.function_hours < 16.0    # paper: "less than 14 hours"
    assert base.expense.total_usd > 25.0       # paper: "more than $25"
    assert out.total_expense_usd < 14.0        # paper: "less than $12"


def test_golden_pywren_gap(platform, propack):
    pywren = PywrenManager(platform).map(SORT, 4000)
    out = propack.run(SORT, 4000)
    service_cut = 1 - out.result.service_time() / pywren.service_time()
    expense_cut = 1 - out.total_expense_usd / pywren.expense.total_usd
    assert 0.35 < service_cut < 0.90  # paper: 52% average
    assert 0.60 < expense_cut < 0.95  # paper: 78% average


def test_golden_chi_square(propack):
    gof = propack.validate_models(SORT, 2000)
    assert gof["service"].statistic < 4.075
    assert gof["expense"].statistic < 0.055


def test_golden_packing_degrees_reasonable(propack):
    """Joint degrees stay in the paper's reported neighbourhoods."""
    assert 4 <= propack.plan(SORT, 2000)[0].degree <= 12      # paper: 12
    assert 6 <= propack.plan(VIDEO, 5000)[0].degree <= 20
    assert 8 <= propack.plan(STATELESS_COST, 1000)[0].degree <= 18  # paper: ~10


def test_golden_overload_resilience_exact():
    """One seeded overload run, pinned exactly — not a band.

    The resilience layer promises bit-determinism: one seed fixes every
    admission verdict, breaker transition, and retry draw, so the shed
    counts and the bill must reproduce to the last unit. Any drift in the
    serving loop's stream consumption order lands here first.
    """
    exec_model = ExecutionTimeModel(
        coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
    )
    config = ServingConfig()
    scenario = FaultScenario(
        name="golden-overload",
        crash_rate=0.15,
        persistent_fraction=0.25,
        poison_heal_s=300.0,
        straggler_rate=0.01,
    )
    resilience = ResiliencePolicy(
        admission=ConcurrencyLimitAdmission(limit=40),
        breakers=CircuitBreakerBank(
            n_domains=config.fault_domains,
            rng=np.random.default_rng(SEED),
            failure_threshold=3,
            recovery_s=60.0,
        ),
        brownout=BrownoutController(
            violation_threshold=0.02,
            backlog_threshold=config.backlog_threshold,
        ),
    )
    sim = ServingSimulator(
        GOOGLE_CLOUD_FUNCTIONS,
        XAPIAN,
        exec_model,
        pool=WarmPool(FixedTTL(60.0)),
        config=config,
        resilience=resilience,
        scenario=scenario,
        retry_policy=ExponentialBackoffRetry(max_retries=3),
        seed=SEED,
    )
    run = sim.run(
        PoissonProcess(4.0), StreamingPolicy(degree=6, batch_timeout_s=4.0), 900.0
    )
    rep = run.resilience
    assert_serving_invariants(run)
    assert run.n_requests == 3567
    assert run.n_completed == 1211
    assert (rep.shed, rep.shed_admission, rep.shed_brownout) == (2348, 1710, 638)
    assert rep.shed_by_priority == [209, 1421, 718]
    assert rep.failed_requests == 8
    assert (rep.crashes, rep.retries) == (63, 61)
    assert (rep.breaker_transitions, rep.breaker_opens) == (32, 16)
    assert (rep.brownout_escalations, rep.brownout_max_level) == (2, 2)
    assert run.expense.total_usd == pytest.approx(1.302955318802082, abs=1e-12)
    assert run.expense.egress_usd == pytest.approx(0.4921875, abs=1e-12)
    assert rep.wasted_gb_seconds == pytest.approx(4182.620702125807, abs=1e-9)
    assert rep.retry_egress_gb == pytest.approx(4.1015625, abs=1e-12)


def test_golden_remediation_timeline_exact():
    """One seeded self-healing run, its full timeline pinned exactly.

    The remediation loop promises the same bit-determinism as the layers
    under it: detections, shadow verdicts, applications, and rollbacks
    are all derived from the seeded streams (shadow seeds come from the
    kernel's fork seam, which consumes no live draws), so the entire
    control-plane timeline must reproduce to the last event. Any drift in
    detector thresholds, verifier scoring, or scheduler bookkeeping lands
    here first.
    """
    from repro.remediation import RemediationConfig, RemediationLoop

    exec_model = ExecutionTimeModel(
        coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
    )
    config = ServingConfig(qos_sojourn_s=45.0)
    scenario = FaultScenario(
        name="golden-remediation",
        crash_rate=0.05,
        correlated_bursts=2,
        correlated_fraction=0.5,
        correlated_window_s=120.0,
        persistent_fraction=0.5,
        poison_heal_s=600.0,
        straggler_rate=0.01,
    )

    def healed_run():
        sim = ServingSimulator(
            GOOGLE_CLOUD_FUNCTIONS,
            XAPIAN,
            exec_model,
            pool=WarmPool(FixedTTL(120.0)),
            config=config,
            resilience=ResiliencePolicy(
                admission=ConcurrencyLimitAdmission(limit=64),
                breakers=CircuitBreakerBank(
                    n_domains=config.fault_domains,
                    rng=np.random.default_rng(SEED),
                    failure_threshold=5,
                    recovery_s=45.0,
                ),
            ),
            scenario=scenario,
            retry_policy=ExponentialBackoffRetry(max_retries=3),
            seed=SEED,
            remediation=RemediationLoop(RemediationConfig(
                tick_interval_s=60.0, shadow_horizon_s=120.0
            )),
        )
        return sim.run(
            PoissonProcess(1.5),
            StreamingPolicy(degree=4, batch_timeout_s=2.0),
            1800.0,
        )

    run = healed_run()
    rep = run.remediation
    assert_serving_invariants(run)
    assert (run.n_requests, run.n_completed) == (2671, 1005)
    assert (run.n_shed, run.n_failed) == (1652, 14)
    assert run.expense.total_usd == pytest.approx(2.005490767850235, abs=1e-12)
    assert rep.ticks == 30
    assert (
        rep.n_detections, rep.n_proposals, rep.n_accepted,
        rep.n_applied, rep.n_rollbacks,
    ) == (51, 50, 16, 11, 7)
    assert rep.applications == [
        (120.0, ("quarantine-domain", 2)),
        (300.0, ("release-domain", 2)),
        (420.0, ("quarantine-domain", 0)),
        (480.0, ("quarantine-domain", 1)),
        (540.0, ("quarantine-domain", 2)),
        (720.0, ("release-domain", 2)),
        (780.0, ("quarantine-domain", 3)),
        (900.0, ("set-admission-limit", 44)),
        (1380.0, ("quarantine-domain", 0)),
        (1500.0, ("quarantine-domain", 1)),
        (1560.0, ("set-admission-limit", 30)),
    ]
    assert rep.rollbacks == [
        (780.0, ("quarantine-domain", 2), ("release-domain", 2)),
        (780.0, ("release-domain", 0), ("quarantine-domain", 0)),
        (780.0, ("release-domain", 1), ("quarantine-domain", 1)),
        (780.0, ("release-domain", 2), ("quarantine-domain", 2)),
        (780.0, ("quarantine-domain", 2), ("release-domain", 2)),
        (1500.0, ("release-domain", 0), ("quarantine-domain", 0)),
        (1560.0, ("release-domain", 1), ("quarantine-domain", 1)),
    ]
    # Byte-identical across a full re-run, timeline and serving result.
    again = healed_run()
    assert again.remediation.signature() == rep.signature()
    assert again.signature() == run.signature()
