"""The wave-major chain walker (``repro.engine.wave``).

Pins the refactor's two behavioural guarantees:

* **Zero-fault byte-parity** — with no crash/straggler draws a wave walk
  makes exactly the draws the chain-major walk makes, in the same order,
  so success logs match float-for-float.
* **Faulted determinism** — with faults the wave-major draw order differs
  from chain-major by design (see the module docstring's contract), but
  the walk is fully deterministic for a seed and conserves every chain
  (succeeded + lost == dispatched, every chain terminal).

Plus the structural bits: WaveJobs column layout, bulk minting, throttle
inlining equivalence, and poisoned-chain handling.
"""

import pytest

from repro.engine import DispatchKernel
from repro.engine.wave import WaveJobs, dispatch_wave_jobs, run_chain_waves
from repro.faults.retry import ImmediateRetry
from repro.faults.scenario import FaultScenario
from repro.sim.randomness import RandomStreams

QUIET = FaultScenario(
    name="quiet", throttle_capacity=64, throttle_refill_per_s=500.0
)
STORMY = FaultScenario(
    name="stormy",
    crash_rate=0.2,
    throttle_capacity=64,
    throttle_refill_per_s=500.0,
    straggler_rate=0.05,
)


class ScalarEnv:
    """Chain-major consumer: draws its own noise via kernel scalar calls."""

    def __init__(self, kernel, log=None):
        self.kernel = kernel
        self.clock = 0.0
        self.succeeded = 0
        self.lost = 0
        self.log = log

    def throttle_clock(self, launch_at):
        self.clock = max(self.clock, launch_at)
        return self.clock

    def on_throttled(self, chain):
        pass

    def on_rejected(self, chain):
        self.lost += 1

    def is_warm(self, launch_at):
        return False

    def attempt_seconds(self, chain, warm):
        factor = self.kernel.exec_noise_factor(0.25)
        factor *= self.kernel.straggler_factor()
        return chain.n_packed * 0.1 * factor

    def on_success(self, chain, launch_at, warm, exec_seconds):
        self.succeeded += 1
        if self.log is not None:
            self.log.append((chain.chain_id, launch_at, exec_seconds))

    def on_crash(self, chain, launch_at, warm, exec_seconds, crash):
        return launch_at + crash.at_fraction * exec_seconds

    def on_retry(self, chain, delay):
        pass

    def on_exhausted(self, chain):
        self.lost += 1


class WaveEnvImpl(ScalarEnv):
    """Wave-major consumer: the walker draws arrays, env supplies work."""

    exec_noise_sigma = 0.25

    def work_seconds(self, chain, warm):
        return chain.n_packed * 0.1

    def is_warm_wave(self, times):
        return [False] * len(times)

    def work_seconds_wave(self, chains, warm):
        return [c.n_packed * 0.1 for c in chains]

    def on_success_wave(self, chains, times, warm, exec_s):
        self.succeeded += len(chains)
        if self.log is not None:
            for c, t, e in zip(chains, times, exec_s):
                self.log.append((c.chain_id, t, e))


class MinimalWaveEnv(ScalarEnv):
    """No vectorized hooks at all: the walker must fall back to the
    per-chain protocol (work_seconds / is_warm / on_success)."""

    exec_noise_sigma = 0.25

    def work_seconds(self, chain, warm):
        return chain.n_packed * 0.1


def _kernel(scenario, mode="batched", seed=17):
    return DispatchKernel(
        RandomStreams(seed).spawn("kernel-bench"),
        scenario=scenario,
        retry_policy=ImmediateRetry(3),
        mode=mode,
    )


def test_zero_fault_wave_walk_matches_scalar_byte_for_byte():
    log_scalar, log_wave = [], []
    k1 = _kernel(QUIET, mode="scalar")
    env1 = ScalarEnv(k1, log_scalar)
    for i in range(500):
        chain = k1.new_chain(n_packed=4, retry=k1.fresh_retry())
        k1.run_synchronous_chain(chain, env1, launch_at=float(i) * 0.01)

    k2 = _kernel(QUIET)
    env2 = WaveEnvImpl(k2, log_wave)
    run_chain_waves(k2, env2, dispatch_wave_jobs(k2, 500, 4, spacing_s=0.01))

    assert log_scalar == log_wave  # float-for-float, same order
    assert env2.succeeded == 500 and env2.lost == 0


def test_zero_fault_parity_without_vectorized_hooks():
    log_scalar, log_wave = [], []
    k1 = _kernel(QUIET, mode="scalar")
    env1 = ScalarEnv(k1, log_scalar)
    for i in range(200):
        chain = k1.new_chain(n_packed=4, retry=k1.fresh_retry())
        k1.run_synchronous_chain(chain, env1, launch_at=float(i) * 0.01)

    k2 = _kernel(QUIET)
    env2 = MinimalWaveEnv(k2, log_wave)
    run_chain_waves(k2, env2, dispatch_wave_jobs(k2, 200, 4, spacing_s=0.01))
    assert log_scalar == log_wave


def _faulted_run():
    kernel = _kernel(STORMY)
    env = WaveEnvImpl(kernel, [])
    jobs = dispatch_wave_jobs(kernel, 2000, 4, spacing_s=0.01)
    waves = run_chain_waves(kernel, env, jobs)
    assert env.succeeded + env.lost == 2000  # conservation
    for chain in kernel.chains.values():
        assert chain.satisfied or chain.lost  # every chain terminal
    return (env.succeeded, env.lost, waves, tuple(env.log))


def test_faulted_walk_is_deterministic_and_conserving():
    first, second = _faulted_run(), _faulted_run()
    assert first == second
    succeeded, lost, waves, _ = first
    assert lost > 0          # the scenario actually exhausted some chains
    assert waves > 1         # crashes forced retry waves
    assert succeeded + lost == 2000


def test_wave_jobs_container():
    chains_placeholder = [object(), object()]
    jobs = WaveJobs(chains_placeholder, [0.0, 0.5])
    assert len(jobs) == 2
    assert list(jobs) == [(chains_placeholder[0], 0.0),
                          (chains_placeholder[1], 0.5)]
    with pytest.raises(ValueError):
        WaveJobs(chains_placeholder, [0.0])


def test_walker_accepts_plain_tuple_iterable():
    """Compatibility path: consumers may pass [(chain, t), ...] directly."""
    k1 = _kernel(QUIET)
    env1 = WaveEnvImpl(k1, [])
    run_chain_waves(k1, env1, dispatch_wave_jobs(k1, 100, 4, spacing_s=0.01))

    k2 = _kernel(QUIET)
    env2 = WaveEnvImpl(k2, [])
    jobs = dispatch_wave_jobs(k2, 100, 4, spacing_s=0.01)
    run_chain_waves(k2, env2, list(jobs))  # as (chain, time) tuples
    assert env1.log == env2.log


def test_bulk_mint_matches_new_chain():
    kernel = _kernel(QUIET)
    jobs = dispatch_wave_jobs(kernel, 10, 4, spacing_s=0.25)
    assert [c.chain_id for c in jobs.chains] == list(range(10))
    assert jobs.launch_at == [i * 0.25 for i in range(10)]
    assert all(c.n_packed == 4 for c in jobs.chains)
    assert all(c.retry is not None for c in jobs.chains)
    # registered with the kernel, and the id counter advanced
    assert set(kernel.chains) == set(range(10))
    assert kernel.new_chain(n_packed=1).chain_id == 10


def test_bulk_mint_shared_retry():
    kernel = _kernel(QUIET)
    jobs = dispatch_wave_jobs(kernel, 5, 2, per_chain_retry=False)
    assert all(c.retry is None for c in jobs.chains)


def test_throttle_storm_rejects_like_scalar():
    """A tiny token bucket must produce the same admit/reject pattern in
    both walkers (the wave walker inlines the bucket arithmetic)."""
    tight = FaultScenario(
        name="tight", throttle_capacity=4, throttle_refill_per_s=10.0,
        throttle_max_retries=2,
    )
    k1 = _kernel(tight, mode="scalar")
    env1 = ScalarEnv(k1, [])
    for i in range(100):
        chain = k1.new_chain(n_packed=1, retry=k1.fresh_retry())
        k1.run_synchronous_chain(chain, env1, launch_at=float(i) * 0.001)

    k2 = _kernel(tight)
    env2 = WaveEnvImpl(k2, [])
    run_chain_waves(k2, env2, dispatch_wave_jobs(k2, 100, 1, spacing_s=0.001))

    assert env1.log == env2.log
    assert (env1.succeeded, env1.lost) == (env2.succeeded, env2.lost)
    bucket1, bucket2 = k1.bucket, k2.bucket
    assert (bucket1.admitted, bucket1.rejected) == (
        bucket2.admitted, bucket2.rejected
    )


def test_backwards_clock_raises():
    class BadClockEnv(WaveEnvImpl):
        def throttle_clock(self, launch_at):
            self.clock -= 1.0  # monotonicity violation
            return self.clock

    kernel = _kernel(QUIET)
    env = BadClockEnv(kernel)
    env.clock = 100.0
    jobs = dispatch_wave_jobs(kernel, 3, 1, spacing_s=0.0)
    with pytest.raises(ValueError, match="clock moved backwards"):
        run_chain_waves(kernel, env, jobs)
