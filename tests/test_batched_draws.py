"""Byte-identity of the batched draw facade (see docs/PERFORMANCE.md).

Every test drives a :class:`BufferedGenerator` and a raw generator with the
same seed through the same call sequence and asserts float-for-float
equality — including across distribution switches, array-draw interleaves,
and delegated methods that must observe a realigned bit-generator state.
"""

import zlib

import numpy as np
import pytest

from repro.sim.randomness import (
    DEFAULT_BATCH_BLOCK,
    BufferedGenerator,
    RandomStreams,
)


def _raw(label: str = "x", seed: int = 7) -> np.random.Generator:
    child = np.random.SeedSequence([seed, zlib.crc32(label.encode())])
    return np.random.default_rng(child)


def _pair(label: str = "x", seed: int = 7, block: int = DEFAULT_BATCH_BLOCK):
    return BufferedGenerator(_raw(label, seed), block), _raw(label, seed)


@pytest.mark.parametrize("block", [1, 2, 7, 256])
def test_scalar_random_matches_raw(block):
    buf, raw = _pair(block=block)
    assert [buf.random() for _ in range(1000)] == [
        float(raw.random()) for _ in range(1000)
    ]


def test_uniform_normal_lognormal_exponential_match_raw():
    buf, raw = _pair()
    got, want = [], []
    for i in range(500):
        low, high = -2.0 + (i % 7) * 0.3, 1.5 + (i % 5) * 2.0
        loc, scale = -0.5 + (i % 3) * 0.4, 0.01 + (i % 4) * 0.7
        got += [
            buf.uniform(low, high),
            buf.normal(loc, scale),
            buf.lognormal(loc, scale),
            buf.exponential(scale),
        ]
        want += [
            float(raw.uniform(low, high)),
            float(raw.normal(loc, scale)),
            float(raw.lognormal(loc, scale)),
            float(raw.exponential(scale)),
        ]
    assert got == want


def test_distribution_switch_rewinds_exactly():
    # The straggler-stream pattern: mostly uniforms, rare lognormals.
    buf, raw = _pair()
    got, want = [], []
    for i in range(400):
        if i % 37 == 13:
            got.append(buf.lognormal(1.0, 0.5))
            want.append(float(raw.lognormal(1.0, 0.5)))
        else:
            got.append(buf.random())
            want.append(float(raw.random()))
    assert got == want


def test_array_draws_interleave_exactly():
    buf, raw = _pair()
    got, want = [], []
    for i in range(50):
        got += [buf.random() for _ in range(3)]
        want += [float(raw.random()) for _ in range(3)]
        got += list(buf.lognormal(-0.1, 0.4, 5))
        want += list(raw.lognormal(-0.1, 0.4, 5))
        got += list(buf.uniform(0.0, 9.0, 4))
        want += list(raw.uniform(0.0, 9.0, 4))
    assert got == want


def test_delegated_methods_see_realigned_state():
    buf, raw = _pair()
    got = [buf.random() for _ in range(5)]
    want = [float(raw.random()) for _ in range(5)]
    # integers() is not buffered: it must observe the post-5-draws state.
    got.append(int(buf.integers(0, 1 << 30)))
    want.append(int(raw.integers(0, 1 << 30)))
    got += [buf.random() for _ in range(5)]
    want += [float(raw.random()) for _ in range(5)]
    assert got == want


def test_bit_generator_state_is_logical_position():
    buf, raw = _pair()
    for _ in range(3):
        buf.random()
        raw.random()
    # Accessing bit_generator syncs; the states must agree exactly.
    assert buf.bit_generator.state == raw.bit_generator.state


def test_streams_batching_is_byte_identical():
    scalar = RandomStreams(123)
    batched = RandomStreams(123)
    batched.enable_batching()
    assert batched.batched and not scalar.batched
    got, want = [], []
    for i in range(300):
        want.append(float(scalar.stream("exec").random()))
        got.append(float(batched.stream("exec").random()))
        want.append(scalar.lognormal_factor("build", 0.03))
        got.append(batched.lognormal_factor("build", 0.03))
        if i % 11 == 0:
            want.append(float(scalar.stream("retry").uniform(0.2, 3.0)))
            got.append(float(batched.stream("retry").uniform(0.2, 3.0)))
    assert got == want


def test_enable_batching_mid_run_preserves_sequences():
    scalar = RandomStreams(9)
    mid = RandomStreams(9)
    want = [float(scalar.stream("exec").random()) for _ in range(10)]
    got = [float(mid.stream("exec").random()) for _ in range(4)]
    mid.enable_batching()
    got += [float(mid.stream("exec").random()) for _ in range(6)]
    assert got == want


def test_spawn_propagates_batching():
    parent = RandomStreams(5)
    parent.enable_batching()
    child = parent.spawn("rep0")
    assert child.batched
    scalar_child = RandomStreams(5).spawn("rep0")
    assert [child.stream("exec").random() for _ in range(20)] == [
        float(scalar_child.stream("exec").random()) for _ in range(20)
    ]


def test_sync_is_idempotent_and_cheap_when_clean():
    buf, raw = _pair()
    buf.sync()
    buf.sync()
    assert buf.random() == float(raw.random())
    buf.sync()
    assert buf.random() == float(raw.random())
