"""Deterministic chaos: fault scenarios on the simulated platform.

Every test here drives ``BurstSpec.scenario`` through the real invoker and
asserts on the resulting :class:`FaultStats`. The determinism tests are the
acceptance criterion for the subsystem: same seed + same scenario must
reproduce the identical fault schedule, bit for bit.
"""

import dataclasses

import pytest

from repro.faults import (
    FLAKY,
    SCENARIOS,
    STORMY,
    THROTTLED,
    ExponentialBackoffRetry,
    FaultScenario,
    HedgePolicy,
)
from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec, FunctionTimeoutError
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT, STATELESS_COST
from repro.workloads.synthetic import make_synthetic


def run(scenario, *, seed=42, concurrency=300, profile=AWS_LAMBDA, **spec_kw):
    platform = ServerlessPlatform(profile, seed=seed)
    spec = BurstSpec(app=SORT, concurrency=concurrency, scenario=scenario, **spec_kw)
    return platform.run_burst(spec, repetition=0)


def completed_functions(result):
    return sum(r.n_packed for r in result.successful_records)


# --------------------------------------------------------------------- #
# Determinism (acceptance criterion)
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_same_seed_same_scenario_is_bit_identical(name):
    scenario = SCENARIOS[name]
    a = run(scenario, seed=7)
    b = run(scenario, seed=7)
    assert a.fault_stats.signature() == b.fault_stats.signature()
    assert a.expense.total_usd == b.expense.total_usd
    if a.successful_records:
        assert a.service_time("total") == b.service_time("total")
    # The full event schedule matches, not just the aggregates.
    sched_a = [(r.instance_id, r.attempt, r.exec_start, r.exec_end, r.failed)
               for r in a.records]
    sched_b = [(r.instance_id, r.attempt, r.exec_start, r.exec_end, r.failed)
               for r in b.records]
    assert sched_a == sched_b


def test_different_seeds_differ():
    a = run(FLAKY, seed=1)
    b = run(FLAKY, seed=2)
    assert a.fault_stats.signature() != b.fault_stats.signature()


def test_enabling_faults_does_not_perturb_execution_streams():
    """Fault draws come from dedicated RNG streams: a calm scenario must
    reproduce the no-scenario run's expense and timings exactly."""
    base = run(None, seed=11)
    calm = run(SCENARIOS["calm"], seed=11)
    assert calm.expense.total_usd == pytest.approx(base.expense.total_usd)
    assert calm.service_time("total") == pytest.approx(base.service_time("total"))


# --------------------------------------------------------------------- #
# Crash scenarios
# --------------------------------------------------------------------- #

def test_flaky_scenario_overrides_profile_rate():
    result = run(FLAKY, seed=3)
    stats = result.fault_stats
    assert stats.crashed_attempts > 20  # ~15% of 300+
    assert completed_functions(result) + result.lost_functions == 300


def test_persistent_faults_poison_every_retry():
    scenario = FaultScenario(name="poison", crash_rate=0.05, persistent_fraction=1.0)
    result = run(scenario, seed=5)
    # Every first-attempt crash dooms its group: retries all crash too.
    poisoned = [r for r in result.records if r.persistent_fault]
    assert poisoned
    assert all(r.failed for r in poisoned)
    assert result.lost_functions > 0
    assert completed_functions(result) + result.lost_functions == 300


def test_correlated_bursts_kill_inflight_instances():
    result = run(STORMY, seed=9, concurrency=500)
    stats = result.fault_stats
    assert stats.correlated_crashes > 0
    correlated = [r for r in result.records if r.correlated]
    assert len(correlated) == stats.correlated_crashes
    assert completed_functions(result) + result.lost_functions == 500


# --------------------------------------------------------------------- #
# Throttling
# --------------------------------------------------------------------- #

def test_throttled_scenario_rejects_then_recovers():
    result = run(THROTTLED, seed=13, concurrency=2000)
    stats = result.fault_stats
    assert stats.throttled_attempts > 0
    # The bucket refills, so throttled invocations eventually get through.
    assert completed_functions(result) + result.lost_functions == 2000
    assert result.lost_functions == 0
    throttled = [r for r in result.records if r.throttled_attempts > 0]
    assert throttled
    assert all(r.invoked_at > 0.0 for r in throttled)


def test_strict_quota_delays_service_time():
    # Refill far below the placement-loop service rate, so admission (not
    # the cold pipeline) is the bottleneck and the tail stretches.
    quota = FaultScenario(
        name="strict-quota",
        throttle_capacity=10,
        throttle_refill_per_s=1.0,
        throttle_max_retries=1000,
        throttle_backoff_s=0.2,
    )
    calm = run(None, seed=13, concurrency=60)
    throttled = run(quota, seed=13, concurrency=60)
    assert max(r.invoked_at for r in throttled.records) > 20.0
    assert throttled.service_time("total") > calm.service_time("total")


def test_exhausted_throttle_retries_lose_functions():
    quota = FaultScenario(
        name="hard-quota",
        throttle_capacity=5,
        throttle_refill_per_s=0.5,
        throttle_max_retries=2,
        throttle_backoff_s=0.1,
    )
    result = run(quota, seed=19, concurrency=200)
    stats = result.fault_stats
    assert stats.throttle_rejections_final > 0
    assert result.lost_functions >= stats.throttle_rejections_final
    assert completed_functions(result) + result.lost_functions == 200


# --------------------------------------------------------------------- #
# Stragglers
# --------------------------------------------------------------------- #

def test_stragglers_only_slow_down():
    scenario = FaultScenario(name="slow", straggler_rate=1.0)
    straggled = run(scenario, seed=17, concurrency=100)
    clean = run(None, seed=17, concurrency=100)
    assert straggled.fault_stats.crashed_attempts == 0
    assert straggled.mean_exec_seconds > clean.mean_exec_seconds
    # Exec-noise streams are untouched, so the slowdown is the straggler
    # factor alone: every execution is strictly longer.
    clean_by_id = {r.instance_id: r for r in clean.records}
    for r in straggled.records:
        assert r.exec_seconds > clean_by_id[r.instance_id].exec_seconds


# --------------------------------------------------------------------- #
# Billed timeouts
# --------------------------------------------------------------------- #

TIMEOUT_APP_KW = dict(base_seconds=800.0, mem_mb=1024, pressure_per_gb=0.5)


def test_legacy_timeout_bills_full_cap():
    app = make_synthetic(**TIMEOUT_APP_KW)
    platform = ServerlessPlatform(AWS_LAMBDA, seed=1)
    with pytest.raises(FunctionTimeoutError) as excinfo:
        platform.run_burst(BurstSpec(app=app, concurrency=8, packing_degree=8))
    err = excinfo.value
    assert err.billed_usd > 0.0
    assert err.record is not None and err.record.timed_out
    # Billed for exactly the platform cap, not the would-be duration.
    billed_seconds = err.record.exec_end - err.record.exec_start
    assert billed_seconds == pytest.approx(AWS_LAMBDA.max_execution_seconds)


def test_scenario_timeouts_are_billed_and_retried():
    app = make_synthetic(**TIMEOUT_APP_KW)
    platform = ServerlessPlatform(AWS_LAMBDA, seed=1)
    result = platform.run_burst(
        BurstSpec(app=app, concurrency=8, packing_degree=8, scenario=FaultScenario())
    )
    stats = result.fault_stats
    assert stats.timed_out_attempts > 0
    timed_out = [r for r in result.records if r.timed_out]
    cap = AWS_LAMBDA.max_execution_seconds
    for r in timed_out:
        assert r.exec_end - r.exec_start == pytest.approx(cap)
    # The full-cap charge lands in the run's billed GB-seconds.
    assert stats.wasted_billed_gb_seconds > 0.0
    waste_floor = sum(cap * r.provisioned_mb / 1024.0 for r in timed_out)
    assert stats.wasted_billed_gb_seconds >= waste_floor * 0.999


def test_timeouts_can_be_terminal():
    app = make_synthetic(**TIMEOUT_APP_KW)
    scenario = FaultScenario(name="no-timeout-retry", retry_timeouts=False)
    platform = ServerlessPlatform(AWS_LAMBDA, seed=1)
    result = platform.run_burst(
        BurstSpec(app=app, concurrency=8, packing_degree=8, scenario=scenario)
    )
    assert result.lost_functions > 0


# --------------------------------------------------------------------- #
# Retry policies and hedging through the invoker
# --------------------------------------------------------------------- #

def test_backoff_policy_delays_retries():
    immediate = run(FLAKY, seed=21)
    backed_off = run(
        FLAKY, seed=21,
        retry_policy=ExponentialBackoffRetry(base_s=2.0, cap_s=30.0, max_retries=4),
    )
    assert backed_off.fault_stats.retry_delay_s_total > 0.0
    assert immediate.fault_stats.retry_delay_s_total == 0.0
    retried = [r for r in backed_off.records if r.attempt > 1 and not r.hedged]
    assert retried and all(r.retry_delay_s >= 2.0 for r in retried)


def test_hedging_launches_speculative_twins():
    scenario = dataclasses.replace(
        FaultScenario(name="tail"), straggler_rate=0.2, straggler_mu=2.0
    )
    result = run(
        scenario, seed=23, concurrency=200,
        hedge=HedgePolicy(trigger_factor=1.5, max_hedges_per_group=1),
    )
    stats = result.fault_stats
    assert stats.hedged_attempts > 0
    assert stats.hedge_wins > 0  # hedges beat stragglers sometimes
    assert completed_functions(result) + result.lost_functions == 200
    # Exactly one completion is counted per function group.
    cancelled = [r for r in result.records if r.cancelled]
    assert cancelled  # losers of the race are cancelled, not double-counted


def test_stateless_app_supports_scenarios():
    platform = ServerlessPlatform(AWS_LAMBDA, seed=29)
    result = platform.run_burst(
        BurstSpec(app=STATELESS_COST, concurrency=150, scenario=FLAKY)
    )
    assert result.fault_stats.crashed_attempts > 0
    assert completed_functions(result) + result.lost_functions == 150


# --------------------------------------------------------------------- #
# gray failures (slow-but-alive fault domains)
# --------------------------------------------------------------------- #
class TestGrayFailures:
    def test_gray_factor_window_semantics(self):
        scenario = FaultScenario(
            name="gray", gray_domains=(1, 3), gray_slowdown=4.0,
            gray_onset_s=100.0, gray_heal_s=200.0,
        )
        assert scenario.gray_active
        assert scenario.gray_factor(1, 50.0) == 1.0       # before onset
        assert scenario.gray_factor(1, 100.0) == 4.0      # onset inclusive
        assert scenario.gray_factor(3, 250.0) == 4.0      # inside window
        assert scenario.gray_factor(1, 300.0) == 1.0      # heal boundary
        assert scenario.gray_factor(2, 150.0) == 1.0      # healthy domain
        assert scenario.gray_factor(None, 150.0) == 1.0   # undomained

    def test_gray_without_heal_never_recovers(self):
        scenario = FaultScenario(name="gray", gray_domains=(0,),
                                 gray_slowdown=2.0, gray_onset_s=10.0)
        assert scenario.gray_factor(0, 1e9) == 2.0

    def test_gray_is_draw_free(self):
        """Gray degradation must consume zero RNG draws — pre-existing
        goldens pin exact stream consumption, so gray is a pure function
        of (domain, time)."""
        scenario = FaultScenario(name="gray", gray_domains=(0,),
                                 gray_slowdown=3.0)
        for _ in range(3):
            assert scenario.gray_factor(0, 5.0) == 3.0

    def test_gray_validation(self):
        with pytest.raises(ValueError, match="gray_slowdown"):
            FaultScenario(name="bad", gray_slowdown=0.5)
        with pytest.raises(ValueError, match="gray_domains"):
            FaultScenario(name="bad", gray_domains=(-1,))
        with pytest.raises(ValueError, match="gray_onset_s"):
            FaultScenario(name="bad", gray_onset_s=-1.0)
        with pytest.raises(ValueError, match="gray_heal_s"):
            FaultScenario(name="bad", gray_heal_s=0.0)

    def test_inactive_without_domains_or_slowdown(self):
        assert not FaultScenario(name="x", gray_slowdown=5.0).gray_active
        assert not FaultScenario(name="x", gray_domains=(0,)).gray_active


class TestScenarioSerialization:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_presets_round_trip(self, name):
        scenario = SCENARIOS[name]
        assert FaultScenario.from_dict(scenario.to_dict()) == scenario

    def test_gray_fields_round_trip(self):
        scenario = FaultScenario(
            name="gray", gray_domains=(2, 5), gray_slowdown=3.5,
            gray_onset_s=60.0, gray_heal_s=120.0,
        )
        clone = FaultScenario.from_dict(scenario.to_dict())
        assert clone == scenario
        assert clone.gray_domains == (2, 5)  # list coerced back to tuple

    def test_to_dict_is_json_safe(self):
        import json

        payload = SCENARIOS["stormy"].to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_from_dict_rejects_unknown_keys(self):
        payload = SCENARIOS["calm"].to_dict()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="unknown FaultScenario keys"):
            FaultScenario.from_dict(payload)

    def test_from_dict_rejects_invalid_values(self):
        payload = SCENARIOS["calm"].to_dict()
        payload["crash_rate"] = 1.5
        with pytest.raises(ValueError):
            FaultScenario.from_dict(payload)
        payload = SCENARIOS["calm"].to_dict()
        payload["gray_domains"] = "nope"
        with pytest.raises(ValueError, match="gray_domains"):
            FaultScenario.from_dict(payload)
