"""The coverage-guided search loop, tested against a stub target.

The stub makes damage a deterministic function of the knobs, so these
tests pin the *loop mechanics* — frontier admission, coverage accounting,
class-preserving shrink, manifest persistence — without paying for real
serving simulations. The real ``chaos-serving`` target is integration
tested in ``test_harness_chaos_target.py`` and the CLI smoke test.
"""

import pytest

from repro.chaos import SearchConfig, StormSpec
from repro.chaos.search import (
    ChaosSearch,
    coverage_features,
    damage_score,
    violation_classes,
)
from repro.harness.artifacts import ArtifactStore
from repro.harness.reproduce import reproduce_run
from repro.harness.targets import CampaignTarget, RunOutput, TargetRegistry


class StubServingTarget(CampaignTarget):
    """Damage model: crash_rate alone drives SLO damage; a crash_rate
    above 0.3 *combined with* gray slowdown breaks an invariant. The
    minimal reproduction of the invariant class is therefore
    crash_rate > 0.3 with some gray — everything else must shrink away."""

    name = "chaos-serving"

    def __init__(self):
        self.executions = 0

    def resolve(self, params):
        return dict(params)

    def execute(self, resolved, seed):
        self.executions += 1
        spec = StormSpec.from_dict(resolved["storm"])
        attainment = max(0.0, 1.0 - spec.crash_rate - 0.05 * spec.gray_domains)
        violations = int(spec.crash_rate > 0.3 and spec.gray_slowdown > 1.0)
        summary = {
            "storm": spec.name,
            "requests": 1000,
            "completed": 1000,
            "shed": 0,
            "failed": int(1000 * spec.crash_rate * 0.1),
            "attainment": attainment,
            "max_backlog": int(100 * spec.crash_rate),
            "crashes": int(100 * spec.crash_rate),
            "retries": 0,
            "throttled": 0,
            "throttle_drops": 0,
            "breaker_opens": 0,
            "conserved": True,
            "slo_breach": attainment < resolved["slo_attainment_floor"],
            "audit_events": 0,
            "violations": violations,
            "violation_kinds": ["billing-legality"] if violations else [],
        }
        return RunOutput(summary=summary, metrics_jsonl="")


@pytest.fixture()
def registry():
    reg = TargetRegistry()
    reg.register(StubServingTarget())
    return reg


def make_search(registry, **overrides):
    defaults = dict(seed=0, rounds=2, population=3, shrink_budget=30)
    defaults.update(overrides)
    return ChaosSearch(SearchConfig(**defaults), registry=registry)


# --------------------------------------------------------------------- #
# scoring helpers
# --------------------------------------------------------------------- #
def test_damage_score_weights_violations_dominantly():
    quiet = {"requests": 100, "attainment": 1.0, "violations": 0}
    slo = {"requests": 100, "attainment": 0.0, "failed": 100, "violations": 0}
    broken = {"requests": 100, "attainment": 1.0, "violations": 1}
    assert damage_score(quiet) == 0.0
    assert damage_score(broken) > damage_score(slo)


def test_coverage_features_and_classes():
    summary = {
        "crashes": 5, "failed": 2, "attainment": 0.43, "max_backlog": 9,
        "slo_breach": True, "conserved": False,
        "violation_kinds": ["billing-legality"],
    }
    features = coverage_features(summary)
    assert {"crashes", "failed", "slo-breach", "not-conserved",
            "attain-decile-4", "invariant:billing-legality"} <= features
    assert violation_classes(summary) == {
        "slo-breach", "not-conserved", "invariant:billing-legality"
    }


# --------------------------------------------------------------------- #
# the loop
# --------------------------------------------------------------------- #
def test_search_finds_and_shrinks_failure(registry):
    search = make_search(registry)
    report = search.run()
    assert report.found_failure
    assert report.best.failing
    # Shrink must preserve every violation class the parent exhibited.
    assert report.best.classes <= report.minimized.classes
    # The stub's invariant needs crash_rate > 0.3 and gray alive; the
    # shrunk spec keeps both but quiets unrelated phases.
    spec = report.minimized.spec
    if "invariant:billing-legality" in report.minimized.classes:
        assert spec.crash_rate > 0.3
        assert spec.gray_slowdown > 1.0
        assert spec.throttle_capacity == 0
        assert spec.poisoned_domains == 0


def test_search_is_deterministic(registry):
    a = make_search(registry).run()
    fresh = TargetRegistry()
    fresh.register(StubServingTarget())
    b = make_search(fresh).run()
    assert a.minimized.spec == b.minimized.spec
    assert a.evaluations == b.evaluations
    assert a.coverage == b.coverage


def test_memoization_never_reexecutes_a_spec(registry):
    search = make_search(registry)
    search.run()
    target = registry.get("chaos-serving")
    assert target.executions == search._evaluations


def test_no_failure_reports_coverage(registry):
    # A floor of 0 means no SLO breach, and with rounds=0 only the corpus
    # runs — no corpus archetype trips the stub's invariant condition.
    search = make_search(registry, slo_attainment_floor=0.0, rounds=0)
    report = search.run()
    assert not report.found_failure
    assert report.evaluations > 0
    assert "no failing storm" in report.summary()


def test_persisted_manifest_reproduces(tmp_path, registry):
    store = ArtifactStore(tmp_path)
    search = make_search(registry)
    report = search.run(store)
    assert report.run_id
    manifest_path = tmp_path / "chaos" / report.run_id / "manifest.json"
    assert str(manifest_path) == report.manifest_path
    assert manifest_path.exists()
    # Byte-identical twice in a row — the replay acceptance criterion.
    for _ in range(2):
        verdict = reproduce_run(manifest_path, registry=registry)
        assert verdict.matched and verdict.byte_identical


def test_shrink_budget_zero_keeps_parent(registry):
    search = make_search(registry, shrink_budget=0)
    report = search.run()
    assert report.found_failure
    assert report.minimized.spec == report.best.spec
    assert report.shrink_evaluations == 0
