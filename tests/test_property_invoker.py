"""Property-based tests on burst execution invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.providers import AWS_LAMBDA
from repro.workloads import SORT, STATELESS_COST


@pytest.fixture(scope="module")
def platform():
    return ServerlessPlatform(AWS_LAMBDA, seed=131)


@given(
    concurrency=st.integers(min_value=1, max_value=300),
    degree=st.integers(min_value=1, max_value=15),
)
@settings(max_examples=40, deadline=None)
def test_every_function_runs_exactly_once(concurrency, degree):
    platform = ServerlessPlatform(AWS_LAMBDA, seed=131)
    degree = min(degree, concurrency)
    result = platform.run_burst(
        BurstSpec(app=SORT, concurrency=concurrency, packing_degree=degree),
        repetition=0,
    )
    assert sum(r.n_packed for r in result.records) == concurrency
    assert result.n_instances == -(-concurrency // degree)


@given(
    concurrency=st.integers(min_value=2, max_value=200),
    degree=st.integers(min_value=1, max_value=10),
    wave=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=30, deadline=None)
def test_wave_dispatch_conserves_functions(concurrency, degree, wave):
    platform = ServerlessPlatform(AWS_LAMBDA, seed=132)
    degree = min(degree, concurrency)
    result = platform.run_burst(
        BurstSpec(
            app=STATELESS_COST,
            concurrency=concurrency,
            packing_degree=degree,
            wave_size=wave,
        ),
        repetition=0,
    )
    assert sum(r.n_packed for r in result.records) == concurrency
    cold = [r for r in result.records if not r.warm_start]
    assert len(cold) == min(wave, -(-concurrency // degree))


@given(
    concurrency=st.integers(min_value=1, max_value=200),
    degree=st.integers(min_value=1, max_value=15),
)
@settings(max_examples=30, deadline=None)
def test_lifecycle_timestamps_are_ordered(concurrency, degree):
    platform = ServerlessPlatform(AWS_LAMBDA, seed=133)
    degree = min(degree, concurrency)
    result = platform.run_burst(
        BurstSpec(app=SORT, concurrency=concurrency, packing_degree=degree),
        repetition=0,
    )
    for r in result.records:
        assert r.invoked_at <= r.sched_done
        assert r.invoked_at <= r.built_at
        assert r.shipped_at >= max(r.sched_done, r.built_at)
        assert r.exec_start == r.shipped_at
        assert r.exec_end > r.exec_start
    assert result.service_time("median") <= result.service_time("tail")
    assert result.service_time("tail") <= result.service_time("total")


@given(degree=st.integers(min_value=1, max_value=15))
@settings(max_examples=15, deadline=None)
def test_expense_positive_and_composed(degree):
    platform = ServerlessPlatform(AWS_LAMBDA, seed=134)
    result = platform.run_burst(
        BurstSpec(app=SORT, concurrency=60, packing_degree=degree), repetition=0
    )
    e = result.expense
    assert e.compute_usd > 0
    assert e.requests_usd > 0
    assert e.storage_usd > 0
    assert e.total_usd == pytest.approx(
        e.compute_usd + e.requests_usd + e.storage_usd + e.egress_usd
    )
