#!/usr/bin/env python3
"""Smith-Waterman at serverless scale: the paper's HPC case study (Fig. 17).

Part 1 runs real protein-sequence alignments locally through the packing
runtime and prints one optimal local alignment.

Part 2 shows why compute-intensive kernels pack conservatively: ProPack's
profiled interference curve for Smith-Waterman is steep, so the chosen
degree stays far below the memory-permitted maximum of 35 — yet service
time and expense still drop dramatically at high concurrency.

    python examples/bioinformatics_smith_waterman.py
"""

from repro import AWS_LAMBDA, ProPack, ServerlessPlatform, run_unpacked
from repro.runtime import PackedExecutor
from repro.workloads import SMITH_WATERMAN, SmithWaterman


def local_alignment_demo() -> None:
    print("== Part 1: real local alignments through the packing runtime ==")
    app = SmithWaterman(query_len=40, reference_len=120)
    tasks = app.make_tasks(6, seed=23)
    outcome = PackedExecutor(app).run(tasks, packing_degree=3)
    assert outcome.ok, outcome.errors

    best = max((r for r in outcome.results), key=lambda r: r.value["score"])
    print(f"  aligned {len(tasks)} query/reference pairs "
          f"(packed 3-per-worker, {outcome.n_workers} workers)")
    print(f"  best alignment (score {best.value['score']}):")
    print(f"    query: {best.value['query']}")
    print(f"    ref:   {best.value['reference']}\n")


def packing_analysis_demo() -> None:
    print("== Part 2: why compute-bound kernels pack conservatively ==")
    concurrency = 5000
    platform = ServerlessPlatform(AWS_LAMBDA, seed=17)
    propack = ProPack(platform)

    profile = propack.interference_profile(SMITH_WATERMAN)
    et1 = profile.model.predict(1)
    et10 = profile.model.predict(10)
    print(f"  profiled interference: ET(1)={et1:.0f}s -> ET(10)={et10:.0f}s "
          f"(alpha={profile.model.alpha:.3f})")

    optimizer = propack.optimizer(SMITH_WATERMAN, concurrency)
    print(f"  memory-permitted max degree: "
          f"{SMITH_WATERMAN.max_packing_degree(AWS_LAMBDA.max_memory_mb)}; "
          f"after the 15-min execution cap: {optimizer.max_degree()}")

    outcome = propack.run(SMITH_WATERMAN, concurrency)
    baseline = run_unpacked(platform, SMITH_WATERMAN, concurrency)
    print(f"  chosen degree: {outcome.plan.degree}")
    print(f"  service time: {baseline.service_time():.0f}s -> "
          f"{outcome.result.service_time():.0f}s "
          f"({100 * (1 - outcome.result.service_time() / baseline.service_time()):.0f}% "
          f"better; paper: 81% at C=5000)")
    print(f"  expense: ${baseline.expense.total_usd:.2f} -> "
          f"${outcome.total_expense_usd:.2f} "
          f"({100 * (1 - outcome.total_expense_usd / baseline.expense.total_usd):.0f}% "
          f"better; paper: 59% at C=5000)")


if __name__ == "__main__":
    local_alignment_demo()
    packing_analysis_demo()
