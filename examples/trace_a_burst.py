#!/usr/bin/env python3
"""Observe a packed burst with the telemetry subsystem.

One instrumented burst: every instance gets a span per lifecycle phase
(schedule / build / ship / execute), the metrics registry tallies phase
histograms and outcome counters, and the whole thing exports to a Chrome
``trace.json`` you can drop into chrome://tracing or https://ui.perfetto.dev.

The paper's scaling-time definition (Sec. 1: start of the last instance's
execution) is recovered *from the trace itself* — the exported spans carry
enough structure to reproduce the headline metric exactly.

    python examples/trace_a_burst.py
"""

import tempfile
from pathlib import Path

from repro import AWS_LAMBDA, ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.telemetry import TelemetryConfig, parse_prometheus_text
from repro.workloads import SORT


def main() -> None:
    print("== an instrumented burst: sort, C=1000, P=4 ==")
    platform = ServerlessPlatform(AWS_LAMBDA, seed=7, telemetry=TelemetryConfig())
    result = platform.run_burst(
        BurstSpec(app=SORT, concurrency=1000, packing_degree=4)
    )
    session = platform.telemetry
    print(f"  instances:    {result.n_instances}")
    print(f"  scaling time: {result.scaling_time:.2f}s")
    print(f"  service time: {result.service_time():.2f}s")

    # --- the trace reproduces the paper's headline metric ------------- #
    trace = session.chrome_trace()
    exec_spans = [
        e for e in trace["traceEvents"]
        if e.get("ph") == "X" and e.get("name") == "exec"
    ]
    last_exec_start_s = max(e["ts"] for e in exec_spans) / 1e6
    print(f"  exec spans:   {len(exec_spans)}")
    print(f"  scaling time recovered from trace: {last_exec_start_s:.2f}s "
          f"({'exact match' if last_exec_start_s == result.scaling_time else 'MISMATCH'})")

    # --- metrics: the phase breakdown as Prometheus text -------------- #
    samples = parse_prometheus_text(session.prometheus_text())
    phase_sum = {
        phase: samples[f'propack_instance_phase_seconds_sum{{phase="{phase}"}}']
        for phase in ("sched", "build", "ship", "exec")
    }
    n = result.n_instances
    print("  mean per-instance phase durations (from the metrics registry):")
    for phase, total in phase_sum.items():
        print(f"    {phase:<6} {total / n:8.3f}s")

    # --- export -------------------------------------------------------- #
    out = Path(tempfile.gettempdir()) / "propack_trace.json"
    session.write_chrome_trace(str(out))
    print(f"  wrote {out} — open it in chrome://tracing or ui.perfetto.dev")


if __name__ == "__main__":
    main()
