#!/usr/bin/env python3
"""QoS-aware packing for a latency-critical search service (Fig. 20).

Xapian-style search has a strict bound on tail (95th percentile) service
time. Equal service/expense weights may violate it; ProPack searches the
objective weights (Eqs. 8-9) for the cheapest configuration whose predicted
tail meets the bound — then we verify the realized tail actually meets it.

    python examples/qos_latency_search.py
"""

from repro import AWS_LAMBDA, ProPack, ServerlessPlatform, run_unpacked
from repro.workloads import XAPIAN

CONCURRENCY = 5000
QOS_TAIL_S = 30.0


def main() -> None:
    platform = ServerlessPlatform(AWS_LAMBDA, seed=29)
    propack = ProPack(platform)

    baseline = run_unpacked(platform, XAPIAN, CONCURRENCY)
    print(f"== Xapian, concurrency {CONCURRENCY}, QoS: tail <= {QOS_TAIL_S}s ==")
    print(f"baseline tail service time: {baseline.service_time('tail'):.1f}s "
          f"(QoS hopeless without packing)\n")

    print(f"{'variant':<16} {'W_S':>5} {'degree':>6} {'tail(s)':>8} "
          f"{'expense($)':>10}  meets QoS?")
    for label, kwargs in (
        ("service-only", dict(objective="service", merit="tail")),
        ("equal-weights", dict(objective="joint", w_s=0.5, merit="tail")),
        ("qos-search", dict(objective="joint", qos_tail_bound_s=QOS_TAIL_S)),
        ("expense-only", dict(objective="expense")),
    ):
        outcome = propack.run(XAPIAN, CONCURRENCY, **kwargs)
        tail = outcome.result.service_time("tail")
        w_s = (outcome.qos_decision.w_s if outcome.qos_decision
               else kwargs.get("w_s", 1.0 if kwargs["objective"] == "service" else 0.0))
        print(f"{label:<16} {w_s:>5.2f} {outcome.plan.degree:>6} {tail:>8.1f} "
              f"{outcome.total_expense_usd:>10.2f}  "
              f"{'yes' if tail <= QOS_TAIL_S else 'NO'}")

    outcome = propack.run(XAPIAN, CONCURRENCY, qos_tail_bound_s=QOS_TAIL_S)
    decision = outcome.qos_decision
    print(f"\nQoS search settled on W_S={decision.w_s:.2f} / W_E={decision.w_e:.2f} "
          f"(paper found 0.65/0.35 for Xapian)")
    print(f"predicted tail {decision.predicted_tail_s:.1f}s vs realized "
          f"{outcome.result.service_time('tail'):.1f}s — bound held with "
          f"{100 * (1 - outcome.total_expense_usd / baseline.expense.total_usd):.0f}% "
          f"expense savings")


if __name__ == "__main__":
    main()
