#!/usr/bin/env python3
"""Surviving a flash crowd on a faulty platform (extension beyond the paper).

A Markov-modulated flash crowd (bursts at ~10x the diurnal base rate) hits
a platform that is simultaneously misbehaving: elevated crashes with a
persistent tail that poisons whole fault domains, a throttled control
plane, and the odd straggler. The same traffic and the same fault seed are
served twice:

* **unprotected** — the plain serving loop admits everything and retries
  every crash, so during bursts the backlog (and every sojourn behind it)
  grows without bound while poisoned domains burn billed-but-wasted work;
* **protected** — admission control sheds the excess at the door (lowest
  priority first), per-fault-domain circuit breakers quarantine
  crash-looping domains, and a brownout controller packs deeper, then
  sheds low-priority traffic when the windowed SLO breaches.

The punchline is the overload economics: protection completes fewer
requests but each one is on time and cheaper — strictly higher windowed
P99 attainment at lower cost per *completed* request.

    python examples/overload_flashcrowd.py
"""

import numpy as np

from repro import ProPack, ServerlessPlatform
from repro.extensions.streaming import StreamingPlanner
from repro.faults.retry import ExponentialBackoffRetry
from repro.faults.scenario import FaultScenario
from repro.platform.providers import GOOGLE_CLOUD_FUNCTIONS
from repro.resilience import (
    BrownoutController,
    CircuitBreakerBank,
    ConcurrencyLimitAdmission,
    ResiliencePolicy,
)
from repro.serving import (
    DiurnalProcess,
    FixedTTL,
    MarkovModulatedProcess,
    OnlineReplanner,
    ServingConfig,
    ServingSimulator,
    SuperposedProcess,
    WarmPool,
)
from repro.workloads import XAPIAN

HORIZON_S = 2400.0   # one compressed "day" with flash crowds
BASE_RATE = 1.0      # diurnal base, requests/s
FLASH_RATE = 10.0    # burst rate while the flash is on
QOS_S = 90.0         # per-request p99 sojourn SLO
SEED = 2023


def main() -> None:
    platform = ServerlessPlatform(GOOGLE_CLOUD_FUNCTIONS, seed=SEED)
    exec_model = ProPack(platform).exec_model(XAPIAN)
    process = SuperposedProcess([
        DiurnalProcess(BASE_RATE, amplitude=0.7, period_s=HORIZON_S),
        MarkovModulatedProcess(
            FLASH_RATE, 0.0, mean_on_s=240.0, mean_off_s=600.0, start_on=False
        ),
    ])
    scenario = FaultScenario(
        name="flash-crowd",
        crash_rate=0.08,
        persistent_fraction=0.05,
        poison_heal_s=900.0,
        throttle_capacity=30,
        throttle_refill_per_s=1.0,
        straggler_rate=0.005,
    )
    policy = StreamingPlanner(GOOGLE_CLOUD_FUNCTIONS, XAPIAN, exec_model).plan(
        arrival_rate_per_s=BASE_RATE, qos_sojourn_s=QOS_S
    )
    serving_cfg = ServingConfig(qos_sojourn_s=QOS_S)

    def protection() -> ResiliencePolicy:
        return ResiliencePolicy(
            admission=ConcurrencyLimitAdmission(limit=8 * policy.degree),
            breakers=CircuitBreakerBank(
                n_domains=serving_cfg.fault_domains,
                rng=np.random.default_rng(SEED),
                failure_threshold=3,
                recovery_s=60.0,
            ),
            brownout=BrownoutController(
                violation_threshold=0.02,
                backlog_threshold=serving_cfg.backlog_threshold,
                degree_boost=1.25,
            ),
        )

    print(f"== Flash crowd for {XAPIAN.name} on {GOOGLE_CLOUD_FUNCTIONS.name} "
          f"(base {BASE_RATE:g}/s, flash {FLASH_RATE:g}/s, "
          f"p99 SLO {QOS_S:.0f}s) ==")
    print(f"fault scenario: {scenario.describe()}\n")
    print(f"{'mode':<12} {'arrivals':>8} {'done':>6} {'shed':>5} {'failed':>6} "
          f"{'attain%':>7} {'$/1k done':>9} {'wasted GBs':>10} {'brk':>4} "
          f"{'brownout':>8}")
    for mode in ("unprotected", "protected"):
        simulator = ServingSimulator(
            GOOGLE_CLOUD_FUNCTIONS,
            XAPIAN,
            exec_model,
            pool=WarmPool(FixedTTL(120.0)),
            config=serving_cfg,
            controller=OnlineReplanner(
                GOOGLE_CLOUD_FUNCTIONS, XAPIAN, exec_model, qos_sojourn_s=QOS_S
            ),
            resilience=protection() if mode == "protected" else None,
            scenario=scenario,
            retry_policy=ExponentialBackoffRetry(max_retries=3),
            seed=SEED,
        )
        run = simulator.run(process, policy, HORIZON_S)
        assert run.conserved()
        rep = run.resilience
        print(f"{mode:<12} {run.n_requests:>8} {run.n_completed:>6} "
              f"{run.n_shed:>5} {run.n_failed:>6} "
              f"{100 * run.windowed_p99_attainment():>7.1f} "
              f"{1000 * run.cost_per_completed_request_usd():>9.4f} "
              f"{rep.wasted_gb_seconds:>10.0f} {rep.breaker_transitions:>4} "
              f"{rep.brownout_max_level:>8}")

    print("\nUnder overload, saying no is the kindest answer: shedding the"
          "\nexcess keeps every admitted request inside its SLO window, the"
          "\nbreakers stop billing crash-loops, and the survivors end up both"
          "\non time and cheaper per completed request.")


if __name__ == "__main__":
    main()
