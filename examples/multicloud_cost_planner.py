#!/usr/bin/env python3
"""Multi-cloud planner: where should a concurrent burst run, and how packed?

Plans the same workload across AWS Lambda, Google Cloud Functions, Azure
Functions, and an on-prem FuncX endpoint (Figs. 18 and 21): ProPack's
scaling model is re-fit per platform (coefficients are platform-specific
but application-independent), the interference model is reused, and the
planner reports the best packed configuration everywhere.

    python examples/multicloud_cost_planner.py
"""

from repro import (
    AWS_LAMBDA,
    AZURE_FUNCTIONS,
    GOOGLE_CLOUD_FUNCTIONS,
    FuncXEndpoint,
    ProPack,
    ServerlessPlatform,
    run_unpacked,
)
from repro.workloads import STATELESS_COST

CONCURRENCY = 2000


def main() -> None:
    app = STATELESS_COST
    print(f"== Planning {app.name} at concurrency {CONCURRENCY} across platforms ==\n")
    print(f"{'platform':<24} {'degree':>6} {'service(s)':>10} {'vs base':>8} "
          f"{'expense($)':>10} {'vs base':>8}")

    platforms = [ServerlessPlatform(p, seed=37)
                 for p in (AWS_LAMBDA, GOOGLE_CLOUD_FUNCTIONS, AZURE_FUNCTIONS)]
    platforms.append(FuncXEndpoint(seed=37).platform)

    rows = []
    for platform in platforms:
        propack = ProPack(platform)
        baseline = run_unpacked(platform, app, CONCURRENCY)
        outcome = propack.run(app, CONCURRENCY)
        service_cut = 1 - outcome.result.service_time() / baseline.service_time()
        expense_cut = 1 - outcome.total_expense_usd / baseline.expense.total_usd
        rows.append((platform.profile.name, outcome, service_cut, expense_cut))
        print(f"{platform.profile.name:<24} {outcome.plan.degree:>6} "
              f"{outcome.result.service_time():>10.1f} {100 * service_cut:>7.1f}% "
              f"{outcome.total_expense_usd:>10.2f} {100 * expense_cut:>7.1f}%")

    fastest = min(rows, key=lambda r: r[1].result.service_time())
    cheapest = min(rows, key=lambda r: r[1].total_expense_usd)
    print(f"\nfastest packed platform:  {fastest[0]} "
          f"({fastest[1].result.service_time():.1f}s)")
    print(f"cheapest packed platform: {cheapest[0]} "
          f"(${cheapest[1].total_expense_usd:.2f})")
    print("\nNote: Google/Azure see larger expense cuts than AWS because their"
          "\nper-GB networking fee shrinks when co-located functions share"
          "\ntransfers (paper Fig. 21); FuncX 'expense' is a node-seconds proxy.")


if __name__ == "__main__":
    main()
