#!/usr/bin/env python3
"""MapReduce Sort end to end: real local execution + cloud-scale planning.

Part 1 actually sorts data: the MapReduce Sort kernel is range-partitioned,
each partition is sorted by a packed worker thread (the paper's Sec. 2.6
packing mechanism), and the reducer concatenates the partitions into a
globally sorted array — verified.

Part 2 plans the same job at cloud scale (2000 mappers) with ProPack and
shows the degree the analytical models choose, against the brute-force
Oracle.

    python examples/sort_pipeline.py
"""

import numpy as np

from repro import AWS_LAMBDA, Oracle, ProPack, ServerlessPlatform
from repro.runtime import PackedExecutor
from repro.workloads import SORT, MapReduceSort


def local_sort_demo() -> None:
    print("== Part 1: really sorting with packed workers ==")
    app = MapReduceSort(partition_size=20_000)
    n_mappers, degree = 12, 4
    tasks = app.make_tasks(n_mappers, seed=11)
    total_records = sum(t.payload.size for t in tasks)

    executor = PackedExecutor(app)
    outcome = executor.run(tasks, packing_degree=degree)
    assert outcome.ok, outcome.errors

    merged = MapReduceSort.reduce([r.value for r in outcome.results])
    assert merged.size == total_records
    assert np.all(merged[:-1] <= merged[1:]), "reducer output must be sorted"

    print(f"  {n_mappers} mappers packed {degree}-per-worker "
          f"({outcome.n_workers} workers)")
    print(f"  {total_records} records globally sorted and verified")
    print(f"  per-worker wall times: "
          f"{', '.join(f'{t * 1000:.0f}ms' for t in outcome.worker_elapsed_s)}\n")


def cloud_plan_demo() -> None:
    print("== Part 2: planning the same job at cloud scale ==")
    concurrency = 2000
    platform = ServerlessPlatform(AWS_LAMBDA, seed=3)
    propack = ProPack(platform)

    plan, _ = propack.plan(SORT, concurrency, objective="joint")
    print(f"  ProPack chose packing degree {plan.degree} "
          f"({plan.n_instances} instances for {concurrency} mappers)")
    print(f"  predicted: {plan.predicted_service_s:.0f}s service, "
          f"${plan.predicted_expense_usd:.2f}")

    sweep = Oracle(platform).sweep(SORT, concurrency)
    oracle = sweep.best_degree("joint")
    measured = sweep.results[oracle]
    print(f"  Oracle (exhaustive search over {len(sweep.results)} degrees): "
          f"degree {oracle}, {measured.service_time():.0f}s, "
          f"${measured.expense.total_usd:.2f}")
    print(f"  ProPack ran {len(sweep.results)} fewer full-scale bursts to get there.")


if __name__ == "__main__":
    local_sort_demo()
    cloud_plan_demo()
