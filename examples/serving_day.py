#!/usr/bin/env python3
"""A simulated day of sustained service (extension beyond the paper).

The paper's evaluation is one-shot bursts; this example drives the same
packing stack through a *diurnal day* of continuous traffic (compressed to
40 simulated minutes so it runs in seconds). It crosses two levers the
``repro.serving`` package adds:

* **keep-alive policy** — evict idle instances immediately (every dispatch
  is a cold start) vs the Azure-style hybrid histogram that learns how
  long reuses take to come back,
* **planning mode** — one static ``(degree, timeout)`` policy planned for
  the average rate vs an online replanner that re-fits the arrival rate
  and re-runs the planner as the day ramps up and down.

    python examples/serving_day.py
"""

from repro import AWS_LAMBDA, ProPack, ServerlessPlatform
from repro.extensions.streaming import StreamingPlanner
from repro.serving import (
    DiurnalProcess,
    HybridHistogram,
    NoKeepAlive,
    OnlineReplanner,
    ServingSimulator,
    WarmPool,
)
from repro.workloads import XAPIAN

HORIZON_S = 2400.0      # one compressed "day"
BASE_RATE = 1.5         # requests/s averaged over the day
QOS_S = 30.0            # per-request sojourn SLO


def main() -> None:
    platform = ServerlessPlatform(AWS_LAMBDA, seed=53)
    exec_model = ProPack(platform).exec_model(XAPIAN)
    process = DiurnalProcess(BASE_RATE, amplitude=0.7, period_s=HORIZON_S)
    static_policy = StreamingPlanner(AWS_LAMBDA, XAPIAN, exec_model).plan(
        arrival_rate_per_s=BASE_RATE, qos_sojourn_s=QOS_S
    )

    print(f"== A diurnal day of {XAPIAN.name} "
          f"(avg {BASE_RATE}/s, p99 SLO {QOS_S:.0f}s) ==\n")
    print(f"static plan at the average rate: degree={static_policy.degree}, "
          f"timeout={static_policy.batch_timeout_s:.1f}s\n")
    print(f"{'keep-alive':<17} {'mode':<7} {'cold%':>6} {'$/1k req':>9} "
          f"{'p99(s)':>7} {'SLO viol%':>9} {'replans':>7}")
    for make_policy in (NoKeepAlive, HybridHistogram):
        for mode in ("static", "replan"):
            controller = (
                OnlineReplanner(AWS_LAMBDA, XAPIAN, exec_model, QOS_S)
                if mode == "replan"
                else None
            )
            simulator = ServingSimulator(
                AWS_LAMBDA, XAPIAN, exec_model,
                pool=WarmPool(make_policy()),
                controller=controller,
                seed=53,
            )
            run = simulator.run(process, static_policy, HORIZON_S)
            print(f"{run.policy_name:<17} {mode:<7} "
                  f"{100 * run.cold_start_fraction:>6.1f} "
                  f"{1000 * run.cost_per_request_usd():>9.4f} "
                  f"{run.p99_sojourn_s:>7.1f} "
                  f"{100 * run.slo_violation_fraction:>9.1f} "
                  f"{run.policy_changes:>7}")

    print("\nKeeping instances warm turns almost every dispatch into a warm"
          "\nstart: the idle keep-alive charge is cheaper than re-billing the"
          "\ninitialization on every cold dispatch, so the hybrid histogram"
          "\nwins on BOTH cold-start fraction and cost per request.")


if __name__ == "__main__":
    main()
