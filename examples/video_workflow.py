#!/usr/bin/env python3
"""A multi-stage serverless workflow, packed per stage.

The paper's intro motivates packing with applications "broken down into
multiple steps, where each of the steps is processed in parallel by a large
number of serverless functions". This example builds such a pipeline —

    split ─→ encode (4000-way Video) ─┐
        └──→ index (2500-way search) ─┴─→ merge (Sort)

— and runs it twice: unpacked (the traditional deployment) and with
ProPack planning every stage's packing degree. Interference profiles are
cached per application and the platform's scaling model is shared across
stages, so profiling overhead is paid once per app.

    python examples/video_workflow.py
"""

from repro import AWS_LAMBDA, ProPack, ServerlessPlatform
from repro.workflows import Stage, WorkflowGraph, WorkflowRunner
from repro.workloads import SORT, STATELESS_COST, VIDEO, XAPIAN


def build_pipeline() -> WorkflowGraph:
    return WorkflowGraph([
        Stage("split", STATELESS_COST, 1000),
        Stage("encode", VIDEO, 4000, depends_on=("split",)),
        Stage("index", XAPIAN, 2500, depends_on=("split",)),
        Stage("merge", SORT, 1000, depends_on=("encode", "index")),
    ])


def describe(label: str, result) -> None:
    print(f"{label}:")
    for name, outcome in result.outcomes.items():
        print(f"  {name:<8} C={outcome.stage.concurrency:<5} "
              f"degree={outcome.packing_degree:<3} "
              f"[{outcome.start_s:8.1f}s → {outcome.end_s:8.1f}s]")
    print(f"  makespan {result.makespan_s:9.1f} s   "
          f"expense ${result.expense_usd:.2f}   "
          f"critical path: {' → '.join(result.critical_path())}\n")


def main() -> None:
    platform = ServerlessPlatform(AWS_LAMBDA, seed=43)
    pipeline = build_pipeline()

    unpacked = WorkflowRunner(platform).run(pipeline)
    describe("unpacked (traditional)", unpacked)

    propack = ProPack(platform)
    packed = WorkflowRunner(platform, propack=propack).run(pipeline)
    describe("propack (per-stage packing)", packed)

    print(f"workflow makespan improvement: "
          f"{100 * (1 - packed.makespan_s / unpacked.makespan_s):.1f}%")
    print(f"workflow expense improvement:  "
          f"{100 * (1 - packed.expense_usd / unpacked.expense_usd):.1f}% "
          f"(including ${packed.profiling_overhead_usd:.2f} one-time profiling)")

    # Deadline planning: cheapest degrees that still meet an end-to-end
    # deadline — speed is bought only on the critical path.
    from repro.workflows import DeadlinePlanner

    planner = DeadlinePlanner(propack)
    relaxed = planner.plan(pipeline, deadline_s=100_000.0)
    deadline = relaxed.predicted_makespan_s * 0.75
    plan = planner.plan(pipeline, deadline)
    realized = WorkflowRunner(platform).run(pipeline, degrees=plan.degrees)
    print(f"\ndeadline planning: {deadline:.0f}s budget -> degrees "
          f"{plan.degrees} (critical path: {' → '.join(plan.critical_path)})")
    print(f"  predicted {plan.predicted_makespan_s:.0f}s / "
          f"${plan.predicted_expense_usd:.2f}; realized "
          f"{realized.makespan_s:.0f}s "
          f"({'met' if realized.makespan_s <= deadline else 'MISSED'}) / "
          f"${realized.expense_usd:.2f}")


if __name__ == "__main__":
    main()
