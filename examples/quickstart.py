#!/usr/bin/env python3
"""Quickstart: pack a 5000-way concurrent burst and compare to no packing.

Runs ProPack end to end on the simulated AWS Lambda platform:
profile the app → fit the models → pick the optimal packing degree →
execute → compare service time and expense against the traditional
one-function-per-instance deployment.

    python examples/quickstart.py
"""

from repro import AWS_LAMBDA, ProPack, ServerlessPlatform, run_unpacked
from repro.workloads import VIDEO

CONCURRENCY = 5000


def main() -> None:
    platform = ServerlessPlatform(AWS_LAMBDA, seed=7)
    propack = ProPack(platform)

    print(f"== ProPack quickstart: {VIDEO.name}, concurrency {CONCURRENCY} ==\n")

    # The traditional deployment: one function per instance.
    baseline = run_unpacked(platform, VIDEO, CONCURRENCY)
    print("baseline (packing degree 1):")
    print(f"  scaling time   {baseline.scaling_time:9.1f} s "
          f"({100 * baseline.scaling_time / baseline.service_time():.0f}% of service time)")
    print(f"  service time   {baseline.service_time():9.1f} s")
    print(f"  expense        {baseline.expense.total_usd:9.2f} $\n")

    # ProPack: profile, fit, optimize, execute.
    outcome = propack.run(VIDEO, CONCURRENCY, objective="joint")
    plan = outcome.plan
    print(f"propack (packing degree {plan.degree}, objective={plan.objective}):")
    print(f"  instances      {plan.n_instances:9d}  (effective concurrency)")
    print(f"  predicted      {plan.predicted_service_s:9.1f} s service, "
          f"{plan.predicted_expense_usd:.2f} $")
    print(f"  scaling time   {outcome.result.scaling_time:9.1f} s")
    print(f"  service time   {outcome.result.service_time():9.1f} s")
    print(f"  expense        {outcome.result.expense.total_usd:9.2f} $ "
          f"(+ {outcome.overhead_usd:.2f} $ one-time profiling overhead)\n")

    service_cut = 1 - outcome.result.service_time() / baseline.service_time()
    expense_cut = 1 - outcome.total_expense_usd / baseline.expense.total_usd
    print(f"service time improvement: {100 * service_cut:.1f}%  (paper: ~85% at C=5000)")
    print(f"expense improvement:      {100 * expense_cut:.1f}%  (paper: ~66% at C=5000)")

    # The validated models (Sec. 2.4): both must pass the chi-square test.
    gof = propack.validate_models(VIDEO, 1000)
    print(f"\nmodel validation (chi-square, critical 4.075): "
          f"service={gof['service'].statistic:.3f}, "
          f"expense={gof['expense'].statistic:.4f} -> "
          f"{'accepted' if gof['service'].accepted and gof['expense'].accepted else 'REJECTED'}")


if __name__ == "__main__":
    main()
