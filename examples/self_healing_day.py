#!/usr/bin/env python3
"""A self-healing serving day under a domain-poisoning storm (extension).

A stormy fault scenario — correlated crash bursts where half the crashes
leave their fault domain persistently poisoned — hits a service running a
generous day-one config (wide admission, lazy breakers, nobody watching).
The same traffic and the same fault seed are served twice:

* **loop off** — the day-one config rides out the storm unattended;
* **loop on** — the closed-loop auto-remediation control plane watches the
  run from inside sim time: detectors flag SLO burn, breaker flapping,
  backlog growth, and poisoned domains; proposers map detections to typed
  actions; every candidate is first replayed in a short cloned shadow
  simulation (seeded from the live run, consuming none of its draws); only
  shadow-verified winners apply, with cooldowns and automatic rollback if
  the live run regresses afterwards.

The punchline: the loop quarantines sick domains while they are sick,
re-admits them once they heal, and tightens admission when the backlog
grows — beating the unattended run on windowed P99 attainment at lower
cost per completed request, with no operator in the loop.

    python examples/self_healing_day.py [remediation-report.jsonl]

An optional path argument writes the full remediation timeline as JSONL
(one event per line — the same artifact CI uploads).
"""

import sys

import numpy as np

from repro import ProPack, ServerlessPlatform
from repro.extensions.streaming import StreamingPolicy
from repro.faults.retry import ExponentialBackoffRetry
from repro.faults.scenario import FaultScenario
from repro.platform.providers import GOOGLE_CLOUD_FUNCTIONS
from repro.remediation import RemediationConfig, RemediationLoop
from repro.resilience import (
    CircuitBreakerBank,
    ConcurrencyLimitAdmission,
    ResiliencePolicy,
)
from repro.serving import (
    FixedTTL,
    PoissonProcess,
    ServingConfig,
    ServingSimulator,
    WarmPool,
)
from repro.workloads import XAPIAN

HORIZON_S = 2400.0   # one compressed stormy "day"
RATE = 1.2           # sustained arrivals, requests/s
QOS_S = 60.0         # per-request p99 sojourn SLO
SEED = 2023


def main() -> None:
    platform = ServerlessPlatform(GOOGLE_CLOUD_FUNCTIONS, seed=SEED)
    exec_model = ProPack(platform).exec_model(XAPIAN)
    scenario = FaultScenario(
        name="poison-storm",
        crash_rate=0.05,
        correlated_bursts=2,
        correlated_fraction=0.5,
        correlated_window_s=120.0,
        persistent_fraction=0.5,
        poison_heal_s=600.0,
        straggler_rate=0.01,
    )
    serving_cfg = ServingConfig(qos_sojourn_s=QOS_S)
    policy = StreamingPolicy(degree=4, batch_timeout_s=2.0)

    def day_one() -> ResiliencePolicy:
        return ResiliencePolicy(
            admission=ConcurrencyLimitAdmission(limit=64),
            breakers=CircuitBreakerBank(
                n_domains=serving_cfg.fault_domains,
                rng=np.random.default_rng(SEED),
                failure_threshold=5,
                recovery_s=45.0,
            ),
        )

    print(f"== Self-healing day for {XAPIAN.name} on "
          f"{GOOGLE_CLOUD_FUNCTIONS.name} "
          f"({RATE:g}/s for {HORIZON_S:g}s, p99 SLO {QOS_S:.0f}s) ==")
    print(f"fault scenario: {scenario.describe()}\n")
    print(f"{'mode':<10} {'arrivals':>8} {'done':>6} {'shed':>5} "
          f"{'failed':>6} {'attain%':>7} {'$/1k done':>9}")

    report = None
    for mode in ("loop off", "loop on"):
        loop = None
        if mode == "loop on":
            loop = RemediationLoop(RemediationConfig(
                tick_interval_s=60.0, shadow_horizon_s=120.0
            ))
        simulator = ServingSimulator(
            GOOGLE_CLOUD_FUNCTIONS,
            XAPIAN,
            exec_model,
            pool=WarmPool(FixedTTL(120.0)),
            config=serving_cfg,
            resilience=day_one(),
            scenario=scenario,
            retry_policy=ExponentialBackoffRetry(max_retries=3),
            seed=SEED,
            remediation=loop,
        )
        run = simulator.run(PoissonProcess(RATE), policy, HORIZON_S)
        assert run.conserved()
        print(f"{mode:<10} {run.n_requests:>8} {run.n_completed:>6} "
              f"{run.n_shed:>5} {run.n_failed:>6} "
              f"{100 * run.windowed_p99_attainment():>7.1f} "
              f"{1000 * run.cost_per_completed_request_usd():>9.4f}")
        if run.remediation is not None:
            report = run.remediation

    assert report is not None
    print(f"\nremediation loop: {report.summary()}")
    print("\nremediation timeline (applies and rollbacks):")
    for event in report.timeline():
        if event["stage"] == "apply":
            kind, arg = event["action"][0], event["action"][1]
            print(f"  t={event['t']:>7.1f}s  apply     {kind}({arg})")
        elif event["stage"] == "rollback":
            kind, arg = event["rolled_back"][0], event["rolled_back"][1]
            print(f"  t={event['t']:>7.1f}s  rollback  {kind}({arg})")

    if len(sys.argv) > 1:
        path = sys.argv[1]
        with open(path, "w") as fh:
            fh.write(report.to_jsonl())
        print(f"\nwrote remediation report to {path} "
              f"({len(report.timeline())} events)")

    print("\nNobody touched a dial: the loop quarantined poisoned domains"
          "\nwhile they were sick, re-admitted them once the shadow replay"
          "\nshowed them healthy, and every risky change was rehearsed in a"
          "\ncloned simulation before it touched the live run.")


if __name__ == "__main__":
    main()
