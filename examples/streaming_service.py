#!/usr/bin/env python3
"""Packing a sustained request stream (extension beyond the paper).

The paper packs one-shot concurrent bursts; a live search service instead
sees continuous arrivals. Packing still pays — fewer, fuller instances —
but its price changes from interference alone to interference **plus
batching delay**: a request waits for its instance to fill (or a timeout).

This example plans a ``(packing degree, batch timeout)`` policy for a
Xapian-like service at several arrival rates under a p95 sojourn-time QoS,
then validates each plan against the discrete-event stream simulation.

    python examples/streaming_service.py
"""

from repro import AWS_LAMBDA, ProPack, ServerlessPlatform
from repro.extensions.streaming import (
    StreamingDispatcher,
    StreamingPlanner,
    StreamingPolicy,
)
from repro.workloads import XAPIAN

QOS_SOJOURN_S = 25.0
N_REQUESTS = 600


def main() -> None:
    # Fit the interference model the normal ProPack way (once).
    platform = ServerlessPlatform(AWS_LAMBDA, seed=53)
    exec_model = ProPack(platform).exec_model(XAPIAN)
    planner = StreamingPlanner(AWS_LAMBDA, XAPIAN, exec_model)
    dispatcher = StreamingDispatcher(AWS_LAMBDA, XAPIAN, exec_model, seed=53)

    print(f"== Streaming {XAPIAN.name}: p95 sojourn <= {QOS_SOJOURN_S}s ==\n")
    print(f"{'rate(req/s)':>11} {'degree':>6} {'timeout(s)':>10} "
          f"{'p95 sojourn':>11} {'$/1k req':>9} {'vs solo':>8}")
    for rate in (0.5, 2.0, 8.0, 32.0):
        policy = planner.plan(arrival_rate_per_s=rate, qos_sojourn_s=QOS_SOJOURN_S)
        result = dispatcher.run(policy, rate, N_REQUESTS)
        solo = dispatcher.run(
            StreamingPolicy(degree=1, batch_timeout_s=0.0), rate, N_REQUESTS,
            repetition=1,
        )
        cost = result.cost_per_request_usd(AWS_LAMBDA) * 1000
        solo_cost = solo.cost_per_request_usd(AWS_LAMBDA) * 1000
        ok = "ok" if result.p95_sojourn_s <= QOS_SOJOURN_S else "VIOLATED"
        print(f"{rate:>11.1f} {policy.degree:>6} {policy.batch_timeout_s:>10.2f} "
              f"{result.p95_sojourn_s:>9.1f}{ok:>2} {cost:>9.2f} "
              f"{100 * (1 - cost / solo_cost):>7.1f}%")

    print("\nHigher arrival rates fill batches faster, so deeper packing fits"
          "\nunder the same QoS — cost per request falls with traffic.")


if __name__ == "__main__":
    main()
