#!/usr/bin/env python3
"""Operating ProPack over time: drift, re-profiling, and amortization.

The paper notes (Sec. 5) that providers keep improving their control
planes — and that effective provider-side mitigation should *lower* the
optimal packing degree. This example operates an AdaptiveProPack across a
simulated provider upgrade:

1. steady state on today's platform (models fit once, overhead amortizes),
2. the provider ships a 10x faster scheduler — the adaptor's periodic
   scaling probe notices the stale model and re-profiles,
3. the new plan packs less, exactly as the paper predicts.

    python examples/adaptive_operations.py
"""

from repro import AWS_LAMBDA, AdaptiveProPack, ServerlessPlatform, run_campaign
from repro.workloads import SORT


def main() -> None:
    print("== Phase 1: steady state (overhead amortization) ==")
    platform = ServerlessPlatform(AWS_LAMBDA, seed=59)
    report = run_campaign(platform, SORT, 2000, runs=5)
    for n, pct in report.amortization_curve():
        print(f"  after {n} run(s): cumulative expense improvement {pct:5.1f}% "
              f"(profiling = {100 * report.overhead_usd / (sum(report.per_run_packed_usd[:n]) + report.overhead_usd):4.1f}% of spend)")

    print("\n== Phase 2: the provider upgrades its scheduler (10x) ==")
    adaptive = AdaptiveProPack(
        ServerlessPlatform(AWS_LAMBDA, seed=59), probe_every=2
    )
    before = adaptive.run(SORT, 3000)
    print(f"  before upgrade: degree {before.plan.degree}, "
          f"service {before.result.service_time():.0f}s")

    upgraded = AWS_LAMBDA.with_overrides(sched_search_s=AWS_LAMBDA.sched_search_s / 10)
    adaptive.switch_platform(ServerlessPlatform(upgraded, seed=59))
    reprofiles_seen = 0
    for i in range(3):
        outcome = adaptive.run(SORT, 3000)
        marker = ""
        if adaptive.reprofile_count > reprofiles_seen:
            reprofiles_seen = adaptive.reprofile_count
            marker = "  <- probe detected drift, re-profiled"
        print(f"  run {i + 1} after upgrade: degree {outcome.plan.degree}, "
              f"service {outcome.result.service_time():.0f}s, "
              f"prediction error {100 * adaptive.last_error:.1f}%{marker}")

    after = adaptive.run(SORT, 3000)
    print(f"\n  re-profiles triggered: {adaptive.reprofile_count}")
    print(f"  packing degree {before.plan.degree} -> {after.plan.degree} "
          f"(provider-side mitigation lowers the optimal degree — paper Sec. 5)")


if __name__ == "__main__":
    main()
