"""Mechanistic execution-time model for packed functions.

The paper observes (Fig. 4) that the execution time of a function instance
grows with the packing degree in a way that a pure exponential fits with
χ² confidence at the 99.5% level — i.e. on the real platforms each
additional co-located function degrades everyone's throughput by an
approximately *constant multiplicative factor*. That is the signature of
compounding cache/memory-bandwidth pressure rather than simple core
time-slicing (which would produce a piecewise-linear ``max(1, p/cores)``
kink that their χ² test would reject).

We therefore model the slowdown of each function when ``p`` functions are
packed as::

    slowdown(p) = exp(pressure_per_gb * mem_gb * isolation_penalty * (p - 1))

so ``ET(p) = base_seconds * slowdown(p)``, exactly exponential in ``p`` —
and expose an optional ``cpu_sharing`` variant (per-core time slicing on
top) used by the model-family ablation to show what the paper's χ² test
would have rejected.

Concurrency-level effects: providers isolate co-running *instances*
(paper Fig. 5a), so ``concurrency_leak`` defaults to 0; the FuncX profile
uses a small non-zero leak.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.workloads.base import AppSpec


@dataclass(frozen=True)
class InterferenceModel:
    """Execution-time model for an instance packing ``p`` functions."""

    cores: int
    isolation_penalty: float = 1.0
    concurrency_leak: float = 0.0
    cpu_sharing: bool = False

    def slowdown(self, app: AppSpec, packing_degree: int) -> float:
        """Multiplicative execution-time factor at ``packing_degree``."""
        if packing_degree < 1:
            raise ValueError(f"packing degree must be >= 1 (got {packing_degree})")
        rate = app.pressure_per_gb * app.mem_gb * self.isolation_penalty
        factor = math.exp(rate * (packing_degree - 1))
        if self.cpu_sharing and packing_degree > self.cores:
            factor *= packing_degree / self.cores
        return factor

    def execution_seconds(
        self,
        app: AppSpec,
        packing_degree: int,
        concurrency_level: int = 1,
    ) -> float:
        """Noise-free execution time of one instance.

        ``concurrency_level`` is the number of concurrently running
        *instances*; with perfect isolation (the default) it has no effect,
        matching the paper's Fig. 5(a).
        """
        base = app.base_seconds * self.slowdown(app, packing_degree)
        if self.concurrency_leak > 0.0 and concurrency_level > 1:
            base *= 1.0 + self.concurrency_leak * (concurrency_level / 1000.0)
        return base


class PairwiseInterference:
    """Heterogeneous co-residence interference with per-pair affinities.

    The homogeneous model above charges every co-runner the same pressure.
    Real co-residents are not symmetric: a cache-thrashing aggressor hurts
    a compute-bound victim far more than another I/O sleeper would. This
    model generalizes the exponential to depend on *which* apps co-reside::

        ET_v(R) = base_v * exp(isolation * Σ_{(a, n) ∈ R}
                               γ(v, a) * pressure_a * mem_gb_a * (n - [a = v]))

    where ``R`` is the instance's resident multiset (``(app, count)``
    pairs) and ``γ(victim, aggressor)`` is a directional affinity
    multiplier, default 1.0. With every ``γ = 1`` this reduces exactly to
    :class:`~repro.extensions.mixed.MixedInterferenceModel`, and for a
    homogeneous group of ``p`` clones to the paper's Eq. 1 exponent
    ``pressure · mem_gb · (p − 1)`` — so the matrix is a strict
    generalization, not a new model family.

    ``affinity`` maps ``(victim_name, aggressor_name) -> γ``; missing pairs
    default to 1.0. ``γ > 1`` marks hostile pairs (fusing them is
    penalized), ``γ < 1`` marks complementary pairs (e.g. CPU-bound next
    to I/O-bound), ``γ = 0`` perfect isolation from that aggressor.
    """

    def __init__(
        self,
        isolation_penalty: float = 1.0,
        affinity: Optional[Mapping[tuple[str, str], float]] = None,
    ) -> None:
        if isolation_penalty <= 0:
            raise ValueError("isolation penalty must be positive")
        self.isolation_penalty = isolation_penalty
        self.affinity: dict[tuple[str, str], float] = dict(affinity or {})
        for pair, gamma in self.affinity.items():
            if not math.isfinite(gamma) or gamma < 0.0:
                raise ValueError(f"affinity for {pair} must be finite and >= 0")

    def gamma(self, victim: str, aggressor: str) -> float:
        """Directional affinity multiplier (1.0 when unspecified)."""
        return self.affinity.get((victim, aggressor), 1.0)

    def is_neutral(self) -> bool:
        """True when every pair is at the default γ = 1 (homogeneous model)."""
        return all(g == 1.0 for g in self.affinity.values())

    def pressure_on(
        self, victim: AppSpec, residents: Sequence[tuple[AppSpec, int]]
    ) -> float:
        """Affinity-weighted co-runner pressure the victim suffers."""
        total = 0.0
        for app, count in residents:
            if count < 0:
                raise ValueError("resident counts must be non-negative")
            effective = count - (1 if app.name == victim.name else 0)
            if effective <= 0:
                continue
            total += (
                self.gamma(victim.name, app.name)
                * app.pressure_per_gb
                * app.mem_gb
                * effective
            )
        return total

    def member_execution_seconds(
        self, victim: AppSpec, residents: Sequence[tuple[AppSpec, int]]
    ) -> float:
        """ET of one ``victim`` function inside the resident multiset."""
        return victim.base_seconds * math.exp(
            self.isolation_penalty * self.pressure_on(victim, residents)
        )

    def makespan_seconds(self, residents: Sequence[tuple[AppSpec, int]]) -> float:
        """The instance's makespan: its slowest resident."""
        if not residents:
            raise ValueError("an instance needs at least one resident")
        return max(
            self.member_execution_seconds(app, residents)
            for app, count in residents
            if count > 0
        )
