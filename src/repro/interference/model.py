"""Mechanistic execution-time model for packed functions.

The paper observes (Fig. 4) that the execution time of a function instance
grows with the packing degree in a way that a pure exponential fits with
χ² confidence at the 99.5% level — i.e. on the real platforms each
additional co-located function degrades everyone's throughput by an
approximately *constant multiplicative factor*. That is the signature of
compounding cache/memory-bandwidth pressure rather than simple core
time-slicing (which would produce a piecewise-linear ``max(1, p/cores)``
kink that their χ² test would reject).

We therefore model the slowdown of each function when ``p`` functions are
packed as::

    slowdown(p) = exp(pressure_per_gb * mem_gb * isolation_penalty * (p - 1))

so ``ET(p) = base_seconds * slowdown(p)``, exactly exponential in ``p`` —
and expose an optional ``cpu_sharing`` variant (per-core time slicing on
top) used by the model-family ablation to show what the paper's χ² test
would have rejected.

Concurrency-level effects: providers isolate co-running *instances*
(paper Fig. 5a), so ``concurrency_leak`` defaults to 0; the FuncX profile
uses a small non-zero leak.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.workloads.base import AppSpec


@dataclass(frozen=True)
class InterferenceModel:
    """Execution-time model for an instance packing ``p`` functions."""

    cores: int
    isolation_penalty: float = 1.0
    concurrency_leak: float = 0.0
    cpu_sharing: bool = False

    def slowdown(self, app: AppSpec, packing_degree: int) -> float:
        """Multiplicative execution-time factor at ``packing_degree``."""
        if packing_degree < 1:
            raise ValueError(f"packing degree must be >= 1 (got {packing_degree})")
        rate = app.pressure_per_gb * app.mem_gb * self.isolation_penalty
        factor = math.exp(rate * (packing_degree - 1))
        if self.cpu_sharing and packing_degree > self.cores:
            factor *= packing_degree / self.cores
        return factor

    def execution_seconds(
        self,
        app: AppSpec,
        packing_degree: int,
        concurrency_level: int = 1,
    ) -> float:
        """Noise-free execution time of one instance.

        ``concurrency_level`` is the number of concurrently running
        *instances*; with perfect isolation (the default) it has no effect,
        matching the paper's Fig. 5(a).
        """
        base = app.base_seconds * self.slowdown(app, packing_degree)
        if self.concurrency_leak > 0.0 and concurrency_level > 1:
            base *= 1.0 + self.concurrency_leak * (concurrency_level / 1000.0)
        return base
