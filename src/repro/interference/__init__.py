"""Co-runner interference model inside one function instance."""

from repro.interference.model import InterferenceModel

__all__ = ["InterferenceModel"]
