"""Map Reduce Sort (Sort) — distributed sorting.

Mirrors the paper's Sort benchmark [58]: a mapper splits the input into
arrays, each sorted by a separate serverless function, with results merged
to shared storage. The local kernel really sorts: each task receives a
partition, sorts it, and returns the sorted data plus its boundary keys so
a reducer can concatenate partitions into a globally sorted sequence (the
range-partitioned TeraSort pattern).

Spec calibration: 682 MB per function → the paper's maximum packing degree
of 15; the lowest interference coefficient of the three motivation apps
(sorting at this scale is memory/I-O bound and co-runners overlap well);
mostly *private* I/O (each function moves its own partition).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.workloads.base import AppSpec, ExecutableApp, Task

SORT = AppSpec(
    name="sort",
    base_seconds=93.0,
    mem_mb=682,
    io_mb=200.0,
    io_shared_fraction=0.95,
    pressure_per_gb=0.135,
    description="Hadoop-style MapReduce sort: range-partitioned parallel sorting",
)


class MapReduceSort(ExecutableApp):
    """Executable miniature of the Sort workload."""

    spec = SORT

    def __init__(self, partition_size: int = 50_000) -> None:
        self.partition_size = partition_size

    def make_tasks(self, n: int, seed: int = 0) -> Sequence[Task]:
        """Range-partition a random dataset into ``n`` mapper outputs."""
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2**32, size=n * self.partition_size, dtype=np.uint64)
        edges = np.linspace(0, 2**32, n + 1)
        tasks = []
        for i in range(n):
            partition = data[(data >= edges[i]) & (data < edges[i + 1])]
            tasks.append(Task(self.spec.name, i, partition))
        return tasks

    def run_task(self, task: Task) -> dict[str, Any]:
        partition = np.sort(task.payload, kind="stable")
        return {
            "sorted": partition,
            "lo": int(partition[0]) if partition.size else None,
            "hi": int(partition[-1]) if partition.size else None,
            "count": int(partition.size),
        }

    def validate_result(self, task: Task, value: Any) -> bool:
        arr = value["sorted"]
        return bool(np.all(arr[:-1] <= arr[1:])) and value["count"] == task.payload.size

    @staticmethod
    def reduce(results: Sequence[dict[str, Any]]) -> np.ndarray:
        """Concatenate range-partitioned sorted outputs (the reducer)."""
        ordered = sorted(
            (r for r in results if r["count"] > 0), key=lambda r: r["lo"]
        )
        merged = np.concatenate([r["sorted"] for r in ordered]) if ordered else np.array([])
        if merged.size and not np.all(merged[:-1] <= merged[1:]):
            raise AssertionError("reducer produced an unsorted sequence")
        return merged
