"""Parametrized synthetic workload.

Used by property-based tests and ablations to explore the (base time,
memory, interference) space beyond the five paper benchmarks. The kernel
burns a configurable number of FLOPs over a configurable working set, so
the spec's knobs map directly onto execution behaviour.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.workloads.base import AppSpec, ExecutableApp, Task


def make_synthetic(
    name: str = "synthetic",
    base_seconds: float = 60.0,
    mem_mb: int = 512,
    io_mb: float = 20.0,
    io_shared_fraction: float = 0.5,
    pressure_per_gb: float = 0.1,
) -> AppSpec:
    """An :class:`AppSpec` with explicit knobs (defaults are mid-range)."""
    return AppSpec(
        name=name,
        base_seconds=base_seconds,
        mem_mb=mem_mb,
        io_mb=io_mb,
        io_shared_fraction=io_shared_fraction,
        pressure_per_gb=pressure_per_gb,
        description="synthetic parametrized workload",
    )


class SyntheticApp(ExecutableApp):
    """A runnable synthetic kernel: repeated FMA sweeps over a working set."""

    def __init__(self, spec: AppSpec | None = None, working_set: int = 4096,
                 sweeps: int = 8) -> None:
        self.spec = spec or make_synthetic()
        self.working_set = working_set
        self.sweeps = sweeps

    def make_tasks(self, n: int, seed: int = 0) -> Sequence[Task]:
        rng = np.random.default_rng(seed)
        return [
            Task(self.spec.name, i, rng.random(self.working_set))
            for i in range(n)
        ]

    def run_task(self, task: Task) -> dict[str, Any]:
        data = task.payload.copy()
        acc = 0.0
        for sweep in range(self.sweeps):
            data = data * 1.000001 + 0.000001
            acc += float(data.sum())
        return {"checksum": acc, "sweeps": self.sweeps}

    def validate_result(self, task: Task, value: Any) -> bool:
        return np.isfinite(value["checksum"]) and value["sweeps"] == self.sweeps
