"""Application specification consumed by the simulator and the runtime.

The simulator never executes application code at cloud scale — it consumes
an :class:`AppSpec` resource profile. The local runtime and the examples
*do* execute the kernels, through the :class:`Task` protocol implemented by
each concrete workload.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Sequence


@dataclass(frozen=True)
class AppSpec:
    """Resource profile of one serverless application.

    ``pressure_per_gb`` is the application's interference coefficient: the
    per-co-runner multiplicative execution-time growth per GB of co-runner
    memory footprint (the mechanistic counterpart of the paper's ``α``;
    compute-bound apps like Smith-Waterman have larger values, I/O-heavy
    apps smaller ones).

    ``runtime_tag`` names the language runtime the function needs inside
    its container; platform-side fusion (``repro.fusion``) only co-locates
    functions whose tags match unless cross-runtime fusion is explicitly
    allowed.
    """

    name: str
    base_seconds: float          # single-function execution time, isolated
    mem_mb: int                  # per-function peak memory (M_func)
    io_mb: float                 # per-function S3 traffic (in + out)
    io_shared_fraction: float    # fraction of I/O shareable by co-located fns
    pressure_per_gb: float       # interference coefficient (see above)
    code_mb: float = 8.0
    runtime_mb: float = 60.0
    dependencies_mb: float = 80.0
    description: str = ""
    runtime_tag: str = "python"  # language runtime compatibility tag

    def __post_init__(self) -> None:
        if self.base_seconds <= 0:
            raise ValueError(f"{self.name}: base_seconds must be positive")
        if self.mem_mb <= 0:
            raise ValueError(f"{self.name}: mem_mb must be positive")
        if not 0.0 <= self.io_shared_fraction <= 1.0:
            raise ValueError(f"{self.name}: io_shared_fraction must be in [0, 1]")
        if self.pressure_per_gb < 0:
            raise ValueError(f"{self.name}: pressure_per_gb must be non-negative")
        if not self.runtime_tag:
            raise ValueError(f"{self.name}: runtime_tag must be non-empty")

    def max_packing_degree(self, platform_memory_mb: int) -> int:
        """``P_max = M_platform / M_func`` (paper Sec. 2.1), at least 1."""
        return max(1, platform_memory_mb // self.mem_mb)

    @property
    def mem_gb(self) -> float:
        return self.mem_mb / 1024.0


@dataclass(frozen=True)
class Task:
    """One serverless function invocation: the app, its input, an id."""

    app_name: str
    task_id: int
    payload: Any


@dataclass(frozen=True)
class TaskResult:
    """Output of one executed task (local runtime only)."""

    task_id: int
    value: Any
    elapsed_s: float


class ExecutableApp(abc.ABC):
    """A workload that can actually run: spec + kernel.

    Concrete apps generate their own inputs (``make_tasks``) and execute one
    task (``run_task``); the local packing runtime threads these through a
    shared worker.
    """

    spec: AppSpec

    @abc.abstractmethod
    def make_tasks(self, n: int, seed: int = 0) -> Sequence[Task]:
        """Generate ``n`` realistic task inputs."""

    @abc.abstractmethod
    def run_task(self, task: Task) -> Any:
        """Execute one task's kernel and return its output."""

    def validate_result(self, task: Task, value: Any) -> bool:
        """Optional correctness check used by runtime tests."""
        return value is not None
