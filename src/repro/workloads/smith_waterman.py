"""Smith-Waterman — parallel protein sequence alignment.

Mirrors the paper's bioinformatics HPC benchmark [7, 19, 67, 68]: a large
number of independent local alignments of query sequences against reference
sequences. The local kernel is a real Smith-Waterman implementation with
linear gap penalty, vectorized along anti-diagonals (the standard
wavefront parallelization), with traceback for the optimal local alignment.

Spec calibration: 292 MB per function → the paper's maximum packing degree
of 35; the *highest* interference coefficient here because the DP kernel is
compute-intensive — which is why the paper's Oracle packing degree for
Smith-Waterman stays far below its maximum (Fig. 17 discussion).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.workloads.base import AppSpec, ExecutableApp, Task

SMITH_WATERMAN = AppSpec(
    name="smith-waterman",
    base_seconds=110.0,
    mem_mb=292,
    io_mb=60.0,
    io_shared_fraction=0.97,  # co-located functions share the reference DB
    pressure_per_gb=0.34,
    description="Smith-Waterman local alignment of protein sequences",
)

_ALPHABET = np.frombuffer(b"ACDEFGHIKLMNPQRSTVWY", dtype=np.uint8)


def sw_score_matrix(
    query: np.ndarray,
    reference: np.ndarray,
    match: int = 3,
    mismatch: int = -2,
    gap: int = -3,
) -> np.ndarray:
    """Full Smith-Waterman DP matrix, vectorized along anti-diagonals.

    ``H[i, j]`` is the best local-alignment score ending at query position
    ``i`` / reference position ``j`` (1-based; row/col 0 are zeros).
    """
    m, n = len(query), len(reference)
    if m == 0 or n == 0:
        raise ValueError("sequences must be non-empty")
    h = np.zeros((m + 1, n + 1), dtype=np.int32)
    sub = np.where(query[:, None] == reference[None, :], match, mismatch).astype(
        np.int32
    )
    # Anti-diagonal d contains cells (i, j) with i + j == d.
    for d in range(2, m + n + 1):
        i_lo = max(1, d - n)
        i_hi = min(m, d - 1)
        if i_lo > i_hi:
            continue
        i = np.arange(i_lo, i_hi + 1)
        j = d - i
        diag = h[i - 1, j - 1] + sub[i - 1, j - 1]
        up = h[i - 1, j] + gap
        left = h[i, j - 1] + gap
        h[i, j] = np.maximum(0, np.maximum(diag, np.maximum(up, left)))
    return h


def sw_traceback(
    h: np.ndarray,
    query: np.ndarray,
    reference: np.ndarray,
    match: int = 3,
    mismatch: int = -2,
    gap: int = -3,
) -> tuple[str, str, int]:
    """Recover one optimal local alignment from a filled DP matrix."""
    i, j = np.unravel_index(int(np.argmax(h)), h.shape)
    best = int(h[i, j])
    q_out: list[str] = []
    r_out: list[str] = []
    while i > 0 and j > 0 and h[i, j] > 0:
        score = h[i, j]
        sub = match if query[i - 1] == reference[j - 1] else mismatch
        if score == h[i - 1, j - 1] + sub:
            q_out.append(chr(query[i - 1]))
            r_out.append(chr(reference[j - 1]))
            i, j = i - 1, j - 1
        elif score == h[i - 1, j] + gap:
            q_out.append(chr(query[i - 1]))
            r_out.append("-")
            i -= 1
        else:
            q_out.append("-")
            r_out.append(chr(reference[j - 1]))
            j -= 1
    return "".join(reversed(q_out)), "".join(reversed(r_out)), best


def gotoh_affine_score(
    query: np.ndarray,
    reference: np.ndarray,
    match: int = 3,
    mismatch: int = -2,
    gap_open: int = -5,
    gap_extend: int = -1,
) -> int:
    """Best local-alignment score under affine gap penalties (Gotoh).

    Three-matrix recurrence, vectorized along anti-diagonals like the
    linear-gap kernel: ``H`` (match/mismatch end), ``E`` (gap in the
    reference), ``F`` (gap in the query). Affine penalties
    (``gap_open`` to start, ``gap_extend`` to continue) model biological
    indels better than the linear kernel and are the standard used by
    production aligners.
    """
    m, n = len(query), len(reference)
    if m == 0 or n == 0:
        raise ValueError("sequences must be non-empty")
    neg = np.int32(-(10**8))
    h = np.zeros((m + 1, n + 1), dtype=np.int32)
    e = np.full((m + 1, n + 1), neg, dtype=np.int32)
    f = np.full((m + 1, n + 1), neg, dtype=np.int32)
    sub = np.where(query[:, None] == reference[None, :], match, mismatch).astype(
        np.int32
    )
    for d in range(2, m + n + 1):
        i_lo = max(1, d - n)
        i_hi = min(m, d - 1)
        if i_lo > i_hi:
            continue
        i = np.arange(i_lo, i_hi + 1)
        j = d - i
        e[i, j] = np.maximum(e[i, j - 1] + gap_extend, h[i, j - 1] + gap_open)
        f[i, j] = np.maximum(f[i - 1, j] + gap_extend, h[i - 1, j] + gap_open)
        diag = h[i - 1, j - 1] + sub[i - 1, j - 1]
        h[i, j] = np.maximum(0, np.maximum(diag, np.maximum(e[i, j], f[i, j])))
    return int(h.max())


class SmithWaterman(ExecutableApp):
    """Executable Smith-Waterman workload: one alignment per task."""

    spec = SMITH_WATERMAN

    def __init__(
        self,
        query_len: int = 120,
        reference_len: int = 360,
        affine_gaps: bool = False,
    ) -> None:
        self.query_len = query_len
        self.reference_len = reference_len
        self.affine_gaps = affine_gaps

    def make_tasks(self, n: int, seed: int = 0) -> Sequence[Task]:
        rng = np.random.default_rng(seed)
        tasks = []
        for i in range(n):
            reference = rng.choice(_ALPHABET, size=self.reference_len)
            # Embed a mutated copy of the query so alignments are meaningful.
            query = rng.choice(_ALPHABET, size=self.query_len)
            start = int(rng.integers(0, self.reference_len - self.query_len))
            segment = query.copy()
            flips = rng.random(self.query_len) < 0.15
            segment[flips] = rng.choice(_ALPHABET, size=int(flips.sum()))
            reference[start : start + self.query_len] = segment
            tasks.append(Task(self.spec.name, i, (query, reference)))
        return tasks

    def run_task(self, task: Task) -> dict[str, Any]:
        query, reference = task.payload
        h = sw_score_matrix(query, reference)
        aligned_q, aligned_r, score = sw_traceback(h, query, reference)
        result = {"score": score, "query": aligned_q, "reference": aligned_r}
        if self.affine_gaps:
            result["affine_score"] = gotoh_affine_score(query, reference)
        return result

    def validate_result(self, task: Task, value: Any) -> bool:
        # The embedded (mutated) copy guarantees a strong alignment.
        return value["score"] > 0 and len(value["query"]) == len(value["reference"])
