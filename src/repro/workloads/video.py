"""Thousand Island Scanner (Video) — distributed video processing.

Mirrors the paper's Video benchmark [60]: chunks of a video are encoded and
classified by a DNN (MXNET in the paper). The local kernel is a miniature
but real pipeline: per-frame 2-D convolution (the DNN-ish stage), block
quantization (the encode stage), and a classification reduction.

Spec calibration: 256 MB per function → the paper's maximum packing degree
of 40 on a 10 GB instance; mid-range interference (the DNN stage is
compute-heavy, the I/O stage overlaps well); large shareable I/O fraction
because co-located functions reuse the same model weights and source video
segments.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np
from scipy import signal

from repro.workloads.base import AppSpec, ExecutableApp, Task

VIDEO = AppSpec(
    name="video",
    base_seconds=95.0,
    mem_mb=256,
    io_mb=150.0,
    io_shared_fraction=0.96,
    pressure_per_gb=0.20,
    description="Thousand Island Scanner: parallel video encode + DNN classify",
)

_KERNEL = np.array(
    [[1.0, 2.0, 1.0], [2.0, 4.0, 2.0], [1.0, 2.0, 1.0]], dtype=np.float32
) / 16.0


class TinyMLP:
    """A small fixed-weight MLP classifier head (the MXNET-DNN stand-in).

    Weights are drawn once from a seeded generator, so the classifier is a
    real deterministic network: dense → ReLU → dense → softmax.
    """

    def __init__(
        self, in_features: int, hidden: int = 32, classes: int = 8, seed: int = 2023
    ) -> None:
        rng = np.random.default_rng(seed)
        self.w1 = rng.normal(0.0, np.sqrt(2.0 / in_features), (in_features, hidden)).astype(np.float32)
        self.b1 = np.zeros(hidden, dtype=np.float32)
        self.w2 = rng.normal(0.0, np.sqrt(2.0 / hidden), (hidden, classes)).astype(np.float32)
        self.b2 = np.zeros(classes, dtype=np.float32)

    def forward(self, features: np.ndarray) -> np.ndarray:
        hidden = np.maximum(0.0, features @ self.w1 + self.b1)
        logits = hidden @ self.w2 + self.b2
        shifted = logits - logits.max()
        exp = np.exp(shifted)
        return exp / exp.sum()


class ThousandIslandScanner(ExecutableApp):
    """Executable miniature of the Video workload."""

    spec = VIDEO

    def __init__(self, frames_per_chunk: int = 4, frame_size: int = 48) -> None:
        if frame_size % 4 != 0:
            raise ValueError("frame_size must be a multiple of 4 (4x4 pooling)")
        self.frames_per_chunk = frames_per_chunk
        self.frame_size = frame_size
        self.classifier = TinyMLP(in_features=(frame_size // 4) ** 2)

    def make_tasks(self, n: int, seed: int = 0) -> Sequence[Task]:
        rng = np.random.default_rng(seed)
        tasks = []
        for i in range(n):
            chunk = rng.random(
                (self.frames_per_chunk, self.frame_size, self.frame_size),
                dtype=np.float32,
            )
            tasks.append(Task(self.spec.name, i, chunk))
        return tasks

    def run_task(self, task: Task) -> dict[str, Any]:
        chunk = task.payload
        # "DNN" stage: smoothing convolution per frame + feature pooling.
        features = []
        for frame in chunk:
            conv = signal.convolve2d(frame, _KERNEL, mode="same", boundary="symm")
            pooled = conv.reshape(
                conv.shape[0] // 4, 4, conv.shape[1] // 4, 4
            ).mean(axis=(1, 3))
            features.append(pooled)
        stacked = np.stack(features)
        # "Encode" stage: block quantization + inter-frame differencing.
        quantized = np.round(stacked * 32.0) / 32.0
        residuals = np.diff(quantized, axis=0)
        # "Classify" stage: MLP over the time-pooled feature map.
        flat = quantized.mean(axis=0).ravel().astype(np.float32)
        probabilities = self.classifier.forward(flat)
        label = int(np.argmax(probabilities))
        return {
            "label": label,
            "confidence": float(probabilities[label]),
            "bitrate_proxy": float(np.abs(residuals).mean()),
            "frames": int(chunk.shape[0]),
        }

    def validate_result(self, task: Task, value: Any) -> bool:
        return (
            isinstance(value, dict)
            and 0 <= value["label"] < 8
            and 0.0 < value["confidence"] <= 1.0
            and value["frames"] == task.payload.shape[0]
        )
