"""Xapian — latency-critical search.

Mirrors the paper's Xapian benchmark [32, 36]: a search engine serving
queries over Wikipedia pages, with a strict QoS bound on tail (95th
percentile) latency. The local kernel is a real TF-IDF inverted-index
search over a synthetic corpus: documents are generated from a Zipfian
vocabulary, indexed once, and each task scores one query against the index.

Spec calibration: short base execution (latency-critical), small memory,
almost fully shareable I/O (co-located queries hit the same index shards).
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.workloads.base import AppSpec, ExecutableApp, Task

XAPIAN = AppSpec(
    name="xapian",
    base_seconds=12.0,
    mem_mb=160,
    io_mb=10.0,
    io_shared_fraction=0.97,
    pressure_per_gb=0.192,
    description="Xapian: latency-critical search with QoS-bounded tail latency",
)


class InvertedIndex:
    """BM25 inverted index over a token-id corpus.

    Okapi BM25 is what the real Xapian engine scores with; ``k1``/``b``
    carry their standard meanings (term-frequency saturation and document
    length normalization).
    """

    def __init__(
        self,
        documents: list[np.ndarray],
        vocab_size: int,
        k1: float = 1.2,
        b: float = 0.75,
    ) -> None:
        self.n_docs = len(documents)
        self.vocab_size = vocab_size
        self.k1 = k1
        self.b = b
        self.postings: dict[int, list[tuple[int, int]]] = {}
        self.doc_lengths = np.array([len(d) for d in documents], dtype=float)
        self.avg_doc_length = float(self.doc_lengths.mean())
        for doc_id, doc in enumerate(documents):
            tokens, counts = np.unique(doc, return_counts=True)
            for token, count in zip(tokens.tolist(), counts.tolist()):
                self.postings.setdefault(token, []).append((doc_id, count))

    def idf(self, token: int) -> float:
        """BM25 idf, smoothed so it stays non-negative."""
        df = len(self.postings.get(token, ()))
        if df == 0:
            return 0.0
        return math.log(1.0 + (self.n_docs - df + 0.5) / (df + 0.5))

    def search(self, query: np.ndarray, top_k: int = 10) -> list[tuple[int, float]]:
        """BM25-scored top-k documents for a token-id query."""
        scores = np.zeros(self.n_docs)
        for token in np.unique(query).tolist():
            idf = self.idf(token)
            if idf == 0.0:
                continue
            for doc_id, tf in self.postings.get(token, ()):
                norm = self.k1 * (
                    1.0
                    - self.b
                    + self.b * self.doc_lengths[doc_id] / self.avg_doc_length
                )
                scores[doc_id] += idf * (tf * (self.k1 + 1.0)) / (tf + norm)
        top = np.argsort(-scores)[:top_k]
        return [(int(d), float(scores[d])) for d in top if scores[d] > 0.0]


class XapianSearch(ExecutableApp):
    """Executable miniature of the Xapian workload."""

    spec = XAPIAN

    def __init__(
        self,
        n_docs: int = 400,
        doc_len: int = 200,
        vocab_size: int = 2000,
        corpus_seed: int = 7,
    ) -> None:
        rng = np.random.default_rng(corpus_seed)
        # Zipf-ish vocabulary: rank r has probability ∝ 1/(r+1).
        ranks = np.arange(vocab_size, dtype=float)
        probs = 1.0 / (ranks + 1.0)
        probs /= probs.sum()
        documents = [
            rng.choice(vocab_size, size=doc_len, p=probs) for _ in range(n_docs)
        ]
        self.vocab_size = vocab_size
        self._probs = probs
        self.index = InvertedIndex(documents, vocab_size)

    def make_tasks(self, n: int, seed: int = 0) -> Sequence[Task]:
        rng = np.random.default_rng(seed)
        return [
            Task(
                self.spec.name,
                i,
                rng.choice(self.vocab_size, size=int(rng.integers(2, 6)), p=self._probs),
            )
            for i in range(n)
        ]

    def run_task(self, task: Task) -> dict[str, Any]:
        hits = self.index.search(task.payload)
        return {"hits": hits, "n_hits": len(hits)}

    def validate_result(self, task: Task, value: Any) -> bool:
        scores = [s for _, s in value["hits"]]
        return scores == sorted(scores, reverse=True)
