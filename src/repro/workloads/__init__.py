"""Benchmark applications.

Each application mirrors one of the paper's evaluation workloads. An app is
two things:

1. an :class:`~repro.workloads.base.AppSpec` — the resource profile the
   simulator consumes (per-function compute seconds, memory footprint, I/O
   volume, image sizes, interference pressure), and
2. an executable Python kernel (``make_tasks`` / ``run_task``) that performs
   the real computation, used by the local packing runtime and by the
   profiling examples. The kernels keep the specs honest: the spec's memory
   footprint and relative compute intensity are measured from the kernels in
   tests.

Apps and their paper-matched maximum packing degrees (10 GB instances):
Video 40, Sort 15, Stateless Cost 30, Smith-Waterman 35, Xapian 64.
"""

from repro.workloads.base import AppSpec, Task, TaskResult
from repro.workloads.sortmr import SORT, MapReduceSort
from repro.workloads.smith_waterman import SMITH_WATERMAN, SmithWaterman
from repro.workloads.stateless import STATELESS_COST, StatelessCost
from repro.workloads.synthetic import SyntheticApp, make_synthetic
from repro.workloads.video import VIDEO, ThousandIslandScanner
from repro.workloads.xapian import XAPIAN, XapianSearch

BENCHMARK_APPS = {app.name: app for app in (VIDEO, SORT, STATELESS_COST)}
ALL_APPS = {
    app.name: app for app in (VIDEO, SORT, STATELESS_COST, SMITH_WATERMAN, XAPIAN)
}

__all__ = [
    "AppSpec",
    "Task",
    "TaskResult",
    "VIDEO",
    "SORT",
    "STATELESS_COST",
    "SMITH_WATERMAN",
    "XAPIAN",
    "ThousandIslandScanner",
    "MapReduceSort",
    "StatelessCost",
    "SmithWaterman",
    "XapianSearch",
    "SyntheticApp",
    "make_synthetic",
    "BENCHMARK_APPS",
    "ALL_APPS",
]
