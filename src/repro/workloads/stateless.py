"""Stateless Cost — image resizing.

Mirrors the ServerlessBench-derived Stateless Cost benchmark [87]: many
short, stateless image-resize requests served in parallel (AWS's Serverless
Image Handler performs similar work). The local kernel is a real separable
bilinear resampler implemented with vectorized numpy gather/lerp.

Spec calibration: 341 MB per function → the paper's maximum packing degree
of 30; short base execution ("relatively low execution time"); moderate
interference and half-shareable I/O (common source assets, private outputs).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.workloads.base import AppSpec, ExecutableApp, Task

STATELESS_COST = AppSpec(
    name="stateless-cost",
    base_seconds=40.0,
    mem_mb=341,
    io_mb=30.0,
    io_shared_fraction=0.96,
    pressure_per_gb=0.12,
    description="Stateless Cost: parallel stateless image resizing",
)


def bilinear_resize(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Vectorized bilinear resize of an HxWxC (or HxW) image."""
    if image.ndim == 2:
        image = image[:, :, None]
    in_h, in_w, channels = image.shape
    if in_h < 2 or in_w < 2:
        raise ValueError("input image must be at least 2x2")
    # Sample positions in source coordinates (align-corners convention).
    ys = np.linspace(0.0, in_h - 1.0, out_h)
    xs = np.linspace(0.0, in_w - 1.0, out_w)
    y0 = np.clip(np.floor(ys).astype(np.intp), 0, in_h - 2)
    x0 = np.clip(np.floor(xs).astype(np.intp), 0, in_w - 2)
    wy = (ys - y0)[:, None, None]
    wx = (xs - x0)[None, :, None]
    top = image[y0][:, x0] * (1 - wx) + image[y0][:, x0 + 1] * wx
    bot = image[y0 + 1][:, x0] * (1 - wx) + image[y0 + 1][:, x0 + 1] * wx
    out = top * (1 - wy) + bot * wy
    return out.squeeze()


class StatelessCost(ExecutableApp):
    """Executable miniature of the Stateless Cost workload."""

    spec = STATELESS_COST

    def __init__(self, in_size: int = 128, out_size: int = 64) -> None:
        self.in_size = in_size
        self.out_size = out_size

    def make_tasks(self, n: int, seed: int = 0) -> Sequence[Task]:
        rng = np.random.default_rng(seed)
        return [
            Task(
                self.spec.name,
                i,
                rng.random((self.in_size, self.in_size, 3), dtype=np.float32),
            )
            for i in range(n)
        ]

    def run_task(self, task: Task) -> dict[str, Any]:
        resized = bilinear_resize(task.payload, self.out_size, self.out_size)
        return {
            "resized": resized,
            "shape": resized.shape,
            "mean": float(resized.mean()),
        }

    def validate_result(self, task: Task, value: Any) -> bool:
        expected = (self.out_size, self.out_size, 3)
        if value["shape"] != expected:
            return False
        # Bilinear interpolation preserves the dynamic range.
        resized = value["resized"]
        src = task.payload
        return bool(resized.min() >= src.min() - 1e-6 and resized.max() <= src.max() + 1e-6)
