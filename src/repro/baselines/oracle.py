"""Oracle: exhaustive brute-force search for the true optimal packing degree.

"We perform an exhaustive brute force search to determine the optimal
packing degree (Oracle packing degree)" (paper Sec. 3). The Oracle runs the
*actual* burst at every feasible packing degree and picks the measured
optimum — the accuracy yardstick for ProPack's analytical models (Figs. 8
and 15). It is exactly the expensive search ProPack's models avoid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec, FunctionTimeoutError
from repro.platform.metrics import RunResult
from repro.workloads.base import AppSpec

Objective = Callable[[RunResult], float]


def service_objective(merit: str = "total") -> Objective:
    return lambda result: result.service_time(merit)


def expense_objective() -> Objective:
    return lambda result: result.expense.total_usd


def joint_objective(
    results: dict[int, RunResult], w_s: float = 0.5, merit: str = "total"
) -> dict[int, float]:
    """Eq. 7's regret combination applied to *measured* curves."""
    service = {d: r.service_time(merit) for d, r in results.items()}
    expense = {d: r.expense.total_usd for d, r in results.items()}
    s_best = min(service.values())
    e_best = min(expense.values())
    return {
        d: w_s * (service[d] - s_best) / s_best
        + (1.0 - w_s) * (expense[d] - e_best) / e_best
        for d in results
    }


@dataclass
class OracleResult:
    """Everything the brute-force sweep measured."""

    app_name: str
    concurrency: int
    results: dict[int, RunResult] = field(default_factory=dict)
    infeasible: list[int] = field(default_factory=list)

    def best_degree(
        self, objective: str = "joint", w_s: float = 0.5, merit: str = "total"
    ) -> int:
        if not self.results:
            raise ValueError("oracle sweep produced no feasible degrees")
        if objective == "service":
            return min(
                self.results, key=lambda d: self.results[d].service_time(merit)
            )
        if objective == "expense":
            return min(self.results, key=lambda d: self.results[d].expense.total_usd)
        if objective == "joint":
            combined = joint_objective(self.results, w_s=w_s, merit=merit)
            return min(combined, key=combined.get)
        raise ValueError(f"unknown objective {objective!r}")

    def best_result(self, objective: str = "joint", **kwargs) -> RunResult:
        return self.results[self.best_degree(objective, **kwargs)]


class Oracle:
    """Runs the exhaustive sweep over packing degrees."""

    def __init__(self, platform: ServerlessPlatform) -> None:
        self.platform = platform

    def sweep(
        self,
        app: AppSpec,
        concurrency: int,
        degrees: Optional[Sequence[int]] = None,
    ) -> OracleResult:
        """Measure every feasible degree (platform timeouts are infeasible)."""
        max_degree = min(
            app.max_packing_degree(self.platform.profile.max_memory_mb), concurrency
        )
        if degrees is None:
            degrees = range(1, max_degree + 1)
        outcome = OracleResult(app_name=app.name, concurrency=concurrency)
        for degree in degrees:
            if degree > max_degree:
                raise ValueError(f"degree {degree} exceeds P_max {max_degree}")
            spec = BurstSpec(app=app, concurrency=concurrency, packing_degree=degree)
            try:
                outcome.results[degree] = self.platform.run_burst(spec)
            except FunctionTimeoutError:
                outcome.infeasible.append(degree)
        return outcome
