"""Serial batching: the "intuitive solution" the paper rejects (Sec. 1).

Group the ``C`` functions into batches of ``batch_size`` and spawn the
batches one after another. This lowers the instantaneous concurrency (so
each batch scales quickly) but serializes execution — hurting turnaround
time for applications whose figure of merit is the completion of the whole
job, and removing the simultaneous parallelism some applications require.
Included as an ablation baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.nopack import run_unpacked
from repro.platform.base import ServerlessPlatform
from repro.platform.metrics import ExpenseBreakdown, RunResult
from repro.workloads.base import AppSpec


@dataclass
class BatchedOutcome:
    """Aggregate view over serially executed batches."""

    batch_results: list[RunResult]

    @property
    def service_time(self) -> float:
        """End-to-end turnaround: batches run back to back."""
        return sum(r.service_time() for r in self.batch_results)

    @property
    def expense_usd(self) -> float:
        return sum(r.expense.total_usd for r in self.batch_results)

    @property
    def expense(self) -> ExpenseBreakdown:
        total = self.batch_results[0].expense
        for r in self.batch_results[1:]:
            total = total + r.expense
        return total


class SerialBatcher:
    """Spawns fixed-size batches serially (each batch unpacked)."""

    def __init__(self, platform: ServerlessPlatform, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        self.platform = platform
        self.batch_size = batch_size

    def run(self, app: AppSpec, concurrency: int) -> BatchedOutcome:
        n_batches = math.ceil(concurrency / self.batch_size)
        results = []
        remaining = concurrency
        for _ in range(n_batches):
            size = min(self.batch_size, remaining)
            remaining -= size
            results.append(run_unpacked(self.platform, app, size))
        return BatchedOutcome(batch_results=results)
