"""Failure-blind vs. failure-aware packing comparison.

The seed planner prices a burst as if every attempt succeeds — the
*failure-blind* baseline. Under a real failure rate its chosen degree packs
too aggressively: each crash loses ``P×`` work and the retry re-pays the
full cold pipeline. This module runs both planners on the same flaky
platform so experiments (and the fault-sweep figure) can quantify the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.propack import ProPack, ProPackOutcome
from repro.core.reliability import FailurePenalty
from repro.platform.base import ServerlessPlatform
from repro.workloads.base import AppSpec


@dataclass(frozen=True)
class FailureComparison:
    """Blind and aware outcomes of the same workload on one platform."""

    blind: ProPackOutcome
    aware: ProPackOutcome

    @property
    def degree_reduction(self) -> int:
        """How many packing steps the aware planner backed off."""
        return self.blind.plan.degree - self.aware.plan.degree

    @property
    def service_improvement(self) -> float:
        """Fractional service-time gain of failure-aware packing."""
        blind_s = self.blind.result.service_time()
        return 1.0 - self.aware.result.service_time() / blind_s

    @property
    def waste_reduction(self) -> float:
        """Wasted billed GB-seconds avoided by the aware planner."""
        return (
            self.blind.result.fault_stats.wasted_billed_gb_seconds
            - self.aware.result.fault_stats.wasted_billed_gb_seconds
        )


def compare_failure_awareness(
    platform: ServerlessPlatform,
    app: AppSpec,
    concurrency: int,
    objective: str = "joint",
    failure: Optional[FailurePenalty] = None,
) -> FailureComparison:
    """Run the failure-blind and failure-aware planners back to back.

    Both share one :class:`ProPack` (hence one set of fitted models and one
    profiling charge); only the planning differs.
    """
    propack = ProPack(platform)
    blind = propack.run(app, concurrency, objective=objective)
    aware = propack.run(
        app, concurrency, objective=objective, failure_aware=True, failure=failure
    )
    return FailureComparison(blind=blind, aware=aware)
