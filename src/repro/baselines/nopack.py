"""The traditional baseline: one function per instance (packing degree 1).

All of the paper's improvement percentages are reported "over spawning
serverless instances in the traditional way, with no packing".
"""

from __future__ import annotations

from typing import Optional

from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.metrics import RunResult
from repro.workloads.base import AppSpec


def run_unpacked(
    platform: ServerlessPlatform,
    app: AppSpec,
    concurrency: int,
    provisioned_mb: Optional[int] = None,
) -> RunResult:
    """Execute a burst with packing degree 1 (the no-packing baseline)."""
    return platform.run_burst(
        BurstSpec(
            app=app,
            concurrency=concurrency,
            packing_degree=1,
            provisioned_mb=provisioned_mb,
        )
    )
