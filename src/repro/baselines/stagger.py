"""Staggered invocation: the latency-hiding alternative the paper tried.

"Alternative to packing, we also attempted other latency-hiding techniques
such as staggering instances, but such techniques result in severe service
degradation due to inserted delays and are unsuitable for workloads that
need synchronous progress" (paper Sec. 4).

Inserting a fixed delay between invocations keeps the *instantaneous*
placement queue short, so each instance's scheduling delay is small — but
the inserted delays themselves push the last start time out by
``delay × (C - 1)``, which quickly dominates. Included as an ablation
baseline; the aggregate is modelled analytically on top of single-burst
measurements of small windows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.metrics import RunResult
from repro.workloads.base import AppSpec


@dataclass
class StaggeredOutcome:
    """Outcome of a staggered burst."""

    window_result: RunResult
    concurrency: int
    delay_s: float

    @property
    def scaling_time(self) -> float:
        """Last start: the inserted delays plus one window's scaling."""
        return self.delay_s * (self.concurrency - 1) + self.window_result.scaling_time

    @property
    def service_time(self) -> float:
        return self.scaling_time + self.window_result.mean_exec_seconds

    @property
    def expense_usd(self) -> float:
        # Staggering does not change per-function billing.
        scale = self.concurrency / self.window_result.concurrency
        return self.window_result.expense.total_usd * scale


class StaggeredInvoker:
    """Invokes functions with a fixed inter-invocation delay."""

    def __init__(self, platform: ServerlessPlatform, delay_s: float = 0.25,
                 window: int = 50) -> None:
        if delay_s <= 0:
            raise ValueError("stagger delay must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.platform = platform
        self.delay_s = delay_s
        self.window = window

    def run(self, app: AppSpec, concurrency: int) -> StaggeredOutcome:
        """Measure one window burst; extrapolate the inserted-delay chain.

        With a delay of ``delay_s`` between invocations, at most
        ``window ≈ exec/delay`` instances are ever in flight, so a single
        window-sized burst measures the per-instance pipeline accurately.
        """
        window = min(self.window, concurrency)
        result = self.platform.run_burst(
            BurstSpec(app=app, concurrency=window, packing_degree=1)
        )
        return StaggeredOutcome(
            window_result=result, concurrency=concurrency, delay_s=self.delay_s
        )
