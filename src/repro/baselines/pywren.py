"""Pywren-style serverless workload manager (paper Fig. 19 comparison).

Pywren [34] optimizes serverless map execution by:

* **reusing instances** at high concurrency so dependencies need not be
  loaded for each invocation separately — modelled as a bounded warm pool
  (``wave_size``): the first wave cold-starts, finished instances pick up
  remaining tasks warm;
* **mitigating cold starts** with runtime caching in shared storage —
  modelled as a build-stage discount (``build_factor``);
* **optimizing data movement** among instances via common storage —
  modelled as a ship-stage discount (``ship_factor``).

What it does *not* do is reduce the effective number of concurrent
instances, so the scheduler-search scaling bottleneck remains — which is
why its benefit fades at high concurrency (paper Sec. 4). The in-handler
serialization/staging of the function and its inputs through S3 adds
billed execution overhead (``exec_overhead``) and extra storage traffic.
"""

from __future__ import annotations

from typing import Optional

from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.metrics import RunResult
from repro.workloads.base import AppSpec


class PywrenManager:
    """Executes map-style bursts the way Pywren would."""

    def __init__(
        self,
        platform: ServerlessPlatform,
        warm_pool_size: int = 1000,
        build_factor: float = 0.45,
        ship_factor: float = 0.6,
        exec_overhead: float = 1.18,
        staging_io_mb: float = 6.0,
    ) -> None:
        if warm_pool_size < 1:
            raise ValueError("warm pool size must be >= 1")
        self.platform = platform
        self.warm_pool_size = warm_pool_size
        self.build_factor = build_factor
        self.ship_factor = ship_factor
        self.exec_overhead = exec_overhead
        self.staging_io_mb = staging_io_mb

    def map(
        self,
        app: AppSpec,
        concurrency: int,
        provisioned_mb: Optional[int] = None,
    ) -> RunResult:
        """Run ``concurrency`` tasks under Pywren's execution strategy."""
        spec = BurstSpec(
            app=app,
            concurrency=concurrency,
            packing_degree=1,
            provisioned_mb=provisioned_mb,
            wave_size=self.warm_pool_size,
            build_factor=self.build_factor,
            ship_factor=self.ship_factor,
            exec_overhead=self.exec_overhead,
            extra_io_mb_per_function=self.staging_io_mb,
        )
        return self.platform.run_burst(spec)
