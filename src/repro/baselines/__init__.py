"""Competing techniques ProPack is evaluated against.

* :mod:`~repro.baselines.nopack` — the traditional deployment (packing
  degree 1), the paper's primary baseline.
* :mod:`~repro.baselines.pywren` — the state-of-the-art serverless workload
  manager: warm-instance reuse, cached-runtime cold-start mitigation, and
  shared-storage data-movement optimization (paper Fig. 19).
* :mod:`~repro.baselines.batching` — serial batching, the "intuitive
  solution" the paper's introduction rejects.
* :mod:`~repro.baselines.stagger` — staggered invocation, the latency-hiding
  alternative the paper reports as unsuitable (Sec. 4).
* :mod:`~repro.baselines.oracle` — exhaustive brute-force search for the
  true optimal packing degree (the paper's Oracle).
* :mod:`~repro.baselines.failureblind` — the seed's failure-blind planner
  vs. the failure-aware planner on a flaky platform.
"""

from repro.baselines.batching import SerialBatcher
from repro.baselines.failureblind import FailureComparison, compare_failure_awareness
from repro.baselines.nopack import run_unpacked
from repro.baselines.oracle import Oracle, OracleResult
from repro.baselines.pywren import PywrenManager
from repro.baselines.stagger import StaggeredInvoker

__all__ = [
    "run_unpacked",
    "PywrenManager",
    "SerialBatcher",
    "StaggeredInvoker",
    "Oracle",
    "OracleResult",
    "FailureComparison",
    "compare_failure_awareness",
]
