"""Instrumentation adapters between the simulators and the telemetry core.

The platform invoker and the serving loop stay almost telemetry-free: each
holds an optional instrumentation object and calls cheap, well-named hooks
(``on_placed``, ``on_exec_end``, …) behind an ``is not None`` guard. All
span bookkeeping, metric registration, and bus publishing lives here, so
the hot paths pay exactly one attribute check when telemetry is off.

Span model (see ``docs/OBSERVABILITY.md``):

* one *process* band per burst or serving run (``Tracer.new_process``),
* one *track* per instance (burst) or dispatch (serving),
* a root ``instance``/``dispatch`` span per track with child phase spans
  ``sched`` / ``build`` / ``ship`` / ``exec`` (bursts) keyed to sim time,
* instants for retries, throttle bounces, lost chains, correlated events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.telemetry.metrics import MetricsRegistry

if TYPE_CHECKING:  # imported for annotations only; avoids heavy deps here
    from repro.telemetry.bus import EventBus
    from repro.telemetry.tracer import Span, Tracer

#: Histogram boundaries for per-phase durations (sub-second to minutes).
PHASE_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.0, 5.0, 10.0, 30.0, 60.0, 180.0, 600.0,
)

#: Histogram boundaries for request sojourn times in the serving loop.
SOJOURN_BUCKETS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 15.0,
    30.0, 60.0, 120.0, 300.0, 600.0, 1800.0,
)


class BurstInstrumentation:
    """Per-burst tracing + metrics, driven by :class:`BurstInvoker` hooks."""

    def __init__(
        self,
        tracer: Optional["Tracer"],
        registry: Optional[MetricsRegistry],
        bus: Optional["EventBus"],
        sim,
        name: str,
    ) -> None:
        self.tracer = tracer
        self.bus = bus
        self.registry = registry
        if tracer is not None:
            tracer.bind_clock(lambda: sim.now)
            self.pid = tracer.new_process(name)
        self._roots: dict[int, Span] = {}
        self._phases: dict[int, dict[str, Span]] = {}
        self._m: dict[str, object] = {}
        if registry is not None:
            self._m = {
                "cold": registry.counter(
                    "propack_burst_instances_total",
                    help="Instances launched, by start type.", start="cold",
                ),
                "warm": registry.counter(
                    "propack_burst_instances_total", start="warm",
                ),
                "functions": registry.counter(
                    "propack_burst_functions_total",
                    help="Logical functions carried by launched instances.",
                ),
                "retries": registry.counter(
                    "propack_burst_retries_total",
                    help="Retry attempts scheduled after failed executions.",
                ),
                "throttled": registry.counter(
                    "propack_burst_throttled_total",
                    help="429-style admission bounces.",
                ),
                "hedges": registry.counter(
                    "propack_burst_hedges_total",
                    help="Speculative hedge attempts launched.",
                ),
                "lost": registry.counter(
                    "propack_burst_lost_functions_total",
                    help="Functions lost after exhausting retries.",
                ),
                "outcomes": {
                    outcome: registry.counter(
                        "propack_burst_attempt_outcomes_total",
                        help="Execution attempts by terminal outcome.",
                        outcome=outcome,
                    )
                    for outcome in ("ok", "crash", "timeout", "cancelled")
                },
                "phases": {
                    phase: registry.histogram(
                        "propack_instance_phase_seconds",
                        buckets=PHASE_BUCKETS,
                        help="Per-instance phase durations (sched/build/ship/exec).",
                        phase=phase,
                    )
                    for phase in ("sched", "build", "ship", "exec")
                },
            }

    # ------------------------------------------------------------------ #
    def on_invoked(self, record, warm: bool = False) -> None:
        if self._m:
            self._m["warm" if warm else "cold"].inc()
            self._m["functions"].inc(record.n_packed)
        if self.tracer is None:
            return
        root = self.tracer.start_span(
            f"instance#{record.instance_id}",
            category="instance",
            track=record.instance_id,
            n_packed=record.n_packed,
            attempt=record.attempt,
            hedged=record.hedged,
            warm=warm,
        )
        self._roots[record.instance_id] = root
        if not warm:
            self._phases[record.instance_id] = {
                "sched": self.tracer.start_span("sched", "phase", parent=root),
                "build": self.tracer.start_span("build", "phase", parent=root),
            }

    def _end_phase(self, record, phase: str) -> None:
        span = self._phases.get(record.instance_id, {}).pop(phase, None)
        if span is not None:
            self.tracer.end_span(span)

    def on_placed(self, record) -> None:
        if self.tracer is not None:
            self._end_phase(record, "sched")

    def on_built(self, record) -> None:
        if self.tracer is not None:
            self._end_phase(record, "build")

    def on_ship_begin(self, record) -> None:
        if self.tracer is None:
            return
        root = self._roots.get(record.instance_id)
        if root is not None:
            self._phases.setdefault(record.instance_id, {})["ship"] = (
                self.tracer.start_span("ship", "phase", parent=root)
            )

    def on_shipped(self, record) -> None:
        if self.tracer is not None:
            self._end_phase(record, "ship")

    def on_exec_begin(self, record) -> None:
        if self.tracer is None:
            return
        root = self._roots.get(record.instance_id)
        if root is not None:
            self._phases.setdefault(record.instance_id, {})["exec"] = (
                self.tracer.start_span("exec", "phase", parent=root)
            )

    def on_exec_end(self, record, outcome: str) -> None:
        """Terminal hook for every attempt that reached execution."""
        if self._m:
            self._m["outcomes"][outcome].inc()
            histograms = self._m["phases"]
            for phase, seconds in record.phase_durations().items():
                histograms[phase].observe(seconds)
        if self.tracer is None:
            return
        self._end_phase(record, "exec")
        root = self._roots.pop(record.instance_id, None)
        if root is not None:
            self.tracer.end_span(root, outcome=outcome)
        if outcome in ("crash", "timeout") and self.bus is not None:
            self.bus.publish(
                f"instance.{outcome}",
                self.tracer.now,
                instance=record.instance_id,
                attempt=record.attempt,
                correlated=record.correlated,
            )

    def on_cancelled_before_exec(self, record) -> None:
        """A hedge twin won while this copy was still in the cold pipeline."""
        if self._m:
            self._m["outcomes"]["cancelled"].inc()
        if self.tracer is None:
            return
        phases = self._phases.pop(record.instance_id, {})
        for span in phases.values():
            self.tracer.end_span(span, abandoned=True)
        root = self._roots.pop(record.instance_id, None)
        if root is not None:
            # A zero-duration exec span keeps the per-instance exec set
            # aligned with RunResult._starts (which spans cancelled records).
            exec_span = self.tracer.start_span("exec", "phase", parent=root)
            self.tracer.end_span(exec_span, outcome="cancelled")
            self.tracer.end_span(root, outcome="cancelled")

    # ------------------------------------------------------------------ #
    def on_retry(self, chain_id: int, next_attempt: int, delay: float) -> None:
        if self._m:
            self._m["retries"].inc()
        if self.tracer is not None:
            self.tracer.instant(
                "retry", "fault", track=chain_id,
                attempt=next_attempt, delay_s=delay,
            )
        if self.bus is not None and self.tracer is not None:
            self.bus.publish(
                "chain.retry", self.tracer.now,
                chain=chain_id, attempt=next_attempt, delay_s=delay,
            )

    def on_throttled(self, chain_id: int, tries: int) -> None:
        if self._m:
            self._m["throttled"].inc()
        if self.tracer is not None:
            self.tracer.instant("throttled", "fault", track=chain_id, tries=tries)

    def on_hedge(self, chain_id: int) -> None:
        if self._m:
            self._m["hedges"].inc()
        if self.tracer is not None:
            self.tracer.instant("hedge", "fault", track=chain_id)

    def on_lost(self, chain_id: int, n_packed: int) -> None:
        if self._m:
            self._m["lost"].inc(n_packed)
        if self.tracer is not None:
            self.tracer.instant("lost", "fault", track=chain_id, n_packed=n_packed)
        if self.bus is not None and self.tracer is not None:
            self.bus.publish(
                "chain.lost", self.tracer.now, chain=chain_id, n_packed=n_packed
            )


class ServingInstrumentation:
    """Per-run tracing + metrics, driven by the serving loop's hooks.

    Besides the tracer/metrics adapters, every hook also offers an
    ``audit.*`` event to the bus — but only when something subscribed to
    that kind *specifically*. The "is any auditor attached?" verdict is
    precomputed once per run (and re-derived only when the bus's
    subscription set changes, at the latest on the next control tick), so
    sessions without a chaos :class:`~repro.chaos.auditor.InvariantAuditor`
    pay one attribute load per hook — no field-dict allocation, no bus
    lookup — and publish nothing, keeping JSONL exports byte-identical.
    """

    def __init__(
        self,
        tracer: Optional["Tracer"],
        registry: Optional[MetricsRegistry],
        bus: Optional["EventBus"],
        sim,
        name: str,
    ) -> None:
        self.tracer = tracer
        self.bus = bus
        self._registry = registry
        self._now = lambda: sim.now  # audit events may run untraced
        # Audit short-circuit: hooks fire per dispatch/arrival (hot loop),
        # so "did anyone subscribe to audit.*?" is answered once here and
        # re-derived only when the bus's subscription set changes — not
        # per event (PR-8 wiring asked has_kind_subscribers every time).
        self._audit_version = -1
        self._audit_on = False
        self._refresh_audit_gate()
        if tracer is not None:
            tracer.bind_clock(lambda: sim.now)
            self.pid = tracer.new_process(name)
        self._dispatches: dict[int, Span] = {}
        self._m: dict[str, object] = {}
        if registry is not None:
            self._m = {
                "arrivals": registry.counter(
                    "propack_serving_arrivals_total",
                    help="Requests offered to the serving loop.",
                ),
                "admitted": registry.counter(
                    "propack_serving_admitted_total",
                    help="Requests admitted past protection.",
                ),
                "shed": {
                    source: registry.counter(
                        "propack_serving_shed_total",
                        help="Requests shed before dispatch, by mechanism.",
                        source=source,
                    )
                    for source in ("admission", "brownout")
                },
                "warm": registry.counter(
                    "propack_serving_dispatches_total",
                    help="Batch dispatches, by start type.", start="warm",
                ),
                "cold": registry.counter(
                    "propack_serving_dispatches_total", start="cold",
                ),
                "completed": registry.counter(
                    "propack_serving_requests_completed_total",
                    help="Requests served to completion.",
                ),
                "failed": registry.counter(
                    "propack_serving_requests_failed_total",
                    help="Admitted requests that were never served.",
                ),
                "crashes": {
                    kind: registry.counter(
                        "propack_serving_crashes_total",
                        help="Dispatch crashes, by cause.", kind=kind,
                    )
                    for kind in ("independent", "correlated")
                },
                "retries": registry.counter(
                    "propack_serving_retries_total",
                    help="Batch re-dispatches after crashes.",
                ),
                "throttled": registry.counter(
                    "propack_serving_throttled_total",
                    help="429-style dispatch bounces.",
                ),
                "sojourn": registry.histogram(
                    "propack_serving_sojourn_seconds",
                    buckets=SOJOURN_BUCKETS,
                    help="Per-request sojourn (arrival to completion).",
                ),
                "backlog": registry.gauge(
                    "propack_serving_backlog_depth",
                    help="Dispatch-queue depth at the last control tick.",
                ),
            }

    # ------------------------------------------------------------------ #
    def _refresh_audit_gate(self) -> bool:
        """Recompute the cached "any ``audit.*`` subscriber?" verdict.

        One bus scan, and only when the subscription set actually changed
        since the last refresh (tracked via
        :attr:`EventBus.subscriptions_version`). Runs at construction and
        again at every (un)subscribe observed through :meth:`_audit`; an
        auditor attached mid-run is picked up on the next hook that fires.
        """
        bus = self.bus
        if bus is None:
            self._audit_on = False
            return False
        version = bus.subscriptions_version
        if version != self._audit_version:
            self._audit_version = version
            self._audit_on = any(
                subs and kind.startswith("audit.")
                for kind, subs in bus._by_kind.items()
            )
        return self._audit_on

    def _audit(self, kind: str, **fields) -> None:
        """Publish an opt-in ``audit.*`` event iff someone subscribed to it.

        Hot hooks guard on the precomputed :attr:`_audit_on` flag before
        building their field dicts, so an auditor-less session pays one
        attribute load per event — no dict allocation, no bus lookup.
        """
        bus = self.bus
        if bus is None:
            return
        if bus.subscriptions_version != self._audit_version:
            self._refresh_audit_gate()
        if self._audit_on and bus.has_kind_subscribers(kind):
            bus.publish(kind, self._now(), **fields)

    # ------------------------------------------------------------------ #
    def on_arrival(self, verdict: str) -> None:
        """``verdict`` is 'admitted', 'shed-admission', or 'shed-brownout'."""
        if self._audit_on:
            self._audit("audit.arrival", verdict=verdict)
        if not self._m:
            return
        self._m["arrivals"].inc()
        if verdict == "admitted":
            self._m["admitted"].inc()
        else:
            self._m["shed"][verdict.removeprefix("shed-")].inc()

    def on_dispatch(
        self, dispatch_id: int, batch_size: int, warm: bool, domain: Optional[int]
    ) -> None:
        if self._audit_on:
            self._audit(
                "audit.dispatch",
                dispatch=dispatch_id, batch=batch_size, warm=warm,
                domain=-1 if domain is None else domain,
            )
        if self._m:
            self._m["warm" if warm else "cold"].inc()
        if self.tracer is None:
            return
        self._dispatches[dispatch_id] = self.tracer.start_span(
            f"dispatch#{dispatch_id}",
            category="dispatch",
            track=dispatch_id,
            batch=batch_size,
            warm=warm,
            domain=-1 if domain is None else domain,
        )

    def _end_dispatch(self, dispatch_id: int, outcome: str) -> None:
        span = self._dispatches.pop(dispatch_id, None)
        if span is not None:
            self.tracer.end_span(span, outcome=outcome)

    def on_complete(
        self,
        dispatch_id: int,
        sojourns: list[float],
        exec_s: Optional[float] = None,
        billed_s: Optional[float] = None,
    ) -> None:
        if self._audit_on:
            self._audit(
                "audit.complete",
                dispatch=dispatch_id, n=len(sojourns),
                exec_s=-1.0 if exec_s is None else exec_s,
                billed_s=-1.0 if billed_s is None else billed_s,
            )
        if self._m:
            self._m["completed"].inc(len(sojourns))
            hist = self._m["sojourn"]
            for sojourn in sojourns:
                hist.observe(sojourn)
        if self.tracer is not None:
            self._end_dispatch(dispatch_id, "ok")

    def on_crash(
        self, dispatch_id: int, correlated: bool, domain: Optional[int] = None
    ) -> None:
        if self._audit_on:
            self._audit(
                "audit.crash",
                dispatch=dispatch_id, correlated=correlated,
                domain=-1 if domain is None else domain,
            )
        if self._m:
            self._m["crashes"]["correlated" if correlated else "independent"].inc()
        if self.tracer is not None:
            self._end_dispatch(dispatch_id, "crash")
        if self.bus is not None and self.tracer is not None:
            self.bus.publish(
                "dispatch.crash", self.tracer.now,
                dispatch=dispatch_id, correlated=correlated,
                domain=-1 if domain is None else domain,
            )

    def on_retry(self, batch_size: int, delay: float) -> None:
        if self._audit_on:
            self._audit("audit.retry", batch=batch_size, delay_s=delay)
        if self._m:
            self._m["retries"].inc()
        if self.tracer is not None:
            self.tracer.instant("retry", "fault", batch=batch_size, delay_s=delay)

    def on_throttled(self) -> None:
        if self._audit_on:
            self._audit("audit.throttled")
        if self._m:
            self._m["throttled"].inc()

    def on_fail_batch(self, batch_size: int) -> None:
        if self._audit_on:
            self._audit("audit.fail", batch=batch_size)
        if self._m:
            self._m["failed"].inc(batch_size)
        if self.bus is not None and self.tracer is not None:
            self.bus.publish("batch.failed", self.tracer.now, batch=batch_size)

    def on_tick(self, backlog: int, violation_fraction: float) -> None:
        # Per-wave gate refresh: the control tick is the run's heartbeat,
        # so a mid-run (un)subscribe is folded in here at the latest.
        if self._refresh_audit_gate():
            self._audit("audit.tick", backlog=backlog)
        if self._m:
            self._m["backlog"].set(backlog)
        if self.tracer is not None:
            self.tracer.instant(
                "control-tick", "control",
                backlog=backlog, violation=round(violation_fraction, 9),
            )

    def on_remediation(self, stage: str, **fields) -> None:
        """One remediation-loop event: ``stage`` is 'detection', 'proposal',
        'verdict', 'apply', or 'rollback'; ``fields`` are stage-specific."""
        if self._audit_on:
            self._audit("audit.remediation", stage=stage, **fields)
        if self._registry is not None:
            self._registry.counter(
                "propack_remediation_events_total",
                help="Remediation-loop pipeline events, by stage.",
                stage=stage,
            ).inc()
        if self.tracer is not None:
            self.tracer.instant(f"remediation-{stage}", "remediation", **fields)
        if self.bus is not None and self.tracer is not None:
            self.bus.publish(f"remediation.{stage}", self.tracer.now, **fields)
