"""The telemetry event bus: one publish/subscribe path for everything.

Every observable occurrence in the stack — a simulator event executing, a
span closing, a retry being scheduled — can be published as a
:class:`TelemetryEvent` on an :class:`EventBus`. Subscribers (the
:class:`~repro.sim.trace.TraceRecorder` ring buffer, the JSONL event log,
ad-hoc debugging hooks) see events in publication order, which is
deterministic because the simulator itself is.

The bus is intentionally synchronous and allocation-light: ``publish`` is a
dict lookup plus a loop over subscriber callables, and a bus with no
subscribers for a kind does no work beyond building the event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: Subscribers receive the event object itself.
Subscriber = Callable[["TelemetryEvent"], None]


@dataclass(frozen=True)
class TelemetryEvent:
    """One occurrence, keyed to simulation time.

    ``fields`` is stored as a sorted tuple of ``(key, value)`` pairs so two
    identically-seeded runs serialize byte-identically.
    """

    kind: str
    time: float
    fields: tuple[tuple[str, Any], ...] = ()

    def as_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"kind": self.kind, "time": self.time}
        doc.update(self.fields)
        return doc

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default


class EventBus:
    """Synchronous pub/sub with per-kind and catch-all subscriptions."""

    def __init__(self) -> None:
        self._by_kind: dict[str, list[Subscriber]] = {}
        self._all: list[Subscriber] = []
        self.published = 0
        #: Bumped on every (un)subscribe. Hot-loop publishers cache their
        #: "anyone listening?" verdict against this instead of re-asking
        #: :meth:`has_kind_subscribers` per event (see
        #: ``ServingInstrumentation._refresh_audit_gate``).
        self.subscriptions_version = 0

    def subscribe(
        self, fn: Subscriber, kind: Optional[str] = None
    ) -> Callable[[], None]:
        """Register ``fn`` for one ``kind`` (or every kind when ``None``).

        Returns an unsubscribe callable (idempotent).
        """
        listing = self._all if kind is None else self._by_kind.setdefault(kind, [])
        listing.append(fn)
        self.subscriptions_version += 1

        def unsubscribe() -> None:
            try:
                listing.remove(fn)
            except ValueError:
                pass
            else:
                self.subscriptions_version += 1

        return unsubscribe

    def publish(self, kind: str, time: float, **fields: Any) -> TelemetryEvent:
        """Build and dispatch one event; returns it for chaining/testing."""
        event = TelemetryEvent(
            kind=kind, time=time, fields=tuple(sorted(fields.items()))
        )
        self.published += 1
        for fn in self._by_kind.get(kind, ()):
            fn(event)
        for fn in self._all:
            fn(event)
        return event

    def has_subscribers(self, kind: str) -> bool:
        return bool(self._all) or bool(self._by_kind.get(kind))

    def has_kind_subscribers(self, kind: str) -> bool:
        """Whether anyone subscribed to ``kind`` *specifically*.

        Catch-all subscribers (the :class:`EventLog` attaches as one) do not
        count: publishers of opt-in event families — the chaos auditor's
        ``audit.*`` stream — gate on this so that an ordinary session with
        an event log sees no new events and its JSONL export stays
        byte-identical.
        """
        return bool(self._by_kind.get(kind))


@dataclass
class EventLog:
    """A bounded catch-all subscriber backing the JSONL exporter."""

    capacity: Optional[int] = None
    events: list[TelemetryEvent] = field(default_factory=list)
    dropped: int = 0

    def __call__(self, event: TelemetryEvent) -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(event)

    def attach(self, bus: EventBus) -> "EventLog":
        bus.subscribe(self)
        return self

    def __len__(self) -> int:
        return len(self.events)
