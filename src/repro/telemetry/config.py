"""Telemetry configuration and the per-session runtime bundle.

:class:`TelemetryConfig` is the single switchboard: components accept an
optional config (or a prebuilt :class:`TelemetrySession`) and do *nothing*
— not even build span objects — when it is absent or disabled. The
zero-cost-when-disabled contract is enforced by the
``telemetry_overhead``-marked benchmark: a disabled config must keep the
perf-primitives burst within 2% of the uninstrumented seed path.

A :class:`TelemetrySession` owns the tracer, the metrics registry, and the
event bus for one observation window (typically one platform object's
lifetime, spanning many bursts), plus the export conveniences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Optional, Union

from repro.telemetry.bus import EventBus, EventLog
from repro.telemetry.exporters import (
    chrome_trace,
    events_jsonl,
    prometheus_text,
    write_chrome_trace,
)
from repro.telemetry.instruments import BurstInstrumentation, ServingInstrumentation
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer


@dataclass(frozen=True)
class TelemetryConfig:
    """What to observe. ``enabled=False`` (or ``TelemetryConfig.off()``)
    short-circuits everything back to the uninstrumented fast path."""

    enabled: bool = True
    tracing: bool = True          # span tracer (Chrome trace export)
    metrics: bool = True          # counters / gauges / histograms
    events: bool = True           # JSONL event log fed from the bus
    max_events: Optional[int] = 1_000_000  # event-log bound (None = unbounded)

    @classmethod
    def off(cls) -> "TelemetryConfig":
        return cls(enabled=False)

    def session(self) -> Optional["TelemetrySession"]:
        """A fresh runtime bundle, or ``None`` when disabled."""
        if not self.enabled or not (self.tracing or self.metrics or self.events):
            return None
        return TelemetrySession(self)


class TelemetrySession:
    """The live tracer + registry + bus for one observation window."""

    def __init__(self, config: TelemetryConfig = TelemetryConfig()) -> None:
        self.config = config
        self.tracer: Optional[Tracer] = Tracer() if config.tracing else None
        self.registry: Optional[MetricsRegistry] = (
            MetricsRegistry() if config.metrics else None
        )
        self.bus = EventBus()
        self.event_log: Optional[EventLog] = None
        if config.events:
            self.event_log = EventLog(capacity=config.max_events).attach(self.bus)

    # ------------------------------------------------------------------ #
    # instrumentation factories (used by the platform / serving loops)
    # ------------------------------------------------------------------ #
    def burst_instrumentation(self, sim, name: str) -> BurstInstrumentation:
        """Instrument one burst: binds the tracer to ``sim``'s clock and
        opens a new process band named ``name`` in the trace."""
        return BurstInstrumentation(
            tracer=self.tracer, registry=self.registry, bus=self.bus,
            sim=sim, name=name,
        )

    def serving_instrumentation(self, sim, name: str) -> ServingInstrumentation:
        return ServingInstrumentation(
            tracer=self.tracer, registry=self.registry, bus=self.bus,
            sim=sim, name=name,
        )

    # ------------------------------------------------------------------ #
    # exports
    # ------------------------------------------------------------------ #
    def chrome_trace(self) -> dict:
        if self.tracer is None:
            raise ValueError("tracing is disabled in this session")
        return chrome_trace(self.tracer)

    def write_chrome_trace(self, destination: Union[str, IO[str]]) -> None:
        if self.tracer is None:
            raise ValueError("tracing is disabled in this session")
        write_chrome_trace(destination, self.tracer)

    def prometheus_text(self) -> str:
        if self.registry is None:
            raise ValueError("metrics are disabled in this session")
        return prometheus_text(self.registry)

    def events_jsonl(self) -> str:
        if self.event_log is None:
            raise ValueError("the event log is disabled in this session")
        return events_jsonl(self.event_log.events)


def resolve_session(
    telemetry: Union[TelemetryConfig, TelemetrySession, None],
) -> Optional[TelemetrySession]:
    """Accept a config, a prebuilt session, or ``None`` (common kwarg glue)."""
    if telemetry is None:
        return None
    if isinstance(telemetry, TelemetrySession):
        return telemetry
    return telemetry.session()
