"""Exporters: Chrome ``trace_event`` JSON, Prometheus text, JSONL events.

All three formats are produced from deterministic snapshots (sorted metric
collection, monotonic span ids, sim-time timestamps), so two runs with the
same seed serialize byte-identically — the exporter round-trip tests pin
this.

* :func:`chrome_trace` — load the result into ``chrome://tracing`` or
  Perfetto: each burst is a process band, each instance a track, and the
  per-phase spans (schedule/build/ship/exec) render the scaling-time
  staircase of paper Fig. 1 directly.
* :func:`prometheus_text` — the text exposition format (``# HELP`` /
  ``# TYPE`` / samples, histograms as cumulative ``_bucket`` series).
* :func:`events_jsonl` — one JSON object per line for every
  :class:`~repro.telemetry.bus.TelemetryEvent` the bus saw.
"""

from __future__ import annotations

import json
import math
from typing import IO, Any, Iterable, Union

from repro.telemetry.bus import TelemetryEvent
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.tracer import Tracer

#: Simulation seconds → trace_event microseconds.
_US = 1e6


# --------------------------------------------------------------------- #
# Chrome trace_event
# --------------------------------------------------------------------- #
def chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """The tracer's spans as a Chrome ``trace_event`` JSON object."""
    events: list[dict[str, Any]] = []
    for pid in sorted(tracer.processes):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": tracer.processes[pid]},
            }
        )
    for span in tracer.spans:
        if not span.closed:
            continue
        events.append(
            {
                "ph": "X",
                "pid": span.process,
                "tid": span.track,
                "name": span.name,
                "cat": span.category or "span",
                "ts": span.start * _US,
                "dur": (span.end - span.start) * _US,
                "args": dict(sorted(span.attrs.items())),
            }
        )
    for mark in tracer.instants:
        events.append(
            {
                "ph": "i",
                "s": "t",
                "pid": mark.process,
                "tid": mark.track,
                "name": mark.name,
                "cat": mark.category or "mark",
                "ts": mark.time * _US,
                "args": dict(mark.attrs),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(destination: Union[str, IO[str]], tracer: Tracer) -> None:
    """Serialize :func:`chrome_trace` to a path or open text file."""
    document = chrome_trace(tracer)
    if hasattr(destination, "write"):
        json.dump(document, destination, sort_keys=True)
    else:
        with open(destination, "w") as fh:
            json.dump(document, fh, sort_keys=True)


# --------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------- #
def _fmt_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels: Iterable[tuple[str, str]]) -> str:
    pairs = [f'{key}="{val}"' for key, val in labels]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, kind, help_text, rows in registry.collect():
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, metric in rows:
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(metric.value)}")
            elif isinstance(metric, Histogram):
                cumulative = metric.cumulative()
                for bound, count in zip(metric.buckets, cumulative):
                    le = labels + (("le", _fmt_value(bound)),)
                    lines.append(f"{name}_bucket{_fmt_labels(le)} {count}")
                inf = labels + (("le", "+Inf"),)
                lines.append(f"{name}_bucket{_fmt_labels(inf)} {cumulative[-1]}")
                lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(metric.sum)}")
                lines.append(f"{name}_count{_fmt_labels(labels)} {metric.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{sample_name{labels}: value}``.

    A deliberately small parser — enough for the round-trip tests and for
    ``propack-trace`` summaries, not a general scrape implementation.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, raw = line.rpartition(" ")
        if not key:
            raise ValueError(f"unparseable sample line: {line!r}")
        value = float(raw)
        if key in samples:
            raise ValueError(f"duplicate sample {key!r}")
        samples[key] = value
    return samples


# --------------------------------------------------------------------- #
# Newline-delimited JSON event log
# --------------------------------------------------------------------- #
def events_jsonl(events: Iterable[TelemetryEvent]) -> str:
    """One sorted-key JSON object per line (empty string for no events)."""
    return "".join(
        json.dumps(event.as_dict(), sort_keys=True) + "\n" for event in events
    )


def parse_events_jsonl(text: str) -> list[dict[str, Any]]:
    return [json.loads(line) for line in text.splitlines() if line.strip()]
