"""Span-based tracing keyed to deterministic simulation time.

A :class:`Span` covers one phase of one unit of work — a placement search,
a container build, an execution — on a ``(process, track)`` pair that maps
directly onto Chrome ``trace_event``'s ``(pid, tid)``: the exporter renders
each burst (process) as a band of instance rows (tracks), so the scaling
staircase of paper Fig. 1 is visible at a glance.

Spans are linked parent→child by id, carry arbitrary attributes, and take
their timestamps from a pluggable *clock* — in this repo always a
simulator's ``now``, never the wall clock, so a seed reproduces the trace
byte for byte.

The tracer is explicitly *not* thread-aware and *not* sampled: simulations
are single-threaded and deterministic, and the consumer decides what to
drop at export time.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

#: A clock returning the current time in (simulated) seconds.
Clock = Callable[[], float]


def _zero_clock() -> float:
    return 0.0


@dataclass
class Span:
    """One timed phase of one unit of work."""

    span_id: int
    name: str
    start: float
    category: str = ""
    end: Optional[float] = None
    parent_id: Optional[int] = None
    process: int = 0
    track: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} (#{self.span_id}) is still open")
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """A zero-duration marker (retry scheduled, chain lost, 429 bounce)."""

    name: str
    time: float
    category: str = ""
    process: int = 0
    track: int = 0
    attrs: tuple[tuple[str, Any], ...] = ()


class Tracer:
    """Records spans and instants against a rebindable clock.

    One tracer outlives many simulations: each burst/serving run calls
    :meth:`new_process` (naming its band in the exported trace) and
    :meth:`bind_clock` with its own simulator, then spans accumulate into
    one trace. Span ids are assigned from a monotonic counter, so a fixed
    call sequence yields identical ids — the determinism the exporter
    round-trip tests pin.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock: Clock = clock or _zero_clock
        self._ids = itertools.count(1)
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.processes: dict[int, str] = {}
        self._current_process = 0

    # ------------------------------------------------------------------ #
    def bind_clock(self, clock: Clock) -> None:
        """Point the tracer at a (new) simulation's clock."""
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock()

    def new_process(self, name: str) -> int:
        """Open a new process band (one burst / serving run); returns pid."""
        pid = len(self.processes) + 1
        self.processes[pid] = name
        self._current_process = pid
        return pid

    # ------------------------------------------------------------------ #
    def start_span(
        self,
        name: str,
        category: str = "",
        parent: Optional[Span] = None,
        track: int = 0,
        **attrs: Any,
    ) -> Span:
        span = Span(
            span_id=next(self._ids),
            name=name,
            start=self._clock(),
            category=category,
            parent_id=parent.span_id if parent is not None else None,
            process=self._current_process,
            track=track if parent is None else parent.track,
            attrs=attrs,
        )
        self.spans.append(span)
        return span

    def end_span(self, span: Span, **attrs: Any) -> Span:
        """Close ``span`` at the current clock; extra attrs are merged in."""
        if span.end is not None:
            raise ValueError(f"span {span.name!r} (#{span.span_id}) already ended")
        span.end = self._clock()
        if attrs:
            span.attrs.update(attrs)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "",
        parent: Optional[Span] = None,
        track: int = 0,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Context-manager sugar for a span covering the ``with`` body."""
        handle = self.start_span(name, category, parent, track, **attrs)
        try:
            yield handle
        finally:
            self.end_span(handle)

    def instant(
        self, name: str, category: str = "", track: int = 0, **attrs: Any
    ) -> Instant:
        mark = Instant(
            name=name,
            time=self._clock(),
            category=category,
            process=self._current_process,
            track=track,
            attrs=tuple(sorted(attrs.items())),
        )
        self.instants.append(mark)
        return mark

    # ------------------------------------------------------------------ #
    def finished(self, category: Optional[str] = None) -> list[Span]:
        """Closed spans, optionally filtered by category."""
        return [
            s
            for s in self.spans
            if s.closed and (category is None or s.category == category)
        ]

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self.processes.clear()
        self._current_process = 0
        self._ids = itertools.count(1)

    def __len__(self) -> int:
        return len(self.spans)
