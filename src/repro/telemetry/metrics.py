"""Metrics registry: counters, gauges, fixed-bucket histograms.

Components across the stack (platform, serving, faults, resilience)
register named metrics here instead of hand-rolling counters. Three rules
keep the output bit-deterministic per seed:

* histogram bucket boundaries are fixed at creation (never adaptive),
* collection order is sorted by ``(name, labels)``, never insertion order,
* values are plain Python ints/floats updated by pure arithmetic.

Naming follows the Prometheus convention: ``propack_<subsystem>_<what>``
with a ``_total`` suffix for counters and a unit suffix (``_seconds``,
``_gb_seconds``, ``_usd``) where one applies — see
``docs/OBSERVABILITY.md`` for the catalogue.
"""

from __future__ import annotations

import bisect
import re
from typing import Any, Iterable, Optional

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram boundaries (seconds-flavoured, Prometheus-style).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0, 25.0, 60.0, 120.0, 300.0, 600.0,
)

LabelPairs = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelPairs:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (pool size, brownout level)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram with boundaries fixed at creation."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("need at least one bucket boundary")
        if any(bounds[i] >= bounds[i + 1] for i in range(len(bounds) - 1)):
            raise ValueError("bucket boundaries must be strictly increasing")
        self.buckets = bounds
        # counts[i] observes <= buckets[i]; the final slot is the +Inf bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Cumulative counts per boundary (Prometheus ``le`` semantics)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class _Family:
    """All instances of one metric name (one per label set)."""

    __slots__ = ("name", "kind", "help", "buckets", "instances")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.instances: dict[LabelPairs, Any] = {}


class MetricsRegistry:
    """Get-or-create registry for every metric in one telemetry session."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------ #
    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[tuple[float, ...]] = None,
    ) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, buckets)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        if kind == "histogram" and buckets != family.buckets:
            raise ValueError(f"metric {name!r} re-registered with other buckets")
        return family

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        family = self._family(name, "counter", help)
        return family.instances.setdefault(_label_key(labels), Counter())

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        family = self._family(name, "gauge", help)
        return family.instances.setdefault(_label_key(labels), Gauge())

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        help: str = "",
        **labels: str,
    ) -> Histogram:
        bounds = tuple(float(b) for b in buckets)
        family = self._family(name, "histogram", help, bounds)
        key = _label_key(labels)
        instance = family.instances.get(key)
        if instance is None:
            instance = Histogram(bounds)
            family.instances[key] = instance
        return instance

    # ------------------------------------------------------------------ #
    def get(self, name: str, **labels: str) -> Optional[Any]:
        """The existing metric for ``(name, labels)``, or ``None``."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.instances.get(_label_key(labels))

    def collect(self) -> list[tuple[str, str, str, list[tuple[LabelPairs, Any]]]]:
        """Deterministic snapshot: ``(name, kind, help, [(labels, metric)])``
        sorted by name then label set — the exporters' only input."""
        out = []
        for name in sorted(self._families):
            family = self._families[name]
            rows = sorted(family.instances.items(), key=lambda kv: kv[0])
            out.append((name, family.kind, family.help, rows))
        return out

    def __len__(self) -> int:
        return sum(len(f.instances) for f in self._families.values())
