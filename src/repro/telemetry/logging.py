"""Console logging for the command-line tools.

A thin wrapper over stdlib :mod:`logging` with two properties the CLIs
need:

* handlers resolve ``sys.stdout`` / ``sys.stderr`` *at emit time*, so
  pytest's ``capsys`` (and any other stream redirection) always sees the
  output;
* verbosity maps from ``-v`` / ``-q`` flag counts: the default level is
  ``INFO``, each ``-v`` lowers it one notch toward ``DEBUG``, each ``-q``
  raises it toward ``ERROR``.

Diagnostics (progress, warnings, errors) go through the logger to stderr;
program *output* — tables, reports, JSON documents — goes through
:func:`echo` to stdout, so ``propack-plan … | jq`` style pipelines stay
clean at any verbosity.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

#: Root logger name for every propack CLI.
CLI_LOGGER = "propack"


class ConsoleHandler(logging.Handler):
    """Write records to the *current* ``sys.stderr`` (late binding)."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stderr.write(self.format(record) + "\n")
        except Exception:  # pragma: no cover - mirrors logging's own policy
            self.handleError(record)


def verbosity_to_level(verbose: int = 0, quiet: int = 0) -> int:
    """Map ``-v``/``-q`` flag counts to a logging level (INFO by default)."""
    level = logging.INFO + 10 * (quiet - verbose)
    return max(logging.DEBUG, min(logging.ERROR, level))


def get_console_logger(
    name: str = CLI_LOGGER,
    verbose: int = 0,
    quiet: int = 0,
    fmt: Optional[str] = None,
) -> logging.Logger:
    """A configured CLI logger (idempotent: reconfigures on each call)."""
    logger = logging.getLogger(name)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = ConsoleHandler()
    handler.setFormatter(logging.Formatter(fmt or "%(message)s"))
    logger.addHandler(handler)
    logger.setLevel(verbosity_to_level(verbose, quiet))
    logger.propagate = False
    return logger


def echo(message: str = "") -> None:
    """Program output to the current stdout (the payload channel)."""
    sys.stdout.write(message + "\n")


def add_verbosity_flags(parser) -> None:
    """Attach the standard ``-v``/``-q`` counted flags to an argparse parser."""
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="more diagnostics (repeatable: -vv for debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="fewer diagnostics (repeatable)",
    )
