"""Structured observability for the packing/serving stack.

The paper's argument is a *decomposition* — where scheduling, building,
shipping, and execution time (and billed vs. unbilled dollars) go as
concurrency scales. This package makes that decomposition first-class:

* :mod:`~repro.telemetry.tracer` — span-based tracing keyed to
  deterministic simulation time (instance lifecycle phases, parent/child
  links, per-span attributes);
* :mod:`~repro.telemetry.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms that platform, serving, fault, and resilience
  components register into;
* :mod:`~repro.telemetry.bus` — the pub/sub event path shared with
  :class:`~repro.sim.trace.TraceRecorder`;
* :mod:`~repro.telemetry.exporters` — Chrome ``trace_event`` JSON (view
  the Fig. 1 scaling staircase in Perfetto), Prometheus text exposition,
  and a JSONL event log, all byte-deterministic per seed;
* :mod:`~repro.telemetry.config` — :class:`TelemetryConfig` /
  :class:`TelemetrySession`, the zero-cost-when-disabled switchboard;
* :mod:`~repro.telemetry.logging` — the CLI console helper.

See ``docs/OBSERVABILITY.md`` for the span model, metric naming
conventions, exporter formats, and overhead numbers.
"""

from repro.telemetry.bus import EventBus, EventLog, TelemetryEvent
from repro.telemetry.config import TelemetryConfig, TelemetrySession, resolve_session
from repro.telemetry.exporters import (
    chrome_trace,
    events_jsonl,
    parse_events_jsonl,
    parse_prometheus_text,
    prometheus_text,
    write_chrome_trace,
)
from repro.telemetry.instruments import BurstInstrumentation, ServingInstrumentation
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracer import Instant, Span, Tracer

__all__ = [
    "EventBus",
    "EventLog",
    "TelemetryEvent",
    "TelemetryConfig",
    "TelemetrySession",
    "resolve_session",
    "chrome_trace",
    "events_jsonl",
    "parse_events_jsonl",
    "parse_prometheus_text",
    "prometheus_text",
    "write_chrome_trace",
    "BurstInstrumentation",
    "ServingInstrumentation",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Instant",
    "Span",
    "Tracer",
]
