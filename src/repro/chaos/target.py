"""The ``chaos-serving`` campaign target: one audited serving run per storm.

The chaos search evaluates candidate storms through this
:class:`~repro.harness.targets.CampaignTarget`, so every evaluation —
including the minimized repro the shrinker emits — is a first-class
harness run: a byte-stable :class:`~repro.harness.manifest.RunManifest`
(the storm embeds as a validated :meth:`StormSpec.to_dict` payload, the
platform profile and app spec embed in full), a ``summary.json`` that
``propack-chaos replay`` / ``propack-campaign reproduce`` re-assert
byte-identically, and a ``metrics.jsonl`` carrying every invariant
violation the online auditor saw.

The target lives in ``repro.chaos`` — not ``repro.harness`` — because it
needs the auditor; the layering gate keeps harness (and everything below)
import-free of chaos. Importing ``repro.chaos`` registers the target in
the process-wide default registry.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.chaos.auditor import InvariantAuditor
from repro.chaos.composer import StormSpec
from repro.harness.manifest import canonical_json
from repro.harness.targets import CampaignTarget, RunOutput, register_target

#: Resolution defaults; every value lands fully expanded in the manifest.
_DEFAULTS: dict[str, Any] = {
    "app": "xapian",
    "platform": "google-cloud-functions",
    "horizon_s": 900.0,
    "rate_per_s": 6.0,
    "degree": 4,
    "batch_timeout_s": 2.0,
    "qos_sojourn_s": 30.0,
    "warm_ttl_s": 120.0,
    "protected": False,
    "admission_limit": 64,
    "audit": True,
    "slo_attainment_floor": 0.9,
}


class ChaosServingTarget(CampaignTarget):
    """Serve one storm, audited, and summarize the damage."""

    name = "chaos-serving"

    def resolve(self, params: Mapping[str, Any]) -> dict[str, Any]:
        from dataclasses import asdict

        from repro.platform.providers import PROVIDERS
        from repro.workloads import ALL_APPS

        params = dict(params)
        storm_payload = params.pop("storm", {})
        # Normalizing through StormSpec both validates the knobs and pins
        # every default into the manifest.
        storm = StormSpec.from_dict(storm_payload)
        resolved = dict(_DEFAULTS)
        for key in _DEFAULTS:
            if key in params:
                resolved[key] = params.pop(key)
        if params:
            raise ValueError(f"chaos-serving: unknown params {sorted(params)}")
        if resolved["app"] not in ALL_APPS:
            raise ValueError(f"chaos-serving: unknown app {resolved['app']!r}")
        if resolved["platform"] not in PROVIDERS:
            raise ValueError(
                f"chaos-serving: unknown platform {resolved['platform']!r}"
            )
        if resolved["horizon_s"] <= 0 or resolved["rate_per_s"] <= 0:
            raise ValueError("chaos-serving: horizon and rate must be positive")
        resolved["protected"] = bool(resolved["protected"])
        resolved["audit"] = bool(resolved["audit"])
        resolved["storm"] = storm.to_dict()
        resolved["app_spec"] = asdict(ALL_APPS[resolved["app"]])
        resolved["platform_profile"] = asdict(PROVIDERS[resolved["platform"]])
        return resolved

    def execute(self, resolved: Mapping[str, Any], seed: int) -> RunOutput:
        import numpy as np

        from repro.core.models import ExecutionTimeModel
        from repro.extensions.streaming import StreamingPolicy
        from repro.faults.retry import ExponentialBackoffRetry
        from repro.platform.providers import PROVIDERS
        from repro.resilience import (
            CircuitBreakerBank,
            ConcurrencyLimitAdmission,
            ResiliencePolicy,
        )
        from repro.serving import (
            FixedTTL,
            PoissonProcess,
            ServingConfig,
            ServingSimulator,
            WarmPool,
        )
        from repro.telemetry.config import TelemetryConfig, TelemetrySession
        from repro.workloads import ALL_APPS

        profile = PROVIDERS[resolved["platform"]]
        app = ALL_APPS[resolved["app"]]
        serving_cfg = ServingConfig(qos_sojourn_s=float(resolved["qos_sojourn_s"]))
        storm = StormSpec.from_dict(resolved["storm"])
        scenario = storm.compose(
            float(resolved["horizon_s"]), serving_cfg.fault_domains
        )
        # The coefficient-pinned model the seeded goldens use: exec time is
        # a pure function of the packing degree, no profiling required.
        exec_model = ExecutionTimeModel(
            coeff_a=app.base_seconds, coeff_b=0.03, mem_gb=app.mem_gb
        )
        resilience = None
        if resolved["protected"]:
            resilience = ResiliencePolicy(
                admission=ConcurrencyLimitAdmission(
                    limit=int(resolved["admission_limit"])
                ),
                breakers=CircuitBreakerBank(
                    n_domains=serving_cfg.fault_domains,
                    rng=np.random.default_rng(seed),
                    failure_threshold=3,
                    recovery_s=60.0,
                ),
            )
        auditor = None
        session = None
        if resolved["audit"]:
            # A bus-only session: no tracer, no metrics, no event log —
            # just the audit.* stream feeding the online auditor.
            session = TelemetrySession(
                TelemetryConfig(tracing=False, metrics=False, events=False)
            )
            auditor = InvariantAuditor().attach(session.bus)
        simulator = ServingSimulator(
            profile,
            app,
            exec_model,
            pool=WarmPool(FixedTTL(float(resolved["warm_ttl_s"]))),
            config=serving_cfg,
            resilience=resilience,
            scenario=scenario,
            retry_policy=ExponentialBackoffRetry(max_retries=3),
            seed=seed,
            telemetry=session,
        )
        run = simulator.run(
            PoissonProcess(float(resolved["rate_per_s"])),
            StreamingPolicy(
                degree=int(resolved["degree"]),
                batch_timeout_s=float(resolved["batch_timeout_s"]),
            ),
            float(resolved["horizon_s"]),
        )
        violations: list = []
        events_seen = 0
        if auditor is not None:
            report = auditor.finalize(
                run, breakers=resilience.breakers if resilience else None
            )
            violations = report.violations
            events_seen = report.events_seen
        attainment = run.windowed_p99_attainment()
        # A total-loss storm completes nothing; the digest has no quantile.
        p99 = run.p99_sojourn_s if run.n_completed > 0 else -1.0
        summary = {
            "storm": storm.name,
            "protected": bool(resolved["protected"]),
            "requests": run.n_requests,
            "completed": run.n_completed,
            "shed": run.n_shed,
            "failed": run.n_failed,
            "attainment": attainment,
            "p99_s": p99,
            "expense_usd": run.expense.total_usd,
            "usd_per_1k_completed": run.cost_per_completed_request_usd() * 1000,
            "crashes": run.resilience.crashes,
            "retries": run.resilience.retries,
            "throttled": run.resilience.throttled_attempts,
            "throttle_drops": run.resilience.throttle_drops,
            "breaker_opens": run.resilience.breaker_opens,
            "max_backlog": run.backlog.max_depth,
            "conserved": run.conserved() and run.resilience.conserved(),
            "slo_breach": attainment < float(resolved["slo_attainment_floor"]),
            "audit_events": events_seen,
            "violations": len(violations),
            "violation_kinds": sorted({v.invariant for v in violations}),
        }
        metrics = "".join(
            canonical_json(
                {"invariant": v.invariant, "time": v.time, "message": v.message}
            )
            + "\n"
            for v in violations
        )
        return RunOutput(summary=summary, metrics_jsonl=metrics)


# Module-level registration: importing repro.chaos (or this module) makes
# "chaos-serving" resolvable by manifests; module caching keeps it one-shot.
register_target(ChaosServingTarget())
