"""``python -m repro.chaos`` == ``propack-chaos``."""

from repro.chaos.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
