"""The invariant library: conservation and legality checks in one place.

Every identity that makes a serving result *trustworthy* used to live in
docstrings (``arrivals == admitted + shed`` in ``serving/service.py``) and
scattered test assertions. This module is now the single home: the test
suites call :func:`assert_serving_invariants`, the online
:class:`~repro.chaos.auditor.InvariantAuditor` calls the per-event
predicates, and the chaos search scores storms by what they break — so the
simulator and its auditors can never drift apart.

Catalog (see ``docs/CHAOS.md``):

=====================  ==================================================
invariant              statement
=====================  ==================================================
admission-conservation arrivals == admitted + shed (exact, integer)
request-conservation   arrivals == completed + shed + failed after drain
expense-breakdown      every component finite and >= 0; a reported total
                       equals the component sum
billing-legality       billed seconds >= executed seconds (providers
                       never bill less than the work they ran)
breaker-legality       per-domain transition chains use only legal edges
                       (closed->open, open->half-open, half-open->closed,
                       half-open->open) with continuous src/dst linkage
                       and non-decreasing times
remediation-pairing    every rollback undoes exactly one earlier apply
span-nesting           a child span lies inside its parent's interval;
                       every span closes with end >= start
sim-time-monotonic     audited event times never decrease
dispatch-lifecycle     every dispatch terminates exactly once, and only
                       after it was launched
tenant-conservation    per-tenant submitted == admitted + rejected, all
                       counters non-negative (exact, integer)
billing-attribution    per-tenant bills are finite and >= 0, and their
                       sum equals the fleet's reported expense total
=====================  ==================================================

All checks are pure functions returning :class:`Violation` lists — no
simulator imports, so the library is usable from tests, the auditor, and
offline analysis alike.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

#: Absolute slack for float comparisons (sim arithmetic is double-precision
#: exact per seed; the epsilon only forgives representation noise).
EPS = 1e-9

#: Legal circuit-breaker state transitions (src, dst).
LEGAL_BREAKER_EDGES = frozenset(
    {
        ("closed", "open"),
        ("open", "half-open"),
        ("half-open", "closed"),
        ("half-open", "open"),
    }
)


@dataclass(frozen=True)
class Violation:
    """One broken invariant, pinned to sim time."""

    invariant: str
    time: float
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant} @ t={self.time:g}] {self.message}"


# --------------------------------------------------------------------- #
# conservation
# --------------------------------------------------------------------- #
def check_admission_conservation(report: Any, time: float = 0.0) -> list[Violation]:
    """``arrivals == admitted + shed`` on a :class:`ResilienceReport`."""
    if report.arrivals == report.admitted + report.shed:
        return []
    return [
        Violation(
            "admission-conservation",
            time,
            f"arrivals={report.arrivals} != admitted={report.admitted} "
            f"+ shed={report.shed}",
        )
    ]


def check_request_conservation(result: Any, time: float = 0.0) -> list[Violation]:
    """``arrivals == completed + shed + failed`` on a drained ServingResult."""
    total = result.n_completed + result.n_shed + result.n_failed
    if result.n_requests == total:
        return []
    return [
        Violation(
            "request-conservation",
            time,
            f"n_requests={result.n_requests} != completed={result.n_completed} "
            f"+ shed={result.n_shed} + failed={result.n_failed}",
        )
    ]


# --------------------------------------------------------------------- #
# billing
# --------------------------------------------------------------------- #
def check_expense_breakdown(
    expense: Any,
    reported_total: Optional[float] = None,
    time: float = 0.0,
) -> list[Violation]:
    """Component sanity plus an optional cross-check of a reported total.

    The components must be finite and non-negative; when a separately
    *reported* total is supplied (a summary scalar, a ledger entry), it
    must equal the component sum — the planted-bug test feeds a total that
    silently dropped a line item.
    """
    out: list[Violation] = []
    components = {
        "compute_usd": expense.compute_usd,
        "requests_usd": expense.requests_usd,
        "storage_usd": expense.storage_usd,
        "egress_usd": expense.egress_usd,
        "keepalive_usd": expense.keepalive_usd,
    }
    for name, value in components.items():
        if not math.isfinite(value) or value < 0.0:
            out.append(
                Violation(
                    "expense-breakdown", time, f"{name}={value!r} is not a legal charge"
                )
            )
    component_sum = sum(components.values())
    if reported_total is not None and not math.isclose(
        reported_total, component_sum, rel_tol=EPS, abs_tol=EPS
    ):
        out.append(
            Violation(
                "expense-breakdown",
                time,
                f"reported total {reported_total!r} != component sum "
                f"{component_sum!r}",
            )
        )
    return out


def check_billed_vs_executed(
    billed_s: float, exec_s: float, time: float = 0.0
) -> list[Violation]:
    """``billed >= executed``: a provider never bills less than it ran."""
    if billed_s + EPS >= exec_s:
        return []
    return [
        Violation(
            "billing-legality",
            time,
            f"billed {billed_s:g}s < executed {exec_s:g}s",
        )
    ]


# --------------------------------------------------------------------- #
# state machines
# --------------------------------------------------------------------- #
def check_breaker_transitions(
    log: Iterable[tuple[float, int, str, str]],
) -> list[Violation]:
    """Legality of a :meth:`CircuitBreakerBank.transition_log`.

    Three properties per domain: every edge is in
    :data:`LEGAL_BREAKER_EDGES`; consecutive transitions chain (the next
    edge's source is the previous edge's destination, starting from
    ``closed``); times never decrease.
    """
    out: list[Violation] = []
    state: dict[int, str] = {}
    last_t: dict[int, float] = {}
    for t, domain, src, dst in log:
        if (src, dst) not in LEGAL_BREAKER_EDGES:
            out.append(
                Violation(
                    "breaker-legality", t, f"domain {domain}: illegal edge {src}->{dst}"
                )
            )
        expected = state.get(domain, "closed")
        if src != expected:
            out.append(
                Violation(
                    "breaker-legality",
                    t,
                    f"domain {domain}: transition from {src!r} but the "
                    f"domain was {expected!r}",
                )
            )
        if t < last_t.get(domain, 0.0):
            out.append(
                Violation(
                    "breaker-legality",
                    t,
                    f"domain {domain}: transition time went backwards "
                    f"({last_t[domain]:g} -> {t:g})",
                )
            )
        state[domain] = dst
        last_t[domain] = t
    return out


def check_remediation_pairing(report: Any) -> list[Violation]:
    """Every rollback must undo exactly one *earlier* application.

    ``report`` is a :class:`~repro.remediation.loop.RemediationReport`:
    ``applications`` holds ``(t, action_signature)`` and ``rollbacks``
    holds ``(t, inverse_signature, original_signature)``. A rollback whose
    original was never applied (or already rolled back) is a pairing
    violation; so is a rollback stamped before its application.
    """
    out: list[Violation] = []
    open_applies: list[tuple[float, tuple]] = []
    events: list[tuple[float, int, str, tuple]] = []
    for t, sig in report.applications:
        events.append((t, 0, "apply", tuple(sig)))
    for t, _inv, orig in report.rollbacks:
        events.append((t, 1, "rollback", tuple(orig)))
    for t, _order, stage, sig in sorted(events, key=lambda e: (e[0], e[1])):
        if stage == "apply":
            open_applies.append((t, sig))
            continue
        for i, (applied_t, applied_sig) in enumerate(open_applies):
            if applied_sig == sig and applied_t <= t:
                del open_applies[i]
                break
        else:
            out.append(
                Violation(
                    "remediation-pairing",
                    t,
                    f"rollback of {sig!r} has no matching earlier apply",
                )
            )
    return out


# --------------------------------------------------------------------- #
# telemetry structure
# --------------------------------------------------------------------- #
def check_span_nesting(tracer: Any) -> list[Violation]:
    """Structural legality of a :class:`~repro.telemetry.tracer.Tracer`.

    Every span must close with ``end >= start``; every child must name an
    existing parent and lie inside the parent's closed interval.
    """
    out: list[Violation] = []
    by_id = {s.span_id: s for s in tracer.spans}
    for span in tracer.spans:
        if span.end is not None and span.end + EPS < span.start:
            out.append(
                Violation(
                    "span-nesting",
                    span.start,
                    f"span #{span.span_id} {span.name!r} ends before it starts "
                    f"({span.start:g} -> {span.end:g})",
                )
            )
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            out.append(
                Violation(
                    "span-nesting",
                    span.start,
                    f"span #{span.span_id} {span.name!r} names missing parent "
                    f"#{span.parent_id}",
                )
            )
            continue
        if span.start + EPS < parent.start:
            out.append(
                Violation(
                    "span-nesting",
                    span.start,
                    f"child #{span.span_id} starts before parent "
                    f"#{parent.span_id} ({span.start:g} < {parent.start:g})",
                )
            )
        if (
            span.end is not None
            and parent.end is not None
            and span.end > parent.end + EPS
        ):
            out.append(
                Violation(
                    "span-nesting",
                    span.end,
                    f"child #{span.span_id} ends after parent "
                    f"#{parent.span_id} ({span.end:g} > {parent.end:g})",
                )
            )
    return out


def check_monotonic_times(times: Sequence[float]) -> list[Violation]:
    """Audited event times must never decrease."""
    out: list[Violation] = []
    for prev, cur in zip(times, times[1:]):
        if cur + EPS < prev:
            out.append(
                Violation(
                    "sim-time-monotonic",
                    cur,
                    f"event time went backwards ({prev:g} -> {cur:g})",
                )
            )
    return out


# --------------------------------------------------------------------- #
# the one entry point the test suites use
# --------------------------------------------------------------------- #
def serving_violations(
    result: Any,
    breakers: Any = None,
    tracer: Any = None,
) -> list[Violation]:
    """Every end-of-run invariant applicable to one ServingResult."""
    out: list[Violation] = []
    out.extend(check_admission_conservation(result.resilience))
    out.extend(check_request_conservation(result))
    out.extend(
        check_expense_breakdown(result.expense, reported_total=result.expense.total_usd)
    )
    if breakers is not None:
        out.extend(check_breaker_transitions(breakers.transition_log()))
    if result.remediation is not None:
        out.extend(check_remediation_pairing(result.remediation))
    if tracer is not None:
        out.extend(check_span_nesting(tracer))
    return out


def assert_serving_invariants(
    result: Any,
    breakers: Any = None,
    tracer: Any = None,
) -> None:
    """Raise ``AssertionError`` listing every violated invariant.

    The conservation tests across the serving/resilience/remediation
    suites call this instead of re-deriving the identities inline, so the
    checked algebra is byte-for-byte the auditor's.
    """
    violations = serving_violations(result, breakers=breakers, tracer=tracer)
    assert not violations, "invariant violations:\n" + "\n".join(
        str(v) for v in violations
    )


# --------------------------------------------------------------------- #
# multi-tenant fleet fairness (SharedFleet / FusedFleet ledgers)
# --------------------------------------------------------------------- #
def check_tenant_conservation(
    accounts: Iterable[Any], time: float = 0.0
) -> list[Violation]:
    """Per tenant: ``submitted == admitted + rejected``, counters >= 0.

    Accepts any iterable of ledger entries with ``tenant``/``submitted``/
    ``admitted``/``rejected`` attributes (duck-typed — both
    :class:`repro.platform.multitenant.FleetAccount` ledgers and fused
    fleets qualify; no fleet imports here).
    """
    out: list[Violation] = []
    for account in accounts:
        counters = (account.submitted, account.admitted, account.rejected)
        if any(c < 0 for c in counters):
            out.append(
                Violation(
                    "tenant-conservation",
                    time,
                    f"tenant {account.tenant!r} has a negative counter "
                    f"(submitted={account.submitted}, "
                    f"admitted={account.admitted}, "
                    f"rejected={account.rejected})",
                )
            )
        if account.submitted != account.admitted + account.rejected:
            out.append(
                Violation(
                    "tenant-conservation",
                    time,
                    f"tenant {account.tenant!r}: submitted "
                    f"{account.submitted} != admitted {account.admitted} "
                    f"+ rejected {account.rejected}",
                )
            )
    return out


def check_tenant_billing_attribution(
    total_usd: float, bills: Iterable[Any], time: float = 0.0
) -> list[Violation]:
    """Per-tenant bills are finite, non-negative, and sum to the total.

    ``bills`` is any iterable with ``tenant``/``total_usd`` attributes
    (e.g. :class:`repro.fusion.scheduler.TenantBill`). The platform must
    never invent or lose dollars when splitting a shared instance's cost.
    """
    out: list[Violation] = []
    billed = 0.0
    for bill in bills:
        value = bill.total_usd
        if not math.isfinite(value) or value < -EPS:
            out.append(
                Violation(
                    "billing-attribution",
                    time,
                    f"tenant {bill.tenant!r} bill is {value!r}",
                )
            )
            continue
        billed += value
    tolerance = EPS * max(1.0, abs(total_usd))
    if not math.isfinite(total_usd) or abs(billed - total_usd) > tolerance:
        out.append(
            Violation(
                "billing-attribution",
                time,
                f"tenant bills sum to {billed!r} but the fleet reported "
                f"{total_usd!r}",
            )
        )
    return out


def fleet_violations(report: Any) -> list[Violation]:
    """Every end-of-run invariant applicable to one fused-fleet run.

    Duck-typed against :class:`repro.fusion.fleet.FleetRunReport`:
    ``accounts`` (tenant -> ledger), ``report.bills``, ``expense_usd``,
    and the inner run's expense breakdown.
    """
    out: list[Violation] = []
    out.extend(check_tenant_conservation(report.accounts.values()))
    out.extend(
        check_tenant_billing_attribution(report.expense_usd, report.report.bills)
    )
    out.extend(
        check_expense_breakdown(
            report.report.expense, reported_total=report.expense_usd
        )
    )
    return out


def assert_fleet_invariants(report: Any) -> None:
    """Raise ``AssertionError`` listing every violated fleet invariant."""
    violations = fleet_violations(report)
    assert not violations, "invariant violations:\n" + "\n".join(
        str(v) for v in violations
    )
