"""Adversarial chaos search with a runtime invariant auditor.

``repro.chaos`` sits at the very top of the engine layering — above
serving, resilience, remediation, *and* the campaign harness — because it
drives all of them as a black box:

* :mod:`repro.chaos.invariants` — the shared library of conservation and
  legality invariants (request conservation, expense-breakdown sums,
  billed >= executed, breaker state-machine legality, remediation
  apply/rollback pairing, span nesting, sim-time monotonicity);
* :mod:`repro.chaos.auditor` — :class:`InvariantAuditor`, checking those
  invariants *online* over the opt-in ``audit.*`` telemetry event family
  (zero events are published when no auditor is attached);
* :mod:`repro.chaos.composer` — :class:`StormSpec`, the bounded
  multi-phase storm genome (crash floor, poisoned start, gray window,
  correlated shocks) with seeded mutation and shrink operators;
* :mod:`repro.chaos.target` — the ``chaos-serving`` campaign target: one
  audited serving run per storm, replayable byte-identically;
* :mod:`repro.chaos.search` — the coverage-guided loop that finds,
  shrinks, and persists SLO-breaking storms;
* :mod:`repro.chaos.cli` — the ``propack-chaos`` entry point
  (``search`` / ``audit`` / ``replay``).

See ``docs/CHAOS.md``.
"""

from repro.chaos.auditor import AUDIT_KINDS, AuditReport, InvariantAuditor
from repro.chaos.composer import CORPUS, PARAM_BOUNDS, StormSpec, corpus
from repro.chaos.invariants import (
    EPS,
    LEGAL_BREAKER_EDGES,
    Violation,
    assert_fleet_invariants,
    assert_serving_invariants,
    check_admission_conservation,
    check_billed_vs_executed,
    check_breaker_transitions,
    check_expense_breakdown,
    check_monotonic_times,
    check_remediation_pairing,
    check_request_conservation,
    check_span_nesting,
    check_tenant_billing_attribution,
    check_tenant_conservation,
    fleet_violations,
    serving_violations,
)
from repro.chaos.search import (
    ChaosSearch,
    Evaluation,
    SearchConfig,
    SearchReport,
    coverage_features,
    damage_score,
    search_storms,
    violation_classes,
)
from repro.chaos.target import ChaosServingTarget

__all__ = [
    "AUDIT_KINDS",
    "AuditReport",
    "InvariantAuditor",
    "CORPUS",
    "PARAM_BOUNDS",
    "StormSpec",
    "corpus",
    "EPS",
    "LEGAL_BREAKER_EDGES",
    "Violation",
    "assert_fleet_invariants",
    "assert_serving_invariants",
    "check_admission_conservation",
    "check_billed_vs_executed",
    "check_breaker_transitions",
    "check_expense_breakdown",
    "check_monotonic_times",
    "check_remediation_pairing",
    "check_request_conservation",
    "check_span_nesting",
    "check_tenant_billing_attribution",
    "check_tenant_conservation",
    "fleet_violations",
    "serving_violations",
    "ChaosSearch",
    "Evaluation",
    "SearchConfig",
    "SearchReport",
    "coverage_features",
    "damage_score",
    "search_storms",
    "violation_classes",
    "ChaosServingTarget",
]
