"""Runtime invariant auditor: online checks over the telemetry EventBus.

The auditor subscribes to the opt-in ``audit.*`` event family that
:class:`~repro.telemetry.instruments.ServingInstrumentation` offers on
every hook. Publication is gated on a precomputed "any auditor attached?"
flag (re-derived when the bus's subscription set changes; see
``ServingInstrumentation._refresh_audit_gate``) plus a per-kind check, so
a session without an auditor publishes nothing and allocates nothing — the zero-cost-when-disabled contract the telemetry
overhead benchmark enforces — and a session *with* one checks invariants
as the simulation runs, catching an accounting bug at the event where it
first becomes visible instead of in a post-mortem diff.

Online checks: sim-time monotonicity, dispatch lifecycle legality (launch
before terminate, terminate exactly once), running request conservation
(completed + failed never exceeds admitted; a completion never delivers
more requests than its dispatch carried), billed >= executed on every
completion, and remediation apply/rollback pairing. End-of-run checks
(:meth:`InvariantAuditor.finalize`) delegate to the shared library in
:mod:`repro.chaos.invariants`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.chaos.invariants import (
    EPS,
    Violation,
    serving_violations,
)

#: Every event kind the auditor subscribes to (and the instrumentation
#: offers). Kept in one tuple so instrumentation and auditor cannot drift.
AUDIT_KINDS: tuple[str, ...] = (
    "audit.arrival",
    "audit.dispatch",
    "audit.complete",
    "audit.crash",
    "audit.retry",
    "audit.throttled",
    "audit.fail",
    "audit.tick",
    "audit.remediation",
)

_ARRIVAL_VERDICTS = frozenset({"admitted", "shed-admission", "shed-brownout"})


@dataclass
class AuditReport:
    """What one audited run looked like to the auditor."""

    events_seen: int = 0
    checks_run: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_invariant(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for v in self.violations:
            counts[v.invariant] = counts.get(v.invariant, 0) + 1
        return dict(sorted(counts.items()))

    def violation_kinds(self) -> list[str]:
        return sorted({v.invariant for v in self.violations})

    def summary(self) -> str:
        if self.ok:
            return (
                f"audit clean: {self.events_seen} events, "
                f"{self.checks_run} checks, 0 violations"
            )
        kinds = ", ".join(
            f"{kind}×{n}" for kind, n in self.by_invariant().items()
        )
        return (
            f"audit FAILED: {len(self.violations)} violations "
            f"({kinds}) over {self.events_seen} events"
        )


class InvariantAuditor:
    """Subscribes to ``audit.*`` events and checks invariants online.

    Usage::

        session = TelemetrySession(TelemetryConfig(tracing=False,
                                                   metrics=False,
                                                   events=False))
        auditor = InvariantAuditor().attach(session.bus)
        sim = ServingSimulator(..., telemetry=session)
        result = sim.run(...)
        report = auditor.finalize(result, breakers=policy.breakers)

    ``detach()`` removes every subscription, restoring the bus to the
    publish-nothing state.
    """

    def __init__(self) -> None:
        self.report = AuditReport()
        self._unsubscribe: list[Any] = []
        self._last_time: Optional[float] = None
        # dispatch_id -> batch size, for lifecycle + conservation checks
        self._open_dispatches: dict[int, int] = {}
        self._arrivals = 0
        self._admitted = 0
        self._shed = 0
        self._completed = 0
        self._failed = 0
        # remediation pairing: action signature string -> open apply count
        self._open_applies: dict[str, int] = {}
        self._finalized = False

    # ------------------------------------------------------------------ #
    def attach(self, bus: Any) -> "InvariantAuditor":
        """Subscribe to every ``audit.*`` kind on ``bus`` (per-kind, never
        catch-all — the instrumentation's gate depends on that)."""
        handlers = {
            "audit.arrival": self._on_arrival,
            "audit.dispatch": self._on_dispatch,
            "audit.complete": self._on_complete,
            "audit.crash": self._on_crash,
            "audit.fail": self._on_fail,
            "audit.remediation": self._on_remediation,
        }
        for kind in AUDIT_KINDS:
            handler = handlers.get(kind, self._on_other)
            self._unsubscribe.append(bus.subscribe(self._wrap(handler), kind=kind))
        return self

    def detach(self) -> None:
        for unsub in self._unsubscribe:
            unsub()
        self._unsubscribe.clear()

    # ------------------------------------------------------------------ #
    def _wrap(self, handler):
        def observe(event) -> None:
            self.report.events_seen += 1
            self._check_monotonic(event)
            handler(event)

        return observe

    def _violate(self, invariant: str, time: float, message: str) -> None:
        self.report.violations.append(Violation(invariant, time, message))

    def _check_monotonic(self, event) -> None:
        self.report.checks_run += 1
        if self._last_time is not None and event.time + EPS < self._last_time:
            self._violate(
                "sim-time-monotonic",
                event.time,
                f"event {event.kind!r} at t={event.time:g} after "
                f"t={self._last_time:g}",
            )
        self._last_time = event.time

    # ------------------------------------------------------------------ #
    def _on_arrival(self, event) -> None:
        self.report.checks_run += 1
        verdict = event.get("verdict")
        self._arrivals += 1
        if verdict == "admitted":
            self._admitted += 1
        elif verdict in _ARRIVAL_VERDICTS:
            self._shed += 1
        else:
            self._violate(
                "admission-conservation",
                event.time,
                f"unknown arrival verdict {verdict!r}",
            )
        if self._arrivals != self._admitted + self._shed:
            self._violate(
                "admission-conservation",
                event.time,
                f"arrivals={self._arrivals} != admitted={self._admitted} "
                f"+ shed={self._shed}",
            )

    def _on_dispatch(self, event) -> None:
        self.report.checks_run += 1
        dispatch = event.get("dispatch")
        batch = event.get("batch", 0)
        if dispatch in self._open_dispatches:
            self._violate(
                "dispatch-lifecycle",
                event.time,
                f"dispatch {dispatch} launched twice without terminating",
            )
        if batch < 1:
            self._violate(
                "dispatch-lifecycle",
                event.time,
                f"dispatch {dispatch} carries batch={batch}",
            )
        self._open_dispatches[dispatch] = batch

    def _terminate(self, event, outcome: str) -> Optional[int]:
        dispatch = event.get("dispatch")
        if dispatch not in self._open_dispatches:
            self._violate(
                "dispatch-lifecycle",
                event.time,
                f"{outcome} for dispatch {dispatch} that is not in flight",
            )
            return None
        return self._open_dispatches.pop(dispatch)

    def _on_complete(self, event) -> None:
        self.report.checks_run += 1
        batch = self._terminate(event, "completion")
        n = event.get("n", 0)
        if batch is not None and n != batch:
            self._violate(
                "request-conservation",
                event.time,
                f"dispatch {event.get('dispatch')} completed {n} requests "
                f"but carried {batch}",
            )
        self._completed += n
        exec_s = event.get("exec_s", -1.0)
        billed_s = event.get("billed_s", -1.0)
        if exec_s >= 0.0 and billed_s >= 0.0 and billed_s + EPS < exec_s:
            self._violate(
                "billing-legality",
                event.time,
                f"dispatch {event.get('dispatch')} billed {billed_s:g}s "
                f"< executed {exec_s:g}s",
            )
        self._check_running_conservation(event)

    def _on_crash(self, event) -> None:
        self.report.checks_run += 1
        self._terminate(event, "crash")

    def _on_fail(self, event) -> None:
        self.report.checks_run += 1
        self._failed += event.get("batch", 0)
        self._check_running_conservation(event)

    def _check_running_conservation(self, event) -> None:
        if self._completed + self._failed > self._admitted:
            self._violate(
                "request-conservation",
                event.time,
                f"completed={self._completed} + failed={self._failed} "
                f"exceeds admitted={self._admitted}",
            )

    def _on_remediation(self, event) -> None:
        self.report.checks_run += 1
        stage = event.get("stage")
        action = str(event.get("action", "?"))
        if stage == "apply":
            self._open_applies[action] = self._open_applies.get(action, 0) + 1
        elif stage == "rollback":
            if self._open_applies.get(action, 0) < 1:
                self._violate(
                    "remediation-pairing",
                    event.time,
                    f"rollback of {action!r} with no open apply",
                )
            else:
                self._open_applies[action] -= 1

    def _on_other(self, event) -> None:
        self.report.checks_run += 1  # monotonicity already ran in the wrap

    # ------------------------------------------------------------------ #
    def finalize(
        self,
        result: Any = None,
        breakers: Any = None,
        tracer: Any = None,
    ) -> AuditReport:
        """End-of-run pass: leftover in-flight dispatches plus the shared
        library checks from :mod:`repro.chaos.invariants`. Idempotent."""
        if not self._finalized:
            self._finalized = True
            now = self._last_time or 0.0
            for dispatch, batch in sorted(self._open_dispatches.items()):
                self._violate(
                    "dispatch-lifecycle",
                    now,
                    f"dispatch {dispatch} (batch={batch}) never terminated",
                )
            if result is not None:
                self.report.checks_run += 1
                self.report.violations.extend(
                    serving_violations(result, breakers=breakers, tracer=tracer)
                )
        return self.report
