"""``propack-chaos`` — adversarial storm search, auditing, and replay.

Subcommands::

    propack-chaos search --seed 0 --rounds 3 --root results
        Run the coverage-guided storm search against (un)protected
        serving, shrink the best failing storm to a minimal reproducing
        scenario, and persist it as a harness manifest under
        results/chaos/<run_id>/. Exits 0 when a failing storm was found
        and minimized (that is the search *succeeding*), 1 when every
        storm survived.

    propack-chaos audit --scenario calm --protected
        Serve one named fault scenario (or a storm JSON file) with the
        online invariant auditor attached and report the verdict. Exits
        non-zero on any violation — this is the CI gate that golden runs
        stay invariant-clean.

    propack-chaos replay results/chaos/<run_id>/manifest.json
        Re-execute a minimized storm manifest twice and assert both
        reproductions are byte-identical to the recorded summary.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional, Sequence

from repro.chaos.auditor import InvariantAuditor
from repro.chaos.composer import CORPUS, StormSpec
from repro.chaos.search import ChaosSearch, SearchConfig
from repro.harness.artifacts import ArtifactStore
from repro.harness.reproduce import reproduce_run
from repro.telemetry.logging import add_verbosity_flags, echo, get_console_logger


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="propack-chaos",
        description=(
            "Adversarial chaos search with a runtime invariant auditor "
            "and minimized repro manifests."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    search = sub.add_parser("search", help="find, shrink, and persist a storm")
    search.add_argument("--seed", type=int, default=0)
    search.add_argument("--rounds", type=int, default=3,
                        help="mutation rounds after the seed corpus")
    search.add_argument("--population", type=int, default=4,
                        help="mutants evaluated per round")
    search.add_argument("--horizon", type=float, default=900.0,
                        help="serving horizon per evaluation (seconds)")
    search.add_argument("--rate", type=float, default=6.0,
                        help="arrival rate (requests/second)")
    search.add_argument("--protected", action="store_true",
                        help="attack protected serving (default: unprotected)")
    search.add_argument("--slo-floor", type=float, default=0.9,
                        help="windowed P99 attainment below this is a breach")
    search.add_argument("--shrink-budget", type=int, default=24,
                        help="max evaluations spent minimizing")
    search.add_argument("--root", default="results",
                        help="artifact root for the minimized manifest")
    search.add_argument("--campaign", default="chaos")
    add_verbosity_flags(search)

    audit = sub.add_parser("audit", help="audit one serving run online")
    audit.add_argument("--scenario", default="calm",
                       help="a named FaultScenario (calm/flaky/stormy/"
                            "throttled), a storm archetype, or a JSON file "
                            "holding a StormSpec dict")
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument("--horizon", type=float, default=900.0)
    audit.add_argument("--rate", type=float, default=6.0)
    audit.add_argument("--protected", action="store_true")
    add_verbosity_flags(audit)

    replay = sub.add_parser("replay", help="re-assert a minimized manifest")
    replay.add_argument("manifest", help="path to a run's manifest.json")
    replay.add_argument("--times", type=int, default=2,
                        help="how many reproductions to assert (default 2)")
    add_verbosity_flags(replay)

    return parser


# --------------------------------------------------------------------- #
def _cmd_search(args, log) -> int:
    config = SearchConfig(
        seed=args.seed,
        rounds=args.rounds,
        population=args.population,
        horizon_s=args.horizon,
        rate_per_s=args.rate,
        protected=args.protected,
        slo_attainment_floor=args.slo_floor,
        shrink_budget=args.shrink_budget,
        campaign=args.campaign,
    )

    def narrate(evaluation) -> None:
        log.info(
            "evaluated %-18s score=%.3f attainment=%.3f classes=%s",
            evaluation.spec.name,
            evaluation.score,
            evaluation.summary.get("attainment", 1.0),
            ",".join(sorted(evaluation.classes)) or "-",
        )

    search = ChaosSearch(config, on_evaluation=narrate)
    report = search.run(ArtifactStore(args.root))
    echo(report.summary())
    if report.found_failure:
        echo(f"coverage: {len(report.coverage)} features over "
             f"{report.evaluations} evaluations")
        echo(f"minimized run_id: {report.run_id}")
        return 0
    return 1


def _cmd_audit(args, log) -> int:
    import numpy as np

    from repro.core.models import ExecutionTimeModel
    from repro.extensions.streaming import StreamingPolicy
    from repro.faults.retry import ExponentialBackoffRetry
    from repro.faults.scenario import SCENARIOS
    from repro.platform.providers import GOOGLE_CLOUD_FUNCTIONS
    from repro.resilience import (
        CircuitBreakerBank,
        ConcurrencyLimitAdmission,
        ResiliencePolicy,
    )
    from repro.serving import (
        FixedTTL,
        PoissonProcess,
        ServingConfig,
        ServingSimulator,
        WarmPool,
    )
    from repro.telemetry.config import TelemetryConfig, TelemetrySession
    from repro.workloads import XAPIAN

    serving_cfg = ServingConfig()
    archetypes = {spec.name: spec for spec in CORPUS}
    if args.scenario in SCENARIOS:
        scenario = SCENARIOS[args.scenario]
    elif args.scenario in archetypes:
        scenario = archetypes[args.scenario].compose(
            args.horizon, serving_cfg.fault_domains
        )
    elif Path(args.scenario).exists():
        payload = json.loads(Path(args.scenario).read_text())
        scenario = StormSpec.from_dict(payload).compose(
            args.horizon, serving_cfg.fault_domains
        )
    else:
        known = sorted(SCENARIOS) + sorted(archetypes)
        raise SystemExit(
            f"error: {args.scenario!r} is neither a named scenario "
            f"({', '.join(known)}) nor a StormSpec JSON file"
        )

    resilience = None
    if args.protected:
        resilience = ResiliencePolicy(
            admission=ConcurrencyLimitAdmission(limit=64),
            breakers=CircuitBreakerBank(
                n_domains=serving_cfg.fault_domains,
                rng=np.random.default_rng(args.seed),
                failure_threshold=3,
                recovery_s=60.0,
            ),
        )
    session = TelemetrySession(
        TelemetryConfig(tracing=False, metrics=False, events=False)
    )
    auditor = InvariantAuditor().attach(session.bus)
    simulator = ServingSimulator(
        GOOGLE_CLOUD_FUNCTIONS,
        XAPIAN,
        ExecutionTimeModel(
            coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
        ),
        pool=WarmPool(FixedTTL(120.0)),
        config=serving_cfg,
        resilience=resilience,
        scenario=scenario,
        retry_policy=ExponentialBackoffRetry(max_retries=3),
        seed=args.seed,
        telemetry=session,
    )
    run = simulator.run(
        PoissonProcess(args.rate),
        StreamingPolicy(degree=4, batch_timeout_s=2.0),
        args.horizon,
    )
    report = auditor.finalize(
        run, breakers=resilience.breakers if resilience else None
    )
    echo(
        f"{scenario.name}: {run.n_requests} requests, "
        f"{run.n_completed} completed, {run.n_shed} shed, "
        f"{run.n_failed} failed; attainment "
        f"{run.windowed_p99_attainment():.3f}"
    )
    echo(report.summary())
    for violation in report.violations:
        log.error("%s", violation)
    return 0 if report.ok else 1


def _cmd_replay(args, log) -> int:
    import repro.chaos.target  # noqa: F401  (registers chaos-serving)

    if args.times < 1:
        raise SystemExit("error: --times must be >= 1")
    for attempt in range(1, args.times + 1):
        report = reproduce_run(args.manifest)
        if not (report.matched and report.byte_identical):
            echo(f"replay {attempt}/{args.times}: MISMATCH "
                 f"(run {report.run_id})")
            for m in report.mismatches:
                echo(f"  {m.key}: recorded={m.expected!r} "
                     f"reproduced={m.actual!r}")
            if not report.byte_identical and not report.mismatches:
                echo("  summary values match but serialization drifted")
            return 1
        log.info("replay %d/%d: byte-identical", attempt, args.times)
    echo(
        f"run {report.run_id} ({report.target}): REPRODUCED byte-identically "
        f"{args.times}× in a row"
    )
    if report.resolution_drift:
        log.warning(
            "resolution drift (same params resolve differently today): %s",
            ", ".join(report.resolution_drift),
        )
    return 0


_COMMANDS = {
    "search": _cmd_search,
    "audit": _cmd_audit,
    "replay": _cmd_replay,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    log = get_console_logger(
        verbose=getattr(args, "verbose", 0), quiet=getattr(args, "quiet", 0)
    )
    try:
        return _COMMANDS[args.command](args, log)
    except (FileNotFoundError, ValueError, KeyError, json.JSONDecodeError) as exc:
        log.error("%s", exc)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
