"""The storm composer: bounded, seed-mutable multi-phase fault storms.

A :class:`StormSpec` is the chaos search's genome — a small vector of
bounded knobs that :meth:`StormSpec.compose` assembles into one
:class:`~repro.faults.scenario.FaultScenario`. The composition is
multi-phase in time:

* **phase 0 (floor)** — a sustained background of i.i.d. crashes and
  optional 429 throttling across the whole horizon;
* **phase 1 (poisoned start)** — the first ``poisoned_domains`` fault
  domains begin the run poisoned and (optionally) heal after
  ``poison_heal_s``;
* **phase 2 (gray window)** — the *last* ``gray_domains`` domains turn
  gray (slow-but-alive, never crashing) inside
  ``[onset, onset + heal) = horizon × [gray_onset_frac,
  gray_onset_frac + gray_heal_frac)``;
* **phase 3 (correlated shocks)** — ``correlated_bursts`` rack-style kill
  events land across the correlated window.

Every knob lives inside :data:`PARAM_BOUNDS`; construction validates the
bounds, :meth:`StormSpec.mutate` perturbs one or two knobs *within* them
(the Hypothesis property suite pins this), and
:meth:`StormSpec.shrink_candidates` enumerates strictly-simpler neighbours
for the greedy shrinking loop. Specs round-trip through validated JSON so
a minimized storm embeds byte-stably in a harness manifest.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

import numpy as np

from repro.faults.scenario import FaultScenario

#: knob -> (lo, hi, kind). ``int`` knobs are inclusive integer ranges.
PARAM_BOUNDS: dict[str, tuple[float, float, str]] = {
    "crash_rate": (0.0, 0.6, "float"),
    "persistent_fraction": (0.0, 0.4, "float"),
    "correlated_bursts": (0, 6, "int"),
    "correlated_fraction": (0.0, 0.9, "float"),
    "throttle_capacity": (0, 512, "int"),        # 0 = throttling off
    "throttle_refill_per_s": (1.0, 200.0, "float"),
    "poisoned_domains": (0, 8, "int"),
    "poison_heal_s": (0.0, 3600.0, "float"),     # 0 = never heals
    "gray_domains": (0, 8, "int"),
    "gray_slowdown": (1.0, 16.0, "float"),
    "gray_onset_frac": (0.0, 0.9, "float"),
    "gray_heal_frac": (0.0, 1.0, "float"),       # 0 = never heals
}

#: Default (all-quiet) knob values — also each knob's shrink destination.
_QUIET: dict[str, Any] = {
    "crash_rate": 0.0,
    "persistent_fraction": 0.0,
    "correlated_bursts": 0,
    "correlated_fraction": 0.0,
    "throttle_capacity": 0,
    "throttle_refill_per_s": 50.0,
    "poisoned_domains": 0,
    "poison_heal_s": 0.0,
    "gray_domains": 0,
    "gray_slowdown": 1.0,
    "gray_onset_frac": 0.2,
    "gray_heal_frac": 0.5,
}


@dataclass(frozen=True)
class StormSpec:
    """One point in the bounded storm space (see module docstring)."""

    name: str = "storm"
    crash_rate: float = 0.0
    persistent_fraction: float = 0.0
    correlated_bursts: int = 0
    correlated_fraction: float = 0.0
    throttle_capacity: int = 0
    throttle_refill_per_s: float = 50.0
    poisoned_domains: int = 0
    poison_heal_s: float = 0.0
    gray_domains: int = 0
    gray_slowdown: float = 1.0
    gray_onset_frac: float = 0.2
    gray_heal_frac: float = 0.5

    def __post_init__(self) -> None:
        for knob, (lo, hi, kind) in PARAM_BOUNDS.items():
            value = getattr(self, knob)
            if kind == "int" and value != int(value):
                raise ValueError(f"{knob} must be an integer, got {value!r}")
            if not lo <= value <= hi:
                raise ValueError(
                    f"{knob}={value!r} outside declared bounds [{lo}, {hi}]"
                )
        if self.correlated_bursts > 0 and self.correlated_fraction <= 0.0:
            raise ValueError("correlated bursts need a positive kill fraction")

    # ------------------------------------------------------------------ #
    # composition
    # ------------------------------------------------------------------ #
    def compose(self, horizon_s: float, fault_domains: int = 4) -> FaultScenario:
        """Assemble the multi-phase :class:`FaultScenario` for one run.

        Poisoned domains are taken from the front of the domain range and
        gray domains from the back, so the two degradation phases overlap
        only when their counts force it — a storm can starve the healthy
        middle without the two mechanisms masking each other.
        """
        if horizon_s <= 0.0:
            raise ValueError("horizon must be positive")
        if fault_domains < 1:
            raise ValueError("fault_domains must be >= 1")
        n_poisoned = min(self.poisoned_domains, fault_domains)
        n_gray = min(self.gray_domains, fault_domains)
        gray_heal = (
            None
            if self.gray_heal_frac <= 0.0
            else max(1e-9, self.gray_heal_frac * horizon_s)
        )
        return FaultScenario(
            name=self.name,
            crash_rate=self.crash_rate if self.crash_rate > 0.0 else None,
            persistent_fraction=self.persistent_fraction,
            correlated_bursts=self.correlated_bursts,
            correlated_fraction=(
                self.correlated_fraction if self.correlated_bursts > 0 else 0.0
            ),
            correlated_window_s=horizon_s,
            throttle_capacity=(
                self.throttle_capacity if self.throttle_capacity > 0 else None
            ),
            throttle_refill_per_s=(
                self.throttle_refill_per_s if self.throttle_capacity > 0 else 0.0
            ),
            poison_heal_s=self.poison_heal_s if self.poison_heal_s > 0.0 else None,
            initially_poisoned=tuple(range(n_poisoned)),
            gray_domains=tuple(range(fault_domains - n_gray, fault_domains)),
            gray_slowdown=self.gray_slowdown if n_gray > 0 else 1.0,
            gray_onset_s=self.gray_onset_frac * horizon_s,
            gray_heal_s=gray_heal,
        )

    # ------------------------------------------------------------------ #
    # search operators
    # ------------------------------------------------------------------ #
    def quiet(self) -> bool:
        """True when every phase is inert (the all-calm spec)."""
        return all(getattr(self, k) == _QUIET[k] for k in _ACTIVE_KNOBS)

    def mutate(self, rng: np.random.Generator, scale: float = 0.35) -> "StormSpec":
        """One mutation step: re-draw 1–2 knobs inside their bounds.

        Float knobs take a Gaussian step of ``scale`` × their range,
        clamped to the bounds; int knobs step ±1 or re-draw uniformly.
        The result always validates — mutation cannot leave the declared
        space (property-tested).
        """
        knobs = sorted(PARAM_BOUNDS)
        n_changes = int(rng.integers(1, 3))
        chosen = rng.choice(len(knobs), size=n_changes, replace=False)
        updates: dict[str, Any] = {}
        for idx in chosen:
            knob = knobs[int(idx)]
            lo, hi, kind = PARAM_BOUNDS[knob]
            current = getattr(self, knob)
            if kind == "int":
                if rng.random() < 0.5:
                    value = int(current) + int(rng.choice((-1, 1)))
                else:
                    value = int(rng.integers(int(lo), int(hi) + 1))
                updates[knob] = int(min(max(value, int(lo)), int(hi)))
            else:
                step = rng.normal(0.0, scale * (hi - lo))
                updates[knob] = float(min(max(current + step, lo), hi))
        # Keep the composed scenario constructible: bursts imply a kill
        # fraction, throttling implies a refill rate (bounds guarantee it).
        merged = {**self.as_knobs(), **updates}
        if merged["correlated_bursts"] > 0 and merged["correlated_fraction"] <= 0.0:
            merged["correlated_fraction"] = 0.1
        return StormSpec(name=self.name, **merged)

    def shrink_candidates(self) -> list["StormSpec"]:
        """Strictly-simpler neighbours, most aggressive first.

        For every knob that differs from its quiet value: (a) a candidate
        with the knob fully quieted, then (b) one with the knob moved
        halfway toward quiet (ints round toward quiet). The greedy shrink
        loop accepts the first candidate that still reproduces the parent's
        violation class, so ordering from most to least aggressive
        minimizes evaluations.
        """
        out: list[StormSpec] = []
        knobs = self.as_knobs()
        for knob in sorted(_ACTIVE_KNOBS):
            current = knobs[knob]
            quiet = _QUIET[knob]
            if current == quiet:
                continue
            out.append(self._with(knob, quiet))
            _, _, kind = PARAM_BOUNDS[knob]
            if kind == "int":
                halfway: Any = quiet + (current - quiet) // 2
            else:
                halfway = quiet + (current - quiet) / 2.0
            if halfway != current and halfway != quiet:
                out.append(self._with(knob, halfway))
        return out

    def _with(self, knob: str, value: Any) -> "StormSpec":
        merged = {**self.as_knobs(), knob: value}
        if merged["correlated_bursts"] == 0:
            merged["correlated_fraction"] = (
                0.0 if knob == "correlated_bursts" else merged["correlated_fraction"]
            )
        if merged["correlated_bursts"] > 0 and merged["correlated_fraction"] <= 0.0:
            merged["correlated_bursts"] = 0
        return StormSpec(name=self.name, **merged)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def as_knobs(self) -> dict[str, Any]:
        return {k: getattr(self, k) for k in PARAM_BOUNDS}

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, **self.as_knobs()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StormSpec":
        """Rebuild a spec, rejecting unknown keys; bounds re-validate."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown StormSpec keys: {sorted(unknown)}")
        data = dict(payload)
        for knob, (_lo, _hi, kind) in PARAM_BOUNDS.items():
            if knob in data and kind == "int":
                data[knob] = int(data[knob])
        return cls(**data)

    def describe(self) -> str:
        parts = [self.name]
        for knob in sorted(_ACTIVE_KNOBS):
            value = getattr(self, knob)
            if value != _QUIET[knob]:
                parts.append(f"{knob}={value:g}" if isinstance(value, float) else f"{knob}={value}")
        return " ".join(parts)


#: Knobs whose quiet value means "this phase is off" (refill/onset/heal are
#: only meaningful when their gate knob is active).
_ACTIVE_KNOBS = (
    "crash_rate",
    "persistent_fraction",
    "correlated_bursts",
    "correlated_fraction",
    "throttle_capacity",
    "poisoned_domains",
    "poison_heal_s",
    "gray_domains",
    "gray_slowdown",
)


# --------------------------------------------------------------------- #
# the seed corpus: hand-built storm archetypes
# --------------------------------------------------------------------- #
#: Search starts from these instead of random noise so a small (CI-sized)
#: budget still reaches SLO-breaking territory; each archetype stresses a
#: different protection path.
CORPUS: tuple[StormSpec, ...] = (
    StormSpec(name="gray-ambush", gray_domains=3, gray_slowdown=8.0,
              gray_onset_frac=0.1, gray_heal_frac=0.8),
    StormSpec(name="crash-storm", crash_rate=0.35, persistent_fraction=0.1),
    StormSpec(name="throttle-squeeze", throttle_capacity=32,
              throttle_refill_per_s=4.0),
    StormSpec(name="poisoned-floor", poisoned_domains=3, crash_rate=0.05),
    StormSpec(name="shock-train", correlated_bursts=4,
              correlated_fraction=0.7, crash_rate=0.1),
    StormSpec(name="compound", crash_rate=0.2, gray_domains=2,
              gray_slowdown=5.0, correlated_bursts=2,
              correlated_fraction=0.5),
)


def corpus() -> list[StormSpec]:
    """A fresh copy of the seed corpus (callers may extend it)."""
    return list(CORPUS)
