"""Coverage-guided adversarial storm search with greedy shrinking.

The loop is a tiny seeded fuzzer over :class:`StormSpec` space:

1. **seed** — evaluate the hand-built archetype corpus
   (:data:`repro.chaos.composer.CORPUS`) through the ``chaos-serving``
   harness target;
2. **score** — each run earns SLO damage (lost attainment, failed
   fraction) plus a large bonus per invariant violation; its *coverage
   features* (breaker-open, throttle-drop, crash, gray window active,
   attainment decile, violation kinds, …) describe which corners of the
   protection stack the storm reached;
3. **select** — a spec joins the frontier when it uncovered a new feature
   or out-scored the current frontier;
4. **mutate** — next round's candidates are bounded mutations of frontier
   members (:meth:`StormSpec.mutate` cannot leave the declared space);
5. **shrink** — the best *failing* storm (SLO breach or invariant
   violation) is greedily minimized: quiet one knob at a time, keeping a
   candidate only if it still reproduces the parent's violation class;
6. **persist** — the minimized storm is written as a complete harness run
   (manifest + summary + violation metrics) under
   ``results/<campaign>/<run_id>/``, so ``propack-chaos replay`` (and
   ``propack-campaign reproduce``) re-assert it byte-identically.

Everything is deterministic in ``SearchConfig.seed``: same config, same
storms, same run_id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

import numpy as np

from repro.chaos.composer import CORPUS, StormSpec
from repro.harness.artifacts import ArtifactStore
from repro.harness.manifest import RunManifest
from repro.harness.targets import DEFAULT_REGISTRY, TargetRegistry

#: Score weight of one invariant violation — any violation dominates any
#: amount of SLO damage, so the search always prefers accounting bugs.
VIOLATION_WEIGHT = 10.0


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of one ``propack-chaos search`` invocation."""

    seed: int = 0
    rounds: int = 3
    population: int = 4            # mutants evaluated per round
    frontier_size: int = 6
    horizon_s: float = 900.0
    rate_per_s: float = 6.0
    protected: bool = False
    slo_attainment_floor: float = 0.9
    app: str = "xapian"
    platform: str = "google-cloud-functions"
    shrink_budget: int = 24        # max evaluations spent shrinking
    campaign: str = "chaos"

    def __post_init__(self) -> None:
        if self.rounds < 0 or self.population < 1 or self.frontier_size < 1:
            raise ValueError("rounds/population/frontier_size out of range")
        if self.shrink_budget < 0:
            raise ValueError("shrink_budget must be non-negative")


@dataclass(frozen=True)
class Evaluation:
    """One storm's measured damage."""

    spec: StormSpec
    summary: dict[str, Any]
    score: float
    features: frozenset[str]
    classes: frozenset[str]        # violation classes (empty = run survived)

    @property
    def failing(self) -> bool:
        return bool(self.classes)


@dataclass
class SearchReport:
    """Everything one search produced."""

    config: SearchConfig
    evaluations: int = 0
    coverage: set[str] = field(default_factory=set)
    best: Optional[Evaluation] = None
    minimized: Optional[Evaluation] = None
    shrink_evaluations: int = 0
    run_id: str = ""
    manifest_path: str = ""

    @property
    def found_failure(self) -> bool:
        return self.best is not None

    def summary(self) -> str:
        if not self.found_failure:
            return (
                f"no failing storm in {self.evaluations} evaluations "
                f"({len(self.coverage)} features covered)"
            )
        classes = ", ".join(sorted(self.minimized.classes))
        return (
            f"found {self.best.spec.name!r} "
            f"(score {self.best.score:.3f}), shrunk to "
            f"{self.minimized.spec.describe()!r} [{classes}] in "
            f"{self.shrink_evaluations} shrink evaluations; "
            f"minimized manifest: {self.manifest_path or '<not persisted>'}"
        )


def coverage_features(summary: dict[str, Any]) -> frozenset[str]:
    """The behavioural corners one run reached (the fuzzer's feedback)."""
    features: set[str] = set()
    for key in (
        "crashes", "retries", "throttled", "throttle_drops",
        "breaker_opens", "failed", "shed",
    ):
        if summary.get(key, 0) > 0:
            features.add(key)
    if summary.get("slo_breach"):
        features.add("slo-breach")
    if not summary.get("conserved", True):
        features.add("not-conserved")
    attainment = float(summary.get("attainment", 1.0))
    features.add(f"attain-decile-{min(9, int(attainment * 10))}")
    backlog = int(summary.get("max_backlog", 0))
    if backlog > 0:
        features.add(f"backlog-pow-{backlog.bit_length()}")
    for kind in summary.get("violation_kinds", ()):
        features.add(f"invariant:{kind}")
    return frozenset(features)


def violation_classes(summary: dict[str, Any]) -> frozenset[str]:
    """What a storm *broke* — the classes shrinking must preserve."""
    classes: set[str] = set()
    if summary.get("slo_breach"):
        classes.add("slo-breach")
    if not summary.get("conserved", True):
        classes.add("not-conserved")
    for kind in summary.get("violation_kinds", ()):
        classes.add(f"invariant:{kind}")
    return frozenset(classes)


def damage_score(summary: dict[str, Any]) -> float:
    """SLO damage plus a dominating bonus per invariant violation."""
    requests = max(1, int(summary.get("requests", 0)))
    failed_frac = float(summary.get("failed", 0)) / requests
    attainment = float(summary.get("attainment", 1.0))
    return (
        (1.0 - attainment)
        + failed_frac
        + VIOLATION_WEIGHT * int(summary.get("violations", 0))
    )


class ChaosSearch:
    """The adversarial loop (see module docstring)."""

    def __init__(
        self,
        config: SearchConfig = SearchConfig(),
        registry: Optional[TargetRegistry] = None,
        on_evaluation: Optional[Callable[[Evaluation], None]] = None,
    ) -> None:
        import repro.chaos.target  # noqa: F401  (registers chaos-serving)

        self.config = config
        self.registry = registry or DEFAULT_REGISTRY
        self.target = self.registry.get("chaos-serving")
        self.on_evaluation = on_evaluation
        self._cache: dict[StormSpec, Evaluation] = {}
        self._evaluations = 0

    # ------------------------------------------------------------------ #
    def params_for(self, spec: StormSpec) -> dict[str, Any]:
        cfg = self.config
        return {
            "storm": spec.to_dict(),
            "protected": cfg.protected,
            "horizon_s": cfg.horizon_s,
            "rate_per_s": cfg.rate_per_s,
            "app": cfg.app,
            "platform": cfg.platform,
            "slo_attainment_floor": cfg.slo_attainment_floor,
        }

    def evaluate(self, spec: StormSpec) -> Evaluation:
        """Run one storm through the harness target (memoized: the sim is
        deterministic, so a repeated spec costs nothing)."""
        if spec in self._cache:
            return self._cache[spec]
        resolved = self.target.resolve(self.params_for(spec))
        output = self.target.execute(resolved, self.config.seed)
        evaluation = Evaluation(
            spec=spec,
            summary=output.summary,
            score=damage_score(output.summary),
            features=coverage_features(output.summary),
            classes=violation_classes(output.summary),
        )
        self._cache[spec] = evaluation
        self._evaluations += 1
        if self.on_evaluation is not None:
            self.on_evaluation(evaluation)
        return evaluation

    # ------------------------------------------------------------------ #
    def run(
        self, store: Optional[ArtifactStore] = None
    ) -> SearchReport:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        report = SearchReport(config=cfg)
        frontier: list[Evaluation] = []

        def admit(evaluation: Evaluation) -> None:
            new_features = evaluation.features - report.coverage
            report.coverage |= evaluation.features
            frontier_min = min((e.score for e in frontier), default=-1.0)
            if new_features or evaluation.score > frontier_min:
                frontier.append(evaluation)
                frontier.sort(key=lambda e: -e.score)
                del frontier[cfg.frontier_size:]

        for spec in CORPUS:
            admit(self.evaluate(spec))
        for _ in range(cfg.rounds):
            parents = list(frontier)
            if not parents:
                break
            for i in range(cfg.population):
                parent = parents[i % len(parents)]
                admit(self.evaluate(parent.spec.mutate(rng)))

        report.evaluations = self._evaluations
        failing = [e for e in self._cache.values() if e.failing]
        if not failing:
            return report
        report.best = max(failing, key=lambda e: (e.score, e.spec.name))
        before = self._evaluations
        report.minimized = self.shrink(report.best)
        report.shrink_evaluations = self._evaluations - before
        if store is not None:
            manifest = self.persist(report.minimized, store)
            report.run_id = manifest.run_id
            report.manifest_path = str(
                store.run_dir(cfg.campaign, manifest.run_id) / "manifest.json"
            )
        return report

    # ------------------------------------------------------------------ #
    def shrink(self, evaluation: Evaluation) -> Evaluation:
        """Greedy minimization preserving the parent's violation classes.

        Quiet one knob (or halve it) at a time; keep the first candidate
        whose classes still cover the parent's. Stops when no candidate
        survives or the shrink budget runs out — the result is locally
        minimal: every single-knob simplification loses the failure.
        """
        target_classes = evaluation.classes
        if not target_classes:
            return evaluation
        budget = self.config.shrink_budget
        current = evaluation
        progress = True
        while progress and budget > 0:
            progress = False
            for candidate_spec in current.spec.shrink_candidates():
                if budget <= 0:
                    break
                budget -= 1
                candidate = self.evaluate(candidate_spec)
                if target_classes <= candidate.classes:
                    current = candidate
                    progress = True
                    break
        return current

    def persist(self, evaluation: Evaluation, store: ArtifactStore) -> RunManifest:
        """Write the minimized storm as a complete, replayable harness run."""
        cfg = self.config
        params = self.params_for(evaluation.spec)
        resolved = self.target.resolve(params)
        manifest = RunManifest(
            campaign=cfg.campaign,
            stage="minimized",
            target=self.target.name,
            params=params,
            resolved_config=resolved,
            seed=cfg.seed,
        )
        output = self.target.execute(resolved, cfg.seed)
        store.finish_run(
            manifest, output.summary, metrics_jsonl=output.metrics_jsonl
        )
        return manifest


def search_storms(
    config: SearchConfig = SearchConfig(),
    results_root: Optional[str] = None,
    on_evaluation: Optional[Callable[[Evaluation], None]] = None,
) -> SearchReport:
    """One-call convenience: search, shrink, and (optionally) persist."""
    store = ArtifactStore(Path(results_root)) if results_root else None
    return ChaosSearch(config, on_evaluation=on_evaluation).run(store)
