"""Platform-side function fusion and cross-tenant packing.

``repro.fusion`` sits in the top band of the engine layering, a peer of
``repro.chaos``: it drives the core optimizer, the pairwise interference
model, the mixed-app engine path, and the harness as black boxes, and no
lower layer may import it (enforced by ``tests/test_engine_layering.py``).

* :mod:`repro.fusion.spec` — :class:`TenantDemand`,
  :class:`FusionConstraints` (memory ceiling, tenant isolation policy,
  runtime-tag compatibility), :class:`FusionGroup`, :class:`FusionPlan`;
* :mod:`repro.fusion.optimizer` — :class:`FusionOptimizer`, the
  fusion-aware Eq. 1–7 planner (greedy strict-improvement merge search,
  never worse than the unfused baseline by construction);
* :mod:`repro.fusion.scheduler` — :class:`FusionScheduler`, executing
  plans on the shared dispatch kernel with per-tenant proportional
  billing attribution and post-hoc :func:`rebill`;
* :mod:`repro.fusion.fleet` — :class:`FusedFleet`, multi-tenant admission
  with a fairness ledger plus the propack/fusion/both run modes;
* :mod:`repro.fusion.target` — the ``fusion-fleet`` campaign target
  (registered on import) and the named workload :data:`MIXES`;
* :mod:`repro.fusion.cli` — the ``propack-fusion`` entry point
  (``plan`` / ``compare`` / ``dump``).

See ``docs/FUSION.md``.
"""

from repro.fusion.fleet import FUSION_MODES, FleetRunReport, FusedFleet
from repro.fusion.optimizer import (
    FusionDecision,
    FusionOptimizer,
    PlanScore,
    analytic_exec_model,
    default_scaling_model,
)
from repro.fusion.scheduler import (
    FusionRunReport,
    FusionScheduler,
    TenantBill,
    attribute_expense,
    rebill,
)
from repro.fusion.spec import (
    ISOLATION_POLICIES,
    FusionConstraints,
    FusionGroup,
    FusionPlan,
    TenantDemand,
)
from repro.fusion.target import MIXES, FusionTarget, mix_demands

__all__ = [
    "FUSION_MODES",
    "FleetRunReport",
    "FusedFleet",
    "FusionDecision",
    "FusionOptimizer",
    "PlanScore",
    "analytic_exec_model",
    "default_scaling_model",
    "FusionRunReport",
    "FusionScheduler",
    "TenantBill",
    "attribute_expense",
    "rebill",
    "ISOLATION_POLICIES",
    "FusionConstraints",
    "FusionGroup",
    "FusionPlan",
    "TenantDemand",
    "MIXES",
    "FusionTarget",
    "mix_demands",
]
