"""Fusion vocabulary: tenant demands, constraints, groups, and plans.

Platform-side fusion (Provuse-style) packs *different* functions — and
different tenants — into shared instances. The planning unit here is the
**bundle**: one group *composition* (who co-resides, at what counts) plus a
replica count, so a burst of 3000 identical instances is one bundle, not
3000 group objects. A :class:`FusionPlan` is a list of bundles; expanding
it yields one :class:`~repro.extensions.mixed.MixedGroup` per instance, so
fused plans execute on the exact same engine path as mixed-app plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.extensions.mixed import MixedGroup, MixedPlan
from repro.interference.model import PairwiseInterference
from repro.workloads.base import AppSpec

#: Tenant-isolation policies: ``strict`` confines every instance to one
#: tenant (the paper's single-user security posture); ``shared`` lets the
#: platform co-locate tenants (Provuse's position, trusting sandboxing).
ISOLATION_POLICIES = ("strict", "shared")


@dataclass(frozen=True)
class TenantDemand:
    """One tenant's request: run ``count`` clones of ``app``."""

    tenant: str
    app: AppSpec
    count: int

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant name must be non-empty")
        if self.count < 1:
            raise ValueError(f"{self.tenant}/{self.app.name}: count must be >= 1")


@dataclass(frozen=True)
class FusionConstraints:
    """Compatibility and isolation constraints on one fused instance."""

    max_memory_mb: int
    max_execution_seconds: float = 900.0
    isolation: str = "shared"
    allow_cross_runtime: bool = False
    latency_safety: float = 0.98

    def __post_init__(self) -> None:
        if self.max_memory_mb < 1:
            raise ValueError("memory ceiling must be positive")
        if self.isolation not in ISOLATION_POLICIES:
            raise ValueError(
                f"isolation must be one of {ISOLATION_POLICIES} "
                f"(got {self.isolation!r})"
            )
        if not 0.0 < self.latency_safety <= 1.0:
            raise ValueError("latency safety must be in (0, 1]")

    def violations(
        self, group: "FusionGroup", model: Optional[PairwiseInterference] = None
    ) -> list[str]:
        """Why ``group`` is not a legal fused instance (empty = legal)."""
        reasons: list[str] = []
        if group.memory_mb > self.max_memory_mb:
            reasons.append(
                f"memory {group.memory_mb} MB exceeds the "
                f"{self.max_memory_mb} MB instance ceiling"
            )
        if self.isolation == "strict" and len(group.tenants) > 1:
            reasons.append(
                "cross-tenant group "
                f"{'+'.join(group.tenants)} under strict isolation"
            )
        tags = sorted({app.runtime_tag for app, _ in group.residents()})
        if not self.allow_cross_runtime and len(tags) > 1:
            reasons.append(f"incompatible runtimes {'+'.join(tags)}")
        if model is not None:
            cap = self.max_execution_seconds * self.latency_safety
            makespan = model.makespan_seconds(group.residents())
            if makespan > cap:
                reasons.append(
                    f"predicted makespan {makespan:.1f}s exceeds the "
                    f"{cap:.1f}s execution cap"
                )
        return reasons

    def admits(
        self, group: "FusionGroup", model: Optional[PairwiseInterference] = None
    ) -> bool:
        return not self.violations(group, model)


@dataclass(frozen=True)
class FusionGroup:
    """One fused instance composition: ``(tenant, app, count)`` members."""

    members: tuple[tuple[str, AppSpec, int], ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a fusion group needs at least one member")
        if any(count < 1 for _, _, count in self.members):
            raise ValueError("member counts must be >= 1")
        seen = {(tenant, app.name) for tenant, app, _ in self.members}
        if len(seen) != len(self.members):
            raise ValueError("duplicate (tenant, app) member; merge counts instead")

    @property
    def size(self) -> int:
        return sum(count for _, _, count in self.members)

    @property
    def memory_mb(self) -> int:
        return sum(app.mem_mb * count for _, app, count in self.members)

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(sorted({tenant for tenant, _, _ in self.members}))

    def is_fused(self) -> bool:
        """More than one distinct (tenant, app) shares the instance."""
        return len(self.members) > 1

    def residents(self) -> list[tuple[AppSpec, int]]:
        """Member multiset merged by app across tenants (interference does
        not care who owns a co-runner, only what it runs)."""
        merged: dict[str, tuple[AppSpec, int]] = {}
        for _, app, count in self.members:
            prev = merged.get(app.name)
            merged[app.name] = (app, count + (prev[1] if prev else 0))
        return [merged[name] for name in sorted(merged)]

    def signature(self) -> tuple[tuple[str, str, int], ...]:
        """Canonical identity, independent of member order."""
        return tuple(
            sorted((tenant, app.name, count) for tenant, app, count in self.members)
        )

    def merged(self, other: "FusionGroup") -> "FusionGroup":
        """The composition obtained by fusing this group with ``other``."""
        counts: dict[tuple[str, str], int] = {}
        specs: dict[tuple[str, str], AppSpec] = {}
        for group in (self, other):
            for tenant, app, count in group.members:
                key = (tenant, app.name)
                counts[key] = counts.get(key, 0) + count
                specs[key] = app
        return FusionGroup(
            tuple(
                (tenant, specs[(tenant, name)], counts[(tenant, name)])
                for tenant, name in sorted(counts)
            )
        )

    def tenant_weights(self) -> dict[str, float]:
        """Per-tenant share of the instance's memory footprint (GB·count),
        the attribution key for proportional billing."""
        weights: dict[str, float] = {}
        for tenant, app, count in self.members:
            weights[tenant] = weights.get(tenant, 0.0) + app.mem_gb * count
        return weights

    def to_mixed_group(self) -> MixedGroup:
        return MixedGroup(tuple(self.residents()))


@dataclass(frozen=True)
class FusionPlan:
    """A fused deployment: (composition, replicas) bundles."""

    bundles: tuple[tuple[FusionGroup, int], ...]
    mode: str = "fusion"

    def __post_init__(self) -> None:
        if not self.bundles:
            raise ValueError("a fusion plan needs at least one bundle")
        if any(replicas < 1 for _, replicas in self.bundles):
            raise ValueError("bundle replica counts must be >= 1")

    @property
    def n_instances(self) -> int:
        return sum(replicas for _, replicas in self.bundles)

    @property
    def n_functions(self) -> int:
        return sum(group.size * replicas for group, replicas in self.bundles)

    @property
    def fused_instances(self) -> int:
        return sum(
            replicas for group, replicas in self.bundles if group.is_fused()
        )

    def instance_groups(self) -> list[FusionGroup]:
        """One group per instance, in deterministic bundle order."""
        out: list[FusionGroup] = []
        for group, replicas in self.bundles:
            out.extend([group] * replicas)
        return out

    def tenant_functions(self) -> dict[str, int]:
        """Functions per tenant across the whole plan."""
        totals: dict[str, int] = {}
        for group, replicas in self.bundles:
            for tenant, _, count in group.members:
                totals[tenant] = totals.get(tenant, 0) + count * replicas
        return totals

    def constraint_violations(
        self,
        constraints: FusionConstraints,
        model: Optional[PairwiseInterference] = None,
    ) -> list[str]:
        """Every constraint violation across all bundle compositions."""
        out: list[str] = []
        for group, _ in self.bundles:
            out.extend(
                f"{'+'.join(f'{t}/{a.name}x{c}' for t, a, c in group.members)}: "
                f"{reason}"
                for reason in constraints.violations(group, model)
            )
        return out

    def to_mixed_plan(self) -> MixedPlan:
        """The per-instance expansion the engine executes. Order matches
        :meth:`instance_groups`, so record ``instance_id`` i maps back to
        the i-th fusion group for tenant attribution."""
        return MixedPlan(
            groups=[g.to_mixed_group() for g in self.instance_groups()],
            segregated=all(not g.is_fused() for g in self.instance_groups()),
        )
