"""Fusion-aware packing optimizer (the Eq. 1–7 planner, cross-app).

ProPack's :class:`~repro.core.optimizer.PackingOptimizer` answers "at what
degree do I pack clones of *one* function?". The platform can do better: it
sees every tenant's demand at once, so underfull remainder groups and
low-pressure functions can be *fused* across apps and tenants. This module
keeps the paper's objective — the weighted fractional regret of service
time and expense (Eqs. 5–7) — and widens the search space from packing
degrees to fusion groups.

The search is a deterministic greedy merge: start from a baseline plan
(per-tenant ProPack degrees, or degree-1 for a pure platform-side view),
then repeatedly apply the single bundle merge that most improves the joint
score, subject to :class:`~repro.fusion.spec.FusionConstraints`. A merge is
only ever *accepted* when it strictly improves the score, which yields the
planner's central guarantee by construction: **the fused plan is never
worse than the unfused baseline under the planner's own models** — if the
interference matrix makes every fusion hostile, the baseline comes back
untouched.

Why fusion wins dollars at all: every instance is provisioned (and billed)
at the platform's full memory grant, pays one request fee, and — under a
coarse billing granularity — pays rounding losses per invocation. Merging
two half-empty instances into one full one halves all three.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.models import ExecutionTimeModel, ScalingTimeModel
from repro.core.optimizer import PackingOptimizer
from repro.fusion.spec import FusionConstraints, FusionGroup, FusionPlan, TenantDemand
from repro.interference.model import PairwiseInterference
from repro.platform.billing import BillingFidelity
from repro.platform.providers import PlatformProfile

#: Strict-improvement threshold for accepting a merge: protects the
#: never-worse guarantee from float noise.
_IMPROVEMENT_EPS = 1e-12


def default_scaling_model(profile: PlatformProfile) -> ScalingTimeModel:
    """Planner-side scaling proxy: the serial placement lower bound
    ``sched_base + sched_search · C`` expressed in the Eq. 2 polynomial
    form. Callers with a fitted model (experiments) should pass it in."""
    return ScalingTimeModel(
        beta1=0.0, beta2=profile.sched_search_s, beta3=-profile.sched_base_s
    )


def analytic_exec_model(
    app, isolation_penalty: float = 1.0
) -> ExecutionTimeModel:
    """The paper's Eq. 1 coefficients derived mechanistically from an
    :class:`AppSpec`: ``ET(p) = base · exp(B · (p − 1))`` with
    ``B = pressure·mem_gb·iso``, rewritten into the fit family's
    ``A · exp(B · p)`` form (so ``predict(1) == base_seconds``)."""
    rate = app.pressure_per_gb * app.mem_gb * isolation_penalty
    return ExecutionTimeModel(
        coeff_a=app.base_seconds * math.exp(-rate),
        coeff_b=rate,
        mem_gb=app.mem_gb,
    )


@dataclass(frozen=True)
class PlanScore:
    """Predicted quality of one plan under the planner's models."""

    service_s: float
    expense_usd: float
    joint: float  # w_s·S/S_ref + w_e·E/E_ref against the baseline plan


@dataclass(frozen=True)
class FusionDecision:
    """The optimizer's output: the chosen plan plus its provenance."""

    plan: FusionPlan
    score: PlanScore
    baseline: FusionPlan
    baseline_score: PlanScore
    merges: int

    @property
    def improved(self) -> bool:
        return self.merges > 0


class FusionOptimizer:
    """Chooses fusion groups for a multi-tenant demand set."""

    def __init__(
        self,
        profile: PlatformProfile,
        demands: Sequence[TenantDemand],
        *,
        model: Optional[PairwiseInterference] = None,
        constraints: Optional[FusionConstraints] = None,
        scaling: Optional[ScalingTimeModel] = None,
        fidelity: Optional[BillingFidelity] = None,
        w_service: float = 0.5,
        w_expense: float = 0.5,
        max_merges: int = 512,
    ) -> None:
        if not demands:
            raise ValueError("at least one tenant demand is required")
        if not math.isclose(w_service + w_expense, 1.0, abs_tol=1e-9):
            raise ValueError(
                f"weights must sum to 1 (got {w_service} + {w_expense})"
            )
        if not 0.0 <= w_service <= 1.0:
            raise ValueError(f"W_S must be in [0, 1] (got {w_service})")
        self.profile = profile
        self.demands = sorted(demands, key=lambda d: (d.tenant, d.app.name))
        self.model = model or PairwiseInterference(profile.isolation_penalty)
        self.constraints = constraints or FusionConstraints(
            max_memory_mb=profile.max_memory_mb,
            max_execution_seconds=profile.max_execution_seconds,
        )
        self.scaling = scaling or default_scaling_model(profile)
        self.fidelity = (
            fidelity if fidelity is not None else BillingFidelity.from_profile(profile)
        )
        self.w_service = w_service
        self.w_expense = w_expense
        self.max_merges = max_merges
        self._makespans: dict[tuple, float] = {}

    # ------------------------------------------------------------------ #
    # baseline (user-side) plans
    # ------------------------------------------------------------------ #
    def propack_degree(self, demand: TenantDemand) -> int:
        """The user-side Eq. 7 degree the tenant would pick on their own."""
        optimizer = PackingOptimizer(
            analytic_exec_model(demand.app, self.profile.isolation_penalty),
            self.scaling,
            demand.app,
            self.profile,
            demand.count,
            latency_safety=self.constraints.latency_safety,
        )
        return optimizer.optimal_joint(self.w_service, self.w_expense)

    def baseline_plan(self, user_side: bool = True) -> FusionPlan:
        """The unfused starting point: each demand packed on its own.

        ``user_side=True`` packs every demand at its ProPack degree (what
        tenants deploy today); ``user_side=False`` leaves every function
        unpacked (degree 1), the raw material for pure platform fusion.
        """
        bundles: list[tuple[FusionGroup, int]] = []
        for demand in self.demands:
            degree = self.propack_degree(demand) if user_side else 1
            degree = min(degree, demand.count)
            full, rest = divmod(demand.count, degree)
            if full:
                bundles.append(
                    (FusionGroup(((demand.tenant, demand.app, degree),)), full)
                )
            if rest:
                bundles.append(
                    (FusionGroup(((demand.tenant, demand.app, rest),)), 1)
                )
        mode = "propack" if user_side else "unpacked"
        return FusionPlan(bundles=tuple(bundles), mode=mode)

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def _bundle_makespan(self, group: FusionGroup) -> float:
        key = group.signature()
        cached = self._makespans.get(key)
        if cached is None:
            cached = self.model.makespan_seconds(group.residents())
            self._makespans[key] = cached
        return cached

    def _plan_raw(self, bundles: Sequence[tuple[FusionGroup, int]]) -> tuple[float, float]:
        """(service_s, expense_usd) under the planner's models.

        Mirrors :meth:`MixedPlan.predicted_expense_usd`: every instance is
        provisioned at the platform's full memory grant (the paper's
        deployment) and billed for its makespan — run through the billing
        fidelity — plus one request fee.
        """
        billed_gb = self.profile.max_memory_mb / 1024.0
        n_instances = 0
        slowest = 0.0
        expense = 0.0
        for group, replicas in bundles:
            makespan = self._bundle_makespan(group)
            slowest = max(slowest, makespan)
            n_instances += replicas
            billed_s = self.fidelity.billed_seconds(makespan)
            expense += replicas * (
                billed_s * billed_gb * self.profile.gb_second_usd
                + self.profile.per_request_usd
            )
        service = self.scaling.predict(n_instances) + slowest
        return service, expense

    def score_plan(
        self, plan: FusionPlan, reference: Optional[PlanScore] = None
    ) -> PlanScore:
        """Eqs. 5–7 style fractional score against a reference plan."""
        service, expense = self._plan_raw(plan.bundles)
        if reference is None:
            joint = 1.0  # a plan scored against itself
        else:
            joint = self.w_service * (
                service / reference.service_s
            ) + self.w_expense * (expense / reference.expense_usd)
        return PlanScore(service_s=service, expense_usd=expense, joint=joint)

    # ------------------------------------------------------------------ #
    # the greedy merge search
    # ------------------------------------------------------------------ #
    def optimize(self, user_side: bool = True) -> FusionDecision:
        """Greedy best-merge-first search from the unfused baseline.

        Each round evaluates every pairwise bundle merge that the
        constraints admit, scores the resulting plan, and accepts the best
        one only if it *strictly* improves the joint score. Ties break on
        the merged group's canonical signature so the search is fully
        deterministic.
        """
        baseline = self.baseline_plan(user_side)
        ref = self.score_plan(baseline)
        baseline_score = PlanScore(ref.service_s, ref.expense_usd, 1.0)

        bundles: list[tuple[FusionGroup, int]] = list(baseline.bundles)
        current = self._joint(bundles, ref)
        merges = 0
        while merges < self.max_merges:
            best: Optional[tuple[float, tuple, list[tuple[FusionGroup, int]]]] = None
            for i in range(len(bundles)):
                # j == i is the self-merge: fuse replica pairs of one
                # bundle, doubling its composition — how same-app packing
                # emerges from an unpacked (degree-1) starting point.
                for j in range(i, len(bundles)):
                    candidate = self._merge_bundles(bundles, i, j)
                    if candidate is None:
                        continue
                    joint = self._joint(candidate, ref)
                    key = (joint, candidate[-1][0].signature())
                    if joint < current - _IMPROVEMENT_EPS and (
                        best is None or key < (best[0], best[1])
                    ):
                        best = (joint, key[1], candidate)
            if best is None:
                break
            current = best[0]
            bundles = best[2]
            merges += 1

        plan = FusionPlan(
            bundles=tuple(bundles),
            mode="propack" if (user_side and merges == 0) else "fusion",
        )
        return FusionDecision(
            plan=plan,
            score=self.score_plan(plan, baseline_score),
            baseline=baseline,
            baseline_score=baseline_score,
            merges=merges,
        )

    # ------------------------------------------------------------------ #
    def _joint(
        self, bundles: Sequence[tuple[FusionGroup, int]], ref: PlanScore
    ) -> float:
        service, expense = self._plan_raw(bundles)
        return self.w_service * (service / ref.service_s) + self.w_expense * (
            expense / ref.expense_usd
        )

    def _merge_bundles(
        self, bundles: list[tuple[FusionGroup, int]], i: int, j: int
    ) -> Optional[list[tuple[FusionGroup, int]]]:
        """Bundles after fusing replicas of i and j (``i == j`` fuses a
        bundle's replica *pairs*), or None if the merged composition
        violates the constraints."""
        group_i, reps_i = bundles[i]
        group_j, reps_j = bundles[j]
        if i == j:
            if reps_i < 2:
                return None
            merged = group_i.merged(group_i)
            if not self.constraints.admits(merged, self.model):
                return None
            pairs, leftover = divmod(reps_i, 2)
            out = [b for k, b in enumerate(bundles) if k != i]
            if leftover:
                out.append((group_i, leftover))
            out.append((merged, pairs))
            return out
        merged = group_i.merged(group_j)
        if not self.constraints.admits(merged, self.model):
            return None
        fused_reps = min(reps_i, reps_j)
        out = [b for k, b in enumerate(bundles) if k not in (i, j)]
        if reps_i > fused_reps:
            out.append((group_i, reps_i - fused_reps))
        if reps_j > fused_reps:
            out.append((group_j, reps_j - fused_reps))
        out.append((merged, fused_reps))
        return out
