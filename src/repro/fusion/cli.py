"""``propack-fusion`` — plan, compare, and dump platform-side fusion runs.

Subcommands::

    propack-fusion plan --mix trio --scale 200 --mode both
        Plan one fused deployment and print its bundles (who co-resides,
        at what replica counts) plus the predicted service/expense score
        against the unfused user-side baseline.

    propack-fusion compare --mix trio --scale 200 --rounded
        Run user-side ProPack vs platform-side fusion vs both on one
        seeded shared datacenter and print realized service time, dollars,
        and per-tenant bills. ``--root`` persists each mode as a harness
        manifest (campaign ``fusion``) reproducible byte-identically with
        ``propack-campaign reproduce``.

    propack-fusion dump --mix trio --scale 200
        Print the fully-resolved fusion-fleet target config (the manifest
        recipe) as canonical JSON.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Optional, Sequence

from repro.fusion.fleet import FUSION_MODES
from repro.fusion.spec import ISOLATION_POLICIES
from repro.fusion.target import MIXES, FusionTarget
from repro.harness.artifacts import ArtifactStore
from repro.harness.manifest import RunManifest, canonical_json
from repro.telemetry.logging import add_verbosity_flags, echo, get_console_logger


def _add_fleet_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--mix", default="trio", choices=sorted(MIXES),
                        help="named multi-tenant workload mix")
    parser.add_argument("--scale", type=int, default=200,
                        help="demand multiplier (functions ≈ weight × scale)")
    parser.add_argument("--platform", default="aws-lambda")
    parser.add_argument("--isolation", default="shared",
                        choices=ISOLATION_POLICIES)
    parser.add_argument("--allow-cross-runtime", action="store_true")
    parser.add_argument("--quota", type=int, default=None,
                        help="per-tenant admitted-function quota")
    parser.add_argument("--w-service", type=float, default=0.5,
                        help="service weight (expense weight is 1 - this)")
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--rounded", action="store_true",
                        help="bill under the legacy 100 ms schedule "
                             "(granularity + minimum duration = 0.1 s)")
    parser.add_argument("--granularity", type=float, default=None,
                        help="billing granularity in seconds (overrides "
                             "--rounded)")
    parser.add_argument("--min-billed", type=float, default=None,
                        help="minimum billed duration in seconds")
    parser.add_argument("--throttle", type=float, default=None,
                        help="CPU-share throttling billed-time multiplier")


def _params(args, mode: str) -> dict[str, Any]:
    granularity = 0.1 if args.rounded else 0.0
    min_billed = 0.1 if args.rounded else 0.0
    if args.granularity is not None:
        granularity = args.granularity
    if args.min_billed is not None:
        min_billed = args.min_billed
    return {
        "mix": args.mix,
        "scale": args.scale,
        "platform": args.platform,
        "mode": mode,
        "isolation": args.isolation,
        "allow_cross_runtime": args.allow_cross_runtime,
        "tenant_quota_functions": args.quota,
        "w_service": args.w_service,
        "w_expense": 1.0 - args.w_service,
        "billing_granularity_s": granularity,
        "min_billed_duration_s": min_billed,
        "cpu_throttle_multiplier": args.throttle if args.throttle else 1.0,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="propack-fusion",
        description="Platform-side function fusion: plan, compare, dump.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="plan one fused deployment")
    plan.add_argument("--mode", default="both", choices=FUSION_MODES)
    _add_fleet_flags(plan)
    add_verbosity_flags(plan)

    compare = sub.add_parser(
        "compare", help="run propack vs fusion vs both on one seeded fleet"
    )
    _add_fleet_flags(compare)
    compare.add_argument("--root", default=None,
                         help="persist each mode as a harness manifest here")
    compare.add_argument("--campaign", default="fusion")
    compare.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the comparison as JSON")
    add_verbosity_flags(compare)

    dump = sub.add_parser("dump", help="print the resolved target config")
    dump.add_argument("--mode", default="both", choices=FUSION_MODES)
    _add_fleet_flags(dump)
    add_verbosity_flags(dump)

    return parser


def _cmd_plan(args, log) -> int:
    from repro.fusion.fleet import FusedFleet
    from repro.platform.providers import PROVIDERS
    from repro.workloads import ALL_APPS

    params = _params(args, args.mode)
    resolved = FusionTarget().resolve(params)
    profile = PROVIDERS[args.platform].with_overrides(
        billing_granularity_s=resolved["billing_granularity_s"],
        min_billed_duration_s=resolved["min_billed_duration_s"],
        cpu_throttle_multiplier=resolved["cpu_throttle_multiplier"],
    )
    fleet = FusedFleet(
        profile,
        seed=args.seed,
        isolation=args.isolation,
        allow_cross_runtime=args.allow_cross_runtime,
        tenant_quota_functions=args.quota,
        w_service=args.w_service,
        w_expense=1.0 - args.w_service,
    )
    for tenant, app, count in resolved["demands"]:
        fleet.submit(tenant, ALL_APPS[app], count)
    decision = fleet.plan(args.mode)
    echo(f"mode={args.mode} mix={args.mix} scale={args.scale} "
         f"platform={profile.name}")
    echo(f"instances: {decision.plan.n_instances} "
         f"(baseline {decision.baseline.n_instances}, "
         f"{decision.plan.fused_instances} fused, "
         f"{decision.merges} merges)")
    for group, replicas in decision.plan.bundles:
        members = " + ".join(
            f"{tenant}/{app.name}×{count}" for tenant, app, count in group.members
        )
        echo(f"  {replicas:5d} × [{members}]  "
             f"mem={group.memory_mb} MB")
    echo(f"predicted: service={decision.score.service_s:.1f}s "
         f"expense=${decision.score.expense_usd:.4f} "
         f"joint={decision.score.joint:.4f} "
         f"(baseline service={decision.baseline_score.service_s:.1f}s "
         f"expense=${decision.baseline_score.expense_usd:.4f})")
    return 0


def _cmd_compare(args, log) -> int:
    target = FusionTarget()
    store = ArtifactStore(args.root) if args.root else None
    rows = []
    for mode in FUSION_MODES:
        params = _params(args, mode)
        resolved = target.resolve(params)
        output = target.execute(resolved, args.seed)
        if store is not None:
            manifest = RunManifest(
                campaign=args.campaign,
                stage=mode,
                target=target.name,
                params=params,
                resolved_config=resolved,
                seed=args.seed,
            )
            store.finish_run(
                manifest, output.summary, metrics_jsonl=output.metrics_jsonl
            )
            log.info("persisted %s as %s", mode, manifest.run_id)
        rows.append(output.summary)

    if args.as_json:
        echo(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    echo(f"mix={args.mix} scale={args.scale} platform={args.platform} "
         f"billing="
         + ("rounded" if _params(args, 'both')['billing_granularity_s'] else "exact"))
    echo(f"{'mode':>8} {'inst':>6} {'fused':>6} {'service_s':>10} "
         f"{'expense_usd':>12} {'usd/1k fns':>11}")
    for row in rows:
        echo(f"{row['mode']:>8} {row['instances']:>6} "
             f"{row['fused_instances']:>6} {row['service_s']:>10.1f} "
             f"{row['expense_usd']:>12.4f} "
             f"{row['usd_per_1k_functions']:>11.4f}")
    baseline = rows[0]
    for row in rows[1:]:
        saved = 100.0 * (
            1.0 - row["usd_per_1k_functions"] / baseline["usd_per_1k_functions"]
        )
        echo(f"{row['mode']}: {saved:+.1f}% cheaper per 1k functions than "
             f"user-side propack")
    for row in rows:
        if row["constraint_violations"] or not row["conserved"]:
            echo(f"WARNING: mode {row['mode']} violated constraints or "
                 f"conservation")
            return 1
    return 0


def _cmd_dump(args, log) -> int:
    resolved = FusionTarget().resolve(_params(args, args.mode))
    echo(canonical_json(resolved))
    return 0


_COMMANDS = {
    "plan": _cmd_plan,
    "compare": _cmd_compare,
    "dump": _cmd_dump,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    log = get_console_logger(
        verbose=getattr(args, "verbose", 0), quiet=getattr(args, "quiet", 0)
    )
    try:
        return _COMMANDS[args.command](args, log)
    except (FileNotFoundError, ValueError, KeyError, json.JSONDecodeError) as exc:
        log.error("%s", exc)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
