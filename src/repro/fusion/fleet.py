"""FusedFleet: multi-tenant admission, fusion planning, and execution.

The platform-side counterpart of
:class:`~repro.platform.multitenant.SharedFleet`: tenants submit per-app
demands, the fleet admits them against shape and quota limits (recording
every decision in the same :class:`~repro.platform.multitenant.FleetAccount`
ledger the shared fleet keeps, so ``submitted == admitted + rejected``
holds by construction), then plans one of three deployments and executes
it on a shared seeded datacenter:

``propack``
    user-side only — every tenant packs their own clones at their Eq. 7
    ProPack degree; no cross-app or cross-tenant sharing (the baseline).
``fusion``
    platform-side only — functions arrive unpacked and the fusion
    optimizer builds groups from scratch.
``both``
    user-side degrees first, then the platform merges further — the
    deployment the fusion experiment shows is cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.models import ScalingTimeModel
from repro.fusion.optimizer import FusionDecision, FusionOptimizer
from repro.fusion.scheduler import FusionRunReport, FusionScheduler
from repro.fusion.spec import FusionConstraints, TenantDemand
from repro.interference.model import PairwiseInterference
from repro.platform.multitenant import FleetAccount
from repro.platform.providers import PlatformProfile
from repro.workloads.base import AppSpec

FUSION_MODES = ("propack", "fusion", "both")


@dataclass
class FleetRunReport:
    """One fused-fleet run: plan provenance, measurements, and ledger."""

    mode: str
    decision: FusionDecision
    report: FusionRunReport
    accounts: dict[str, FleetAccount]
    constraint_violations: list[str]

    @property
    def expense_usd(self) -> float:
        return self.report.expense_usd

    @property
    def service_time(self) -> float:
        return self.report.service_time

    def usd_per_1k_functions(self) -> float:
        return self.report.usd_per_1k_functions()


class FusedFleet:
    """One shared datacenter, many tenants, platform-side fusion."""

    def __init__(
        self,
        profile: PlatformProfile,
        seed: int = 0,
        *,
        isolation: str = "shared",
        allow_cross_runtime: bool = False,
        tenant_quota_functions: Optional[int] = None,
        w_service: float = 0.5,
        w_expense: float = 0.5,
        affinity: Optional[Mapping[tuple[str, str], float]] = None,
        scaling: Optional[ScalingTimeModel] = None,
    ) -> None:
        if tenant_quota_functions is not None and tenant_quota_functions < 0:
            raise ValueError("tenant quota must be non-negative")
        self.profile = profile
        self.seed = seed
        self.constraints = FusionConstraints(
            max_memory_mb=profile.max_memory_mb,
            max_execution_seconds=profile.max_execution_seconds,
            isolation=isolation,
            allow_cross_runtime=allow_cross_runtime,
        )
        self.model = PairwiseInterference(profile.isolation_penalty, affinity)
        self.quota = tenant_quota_functions
        self.w_service = w_service
        self.w_expense = w_expense
        self.scaling = scaling
        self._demands: list[TenantDemand] = []
        self._accounts: dict[str, FleetAccount] = {}

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def submit(self, tenant: str, app: AppSpec, count: int) -> int:
        """Submit ``count`` clones of ``app``; returns how many were
        admitted. Rejections (over-quota functions, functions whose memory
        cannot fit any instance) land in the tenant's ledger so
        ``submitted == admitted + rejected`` always holds."""
        if count < 1:
            raise ValueError("count must be >= 1")
        account = self._accounts.setdefault(tenant, FleetAccount(tenant))
        account.submitted += count

        admitted = count
        if app.mem_mb > self.profile.max_memory_mb:
            admitted = 0  # can never fit an instance, whole demand refused
        elif self.quota is not None:
            headroom = self.quota - account.admitted
            admitted = max(0, min(admitted, headroom))
        account.admitted += admitted
        account.rejected += count - admitted
        if admitted > 0:
            self._demands.append(TenantDemand(tenant, app, admitted))
        return admitted

    def ledger(self) -> dict[str, FleetAccount]:
        return dict(self._accounts)

    # ------------------------------------------------------------------ #
    # planning and execution
    # ------------------------------------------------------------------ #
    def optimizer(self) -> FusionOptimizer:
        if not self._demands:
            raise ValueError("no admitted demands to plan")
        return FusionOptimizer(
            self.profile,
            self._demands,
            model=self.model,
            constraints=self.constraints,
            scaling=self.scaling,
            w_service=self.w_service,
            w_expense=self.w_expense,
        )

    def plan(self, mode: str = "both") -> FusionDecision:
        if mode not in FUSION_MODES:
            raise ValueError(f"mode must be one of {FUSION_MODES} (got {mode!r})")
        optimizer = self.optimizer()
        if mode == "propack":
            baseline = optimizer.baseline_plan(user_side=True)
            score = optimizer.score_plan(baseline)  # joint = 1.0 vs itself
            return FusionDecision(
                plan=baseline, score=score, baseline=baseline,
                baseline_score=score, merges=0,
            )
        return optimizer.optimize(user_side=(mode == "both"))

    def run(self, mode: str = "both", repetition: int = 0) -> FleetRunReport:
        """Plan, execute on the shared kernel, and settle the ledger."""
        decision = self.plan(mode)
        scheduler = FusionScheduler(self.profile, self.seed)
        report = scheduler.execute(decision.plan, repetition)
        for bill in report.bills:
            self._accounts[bill.tenant].billed_usd = bill.total_usd
        violations = decision.plan.constraint_violations(
            self.constraints, self.model
        )
        return FleetRunReport(
            mode=mode,
            decision=decision,
            report=report,
            accounts=self.ledger(),
            constraint_violations=violations,
        )
