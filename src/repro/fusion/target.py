"""The ``fusion-fleet`` campaign target: one fused-fleet run per manifest.

Registering fusion runs as :class:`~repro.harness.targets.CampaignTarget`
runs makes every fusion sweep a byte-reproducible artifact: the manifest
embeds the fully-expanded demand set, the platform profile (including the
billing-fidelity knobs), and the planning weights, and
``propack-campaign reproduce`` / ``propack-fusion compare --root`` re-run
it byte-identically. The target lives in ``repro.fusion`` — not the
harness — mirroring ``chaos-serving``; importing ``repro.fusion``
registers it.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.fusion.fleet import FUSION_MODES, FusedFleet
from repro.fusion.spec import ISOLATION_POLICIES
from repro.harness.manifest import canonical_json
from repro.harness.targets import CampaignTarget, RunOutput, register_target

#: Named multi-tenant workload mixes: (tenant, app name, demand weight).
#: Demands are ``round(weight × scale)`` functions, so one ``scale`` knob
#: moves a mix between burst and serving magnitudes.
MIXES: dict[str, tuple[tuple[str, str, float], ...]] = {
    "trio": (
        ("analytics", "sort", 1.0),
        ("media", "video", 0.75),
        ("api", "stateless-cost", 1.5),
    ),
    "search": (
        ("api", "xapian", 2.0),
        ("batch", "stateless-cost", 1.0),
    ),
    "hpc": (
        ("genomics", "smith-waterman", 1.0),
        ("analytics", "sort", 1.0),
        ("api", "xapian", 1.5),
    ),
}

_DEFAULTS: dict[str, Any] = {
    "mix": "trio",
    "scale": 200,
    "platform": "aws-lambda",
    "mode": "both",
    "isolation": "shared",
    "allow_cross_runtime": False,
    "tenant_quota_functions": None,
    "w_service": 0.5,
    "w_expense": 0.5,
    "billing_granularity_s": 0.0,
    "min_billed_duration_s": 0.0,
    "cpu_throttle_multiplier": 1.0,
}


def mix_demands(mix: str, scale: int) -> list[tuple[str, str, int]]:
    """Expand a named mix at ``scale`` into (tenant, app, count) rows."""
    if mix not in MIXES:
        raise ValueError(f"unknown mix {mix!r} (have {sorted(MIXES)})")
    if scale < 1:
        raise ValueError("scale must be >= 1")
    return [
        (tenant, app, max(1, round(weight * scale)))
        for tenant, app, weight in MIXES[mix]
    ]


class FusionTarget(CampaignTarget):
    """Plan + execute one fused fleet and summarize dollars and fairness."""

    name = "fusion-fleet"

    def resolve(self, params: Mapping[str, Any]) -> dict[str, Any]:
        from dataclasses import asdict

        from repro.platform.providers import PROVIDERS
        from repro.workloads import ALL_APPS

        params = dict(params)
        resolved = dict(_DEFAULTS)
        for key in _DEFAULTS:
            if key in params:
                resolved[key] = params.pop(key)
        if params:
            raise ValueError(f"fusion-fleet: unknown params {sorted(params)}")
        if resolved["platform"] not in PROVIDERS:
            raise ValueError(
                f"fusion-fleet: unknown platform {resolved['platform']!r}"
            )
        if resolved["mode"] not in FUSION_MODES:
            raise ValueError(f"fusion-fleet: unknown mode {resolved['mode']!r}")
        if resolved["isolation"] not in ISOLATION_POLICIES:
            raise ValueError(
                f"fusion-fleet: unknown isolation {resolved['isolation']!r}"
            )
        demands = mix_demands(resolved["mix"], int(resolved["scale"]))
        resolved["scale"] = int(resolved["scale"])
        resolved["demands"] = [list(row) for row in demands]
        resolved["app_specs"] = {
            app: asdict(ALL_APPS[app]) for _, app, _ in demands
        }
        profile = PROVIDERS[resolved["platform"]].with_overrides(
            billing_granularity_s=float(resolved["billing_granularity_s"]),
            min_billed_duration_s=float(resolved["min_billed_duration_s"]),
            cpu_throttle_multiplier=float(resolved["cpu_throttle_multiplier"]),
        )
        resolved["platform_profile"] = asdict(profile)
        return resolved

    def execute(self, resolved: Mapping[str, Any], seed: int) -> RunOutput:
        from repro.platform.providers import PROVIDERS
        from repro.workloads import ALL_APPS

        profile = PROVIDERS[resolved["platform"]].with_overrides(
            billing_granularity_s=float(resolved["billing_granularity_s"]),
            min_billed_duration_s=float(resolved["min_billed_duration_s"]),
            cpu_throttle_multiplier=float(resolved["cpu_throttle_multiplier"]),
        )
        quota = resolved["tenant_quota_functions"]
        fleet = FusedFleet(
            profile,
            seed=seed,
            isolation=str(resolved["isolation"]),
            allow_cross_runtime=bool(resolved["allow_cross_runtime"]),
            tenant_quota_functions=None if quota is None else int(quota),
            w_service=float(resolved["w_service"]),
            w_expense=float(resolved["w_expense"]),
        )
        for tenant, app, count in resolved["demands"]:
            fleet.submit(tenant, ALL_APPS[app], int(count))
        run = fleet.run(str(resolved["mode"]))
        report = run.report
        decision = run.decision
        summary = {
            "mix": resolved["mix"],
            "mode": run.mode,
            "platform": profile.name,
            "functions": report.plan.n_functions,
            "instances": report.plan.n_instances,
            "fused_instances": report.plan.fused_instances,
            "baseline_instances": decision.baseline.n_instances,
            "merges": decision.merges,
            "predicted_joint": decision.score.joint,
            "service_s": report.service_time,
            "scaling_s": report.scaling_time,
            "expense_usd": report.expense_usd,
            "usd_per_1k_functions": report.usd_per_1k_functions(),
            "tenants": {
                tenant: {
                    "submitted": account.submitted,
                    "admitted": account.admitted,
                    "rejected": account.rejected,
                    "billed_usd": account.billed_usd,
                }
                for tenant, account in sorted(run.accounts.items())
            },
            "conserved": all(a.conserved() for a in run.accounts.values()),
            "constraint_violations": len(run.constraint_violations),
        }
        metrics = "".join(
            canonical_json(
                {
                    "tenant": bill.tenant,
                    "functions": bill.functions,
                    "compute_usd": bill.compute_usd,
                    "requests_usd": bill.requests_usd,
                    "storage_usd": bill.storage_usd,
                    "egress_usd": bill.egress_usd,
                    "total_usd": bill.total_usd,
                }
            )
            + "\n"
            for bill in report.bills
        )
        return RunOutput(summary=summary, metrics_jsonl=metrics)


# Module-level registration: importing repro.fusion makes "fusion-fleet"
# resolvable by manifests; module caching keeps it one-shot.
register_target(FusionTarget())
