"""``python -m repro.fusion`` — the propack-fusion CLI."""

from repro.fusion.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
