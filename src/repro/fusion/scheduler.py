"""FusionScheduler: launch fused instances on the shared dispatch kernel.

Execution reuses the exact engine path mixed-app plans already take: the
:class:`~repro.fusion.spec.FusionPlan` expands to a
:class:`~repro.extensions.mixed.MixedPlan` and runs through
:class:`~repro.extensions.mixed_sim.MixedBurstSimulator` — i.e. the shared
:class:`~repro.engine.burst.BurstDispatchKernel` with the heterogeneity
hooks — so fused runs are byte-deterministic per seed and inherit the
placement scheduler, container pipeline, and billing treatment unchanged.

What fusion adds on top is the *ledger*: every instance record is mapped
back to its fusion group (``instance_id`` indexes the plan's deterministic
expansion order) and its charges are attributed to tenants proportionally
— compute and request fees by memory-footprint share of the instance,
storage and egress by I/O-footprint share of the run. The attribution is
conservative by construction: per-tenant bills sum to the run's expense
breakdown, which :func:`repro.chaos.invariants.check_tenant_billing_attribution`
audits.

Because simulation dynamics never depend on the billing schedule, a
finished report can be *re-billed* under a different fidelity
(:func:`rebill`) without re-running — that is how experiments compare
exact vs 100 ms-rounded dollars on one set of records.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.extensions.mixed_sim import MixedBurstSimulator
from repro.fusion.spec import FusionGroup, FusionPlan
from repro.platform.billing import BillingModel
from repro.platform.metrics import ExpenseBreakdown, InstanceRecord, RunResult
from repro.platform.providers import PlatformProfile
from repro.platform.storage import StorageUsage


@dataclass(frozen=True)
class TenantBill:
    """One tenant's attributed share of a fused run's expense."""

    tenant: str
    functions: int
    compute_usd: float
    requests_usd: float
    storage_usd: float
    egress_usd: float

    @property
    def total_usd(self) -> float:
        return (
            self.compute_usd + self.requests_usd + self.storage_usd + self.egress_usd
        )


@dataclass
class FusionRunReport:
    """A fused run's measurements plus its per-tenant ledger."""

    plan: FusionPlan
    run: RunResult
    storage: StorageUsage
    expense: ExpenseBreakdown
    bills: tuple[TenantBill, ...]

    @property
    def service_time(self) -> float:
        return self.run.service_time()

    @property
    def scaling_time(self) -> float:
        return self.run.scaling_time

    @property
    def expense_usd(self) -> float:
        return self.expense.total_usd

    @property
    def n_functions(self) -> int:
        return self.plan.n_functions

    def usd_per_1k_functions(self) -> float:
        return 1000.0 * self.expense.total_usd / max(1, self.plan.n_functions)

    def bill_for(self, tenant: str) -> TenantBill:
        for bill in self.bills:
            if bill.tenant == tenant:
                return bill
        raise KeyError(f"no bill for tenant {tenant!r}")


def _group_for_record(plan_groups: list[FusionGroup], record: InstanceRecord) -> FusionGroup:
    """Map a record back to its composition via the deterministic
    expansion order (fault-free mixed bursts create one chain per group,
    ids assigned in order)."""
    group = plan_groups[record.instance_id]
    if group.size != record.n_packed:
        raise RuntimeError(
            f"instance {record.instance_id} packed {record.n_packed} functions "
            f"but its plan group holds {group.size} — plan/record order drifted"
        )
    return group


def attribute_expense(
    plan: FusionPlan,
    records: list[InstanceRecord],
    storage: StorageUsage,
    billing: BillingModel,
) -> tuple[ExpenseBreakdown, tuple[TenantBill, ...]]:
    """Bill the run under ``billing`` and split every line item by tenant.

    Compute and the per-instance request fee split by each tenant's memory
    footprint share *of that instance*; the run-wide storage and egress
    charges split by I/O footprint (``count × io_mb``) across the plan.
    """
    expense = billing.burst_expense(records, storage)
    groups = plan.instance_groups()

    compute: dict[str, float] = {}
    requests: dict[str, float] = {}
    for record in records:
        group = _group_for_record(groups, record)
        weights = group.tenant_weights()
        scale = sum(weights.values())
        instance_compute = billing.instance_compute_usd(record)
        for tenant, weight in weights.items():
            share = weight / scale
            compute[tenant] = compute.get(tenant, 0.0) + instance_compute * share
            requests[tenant] = (
                requests.get(tenant, 0.0) + billing.profile.per_request_usd * share
            )

    io_weights: dict[str, float] = {}
    for group, replicas in plan.bundles:
        for tenant, app, count in group.members:
            io_weights[tenant] = (
                io_weights.get(tenant, 0.0) + app.io_mb * count * replicas
            )
    io_scale = sum(io_weights.values())

    functions = plan.tenant_functions()
    bills = []
    for tenant in sorted(functions):
        io_share = (io_weights.get(tenant, 0.0) / io_scale) if io_scale > 0 else (
            1.0 / len(functions)
        )
        bills.append(
            TenantBill(
                tenant=tenant,
                functions=functions[tenant],
                compute_usd=compute.get(tenant, 0.0),
                requests_usd=requests.get(tenant, 0.0),
                storage_usd=expense.storage_usd * io_share,
                egress_usd=expense.egress_usd * io_share,
            )
        )
    return expense, tuple(bills)


def rebill(report: FusionRunReport, profile: PlatformProfile) -> FusionRunReport:
    """The same run re-billed under another profile's billing schedule.

    Dynamics are billing-independent, so only the dollars change — the
    records, storage usage, and timings are shared with the input report.
    """
    billing = BillingModel(profile)
    expense, bills = attribute_expense(
        report.plan, report.run.records, report.storage, billing
    )
    run = replace(report.run, expense=expense)
    return FusionRunReport(
        plan=report.plan, run=run, storage=report.storage,
        expense=expense, bills=bills,
    )


class FusionScheduler:
    """Executes fusion plans on one seeded simulated datacenter."""

    def __init__(
        self,
        profile: PlatformProfile,
        seed: int = 0,
        kernel_mode: Optional[str] = None,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.billing = BillingModel(profile)
        self.kernel_mode = kernel_mode

    def execute(self, plan: FusionPlan, repetition: int = 0) -> FusionRunReport:
        result = MixedBurstSimulator(
            self.profile, self.seed, kernel_mode=self.kernel_mode
        ).run(plan.to_mixed_plan(), repetition)
        assert result.storage is not None
        expense, bills = attribute_expense(
            plan, result.run.records, result.storage, self.billing
        )
        run = replace(result.run, expense=expense)
        return FusionRunReport(
            plan=plan, run=run, storage=result.storage,
            expense=expense, bills=bills,
        )
