"""Workflow DAG definition and analysis.

Two layers live here:

* :class:`TaskGraph` — a validated DAG over opaque task names. It is the
  generic dependency substrate: :class:`WorkflowGraph` uses it for
  sim-level stage DAGs, and ``repro.harness.planner`` builds campaign run
  DAGs on it (sweep stages with barrier dependencies).
* :class:`WorkflowGraph` — the simulation-facing DAG of
  :class:`Stage` bursts (apps × concurrency with ``depends_on`` edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx

from repro.workloads.base import AppSpec


class TaskGraph:
    """A validated DAG over opaque task names.

    ``edges`` are ``(dependency, dependent)`` pairs: the second task may
    only start once the first has completed. Duplicate names, unknown
    endpoints, self-loops, and cycles are rejected at construction.
    """

    def __init__(
        self,
        nodes: Sequence[str],
        edges: Iterable[tuple[str, str]] = (),
    ) -> None:
        if not nodes:
            raise ValueError("a task graph needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError("duplicate task names")
        known = set(nodes)
        self.graph = nx.DiGraph()
        self.graph.add_nodes_from(nodes)
        for dep, node in edges:
            if dep not in known:
                raise ValueError(f"{node}: unknown dependency {dep!r}")
            if node not in known:
                raise ValueError(f"unknown task {node!r}")
            if dep == node:
                raise ValueError(f"{node}: a task cannot depend on itself")
            self.graph.add_edge(dep, node)
        if not nx.is_directed_acyclic_graph(self.graph):
            cycle = nx.find_cycle(self.graph)
            raise ValueError(f"task graph has a cycle: {cycle}")

    def __len__(self) -> int:
        return self.graph.number_of_nodes()

    def topological_order(self) -> list[str]:
        return list(nx.topological_sort(self.graph))

    def roots(self) -> list[str]:
        return [n for n in self.graph.nodes if self.graph.in_degree(n) == 0]

    def sinks(self) -> list[str]:
        return [n for n in self.graph.nodes if self.graph.out_degree(n) == 0]

    def dependencies(self, name: str) -> list[str]:
        return sorted(self.graph.predecessors(name))

    def ready(self, completed: Iterable[str]) -> list[str]:
        """Tasks whose every dependency is in ``completed``, in topological
        order (completed tasks themselves are excluded)."""
        done = set(completed)
        return [
            n
            for n in self.topological_order()
            if n not in done
            and all(dep in done for dep in self.graph.predecessors(n))
        ]


@dataclass(frozen=True)
class Stage:
    """One workflow stage: a concurrent burst of one application.

    ``depends_on`` names stages whose *complete* output this stage consumes
    (barrier semantics, like a MapReduce round or a Step Functions map
    state followed by a join).
    """

    name: str
    app: AppSpec
    concurrency: int
    depends_on: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("stage needs a name")
        if self.concurrency < 1:
            raise ValueError(f"{self.name}: concurrency must be >= 1")
        if self.name in self.depends_on:
            raise ValueError(f"{self.name}: a stage cannot depend on itself")


class WorkflowGraph:
    """A validated DAG of stages."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        if not stages:
            raise ValueError("a workflow needs at least one stage")
        self.stages: dict[str, Stage] = {s.name: s for s in stages}
        self.tasks = TaskGraph(
            [s.name for s in stages],
            [(dep, s.name) for s in stages for dep in s.depends_on],
        )
        self.graph = self.tasks.graph

    def __len__(self) -> int:
        return len(self.stages)

    def topological_order(self) -> list[Stage]:
        return [self.stages[name] for name in self.tasks.topological_order()]

    def roots(self) -> list[str]:
        return self.tasks.roots()

    def sinks(self) -> list[str]:
        return self.tasks.sinks()

    def critical_path(self, durations: dict[str, float]) -> tuple[list[str], float]:
        """Longest path through the DAG under per-stage ``durations``.

        Returns (stage names along the path, total length). This is the
        workflow's makespan when stages start as soon as their dependencies
        finish.
        """
        missing = set(self.stages) - set(durations)
        if missing:
            raise ValueError(f"missing durations for stages: {sorted(missing)}")
        finish: dict[str, float] = {}
        pred: dict[str, str | None] = {}
        for name in nx.topological_sort(self.graph):
            dep_finish = 0.0
            best_pred = None
            for dep in self.graph.predecessors(name):
                if finish[dep] > dep_finish:
                    dep_finish = finish[dep]
                    best_pred = dep
            finish[name] = dep_finish + durations[name]
            pred[name] = best_pred
        end = max(finish, key=finish.get)
        path = [end]
        while pred[path[-1]] is not None:
            path.append(pred[path[-1]])
        return list(reversed(path)), finish[end]
