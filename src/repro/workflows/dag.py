"""Workflow DAG definition and analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from repro.workloads.base import AppSpec


@dataclass(frozen=True)
class Stage:
    """One workflow stage: a concurrent burst of one application.

    ``depends_on`` names stages whose *complete* output this stage consumes
    (barrier semantics, like a MapReduce round or a Step Functions map
    state followed by a join).
    """

    name: str
    app: AppSpec
    concurrency: int
    depends_on: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("stage needs a name")
        if self.concurrency < 1:
            raise ValueError(f"{self.name}: concurrency must be >= 1")
        if self.name in self.depends_on:
            raise ValueError(f"{self.name}: a stage cannot depend on itself")


class WorkflowGraph:
    """A validated DAG of stages."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        if not stages:
            raise ValueError("a workflow needs at least one stage")
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ValueError("duplicate stage names")
        self.stages: dict[str, Stage] = {s.name: s for s in stages}
        self.graph = nx.DiGraph()
        self.graph.add_nodes_from(names)
        for stage in stages:
            for dep in stage.depends_on:
                if dep not in self.stages:
                    raise ValueError(f"{stage.name}: unknown dependency {dep!r}")
                self.graph.add_edge(dep, stage.name)
        if not nx.is_directed_acyclic_graph(self.graph):
            cycle = nx.find_cycle(self.graph)
            raise ValueError(f"workflow has a cycle: {cycle}")

    def __len__(self) -> int:
        return len(self.stages)

    def topological_order(self) -> list[Stage]:
        return [self.stages[name] for name in nx.topological_sort(self.graph)]

    def roots(self) -> list[str]:
        return [n for n in self.graph.nodes if self.graph.in_degree(n) == 0]

    def sinks(self) -> list[str]:
        return [n for n in self.graph.nodes if self.graph.out_degree(n) == 0]

    def critical_path(self, durations: dict[str, float]) -> tuple[list[str], float]:
        """Longest path through the DAG under per-stage ``durations``.

        Returns (stage names along the path, total length). This is the
        workflow's makespan when stages start as soon as their dependencies
        finish.
        """
        missing = set(self.stages) - set(durations)
        if missing:
            raise ValueError(f"missing durations for stages: {sorted(missing)}")
        finish: dict[str, float] = {}
        pred: dict[str, str | None] = {}
        for name in nx.topological_sort(self.graph):
            dep_finish = 0.0
            best_pred = None
            for dep in self.graph.predecessors(name):
                if finish[dep] > dep_finish:
                    dep_finish = finish[dep]
                    best_pred = dep
            finish[name] = dep_finish + durations[name]
            pred[name] = best_pred
        end = max(finish, key=finish.get)
        path = [end]
        while pred[path[-1]] is not None:
            path.append(pred[path[-1]])
        return list(reversed(path)), finish[end]
