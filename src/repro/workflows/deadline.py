"""Deadline-driven workflow planning.

Extends the paper's QoS reasoning (Sec. 2.6) from a single burst to a DAG:
given a workflow and an end-to-end deadline, choose each stage's packing
degree so the predicted makespan meets the deadline at minimum predicted
expense.

Algorithm: start every stage at its *expense-optimal* degree (Eq. 4).
While the predicted makespan exceeds the deadline, find the stage on the
current critical path whose move to a faster degree buys the most makespan
per extra dollar, and apply it. Stops when the deadline (with a safety
factor) is met or no stage can go faster (infeasible — reported, not
hidden).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.propack import ProPack
from repro.workflows.dag import WorkflowGraph


@dataclass
class StageChoice:
    """One stage's current degree plus its candidate curve."""

    name: str
    degrees: list[int]
    service: dict[int, float]
    expense: dict[int, float]
    degree: int

    def faster_candidates(self) -> list[int]:
        current = self.service[self.degree]
        return [d for d in self.degrees if self.service[d] < current]


@dataclass
class DeadlinePlan:
    """The planner's decision for one workflow."""

    degrees: dict[str, int]
    predicted_makespan_s: float
    predicted_expense_usd: float
    deadline_s: float
    feasible: bool
    critical_path: list[str] = field(default_factory=list)


class DeadlinePlanner:
    """Chooses per-stage packing degrees under a workflow deadline."""

    def __init__(self, propack: ProPack, safety: float = 0.95) -> None:
        if not 0.0 < safety <= 1.0:
            raise ValueError("safety must be in (0, 1]")
        self.propack = propack
        self.safety = safety

    # ------------------------------------------------------------------ #
    def _stage_choices(self, workflow: WorkflowGraph) -> dict[str, StageChoice]:
        choices: dict[str, StageChoice] = {}
        for stage in workflow.topological_order():
            optimizer = self.propack.optimizer(stage.app, stage.concurrency)
            degrees = optimizer.degrees()
            service = {d: optimizer.service.predict(d) for d in degrees}
            expense = {d: optimizer.expense.predict(d) for d in degrees}
            choices[stage.name] = StageChoice(
                name=stage.name,
                degrees=degrees,
                service=service,
                expense=expense,
                degree=optimizer.optimal_expense(),
            )
        return choices

    def _makespan(
        self, workflow: WorkflowGraph, choices: dict[str, StageChoice]
    ) -> tuple[list[str], float]:
        durations = {name: c.service[c.degree] for name, c in choices.items()}
        return workflow.critical_path(durations)

    # ------------------------------------------------------------------ #
    def plan(self, workflow: WorkflowGraph, deadline_s: float) -> DeadlinePlan:
        """Greedy critical-path tightening toward the deadline."""
        if deadline_s <= 0:
            raise ValueError("deadline must be positive")
        choices = self._stage_choices(workflow)
        budget = deadline_s * self.safety

        while True:
            path, makespan = self._makespan(workflow, choices)
            if makespan <= budget:
                feasible = True
                break
            # Best move: largest makespan saving per extra dollar, among
            # faster candidates of critical-path stages.
            best: Optional[tuple[float, str, int]] = None
            for name in path:
                choice = choices[name]
                current_service = choice.service[choice.degree]
                current_expense = choice.expense[choice.degree]
                for candidate in choice.faster_candidates():
                    saving = current_service - choice.service[candidate]
                    cost = choice.expense[candidate] - current_expense
                    ratio = saving / max(cost, 1e-9) if cost > 0 else math.inf
                    if best is None or ratio > best[0]:
                        best = (ratio, name, candidate)
            if best is None:
                feasible = False  # every critical stage is already fastest
                break
            _, name, candidate = best
            choices[name].degree = candidate

        path, makespan = self._makespan(workflow, choices)
        expense = sum(c.expense[c.degree] for c in choices.values())
        return DeadlinePlan(
            degrees={name: c.degree for name, c in choices.items()},
            predicted_makespan_s=makespan,
            predicted_expense_usd=expense,
            deadline_s=deadline_s,
            feasible=feasible,
            critical_path=path,
        )
