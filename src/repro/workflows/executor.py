"""Workflow execution with per-stage packing.

Each stage is one concurrent burst; a stage starts as soon as every
dependency's burst has completed (barrier semantics). With ``propack``
supplied, every stage's packing degree is planned by ProPack — interference
profiles are cached per application and the scaling model is shared across
stages, so a workflow with many stages of the same app profiles once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.propack import ProPack
from repro.faults.retry import RetryPolicy
from repro.faults.scenario import FaultScenario
from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.metrics import RunResult
from repro.workflows.dag import Stage, WorkflowGraph


@dataclass
class StageOutcome:
    """One executed stage."""

    stage: Stage
    result: RunResult
    packing_degree: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class WorkflowResult:
    """Everything measured from one workflow execution."""

    outcomes: dict[str, StageOutcome] = field(default_factory=dict)
    profiling_overhead_usd: float = 0.0

    @property
    def makespan_s(self) -> float:
        return max(o.end_s for o in self.outcomes.values())

    @property
    def expense_usd(self) -> float:
        burst = sum(o.result.expense.total_usd for o in self.outcomes.values())
        return burst + self.profiling_overhead_usd

    def critical_path(self) -> list[str]:
        """Stages on the realized longest chain (walk ends backwards)."""
        end_stage = max(self.outcomes.values(), key=lambda o: o.end_s)
        path = [end_stage.stage.name]
        current = end_stage
        while current.stage.depends_on:
            blocker = max(
                (self.outcomes[dep] for dep in current.stage.depends_on),
                key=lambda o: o.end_s,
            )
            path.append(blocker.stage.name)
            current = blocker
        return list(reversed(path))


class WorkflowRunner:
    """Executes a :class:`WorkflowGraph` on one platform.

    ``scenario`` / ``retry_policy`` are threaded into every directly-run
    stage's :class:`~repro.platform.invoker.BurstSpec`, so workflow stages
    inherit the shared dispatch kernel's fault, throttle, and retry
    semantics without stage-level re-wiring (ProPack-planned stages keep
    the planner's own burst configuration).
    """

    def __init__(
        self,
        platform: ServerlessPlatform,
        propack: Optional[ProPack] = None,
        objective: str = "joint",
        scenario: Optional[FaultScenario] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.platform = platform
        self.propack = propack
        self.objective = objective
        self.scenario = scenario
        self.retry_policy = retry_policy

    def _stage_spec(self, stage: Stage, degree: int) -> BurstSpec:
        """One stage's burst request under the workflow's fault environment."""
        return BurstSpec(
            app=stage.app,
            concurrency=stage.concurrency,
            packing_degree=degree,
            scenario=self.scenario,
            retry_policy=self.retry_policy,
        )

    def run(
        self,
        workflow: WorkflowGraph,
        degrees: Optional[dict[str, int]] = None,
    ) -> WorkflowResult:
        """Execute the workflow.

        ``degrees`` overrides the per-stage packing degree (e.g. from a
        :class:`~repro.workflows.deadline.DeadlinePlanner` decision);
        otherwise stages are planned by ``propack`` (or run unpacked).
        """
        result = WorkflowResult()
        overhead_seen: set[str] = set()
        for stage in workflow.topological_order():
            start = max(
                (result.outcomes[dep].end_s for dep in stage.depends_on),
                default=0.0,
            )
            if degrees is not None and stage.name in degrees:
                degree = degrees[stage.name]
                burst = self.platform.run_burst(self._stage_spec(stage, degree))
            elif self.propack is not None:
                outcome = self.propack.run(
                    stage.app, stage.concurrency, objective=self.objective
                )
                burst = outcome.result
                degree = outcome.plan.degree
                # Profiling is per-app; charge it once per application.
                if stage.app.name not in overhead_seen:
                    overhead_seen.add(stage.app.name)
                    result.profiling_overhead_usd += outcome.overhead_usd
            else:
                burst = self.platform.run_burst(self._stage_spec(stage, 1))
                degree = 1
            result.outcomes[stage.name] = StageOutcome(
                stage=stage,
                result=burst,
                packing_degree=degree,
                start_s=start,
                end_s=start + burst.service_time(),
            )
        return result
