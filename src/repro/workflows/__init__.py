"""Serverless workflow (DAG) support.

The paper's introduction motivates packing with multi-step applications:
"resource-intensive large-scale applications are frequently broken down
into multiple steps, where each of the steps is processed in parallel by a
large number of serverless functions" [14]. This package models such
applications as DAGs of *stages* — each stage a concurrent burst of one
application — and plans every stage's packing degree with ProPack:

* :mod:`~repro.workflows.dag` — stage/graph definitions, validation,
  critical-path analysis (networkx underneath).
* :mod:`~repro.workflows.executor` — runs a workflow on a platform, with
  per-stage ProPack packing or the unpacked baseline.
"""

from repro.workflows.dag import Stage, TaskGraph, WorkflowGraph
from repro.workflows.deadline import DeadlinePlan, DeadlinePlanner
from repro.workflows.executor import StageOutcome, WorkflowResult, WorkflowRunner

__all__ = [
    "Stage",
    "TaskGraph",
    "WorkflowGraph",
    "StageOutcome",
    "WorkflowResult",
    "WorkflowRunner",
    "DeadlinePlan",
    "DeadlinePlanner",
]
