"""Network fabric of the datacenter.

Shipping built containers to their target servers is bounded by the
builder's uplink bandwidth (paper Sec. 1: "this step is again bounded by the
network bandwidth of the server forming the containers"). We model the
uplink as a processor-sharing queue: all in-flight transfers share the
bandwidth equally, so per-transfer time grows with the number of concurrent
transfers.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.engine import Simulator
from repro.sim.resources import ProcessorSharingResource


class NetworkFabric:
    """Uplink bandwidth shared by concurrent container shipments."""

    def __init__(self, sim: Simulator, uplink_gbps: float) -> None:
        if uplink_gbps <= 0:
            raise ValueError("uplink bandwidth must be positive")
        self.sim = sim
        self.uplink_gbps = uplink_gbps
        # Capacity in MB/s: 1 Gbps = 125 MB/s.
        self._uplink = ProcessorSharingResource(sim, uplink_gbps * 125.0, name="uplink")
        self.bytes_shipped_mb = 0.0

    @property
    def in_flight(self) -> int:
        return self._uplink.active_jobs

    def ship(self, size_mb: float, callback: Callable[..., None], *args: Any) -> None:
        """Transfer ``size_mb`` and invoke ``callback(*args)`` on arrival."""
        if size_mb < 0:
            raise ValueError(f"negative transfer size {size_mb}")
        self.bytes_shipped_mb += size_mb
        self._uplink.submit(size_mb, callback, *args)
