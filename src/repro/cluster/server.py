"""Execution servers of the datacenter.

A :class:`Server` hosts function instances (microVMs / containers / pods).
The pool tracks occupancy so the placement scheduler's search cost can grow
with the number of busy servers — the mechanism behind the super-linear
scheduling delay the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class Server:
    """One execution server (an EC2 host in the AWS Lambda story)."""

    server_id: int
    cores: int
    memory_mb: int
    used_cores: int = 0
    used_memory_mb: int = 0
    instances: int = 0

    def can_host(self, cores: int, memory_mb: int) -> bool:
        return (
            self.used_cores + cores <= self.cores
            and self.used_memory_mb + memory_mb <= self.memory_mb
        )

    def allocate(self, cores: int, memory_mb: int) -> None:
        if not self.can_host(cores, memory_mb):
            raise ValueError(f"server {self.server_id} cannot host ({cores}c, {memory_mb}MB)")
        self.used_cores += cores
        self.used_memory_mb += memory_mb
        self.instances += 1

    def release(self, cores: int, memory_mb: int) -> None:
        if self.instances <= 0:
            raise ValueError(f"server {self.server_id} has no instances to release")
        self.used_cores -= cores
        self.used_memory_mb -= memory_mb
        self.instances -= 1

    @property
    def busy(self) -> bool:
        return self.instances > 0


class ServerPool:
    """The fleet of execution servers.

    Placement is round-robin first-fit: realistic enough for a burst of
    identical instances, while keeping the interesting cost (the *search*
    itself, charged by the scheduler) explicit rather than emergent from
    bin-packing detail.
    """

    def __init__(self, n_servers: int, cores_per_server: int, memory_mb_per_server: int) -> None:
        if n_servers < 1:
            raise ValueError("need at least one server")
        self.servers = [
            Server(i, cores_per_server, memory_mb_per_server) for i in range(n_servers)
        ]
        self._cursor = 0

    def __len__(self) -> int:
        return len(self.servers)

    @property
    def busy_servers(self) -> int:
        return sum(1 for s in self.servers if s.busy)

    @property
    def total_instances(self) -> int:
        return sum(s.instances for s in self.servers)

    def find_placement(self, cores: int, memory_mb: int) -> Optional[Server]:
        """First-fit from a moving cursor; ``None`` if the fleet is full."""
        n = len(self.servers)
        for offset in range(n):
            server = self.servers[(self._cursor + offset) % n]
            if server.can_host(cores, memory_mb):
                self._cursor = (self._cursor + offset + 1) % n
                return server
        return None

    def place(self, cores: int, memory_mb: int) -> Server:
        server = self.find_placement(cores, memory_mb)
        if server is None:
            raise RuntimeError(
                f"fleet exhausted: {len(self.servers)} servers, "
                f"{self.total_instances} instances placed"
            )
        server.allocate(cores, memory_mb)
        return server
