"""Function image registry.

A serverless function is stored as an *image*: source code, runtime
environment, and dependency manifest (paper Sec. 1). The registry holds
images and answers size queries used by the build and ship stages. Image
size drives container start-up (download + install) and shipping times.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FunctionImage:
    """Stored image for one serverless function."""

    name: str
    code_mb: float
    runtime_mb: float
    dependencies_mb: float

    def __post_init__(self) -> None:
        for label, size in (
            ("code_mb", self.code_mb),
            ("runtime_mb", self.runtime_mb),
            ("dependencies_mb", self.dependencies_mb),
        ):
            if size < 0:
                raise ValueError(f"{label} must be non-negative (got {size})")

    @property
    def total_mb(self) -> float:
        return self.code_mb + self.runtime_mb + self.dependencies_mb

    @property
    def install_mb(self) -> float:
        """Bytes that must be downloaded and installed at container build."""
        return self.runtime_mb + self.dependencies_mb


class ImageRegistry:
    """Name → image mapping with upsert semantics."""

    def __init__(self) -> None:
        self._images: dict[str, FunctionImage] = {}

    def register(self, image: FunctionImage) -> None:
        self._images[image.name] = image

    def get(self, name: str) -> FunctionImage:
        try:
            return self._images[name]
        except KeyError:
            raise KeyError(f"no image registered under {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._images

    def __len__(self) -> int:
        return len(self._images)
