"""Datacenter substrate: servers, network fabric, and the image registry.

These are the physical resources the serverless control plane
(:mod:`repro.platform`) schedules onto. The model matches the paper's
description of what happens behind a function invocation (Sec. 1):

1. a *scheduling* pass searches running servers for placement targets,
2. the server holding the function image *builds* containers/microVMs by
   downloading and installing the runtime + dependencies,
3. built containers are *shipped* over the builder's uplink to the chosen
   servers.
"""

from repro.cluster.network import NetworkFabric
from repro.cluster.registry import FunctionImage, ImageRegistry
from repro.cluster.server import Server, ServerPool

__all__ = [
    "NetworkFabric",
    "FunctionImage",
    "ImageRegistry",
    "Server",
    "ServerPool",
]
