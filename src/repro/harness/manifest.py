"""Per-run provenance manifests.

A :class:`RunManifest` is the complete recipe for one campaign run: the
target that executed it, the raw sweep-point parameters, the target's
fully-resolved configuration, the seed, and the code tier (package version
plus git SHA when the tree is available). ``propack-campaign reproduce``
re-runs a manifest and asserts that ``summary.json`` comes back identical,
so manifests deliberately contain **no wall-clock state** — two manifests
for the same (target, params, seed) are byte-identical regardless of when
or in how many interrupted attempts they were produced. Wall-clock timing
lives in the run's ``runtime.json`` sidecar, outside the identity.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Union

#: Bumped whenever the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def config_digest(target: str, resolved_config: Mapping[str, Any], seed: int) -> str:
    """Deterministic run identity: hash of the fully-resolved recipe."""
    basis = canonical_json(
        {"target": target, "config": resolved_config, "seed": seed}
    )
    return hashlib.sha256(basis.encode()).hexdigest()


def package_version() -> str:
    """The installed ``repro`` version (pyproject's, not importlib's, when
    running from a source tree on ``PYTHONPATH``)."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        return "unknown"


def git_sha(root: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The current commit SHA, or ``None`` outside a git checkout."""
    if root is None:
        root = Path(__file__).resolve().parent
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


@dataclass(frozen=True)
class RunManifest:
    """Everything needed to re-execute one run and check the result."""

    campaign: str
    stage: str
    target: str
    params: dict[str, Any]
    resolved_config: dict[str, Any]
    seed: int
    run_id: str = ""
    package_version: str = field(default_factory=package_version)
    git_sha: Optional[str] = field(default_factory=git_sha)
    schema: int = MANIFEST_SCHEMA

    def __post_init__(self) -> None:
        # Normalize through JSON so in-memory manifests compare equal to
        # reloaded ones (tuples become lists, keys become strings): resume
        # detection relies on plain dataclass equality.
        object.__setattr__(self, "params", json.loads(canonical_json(self.params)))
        object.__setattr__(
            self,
            "resolved_config",
            json.loads(canonical_json(self.resolved_config)),
        )
        expected = self.derive_run_id()
        if not self.run_id:
            object.__setattr__(self, "run_id", expected)
        elif self.run_id != expected:
            raise ValueError(
                f"run_id {self.run_id!r} does not match the resolved config "
                f"(expected {expected!r}) — the manifest was edited or the "
                "target's resolution changed"
            )

    def derive_run_id(self) -> str:
        return config_digest(self.target, self.resolved_config, self.seed)[:16]

    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict[str, Any]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunManifest":
        data = dict(payload)
        schema = data.get("schema", MANIFEST_SCHEMA)
        if schema != MANIFEST_SCHEMA:
            raise ValueError(f"unsupported manifest schema {schema!r}")
        unknown = set(data) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ValueError(f"unknown manifest keys: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_json(Path(path).read_text())
