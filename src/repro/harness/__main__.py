"""``python -m repro.harness`` — alias for ``propack-campaign``."""

from repro.harness.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
