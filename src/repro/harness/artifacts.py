"""On-disk run artifacts: ``results/<campaign>/<run_id>/``.

Layout of one completed run directory::

    results/<campaign>/<run_id>/
        manifest.json   # RunManifest — the full recipe (identity)
        metrics.jsonl   # telemetry events / per-row records (may be empty)
        summary.json    # headline scalars — the reproduce contract
        runtime.json    # wall-clock + attempt bookkeeping (not identity)

``summary.json`` is written last via an atomic rename, so its presence is
the completion marker: a killed run leaves ``manifest.json`` without a
summary and is transparently re-executed on resume. Everything except
``runtime.json`` is byte-deterministic for seeded targets.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from repro.harness.manifest import RunManifest

MANIFEST_FILE = "manifest.json"
METRICS_FILE = "metrics.jsonl"
SUMMARY_FILE = "summary.json"
RUNTIME_FILE = "runtime.json"


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def summary_json(summary: dict[str, Any]) -> str:
    """The canonical ``summary.json`` serialization (reproduce compares
    these bytes, so there is exactly one way to write a summary)."""
    return json.dumps(summary, sort_keys=True, indent=2) + "\n"


@dataclass(frozen=True)
class RunStatus:
    """One run's place in the campaign lifecycle."""

    run_id: str
    stage: str
    target: str
    state: str  # "pending" | "incomplete" | "complete"
    wall_time_s: Optional[float] = None


class ArtifactStore:
    """Reads and writes the per-run artifact layout under one root."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    def campaign_dir(self, campaign: str) -> Path:
        return self.root / campaign

    def run_dir(self, campaign: str, run_id: str) -> Path:
        return self.campaign_dir(campaign) / run_id

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def begin_run(self, manifest: RunManifest) -> Path:
        """Create the run directory and write the manifest (idempotent)."""
        run_dir = self.run_dir(manifest.campaign, manifest.run_id)
        run_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write(run_dir / MANIFEST_FILE, manifest.to_json())
        return run_dir

    def finish_run(
        self,
        manifest: RunManifest,
        summary: dict[str, Any],
        metrics_jsonl: str = "",
        runtime: Optional[dict[str, Any]] = None,
    ) -> Path:
        """Write the remaining artifacts; the summary lands last (atomic),
        flipping the run to complete."""
        run_dir = self.begin_run(manifest)
        _atomic_write(run_dir / METRICS_FILE, metrics_jsonl)
        if runtime is not None:
            _atomic_write(
                run_dir / RUNTIME_FILE,
                json.dumps(runtime, sort_keys=True, indent=2) + "\n",
            )
        _atomic_write(run_dir / SUMMARY_FILE, summary_json(summary))
        return run_dir

    def record(
        self,
        campaign: str,
        target: str,
        params: dict[str, Any],
        summary: dict[str, Any],
        seed: int,
        stage: str = "default",
        metrics_jsonl: str = "",
    ) -> RunManifest:
        """One-shot convenience for externally-executed runs (e.g. the
        benchmark suite recording ``BENCH_*.json`` emissions)."""
        manifest = RunManifest(
            campaign=campaign,
            stage=stage,
            target=target,
            params=dict(params),
            resolved_config=dict(params),
            seed=seed,
        )
        self.finish_run(manifest, summary, metrics_jsonl=metrics_jsonl)
        return manifest

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def is_complete(self, campaign: str, run_id: str) -> bool:
        run_dir = self.run_dir(campaign, run_id)
        return (run_dir / MANIFEST_FILE).exists() and (
            run_dir / SUMMARY_FILE
        ).exists()

    def load_manifest(self, campaign: str, run_id: str) -> RunManifest:
        return RunManifest.load(self.run_dir(campaign, run_id) / MANIFEST_FILE)

    def load_summary(self, campaign: str, run_id: str) -> dict[str, Any]:
        path = self.run_dir(campaign, run_id) / SUMMARY_FILE
        return json.loads(path.read_text())

    def load_runtime(self, campaign: str, run_id: str) -> Optional[dict[str, Any]]:
        path = self.run_dir(campaign, run_id) / RUNTIME_FILE
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def completed_runs(self, campaign: str) -> list[str]:
        """run_ids with a full manifest + summary pair, sorted."""
        campaign_dir = self.campaign_dir(campaign)
        if not campaign_dir.is_dir():
            return []
        return sorted(
            d.name
            for d in campaign_dir.iterdir()
            if d.is_dir() and self.is_complete(campaign, d.name)
        )

    def statuses(self, campaign: str) -> list[RunStatus]:
        """Every run directory under ``campaign``, complete or not."""
        campaign_dir = self.campaign_dir(campaign)
        if not campaign_dir.is_dir():
            return []
        out: list[RunStatus] = []
        for d in sorted(p for p in campaign_dir.iterdir() if p.is_dir()):
            manifest_path = d / MANIFEST_FILE
            if not manifest_path.exists():
                continue
            manifest = RunManifest.load(manifest_path)
            complete = (d / SUMMARY_FILE).exists()
            runtime = self.load_runtime(campaign, d.name)
            out.append(
                RunStatus(
                    run_id=d.name,
                    stage=manifest.stage,
                    target=manifest.target,
                    state="complete" if complete else "incomplete",
                    wall_time_s=(runtime or {}).get("wall_time_s"),
                )
            )
        return out
