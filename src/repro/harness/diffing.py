"""Diffing two runs: what changed in the recipe, what changed in the result.

``propack-campaign diff <run_a> <run_b>`` answers "these two runs disagree
— why?" by diffing the flattened manifests (config, seed, code tier) and
the flattened summaries side by side. Nested dicts flatten to dotted keys
(``platform_profile.gb_second_usd``), lists to indexed keys
(``concurrencies.2``), so a single coefficient change is one line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Union

from repro.harness.artifacts import MANIFEST_FILE, SUMMARY_FILE
from repro.harness.manifest import RunManifest


def flatten(value: Any, prefix: str = "") -> dict[str, Any]:
    """Nested dicts/lists → ``{dotted.key: scalar}``."""
    out: dict[str, Any] = {}
    if isinstance(value, dict):
        for key in sorted(value):
            out.update(flatten(value[key], f"{prefix}{key}."))
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            out.update(flatten(item, f"{prefix}{i}."))
    else:
        out[prefix[:-1]] = value
    return out


@dataclass(frozen=True)
class FieldChange:
    key: str
    a: Any
    b: Any


@dataclass
class RunDiff:
    """Structured diff of two run directories."""

    run_a: str
    run_b: str
    config_changes: list[FieldChange] = field(default_factory=list)
    provenance_changes: list[FieldChange] = field(default_factory=list)
    summary_changes: list[FieldChange] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not (
            self.config_changes or self.provenance_changes or self.summary_changes
        )


def _changes(a: dict[str, Any], b: dict[str, Any]) -> list[FieldChange]:
    flat_a, flat_b = flatten(a), flatten(b)
    return [
        FieldChange(key=k, a=flat_a.get(k, "<missing>"), b=flat_b.get(k, "<missing>"))
        for k in sorted(set(flat_a) | set(flat_b))
        if flat_a.get(k, "<missing>") != flat_b.get(k, "<missing>")
    ]


def diff_runs(dir_a: Union[str, Path], dir_b: Union[str, Path]) -> RunDiff:
    """Diff two completed run directories (each holding manifest+summary)."""
    dir_a, dir_b = Path(dir_a), Path(dir_b)
    man_a = RunManifest.load(dir_a / MANIFEST_FILE)
    man_b = RunManifest.load(dir_b / MANIFEST_FILE)
    sum_a = json.loads((dir_a / SUMMARY_FILE).read_text())
    sum_b = json.loads((dir_b / SUMMARY_FILE).read_text())
    recipe_a = {"seed": man_a.seed, "target": man_a.target, **man_a.resolved_config}
    recipe_b = {"seed": man_b.seed, "target": man_b.target, **man_b.resolved_config}
    prov_a = {
        "package_version": man_a.package_version,
        "git_sha": man_a.git_sha,
        "campaign": man_a.campaign,
        "stage": man_a.stage,
    }
    prov_b = {
        "package_version": man_b.package_version,
        "git_sha": man_b.git_sha,
        "campaign": man_b.campaign,
        "stage": man_b.stage,
    }
    return RunDiff(
        run_a=man_a.run_id,
        run_b=man_b.run_id,
        config_changes=_changes(recipe_a, recipe_b),
        provenance_changes=_changes(prov_a, prov_b),
        summary_changes=_changes(sum_a, sum_b),
    )
