"""``propack-campaign`` — run, resume, inspect, and reproduce campaigns.

Subcommands::

    propack-campaign run quickstart --root results
        Execute (or resume) a campaign: a built-in spec name or a path to
        a spec JSON. Completed runs are detected from their manifests and
        skipped, so re-invoking after a crash finishes the sweep.

    propack-campaign status results/quickstart
        Per-run completion table for a campaign directory.

    propack-campaign reproduce results/quickstart/<run_id>/manifest.json
        Re-execute one manifest and assert the summary matches (exact by
        default; --tolerance for intentionally nondeterministic targets).
        Exits non-zero on mismatch.

    propack-campaign diff results/q/<run_a> results/q/<run_b>
        What differs between two runs: recipe, provenance, and results.

    propack-campaign targets | specs
        List registered campaign targets / built-in specs.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional, Sequence

from repro.harness.artifacts import ArtifactStore
from repro.harness.diffing import diff_runs
from repro.harness.planner import plan_campaign
from repro.harness.executor import CampaignExecutor
from repro.harness.reproduce import reproduce_run
from repro.harness.spec import CampaignSpec, builtin_specs
from repro.harness.targets import DEFAULT_REGISTRY
from repro.telemetry.logging import add_verbosity_flags, echo, get_console_logger


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="propack-campaign",
        description="Reproducible experiment campaigns with per-run manifests.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute or resume a campaign")
    run.add_argument("spec", help="built-in spec name or path to a spec JSON")
    run.add_argument("--root", default="results", help="artifact root directory")
    run.add_argument("--parallelism", type=int, default=None,
                     help="worker processes (default: the spec's)")
    run.add_argument("--max-retries", type=int, default=None,
                     help="extra seed-preserving attempts per flaky run")
    run.add_argument("--dry-run", action="store_true",
                     help="plan and print the run DAG without executing")
    add_verbosity_flags(run)

    status = sub.add_parser("status", help="campaign completion table")
    status.add_argument("campaign_dir", help="results/<campaign> directory")
    add_verbosity_flags(status)

    rep = sub.add_parser("reproduce", help="re-run a manifest and verify")
    rep.add_argument("manifest", help="path to a run's manifest.json")
    rep.add_argument("--tolerance", type=float, default=0.0,
                     help="relative tolerance (default 0.0 = exact)")
    add_verbosity_flags(rep)

    diff = sub.add_parser("diff", help="compare two run directories")
    diff.add_argument("run_a")
    diff.add_argument("run_b")
    add_verbosity_flags(diff)

    targets = sub.add_parser("targets", help="list registered targets")
    add_verbosity_flags(targets)

    specs = sub.add_parser("specs", help="list built-in campaign specs")
    add_verbosity_flags(specs)

    return parser


def _load_spec(ref: str) -> CampaignSpec:
    builtins = builtin_specs()
    if ref in builtins:
        return builtins[ref]
    path = Path(ref)
    if path.exists():
        return CampaignSpec.load(path)
    raise SystemExit(
        f"error: {ref!r} is neither a built-in spec "
        f"({', '.join(sorted(builtins))}) nor a spec file"
    )


def _cmd_run(args, log) -> int:
    spec = _load_spec(args.spec)
    plan = plan_campaign(spec)
    if args.dry_run:
        echo(f"campaign {spec.name}: {len(plan)} runs")
        for planned in plan.runs:
            deps = (
                f"  <- {len(planned.depends_on)} deps" if planned.depends_on else ""
            )
            echo(
                f"  {planned.run_id}  stage={planned.stage} "
                f"target={planned.manifest.target} seed={planned.manifest.seed}"
                f"{deps}"
            )
        return 0
    executor = CampaignExecutor(ArtifactStore(args.root))
    log.info(
        "campaign %s: %d planned runs -> %s/%s",
        spec.name, len(plan), args.root, spec.name,
    )
    report = executor.run(
        plan, parallelism=args.parallelism, max_retries=args.max_retries
    )
    echo(
        f"campaign {spec.name}: {len(report.executed)} executed, "
        f"{len(report.skipped)} skipped, {len(report.failed)} failed "
        f"in {report.wall_time_s:.1f}s"
    )
    for record in report.records:
        if record.outcome == "failed":
            log.error("run %s failed:\n%s", record.run_id, record.error)
    return 0 if report.ok else 1


def _cmd_status(args, log) -> int:
    campaign_dir = Path(args.campaign_dir)
    if not campaign_dir.is_dir():
        log.error("no such campaign directory: %s", campaign_dir)
        return 2
    store = ArtifactStore(campaign_dir.parent)
    statuses = store.statuses(campaign_dir.name)
    if not statuses:
        echo(f"{campaign_dir}: no runs")
        return 0
    complete = sum(1 for s in statuses if s.state == "complete")
    echo(f"{campaign_dir.name}: {complete}/{len(statuses)} runs complete")
    for s in statuses:
        wall = f"{s.wall_time_s:.2f}s" if s.wall_time_s is not None else "-"
        echo(f"  {s.run_id}  {s.state:<10} stage={s.stage} target={s.target} wall={wall}")
    return 0 if complete == len(statuses) else 1


def _cmd_reproduce(args, log) -> int:
    report = reproduce_run(args.manifest, tolerance=args.tolerance)
    if report.matched:
        exact = "byte-identical" if report.byte_identical else (
            f"within tolerance {report.tolerance:g}"
        )
        echo(f"run {report.run_id} ({report.target}): REPRODUCED ({exact})")
    else:
        echo(f"run {report.run_id} ({report.target}): MISMATCH")
        for m in report.mismatches:
            echo(f"  {m.key}: recorded={m.expected!r} reproduced={m.actual!r}")
    if report.resolution_drift:
        log.warning(
            "resolution drift (same params resolve differently today): %s",
            ", ".join(report.resolution_drift),
        )
    return 0 if report.matched else 1


def _cmd_diff(args, log) -> int:
    diff = diff_runs(args.run_a, args.run_b)
    echo(f"diff {diff.run_a} vs {diff.run_b}")
    if diff.identical:
        echo("  identical (recipe, provenance, and summary)")
        return 0
    for title, changes in (
        ("recipe", diff.config_changes),
        ("provenance", diff.provenance_changes),
        ("summary", diff.summary_changes),
    ):
        for change in changes:
            echo(f"  {title}: {change.key}: {change.a!r} -> {change.b!r}")
    return 1


def _cmd_targets(args, log) -> int:
    for name in DEFAULT_REGISTRY.names():
        doc = (type(DEFAULT_REGISTRY.get(name)).__doc__ or "").strip()
        echo(f"{name:<14} {doc.splitlines()[0] if doc else ''}")
    return 0


def _cmd_specs(args, log) -> int:
    for name, spec in sorted(builtin_specs().items()):
        stages = ", ".join(s.name for s in spec.stages)
        echo(f"{name:<16} {spec.n_runs} runs ({stages})")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "status": _cmd_status,
    "reproduce": _cmd_reproduce,
    "diff": _cmd_diff,
    "targets": _cmd_targets,
    "specs": _cmd_specs,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    log = get_console_logger(
        verbose=getattr(args, "verbose", 0), quiet=getattr(args, "quiet", 0)
    )
    try:
        return _COMMANDS[args.command](args, log)
    except (FileNotFoundError, ValueError, KeyError, json.JSONDecodeError) as exc:
        log.error("%s", exc)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
