"""Declarative campaign specs.

A :class:`CampaignSpec` is a JSON-serializable description of a sweep
campaign: one or more :class:`SweepStage` s, each a cartesian grid
(``axes``) over a target's parameters crossed with a seed list, with
barrier dependencies between stages (every run of a dependent stage waits
for *all* runs of its dependencies — the shape used by
"sweep → aggregate" campaigns). The planner expands a spec into a run DAG;
the spec itself never executes anything.

Example (the built-in ``quickstart`` spec)::

    {
      "name": "quickstart",
      "stages": [
        {
          "name": "sweep",
          "target": "burst",
          "params": {"app": "stateless-cost", "packing_degree": 4},
          "axes": {"concurrency": [16, 32, 64]},
          "seeds": [2023]
        }
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping, Union

_NAME_OK = set("abcdefghijklmnopqrstuvwxyz0123456789-_.")


def _check_name(kind: str, name: str) -> str:
    if not name or set(name.lower()) - _NAME_OK:
        raise ValueError(
            f"{kind} name {name!r} must be non-empty filesystem-safe "
            "(letters, digits, '-', '_', '.')"
        )
    return name


@dataclass(frozen=True)
class SweepStage:
    """One stage: a target swept over ``axes × seeds``."""

    name: str
    target: str
    params: dict[str, Any] = field(default_factory=dict)
    axes: dict[str, tuple[Any, ...]] = field(default_factory=dict)
    seeds: tuple[int, ...] = (2023,)
    depends_on: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _check_name("stage", self.name)
        if not self.target:
            raise ValueError(f"{self.name}: stage needs a target")
        if not self.seeds:
            raise ValueError(f"{self.name}: stage needs at least one seed")
        if self.name in self.depends_on:
            raise ValueError(f"{self.name}: a stage cannot depend on itself")
        object.__setattr__(
            self, "axes", {k: tuple(v) for k, v in self.axes.items()}
        )
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "depends_on", tuple(self.depends_on))
        for axis, values in self.axes.items():
            if not values:
                raise ValueError(f"{self.name}: axis {axis!r} is empty")
            if axis in self.params:
                raise ValueError(
                    f"{self.name}: {axis!r} is both a fixed param and an axis"
                )

    @property
    def n_runs(self) -> int:
        n = len(self.seeds)
        for values in self.axes.values():
            n *= len(values)
        return n


@dataclass(frozen=True)
class CampaignSpec:
    """A named, validated collection of sweep stages."""

    name: str
    stages: tuple[SweepStage, ...]
    parallelism: int = 1
    max_retries: int = 1

    def __post_init__(self) -> None:
        _check_name("campaign", self.name)
        if not self.stages:
            raise ValueError("a campaign needs at least one stage")
        object.__setattr__(self, "stages", tuple(self.stages))
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError("duplicate stage names")
        known = set(names)
        for stage in self.stages:
            missing = [d for d in stage.depends_on if d not in known]
            if missing:
                raise ValueError(f"{stage.name}: unknown dependencies {missing}")
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    @property
    def n_runs(self) -> int:
        return sum(s.n_runs for s in self.stages)

    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        for stage in payload["stages"]:
            stage["axes"] = {k: list(v) for k, v in stage["axes"].items()}
            stage["seeds"] = list(stage["seeds"])
            stage["depends_on"] = list(stage["depends_on"])
        return payload

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        data = dict(payload)
        stages = tuple(
            SweepStage(
                name=s["name"],
                target=s["target"],
                params=dict(s.get("params", {})),
                axes={k: tuple(v) for k, v in s.get("axes", {}).items()},
                seeds=tuple(s.get("seeds", (2023,))),
                depends_on=tuple(s.get("depends_on", ())),
            )
            for s in data.get("stages", ())
        )
        return cls(
            name=data["name"],
            stages=stages,
            parallelism=int(data.get("parallelism", 1)),
            max_retries=int(data.get("max_retries", 1)),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignSpec":
        return cls.from_json(Path(path).read_text())


# --------------------------------------------------------------------- #
# Built-in specs (used by the README quickstart and the CI smoke step)
# --------------------------------------------------------------------- #
def builtin_specs() -> dict[str, CampaignSpec]:
    return {
        # README quickstart: a 3-run concurrency sweep.
        "quickstart": CampaignSpec(
            name="quickstart",
            stages=(
                SweepStage(
                    name="sweep",
                    target="burst",
                    params={"app": "stateless-cost", "packing_degree": 4},
                    axes={"concurrency": (16, 32, 64)},
                    seeds=(2023,),
                ),
            ),
        ),
        # CI smoke: 4 runs across two stages with a barrier edge, small
        # enough to finish in seconds but exercising the whole harness.
        "smoke": CampaignSpec(
            name="smoke",
            stages=(
                SweepStage(
                    name="baseline",
                    target="burst",
                    params={"app": "sort", "packing_degree": 1},
                    axes={"concurrency": (24, 48)},
                    seeds=(2023,),
                ),
                SweepStage(
                    name="packed",
                    target="burst",
                    params={"app": "sort", "packing_degree": 6},
                    axes={"concurrency": (24, 48)},
                    seeds=(2023,),
                    depends_on=("baseline",),
                ),
            ),
        ),
        # The three long-horizon sweeps as one campaign (quick grids).
        "serving-suite": CampaignSpec(
            name="serving-suite",
            stages=(
                SweepStage(
                    name="serving",
                    target="experiment",
                    params={"figure": "serving", "grid": "quick"},
                    seeds=(2023,),
                ),
                SweepStage(
                    name="overload",
                    target="experiment",
                    params={"figure": "overload", "grid": "quick"},
                    seeds=(2023,),
                ),
                SweepStage(
                    name="selfhealing",
                    target="experiment",
                    params={"figure": "selfhealing", "grid": "quick"},
                    seeds=(2023,),
                ),
            ),
        ),
    }
