"""Campaign planning: spec → run DAG.

:func:`plan_campaign` expands every stage's ``axes × seeds`` grid into
:class:`PlannedRun` s, resolves each grid point through its target (so the
manifest is written *before* execution and is identical whether the run
later succeeds, flakes, or is resumed), and wires the barrier dependencies
into a :class:`repro.workflows.dag.TaskGraph` keyed by run id. Run ids are
content hashes of ``(target, resolved config, seed)`` — planning the same
spec twice yields the same ids, which is what makes resume detection and
killed-vs-uninterrupted manifest identity trivial.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

from repro.harness.manifest import RunManifest
from repro.harness.spec import CampaignSpec, SweepStage
from repro.harness.targets import DEFAULT_REGISTRY, TargetRegistry
from repro.workflows.dag import TaskGraph


@dataclass(frozen=True)
class PlannedRun:
    """One grid point, fully resolved and ready to execute."""

    manifest: RunManifest
    depends_on: tuple[str, ...]  # run ids of barrier dependencies

    @property
    def run_id(self) -> str:
        return self.manifest.run_id

    @property
    def stage(self) -> str:
        return self.manifest.stage


@dataclass(frozen=True)
class CampaignPlan:
    """The expanded campaign: runs + their dependency DAG."""

    spec: CampaignSpec
    runs: tuple[PlannedRun, ...]
    dag: TaskGraph

    def __len__(self) -> int:
        return len(self.runs)

    def run(self, run_id: str) -> PlannedRun:
        for planned in self.runs:
            if planned.run_id == run_id:
                return planned
        raise KeyError(f"no planned run {run_id!r}")

    def by_stage(self, stage: str) -> list[PlannedRun]:
        return [r for r in self.runs if r.stage == stage]


def expand_stage(stage: SweepStage) -> list[tuple[dict[str, Any], int]]:
    """All ``(params, seed)`` grid points of one stage, in deterministic
    axis-major order (axes in declaration order, then seeds)."""
    axis_names = list(stage.axes)
    points: list[tuple[dict[str, Any], int]] = []
    for combo in itertools.product(*(stage.axes[a] for a in axis_names)):
        params = dict(stage.params)
        params.update(zip(axis_names, combo))
        for seed in stage.seeds:
            points.append((params, seed))
    return points


def plan_campaign(
    spec: CampaignSpec,
    registry: Optional[TargetRegistry] = None,
) -> CampaignPlan:
    """Expand and resolve ``spec`` into an executable :class:`CampaignPlan`."""
    registry = registry or DEFAULT_REGISTRY
    runs: list[PlannedRun] = []
    stage_run_ids: dict[str, list[str]] = {}
    seen: dict[str, str] = {}
    for stage in spec.stages:
        target = registry.get(stage.target)
        barrier = tuple(
            run_id for dep in stage.depends_on for run_id in stage_run_ids[dep]
        )
        ids: list[str] = []
        for params, seed in expand_stage(stage):
            manifest = RunManifest(
                campaign=spec.name,
                stage=stage.name,
                target=stage.target,
                params=params,
                resolved_config=target.resolve(params),
                seed=seed,
            )
            if manifest.run_id in seen:
                raise ValueError(
                    f"duplicate grid point: stages {seen[manifest.run_id]!r} and "
                    f"{stage.name!r} both plan run {manifest.run_id} "
                    f"(same target, resolved config, and seed)"
                )
            seen[manifest.run_id] = stage.name
            ids.append(manifest.run_id)
            runs.append(PlannedRun(manifest=manifest, depends_on=barrier))
        stage_run_ids[stage.name] = ids
    dag = TaskGraph(
        [r.run_id for r in runs],
        [(dep, r.run_id) for r in runs for dep in r.depends_on],
    )
    return CampaignPlan(spec=spec, runs=tuple(runs), dag=dag)
