"""Reproduce a run from its manifest and check the summary matches.

``propack-campaign reproduce <manifest.json>`` re-executes the manifest's
target from the *stored* resolved config (not a re-resolution — the
manifest is the authority) and compares every ``summary.json`` scalar.
The default tolerance is ``0.0``: seeded simulations are byte-exact, so
any drift is a real regression. A relative tolerance can be passed for
targets with intentional nondeterminism.

The report also flags **resolution drift**: parameters that no longer
resolve to the stored config under the current code (e.g. a re-tuned
platform profile). Drift does not fail the reproduction — the stored
config still executed — but it tells you the same spec would plan a
different run today.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.harness.artifacts import SUMMARY_FILE, summary_json
from repro.harness.diffing import flatten
from repro.harness.executor import execute_manifest
from repro.harness.manifest import RunManifest
from repro.harness.targets import DEFAULT_REGISTRY, TargetRegistry


@dataclass(frozen=True)
class Mismatch:
    key: str
    expected: Any
    actual: Any


@dataclass
class ReproduceReport:
    """The verdict of one reproduction."""

    run_id: str
    target: str
    matched: bool
    byte_identical: bool
    tolerance: float
    mismatches: list[Mismatch] = field(default_factory=list)
    resolution_drift: list[str] = field(default_factory=list)
    reproduced_summary: dict[str, Any] = field(default_factory=dict)


def _values_match(expected: Any, actual: Any, tolerance: float) -> bool:
    if isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        if tolerance <= 0.0:
            return expected == actual
        scale = max(abs(float(expected)), abs(float(actual)), 1e-12)
        return abs(float(expected) - float(actual)) <= tolerance * scale
    return expected == actual


def compare_summaries(
    expected: dict[str, Any],
    actual: dict[str, Any],
    tolerance: float = 0.0,
) -> list[Mismatch]:
    """All differing flattened keys (missing keys are mismatches too)."""
    flat_expected = flatten(expected)
    flat_actual = flatten(actual)
    mismatches: list[Mismatch] = []
    for key in sorted(set(flat_expected) | set(flat_actual)):
        exp = flat_expected.get(key, "<missing>")
        act = flat_actual.get(key, "<missing>")
        if key not in flat_expected or key not in flat_actual:
            mismatches.append(Mismatch(key=key, expected=exp, actual=act))
        elif not _values_match(exp, act, tolerance):
            mismatches.append(Mismatch(key=key, expected=exp, actual=act))
    return mismatches


def reproduce_run(
    manifest_path: Union[str, Path],
    registry: Optional[TargetRegistry] = None,
    tolerance: float = 0.0,
) -> ReproduceReport:
    """Re-execute ``manifest_path``'s run and compare against its
    recorded ``summary.json`` (which must sit next to the manifest)."""
    registry = registry or DEFAULT_REGISTRY
    manifest_path = Path(manifest_path)
    manifest = RunManifest.load(manifest_path)
    summary_path = manifest_path.parent / SUMMARY_FILE
    if not summary_path.exists():
        raise FileNotFoundError(
            f"{summary_path}: the run is incomplete — nothing to reproduce"
        )
    recorded = json.loads(summary_path.read_text())

    output, _ = execute_manifest(manifest, registry)
    mismatches = compare_summaries(recorded, output.summary, tolerance)
    byte_identical = summary_json(output.summary) == summary_path.read_text()

    drift: list[str] = []
    try:
        resolved_now = registry.get(manifest.target).resolve(manifest.params)
        normalized = json.loads(json.dumps(resolved_now, sort_keys=True))
        if normalized != manifest.resolved_config:
            flat_old = flatten(manifest.resolved_config)
            flat_new = flatten(normalized)
            drift = sorted(
                k
                for k in set(flat_old) | set(flat_new)
                if flat_old.get(k) != flat_new.get(k)
            )
    except Exception as exc:
        drift = [f"<resolution failed: {type(exc).__name__}: {exc}>"]

    return ReproduceReport(
        run_id=manifest.run_id,
        target=manifest.target,
        matched=not mismatches,
        byte_identical=byte_identical,
        tolerance=tolerance,
        mismatches=mismatches,
        resolution_drift=drift,
        reproduced_summary=output.summary,
    )
