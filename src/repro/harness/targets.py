"""Campaign targets: what a run actually executes.

A target is the adapter between the harness and a simulation entry point.
It does three jobs:

* ``resolve(params)`` — turn sweep-point parameters into the **fully
  resolved** configuration that goes into ``manifest.json`` (defaults
  filled in, profiles expanded to their coefficients), so the manifest is
  self-contained provenance;
* ``execute(resolved, seed)`` — run the simulation from a resolved config
  and return a :class:`RunOutput` (headline scalars + optional JSONL
  metrics);
* stay **deterministic**: identical ``(resolved, seed)`` must produce a
  byte-identical summary — that is the contract ``reproduce`` asserts.

Built-ins adapt the existing entry points: ``burst`` wraps
:meth:`repro.platform.base.ServerlessPlatform.run_burst` and ``experiment``
wraps any figure/sweep in :data:`repro.experiments.figures.ALL_FIGURES`
(fig1…fig21, serving, overload, selfhealing, …), so the SH1/overload/
serving sweeps flow through the same harness as micro-bursts.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable, Mapping, Optional

from repro.harness.manifest import canonical_json


@dataclass(frozen=True)
class RunOutput:
    """What one target execution hands back to the harness."""

    summary: dict[str, Any]
    metrics_jsonl: str = ""


class CampaignTarget:
    """Base class for campaign targets (subclass and register)."""

    name: str = ""

    def resolve(self, params: Mapping[str, Any]) -> dict[str, Any]:
        raise NotImplementedError

    def execute(self, resolved: Mapping[str, Any], seed: int) -> RunOutput:
        raise NotImplementedError


class TargetRegistry:
    """Name → target lookup used by the executor, CLI, and reproduce."""

    def __init__(self) -> None:
        self._targets: dict[str, CampaignTarget] = {}

    def register(self, target: CampaignTarget) -> CampaignTarget:
        if not target.name:
            raise ValueError("target needs a non-empty name")
        if target.name in self._targets:
            raise ValueError(f"target {target.name!r} already registered")
        self._targets[target.name] = target
        return target

    def get(self, name: str) -> CampaignTarget:
        if name not in self._targets:
            self._try_lazy_import(name)
        if name not in self._targets:
            raise KeyError(
                f"unknown target {name!r} (known: {', '.join(sorted(self._targets))})"
            )
        return self._targets[name]

    def _try_lazy_import(self, name: str) -> None:
        """Convention-based plugin discovery: a target named
        ``<subsystem>-<rest>`` registers itself when ``repro.<subsystem>``
        is imported (``chaos-serving`` → ``repro.chaos``, ``fusion-fleet``
        → ``repro.fusion``). Importing on demand keeps ``propack-campaign
        reproduce`` working on any manifest without the harness ever
        naming — or statically importing — its consumers."""
        import importlib

        prefix = name.split("-", 1)[0]
        if not prefix or not prefix.isidentifier():
            return
        try:
            importlib.import_module(f"repro.{prefix}")
        except ImportError:
            return

    def names(self) -> list[str]:
        return sorted(self._targets)


#: The process-wide default registry; built-ins register at import time,
#: callers may add their own with :func:`register_target`.
DEFAULT_REGISTRY = TargetRegistry()


def register_target(target: CampaignTarget) -> CampaignTarget:
    return DEFAULT_REGISTRY.register(target)


# --------------------------------------------------------------------- #
# burst: one seeded burst on a fresh platform
# --------------------------------------------------------------------- #
class BurstTarget(CampaignTarget):
    """One burst of ``concurrency`` functions at a fixed packing degree.

    The resolved config embeds the full platform profile and app spec, so
    the manifest pins every coefficient the simulation consumed — a later
    re-tuning of a built-in profile shows up as a config diff, not a
    silent mismatch.
    """

    name = "burst"

    def resolve(self, params: Mapping[str, Any]) -> dict[str, Any]:
        from dataclasses import asdict

        from repro.platform.providers import PROVIDERS
        from repro.workloads import ALL_APPS

        params = dict(params)
        app_name = params.pop("app", "stateless-cost")
        platform_name = params.pop("platform", "aws-lambda")
        concurrency = int(params.pop("concurrency", 100))
        degree = int(params.pop("packing_degree", 1))
        if params:
            raise ValueError(f"burst: unknown params {sorted(params)}")
        if app_name not in ALL_APPS:
            raise ValueError(f"burst: unknown app {app_name!r}")
        if platform_name not in PROVIDERS:
            raise ValueError(f"burst: unknown platform {platform_name!r}")
        return {
            "app": app_name,
            "app_spec": asdict(ALL_APPS[app_name]),
            "platform": platform_name,
            "platform_profile": asdict(PROVIDERS[platform_name]),
            "concurrency": concurrency,
            "packing_degree": degree,
        }

    def execute(self, resolved: Mapping[str, Any], seed: int) -> RunOutput:
        from repro.platform.base import ServerlessPlatform
        from repro.platform.invoker import BurstSpec
        from repro.platform.providers import PROVIDERS
        from repro.telemetry import TelemetryConfig
        from repro.workloads import ALL_APPS

        profile = PROVIDERS[resolved["platform"]]
        app = ALL_APPS[resolved["app"]]
        platform = ServerlessPlatform(
            profile, seed=seed, telemetry=TelemetryConfig(tracing=False)
        )
        spec = BurstSpec(
            app=app,
            concurrency=int(resolved["concurrency"]),
            packing_degree=int(resolved["packing_degree"]),
        )
        result = platform.run_burst(spec, repetition=0)
        summary = {
            "n_instances": result.n_instances,
            "scaling_time_s": result.scaling_time,
            "service_time_s": result.service_time(),
            "service_time_tail_s": result.service_time("tail"),
            "service_time_median_s": result.service_time("median"),
            "expense_usd": result.expense.total_usd,
            "lost_functions": result.lost_functions,
        }
        # Metrics stream: one line per instance lifecycle, then every
        # telemetry bus event (fault-free bursts publish none).
        lines = [
            canonical_json(
                {
                    "kind": "instance",
                    "instance": r.instance_id,
                    "n_packed": r.n_packed,
                    "invoked_at": r.invoked_at,
                    "exec_start": r.exec_start,
                    "exec_end": r.exec_end,
                    "warm_start": r.warm_start,
                    "attempt": r.attempt,
                }
            )
            for r in result.records
        ]
        metrics = "".join(line + "\n" for line in lines)
        if platform.telemetry is not None and platform.telemetry.event_log is not None:
            metrics += platform.telemetry.events_jsonl()
        return RunOutput(summary=summary, metrics_jsonl=metrics)


# --------------------------------------------------------------------- #
# experiment: any figure/sweep from repro.experiments
# --------------------------------------------------------------------- #
def _experiment_config_fields() -> dict[str, Any]:
    from repro.experiments.config import ExperimentConfig

    return {f.name: f for f in fields(ExperimentConfig)}


def _config_from_dict(payload: Mapping[str, Any]):
    """Rebuild an :class:`ExperimentConfig` from a manifest dict (JSON
    round-trips tuples as lists, so tuple-typed fields are restored)."""
    from repro.experiments.config import ExperimentConfig

    kwargs: dict[str, Any] = {}
    known = _experiment_config_fields()
    for key, value in payload.items():
        if key not in known:
            raise ValueError(f"experiment: unknown config field {key!r}")
        default = getattr(ExperimentConfig(), key)
        kwargs[key] = tuple(value) if isinstance(default, tuple) else value
    return ExperimentConfig(**kwargs)


class ExperimentTarget(CampaignTarget):
    """One registered experiment figure under a fully-pinned grid.

    ``params``: ``figure`` (a key of ``ALL_FIGURES``), ``grid``
    (``"quick"`` or ``"full"``), plus any :class:`ExperimentConfig` field
    as an override. The summary flattens the figure's rows into
    deterministic headline scalars (per-numeric-column means), and every
    row is emitted as one ``metrics.jsonl`` line.
    """

    name = "experiment"

    def resolve(self, params: Mapping[str, Any]) -> dict[str, Any]:
        from dataclasses import asdict

        from repro.experiments.config import ExperimentConfig
        from repro.experiments.figures import ALL_FIGURES

        params = dict(params)
        figure = params.pop("figure", None)
        grid = params.pop("grid", "quick")
        if figure not in ALL_FIGURES:
            raise ValueError(
                f"experiment: unknown figure {figure!r} "
                f"(known: {', '.join(ALL_FIGURES)})"
            )
        if grid not in ("quick", "full"):
            raise ValueError(f"experiment: grid must be quick|full, got {grid!r}")
        config = ExperimentConfig.quick() if grid == "quick" else ExperimentConfig.full()
        known = _experiment_config_fields()
        unknown = [k for k in params if k not in known]
        if unknown:
            raise ValueError(f"experiment: unknown config overrides {unknown}")
        overrides = {
            k: tuple(v) if isinstance(getattr(config, k), tuple) else v
            for k, v in params.items()
        }
        config = ExperimentConfig(**{**config.__dict__, **overrides})
        return {"figure": figure, "grid": grid, "config": asdict(config)}

    def execute(self, resolved: Mapping[str, Any], seed: int) -> RunOutput:
        from repro.experiments.figures import ALL_FIGURES
        from repro.experiments.runner import ExperimentContext

        config = _config_from_dict(resolved["config"])
        config = type(config)(**{**config.__dict__, "seed": seed})
        ctx = ExperimentContext(config=config)
        fig = ALL_FIGURES[resolved["figure"]](ctx)
        summary: dict[str, Any] = {
            "figure_id": fig.figure_id,
            "rows": len(fig.rows),
        }
        for column in fig.columns:
            values = fig.column(column)
            if values and all(isinstance(v, (int, float)) for v in values):
                summary[f"{column}_mean"] = sum(float(v) for v in values) / len(values)
        metrics = "".join(
            canonical_json({"row": i, **row}) + "\n"
            for i, row in enumerate(fig.rows)
        )
        return RunOutput(summary=summary, metrics_jsonl=metrics)


register_target(BurstTarget())
register_target(ExperimentTarget())


#: Optional hook for tests/examples: a callable target without subclassing.
def make_target(
    name: str,
    resolve: Callable[[Mapping[str, Any]], dict[str, Any]],
    execute: Callable[[Mapping[str, Any], int], RunOutput],
    registry: Optional[TargetRegistry] = None,
) -> CampaignTarget:
    target = type(
        f"_{name.title().replace('-', '')}Target",
        (CampaignTarget,),
        {
            "name": name,
            "resolve": staticmethod(resolve),
            "execute": staticmethod(execute),
        },
    )()
    (registry or DEFAULT_REGISTRY).register(target)
    return target
