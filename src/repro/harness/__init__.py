"""Reproducible campaign harness.

The harness turns one-off experiment invocations into **reproducible,
resumable campaigns** (ROADMAP item 4):

* :mod:`~repro.harness.manifest` — per-run provenance: fully-resolved
  config, seed, package version, git SHA; deterministic content-hash run
  ids.
* :mod:`~repro.harness.artifacts` — the ``results/<campaign>/<run_id>/``
  layout (``manifest.json`` / ``metrics.jsonl`` / ``summary.json``) with
  atomic completion semantics.
* :mod:`~repro.harness.spec` / :mod:`~repro.harness.planner` —
  declarative sweep specs (target × axes × seeds with barrier stage
  dependencies) expanded into a run DAG on
  :class:`repro.workflows.dag.TaskGraph`.
* :mod:`~repro.harness.executor` — bounded-parallelism execution
  (process pool), seed-preserving retry-on-flake, and resume (completed
  runs detected from manifests and skipped).
* :mod:`~repro.harness.reproduce` / :mod:`~repro.harness.diffing` —
  re-run any manifest and assert the summary matches (exact by default);
  structured diffs between runs.
* :mod:`~repro.harness.targets` — adapters registering existing entry
  points (bursts, every ``repro.experiments`` figure/sweep) as campaign
  targets.
* :mod:`~repro.harness.cli` — the ``propack-campaign`` command.

Not to be confused with :mod:`repro.extensions.campaigns`, which models
the *economics* of repeated runs (profiling-overhead amortization); this
package is the *execution* harness. See ``docs/CAMPAIGNS.md``.
"""

from repro.harness.artifacts import ArtifactStore, RunStatus
from repro.harness.diffing import RunDiff, diff_runs, flatten
from repro.harness.executor import CampaignExecutor, CampaignReport, RunRecord
from repro.harness.manifest import RunManifest, config_digest
from repro.harness.planner import CampaignPlan, PlannedRun, plan_campaign
from repro.harness.reproduce import ReproduceReport, compare_summaries, reproduce_run
from repro.harness.spec import CampaignSpec, SweepStage, builtin_specs
from repro.harness.targets import (
    DEFAULT_REGISTRY,
    BurstTarget,
    CampaignTarget,
    ExperimentTarget,
    RunOutput,
    TargetRegistry,
    make_target,
    register_target,
)

__all__ = [
    "ArtifactStore",
    "BurstTarget",
    "CampaignExecutor",
    "CampaignPlan",
    "CampaignReport",
    "CampaignSpec",
    "CampaignTarget",
    "DEFAULT_REGISTRY",
    "ExperimentTarget",
    "PlannedRun",
    "ReproduceReport",
    "RunDiff",
    "RunManifest",
    "RunOutput",
    "RunRecord",
    "RunStatus",
    "SweepStage",
    "TargetRegistry",
    "builtin_specs",
    "compare_summaries",
    "config_digest",
    "diff_runs",
    "flatten",
    "make_target",
    "plan_campaign",
    "register_target",
    "reproduce_run",
]
