"""Campaign execution: bounded parallelism, retry-on-flake, resume.

The executor walks the planned run DAG in topological waves. Within a
wave, independent runs execute either in-process (``parallelism=1``, the
default — and the only mode for targets registered after interpreter
start on spawn-based platforms) or on a ``ProcessPoolExecutor`` with
``parallelism`` workers. Each run:

* is **skipped** when its artifact directory already holds a complete
  ``manifest.json`` + ``summary.json`` pair whose manifest matches the
  plan (that is resumability — a killed sweep re-executes only unfinished
  runs, and because manifests carry no wall-clock state the resumed
  campaign's artifacts are byte-identical to an uninterrupted one);
* is **retried** with the *same seed* up to ``max_retries`` extra
  attempts when the target raises (retry-on-flake; seeded sims are
  deterministic, so a genuine failure fails every attempt and surfaces);
* writes its manifest before execution, so an interrupted run leaves an
  ``incomplete`` directory that ``status`` can show and resume re-runs.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.harness.artifacts import ArtifactStore
from repro.harness.manifest import RunManifest
from repro.harness.planner import CampaignPlan, PlannedRun, plan_campaign
from repro.harness.spec import CampaignSpec
from repro.harness.targets import DEFAULT_REGISTRY, TargetRegistry


@dataclass
class RunRecord:
    """How one planned run fared in this invocation."""

    run_id: str
    stage: str
    outcome: str  # "executed" | "skipped" | "failed"
    attempts: int = 0
    error: Optional[str] = None


@dataclass
class CampaignReport:
    """Everything one :meth:`CampaignExecutor.run` invocation did."""

    campaign: str
    records: list[RunRecord] = field(default_factory=list)
    wall_time_s: float = 0.0

    def _ids(self, outcome: str) -> list[str]:
        return [r.run_id for r in self.records if r.outcome == outcome]

    @property
    def executed(self) -> list[str]:
        return self._ids("executed")

    @property
    def skipped(self) -> list[str]:
        return self._ids("skipped")

    @property
    def failed(self) -> list[str]:
        return self._ids("failed")

    @property
    def ok(self) -> bool:
        return not self.failed


def execute_manifest(
    manifest: RunManifest,
    registry: Optional[TargetRegistry] = None,
    max_retries: int = 0,
):
    """Run one manifest's target; returns ``(RunOutput, attempts)``.

    Shared by the executor, the worker processes, and ``reproduce`` — a
    reproduced run goes through exactly the code path that produced it.
    """
    registry = registry or DEFAULT_REGISTRY
    target = registry.get(manifest.target)
    attempts = 0
    while True:
        attempts += 1
        try:
            return target.execute(manifest.resolved_config, manifest.seed), attempts
        except Exception:
            if attempts > max_retries:
                raise


def _pool_worker(root: str, manifest_dict: dict, max_retries: int) -> RunRecord:
    """Module-level so ``ProcessPoolExecutor`` can pickle it; targets must
    come from the default registry (built-ins register at import)."""
    manifest = RunManifest.from_dict(manifest_dict)
    store = ArtifactStore(root)
    return _execute_and_store(store, manifest, DEFAULT_REGISTRY, max_retries)


def _execute_and_store(
    store: ArtifactStore,
    manifest: RunManifest,
    registry: TargetRegistry,
    max_retries: int,
) -> RunRecord:
    store.begin_run(manifest)
    start = time.perf_counter()
    try:
        output, attempts = execute_manifest(manifest, registry, max_retries)
    except Exception as exc:
        return RunRecord(
            run_id=manifest.run_id,
            stage=manifest.stage,
            outcome="failed",
            attempts=max_retries + 1,
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
        )
    wall = time.perf_counter() - start
    store.finish_run(
        manifest,
        output.summary,
        metrics_jsonl=output.metrics_jsonl,
        runtime={"wall_time_s": round(wall, 6), "attempts": attempts},
    )
    return RunRecord(
        run_id=manifest.run_id,
        stage=manifest.stage,
        outcome="executed",
        attempts=attempts,
    )


class CampaignExecutor:
    """Runs campaign plans against one artifact store."""

    def __init__(
        self,
        store: Union[ArtifactStore, str, Path],
        registry: Optional[TargetRegistry] = None,
    ) -> None:
        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self.registry = registry or DEFAULT_REGISTRY

    # ------------------------------------------------------------------ #
    def _should_skip(self, planned: PlannedRun) -> bool:
        manifest = planned.manifest
        if not self.store.is_complete(manifest.campaign, manifest.run_id):
            return False
        existing = self.store.load_manifest(manifest.campaign, manifest.run_id)
        return existing == manifest

    def run(
        self,
        spec_or_plan: Union[CampaignSpec, CampaignPlan],
        parallelism: Optional[int] = None,
        max_retries: Optional[int] = None,
    ) -> CampaignReport:
        """Execute (or resume) a campaign.

        ``parallelism`` / ``max_retries`` default to the spec's values.
        A run whose dependency failed is reported as ``failed`` with a
        ``dependency failed`` error and never executed.
        """
        plan = (
            spec_or_plan
            if isinstance(spec_or_plan, CampaignPlan)
            else plan_campaign(spec_or_plan, self.registry)
        )
        spec = plan.spec
        workers = spec.parallelism if parallelism is None else parallelism
        retries = spec.max_retries if max_retries is None else max_retries
        started = time.perf_counter()
        report = CampaignReport(campaign=spec.name)

        done: set[str] = set()
        failed: set[str] = set()
        pool = (
            ProcessPoolExecutor(max_workers=workers) if workers > 1 else None
        )
        try:
            while len(done) + len(failed) < len(plan):
                wave = [
                    run_id
                    for run_id in plan.dag.ready(done)
                    if run_id not in failed
                ]
                # Runs gated on a failed dependency can never become ready.
                stranded = [
                    r.run_id
                    for r in plan.runs
                    if r.run_id not in done
                    and r.run_id not in failed
                    and any(dep in failed for dep in r.depends_on)
                ]
                for run_id in stranded:
                    failed.add(run_id)
                    planned = plan.run(run_id)
                    report.records.append(
                        RunRecord(
                            run_id=run_id,
                            stage=planned.stage,
                            outcome="failed",
                            error="dependency failed",
                        )
                    )
                wave = [r for r in wave if r not in failed]
                if not wave:
                    break
                pending: list[PlannedRun] = []
                for run_id in wave:
                    planned = plan.run(run_id)
                    if self._should_skip(planned):
                        done.add(run_id)
                        report.records.append(
                            RunRecord(
                                run_id=run_id, stage=planned.stage, outcome="skipped"
                            )
                        )
                    else:
                        pending.append(planned)
                if pool is not None and pending:
                    futures = [
                        pool.submit(
                            _pool_worker,
                            str(self.store.root),
                            planned.manifest.as_dict(),
                            retries,
                        )
                        for planned in pending
                    ]
                    records = [f.result() for f in futures]
                else:
                    records = [
                        _execute_and_store(
                            self.store, planned.manifest, self.registry, retries
                        )
                        for planned in pending
                    ]
                for record in records:
                    report.records.append(record)
                    (done if record.outcome == "executed" else failed).add(
                        record.run_id
                    )
        finally:
            if pool is not None:
                pool.shutdown()
        report.wall_time_s = time.perf_counter() - started
        return report
