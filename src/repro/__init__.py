"""ProPack reproduction: executing concurrent serverless functions faster
and cheaper.

This library reproduces *ProPack* (Roy et al., HPDC 2023) end to end:

* :mod:`repro.platform` — a discrete-event serverless-platform substrate
  (AWS Lambda / Google Cloud Functions / Azure Functions profiles) with the
  scheduling/start-up/shipping scaling bottleneck the paper characterizes;
* :mod:`repro.funcx` — an on-premise FuncX-style endpoint;
* :mod:`repro.core` — ProPack itself: interference profiling, analytical
  models, optimal packing-degree selection, QoS-aware weighting, and the
  χ² model validation;
* :mod:`repro.baselines` — no-packing, Pywren, serial batching, staggering,
  and the brute-force Oracle;
* :mod:`repro.workloads` — the five evaluation applications with real,
  runnable kernels;
* :mod:`repro.runtime` — a thread-based local executor that actually packs
  and runs functions;
* :mod:`repro.experiments` — regenerates every figure of the paper's
  evaluation.

Quickstart::

    from repro import AWS_LAMBDA, ProPack, ServerlessPlatform, VIDEO

    platform = ServerlessPlatform(AWS_LAMBDA, seed=7)
    outcome = ProPack(platform).run(VIDEO, concurrency=5000)
    print(outcome.plan.degree, outcome.service_time_s, outcome.total_expense_usd)
"""

from repro.baselines import (
    Oracle,
    PywrenManager,
    SerialBatcher,
    StaggeredInvoker,
    compare_failure_awareness,
    run_unpacked,
)
from repro.core import (
    ExecutionTimeModel,
    FailurePenalty,
    GoodnessOfFit,
    InterferenceProfiler,
    PackingOptimizer,
    PackingPlan,
    ProPack,
    ProPackOutcome,
    QoSWeightSearch,
    ScalingProfiler,
    ScalingTimeModel,
)
from repro.extensions import (
    AdaptiveProPack,
    FailureAdaptiveProPack,
    MixedGroup,
    MixedInterferenceModel,
    MixedPacker,
    run_campaign,
)
from repro.faults import (
    ExponentialBackoffRetry,
    FaultScenario,
    FixedDelayRetry,
    HedgePolicy,
    ImmediateRetry,
    RetryBudget,
    RetryPolicy,
)
from repro.funcx import FuncXEndpoint
from repro.harness import (
    ArtifactStore,
    CampaignExecutor,
    CampaignSpec,
    RunManifest,
    SweepStage,
    plan_campaign,
    reproduce_run,
)
from repro.platform import (
    AWS_LAMBDA,
    AZURE_FUNCTIONS,
    GOOGLE_CLOUD_FUNCTIONS,
    PROVIDERS,
    BurstSpec,
    PlatformProfile,
    RunResult,
    ServerlessPlatform,
    SharedFleet,
)
from repro.runtime import PackedExecutor
from repro.workflows import Stage, WorkflowGraph, WorkflowRunner
from repro.workloads import (
    ALL_APPS,
    BENCHMARK_APPS,
    SMITH_WATERMAN,
    SORT,
    STATELESS_COST,
    VIDEO,
    XAPIAN,
    AppSpec,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # platform
    "ServerlessPlatform",
    "SharedFleet",
    "PlatformProfile",
    "BurstSpec",
    "RunResult",
    "AWS_LAMBDA",
    "GOOGLE_CLOUD_FUNCTIONS",
    "AZURE_FUNCTIONS",
    "PROVIDERS",
    # core
    "ProPack",
    "ProPackOutcome",
    "PackingPlan",
    "PackingOptimizer",
    "ExecutionTimeModel",
    "ScalingTimeModel",
    "InterferenceProfiler",
    "ScalingProfiler",
    "QoSWeightSearch",
    "GoodnessOfFit",
    # baselines
    "run_unpacked",
    "PywrenManager",
    "SerialBatcher",
    "StaggeredInvoker",
    "Oracle",
    "compare_failure_awareness",
    # faults + resilience
    "FaultScenario",
    "RetryPolicy",
    "ImmediateRetry",
    "FixedDelayRetry",
    "ExponentialBackoffRetry",
    "RetryBudget",
    "HedgePolicy",
    "FailurePenalty",
    "FailureAdaptiveProPack",
    # funcx + runtime
    "FuncXEndpoint",
    "PackedExecutor",
    # workflows + extensions
    "Stage",
    "WorkflowGraph",
    "WorkflowRunner",
    "AdaptiveProPack",
    "MixedGroup",
    "MixedInterferenceModel",
    "MixedPacker",
    "run_campaign",
    # harness (reproducible campaigns)
    "ArtifactStore",
    "CampaignExecutor",
    "CampaignSpec",
    "RunManifest",
    "SweepStage",
    "plan_campaign",
    "reproduce_run",
    # workloads
    "AppSpec",
    "VIDEO",
    "SORT",
    "STATELESS_COST",
    "SMITH_WATERMAN",
    "XAPIAN",
    "BENCHMARK_APPS",
    "ALL_APPS",
]
