"""Composable arrival processes for long-horizon serving simulations.

The paper evaluates one-shot concurrent bursts; a production service sees
*continuous* traffic whose rate drifts over hours. Every process here is a
pure sampler: given a :class:`~repro.sim.randomness.RandomStreams` family it
returns a sorted array of absolute arrival times, so the same seed always
produces the identical request schedule regardless of which policy consumes
it (the property every serving A/B comparison in this repo relies on).

Processes:

* :class:`PoissonProcess` — homogeneous Poisson; byte-identical to the
  inline generator :class:`~repro.extensions.streaming.StreamingDispatcher`
  historically carried (same stream label, same draw order).
* :class:`InhomogeneousPoissonProcess` — arbitrary vectorized rate function
  via Lewis-Shedler thinning.
* :class:`DiurnalProcess` — sinusoidal day/night rate, the canonical
  user-facing traffic shape.
* :class:`MarkovModulatedProcess` — two-state on/off MMPP for bursty,
  machine-generated traffic.
* :class:`AzureTraceProcess` — a synthetic generator shaped like the Azure
  Functions production trace: many functions with bounded-Pareto
  (heavy-tailed) mean rates, each on its own diurnal phase, superposed.
* :class:`SuperposedProcess` — merge any processes into one stream.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.sim.randomness import RandomStreams

#: Stream label used for the actual arrival draws. Kept stable so the
#: streaming extension's refactor onto this module stayed byte-identical.
ARRIVAL_STREAM = "arrivals"


class ArrivalProcess(abc.ABC):
    """A reproducible generator of absolute arrival times."""

    @abc.abstractmethod
    def sample(self, streams: RandomStreams, horizon_s: float) -> np.ndarray:
        """Sorted arrival times in ``[0, horizon_s)``."""

    @property
    @abc.abstractmethod
    def mean_rate_per_s(self) -> float:
        """Long-run average arrival rate (used to seed planners)."""


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals at a constant rate."""

    def __init__(self, rate_per_s: float) -> None:
        if rate_per_s <= 0.0:
            raise ValueError("arrival rate must be positive")
        self.rate_per_s = float(rate_per_s)

    @property
    def mean_rate_per_s(self) -> float:
        return self.rate_per_s

    def sample_n(self, streams: RandomStreams, n: int) -> np.ndarray:
        """The first ``n`` arrival times (count-bounded, not time-bounded)."""
        if n < 1:
            raise ValueError("need at least one arrival")
        gaps = streams.stream(ARRIVAL_STREAM).exponential(1.0 / self.rate_per_s, n)
        return np.cumsum(gaps)

    def sample(self, streams: RandomStreams, horizon_s: float) -> np.ndarray:
        if horizon_s <= 0.0:
            raise ValueError("horizon must be positive")
        gen = streams.stream(ARRIVAL_STREAM)
        block = max(64, int(self.rate_per_s * horizon_s * 1.1) + 1)
        chunks: list[np.ndarray] = []
        t = 0.0
        while t < horizon_s:
            times = t + np.cumsum(gen.exponential(1.0 / self.rate_per_s, block))
            chunks.append(times[times < horizon_s])
            t = float(times[-1])
        return np.concatenate(chunks) if chunks else np.empty(0)


class InhomogeneousPoissonProcess(ArrivalProcess):
    """Rate-varying Poisson arrivals via Lewis-Shedler thinning.

    ``rate_fn`` must accept a numpy array of times and return the
    instantaneous rate at each; ``max_rate_per_s`` must dominate it over
    the whole horizon (candidates are drawn at the dominating rate and
    accepted with probability ``rate(t) / max_rate``).
    """

    def __init__(self, rate_fn, max_rate_per_s: float) -> None:
        if max_rate_per_s <= 0.0:
            raise ValueError("dominating rate must be positive")
        self.rate_fn = rate_fn
        self.max_rate_per_s = float(max_rate_per_s)
        self._mean_rate: float | None = None

    @property
    def mean_rate_per_s(self) -> float:
        if self._mean_rate is not None:
            return self._mean_rate
        return self.max_rate_per_s / 2.0  # subclasses set the exact value

    def sample(self, streams: RandomStreams, horizon_s: float) -> np.ndarray:
        if horizon_s <= 0.0:
            raise ValueError("horizon must be positive")
        gen = streams.stream(ARRIVAL_STREAM)
        block = max(64, int(self.max_rate_per_s * horizon_s * 1.1) + 1)
        accepted: list[np.ndarray] = []
        t = 0.0
        while t < horizon_s:
            candidates = t + np.cumsum(
                gen.exponential(1.0 / self.max_rate_per_s, block)
            )
            u = gen.random(block)
            rates = np.asarray(self.rate_fn(candidates), dtype=float)
            if np.any(rates > self.max_rate_per_s * (1.0 + 1e-9)):
                raise ValueError("rate_fn exceeds the dominating max_rate_per_s")
            keep = (u * self.max_rate_per_s < rates) & (candidates < horizon_s)
            accepted.append(candidates[keep])
            t = float(candidates[-1])
        return np.concatenate(accepted) if accepted else np.empty(0)


class DiurnalProcess(InhomogeneousPoissonProcess):
    """Sinusoidal day/night traffic: ``base · (1 + amp · sin(2πt/period))``.

    ``phase_s`` shifts the peak; the default puts the trough at ``t = 0``
    (service starts at "night") so a one-period run sweeps trough → peak →
    trough.
    """

    def __init__(
        self,
        base_rate_per_s: float,
        amplitude: float = 0.8,
        period_s: float = 86400.0,
        phase_s: float = None,
    ) -> None:
        if base_rate_per_s <= 0.0:
            raise ValueError("base rate must be positive")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if period_s <= 0.0:
            raise ValueError("period must be positive")
        self.base_rate_per_s = float(base_rate_per_s)
        self.amplitude = float(amplitude)
        self.period_s = float(period_s)
        # sin(2π(t+phase)/period) == -1 at t=0  ⇒  phase = -period/4.
        self.phase_s = float(phase_s) if phase_s is not None else -period_s / 4.0

        def rate(times: np.ndarray) -> np.ndarray:
            angle = 2.0 * np.pi * (np.asarray(times) + self.phase_s) / self.period_s
            return self.base_rate_per_s * (1.0 + self.amplitude * np.sin(angle))

        super().__init__(rate, base_rate_per_s * (1.0 + amplitude))
        self._mean_rate = self.base_rate_per_s


class MarkovModulatedProcess(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty on/off traffic).

    The modulating chain alternates exponentially distributed ON/OFF
    sojourns; within each sojourn arrivals are Poisson at that state's
    rate. ``rate_off_per_s`` may be 0 (pure on/off bursts).
    """

    def __init__(
        self,
        rate_on_per_s: float,
        rate_off_per_s: float,
        mean_on_s: float,
        mean_off_s: float,
        start_on: bool = True,
    ) -> None:
        if rate_on_per_s <= 0.0 or rate_off_per_s < 0.0:
            raise ValueError("ON rate must be positive, OFF rate non-negative")
        if mean_on_s <= 0.0 or mean_off_s <= 0.0:
            raise ValueError("mean sojourns must be positive")
        self.rate_on_per_s = float(rate_on_per_s)
        self.rate_off_per_s = float(rate_off_per_s)
        self.mean_on_s = float(mean_on_s)
        self.mean_off_s = float(mean_off_s)
        self.start_on = start_on

    @property
    def mean_rate_per_s(self) -> float:
        total = self.mean_on_s + self.mean_off_s
        return (
            self.rate_on_per_s * self.mean_on_s
            + self.rate_off_per_s * self.mean_off_s
        ) / total

    def sample(self, streams: RandomStreams, horizon_s: float) -> np.ndarray:
        if horizon_s <= 0.0:
            raise ValueError("horizon must be positive")
        state_gen = streams.stream("mmpp/state")
        arrival_gen = streams.stream(ARRIVAL_STREAM)
        times: list[float] = []
        t = 0.0
        on = self.start_on
        while t < horizon_s:
            mean = self.mean_on_s if on else self.mean_off_s
            rate = self.rate_on_per_s if on else self.rate_off_per_s
            end = min(t + state_gen.exponential(mean), horizon_s)
            if rate > 0.0:
                tick = t
                while True:
                    tick += arrival_gen.exponential(1.0 / rate)
                    if tick >= end:
                        break
                    times.append(tick)
            t = end
            on = not on
        return np.asarray(times)


class AzureTraceProcess(ArrivalProcess):
    """Synthetic traffic shaped like the Azure Functions production trace.

    ``n_functions`` independent functions, each with a bounded-Pareto
    (heavy-tailed) mean rate — a few functions dominate the load, most are
    nearly idle — and each riding its own randomly phased diurnal envelope.
    Per-minute invocation counts are Poisson draws against the summed
    envelope; arrivals land uniformly within their minute bucket, matching
    the trace's per-minute resolution.
    """

    def __init__(
        self,
        rate_per_function_per_s: float,
        n_functions: int = 50,
        tail_alpha: float = 1.5,
        tail_cap: float = 100.0,
        diurnal_amplitude: float = 0.6,
        period_s: float = 86400.0,
        bucket_s: float = 60.0,
    ) -> None:
        if rate_per_function_per_s <= 0.0:
            raise ValueError("per-function rate must be positive")
        if n_functions < 1:
            raise ValueError("need at least one function")
        if not 0.0 <= diurnal_amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if bucket_s <= 0.0 or period_s <= 0.0:
            raise ValueError("bucket and period must be positive")
        self.rate_per_function_per_s = float(rate_per_function_per_s)
        self.n_functions = int(n_functions)
        self.tail_alpha = float(tail_alpha)
        self.tail_cap = float(tail_cap)
        self.diurnal_amplitude = float(diurnal_amplitude)
        self.period_s = float(period_s)
        self.bucket_s = float(bucket_s)

    @property
    def mean_rate_per_s(self) -> float:
        # E[bounded Pareto] ≈ alpha/(alpha-1) for cap >> 1; report the
        # nominal per-function rate times the population instead of the
        # seed-dependent realized sum.
        tail_mean = (
            self.tail_alpha / (self.tail_alpha - 1.0)
            if self.tail_alpha > 1.0
            else math.log(self.tail_cap)
        )
        return self.rate_per_function_per_s * self.n_functions * tail_mean

    def sample(self, streams: RandomStreams, horizon_s: float) -> np.ndarray:
        if horizon_s <= 0.0:
            raise ValueError("horizon must be positive")
        rates = self.rate_per_function_per_s * streams.pareto_factors(
            "azure/rates", self.tail_alpha, self.n_functions, self.tail_cap
        )
        phases = streams.stream("azure/phases").random(self.n_functions) * self.period_s
        n_buckets = int(math.ceil(horizon_s / self.bucket_s))
        centers = (np.arange(n_buckets) + 0.5) * self.bucket_s
        # (functions × buckets) diurnal envelopes, phase-shifted per function.
        angle = 2.0 * np.pi * (centers[None, :] + phases[:, None]) / self.period_s
        envelope = 1.0 + self.diurnal_amplitude * np.sin(angle)
        lam = (rates[:, None] * envelope).sum(axis=0) * self.bucket_s
        counts = streams.stream("azure/counts").poisson(lam)
        place_gen = streams.stream(ARRIVAL_STREAM)
        chunks: list[np.ndarray] = []
        for b, count in enumerate(counts):
            if count == 0:
                continue
            start = b * self.bucket_s
            chunk = start + place_gen.random(int(count)) * self.bucket_s
            chunks.append(chunk)
        if not chunks:
            return np.empty(0)
        times = np.sort(np.concatenate(chunks))
        return times[times < horizon_s]


class SuperposedProcess(ArrivalProcess):
    """The merge of several independent arrival processes.

    Each component samples from its own spawned child stream family, so
    adding a component never perturbs the others' draws.
    """

    def __init__(self, processes: list[ArrivalProcess]) -> None:
        if not processes:
            raise ValueError("need at least one component process")
        self.processes = list(processes)

    @property
    def mean_rate_per_s(self) -> float:
        return sum(p.mean_rate_per_s for p in self.processes)

    def sample(self, streams: RandomStreams, horizon_s: float) -> np.ndarray:
        parts = [
            p.sample(streams.spawn(f"superpose/{i}"), horizon_s)
            for i, p in enumerate(self.processes)
        ]
        return np.sort(np.concatenate(parts))
