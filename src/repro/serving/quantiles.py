"""Constant-memory latency statistics for million-request horizons.

A multi-hour serving run produces far too many sojourn samples to hold in
memory and sort at the end. :class:`P2Quantile` implements the P² algorithm
(Jain & Chlamtáč, CACM 1985): five markers track a single quantile online
in O(1) space, staying within a couple of percent of the exact order
statistic for smooth distributions. :class:`QuantileDigest` bundles the
p50/p95/p99 markers a serving report needs, and :class:`WindowedSLOTracker`
counts SLO violations in bounded time buckets so "which hour of the day
breached" survives the run without retaining samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


class P2Quantile:
    """Streaming estimate of one quantile via the P² algorithm.

    The first five observations are stored exactly; from the sixth on,
    five markers (min, p/2, p, (1+p)/2, max) are nudged toward their ideal
    rank positions with piecewise-parabolic interpolation.
    """

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = float(p)
        self.count = 0
        self._initial: list[float] = []
        self._q: list[float] = []    # marker heights
        self._n: list[float] = []    # marker positions (1-based ranks)
        self._np: list[float] = []   # desired marker positions
        self._dn = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    def add(self, x: float) -> None:
        x = float(x)
        self.count += 1
        if self.count <= 5:
            self._initial.append(x)
            if self.count == 5:
                self._initial.sort()
                self._q = list(self._initial)
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                p = self.p
                self._np = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
            return
        q, n, np_, dn = self._q, self._n, self._np, self._dn
        if x < q[0]:
            q[0] = x
            k = 0
        elif x < q[1]:
            k = 0
        elif x < q[2]:
            k = 1
        elif x < q[3]:
            k = 2
        elif x <= q[4]:
            k = 3
        else:
            q[4] = x
            k = 3
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            np_[i] += dn[i]
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                sign = 1.0 if d >= 0.0 else -1.0
                candidate = self._parabolic(i, sign)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, sign)
                n[i] += sign

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (exact while count <= 5)."""
        if self.count == 0:
            raise ValueError("no observations")
        if self.count <= 5:
            ordered = sorted(self._initial)
            rank = max(1, math.ceil(self.p * len(ordered)))
            return ordered[rank - 1]
        return self._q[2]


class QuantileDigest:
    """The p50/p95/p99 bundle a latency report needs, in O(1) space."""

    DEFAULT_QUANTILES = (0.5, 0.95, 0.99)

    def __init__(self, quantiles: tuple[float, ...] = DEFAULT_QUANTILES) -> None:
        self._estimators = {p: P2Quantile(p) for p in quantiles}
        self.count = 0

    def add(self, x: float) -> None:
        self.count += 1
        for est in self._estimators.values():
            est.add(x)

    def quantile(self, p: float) -> float:
        return self._estimators[p].value

    def summary(self) -> dict[str, float]:
        return {
            f"p{int(round(p * 100))}": est.value
            for p, est in self._estimators.items()
        }


@dataclass
class _Bucket:
    count: int = 0
    violations: int = 0
    sojourn_sum: float = 0.0


class WindowedSLOTracker:
    """SLO violations over sliding time windows, in bounded memory.

    Completions land in fixed-width time buckets (one counter triple per
    ``bucket_s``, so a day at one-minute buckets is 1440 entries no matter
    how many requests arrive). A *window* is ``window_s / bucket_s``
    consecutive buckets; :meth:`violation_fraction` reports the overall
    rate and :meth:`worst_window` the worst sliding window — the number an
    SLO burn-rate alert would fire on.
    """

    def __init__(self, slo_s: float, window_s: float = 600.0, bucket_s: float = 60.0) -> None:
        if slo_s <= 0.0:
            raise ValueError("SLO bound must be positive")
        if bucket_s <= 0.0 or window_s < bucket_s:
            raise ValueError("need window_s >= bucket_s > 0")
        self.slo_s = float(slo_s)
        self.window_s = float(window_s)
        self.bucket_s = float(bucket_s)
        self._buckets: dict[int, _Bucket] = {}
        self.total = 0
        self.total_violations = 0

    def record(self, completed_at: float, sojourn_s: float) -> None:
        if completed_at < 0.0:
            raise ValueError("completion time must be non-negative")
        bucket = self._buckets.setdefault(int(completed_at // self.bucket_s), _Bucket())
        bucket.count += 1
        bucket.sojourn_sum += sojourn_s
        self.total += 1
        if sojourn_s > self.slo_s:
            bucket.violations += 1
            self.total_violations += 1

    @property
    def violation_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return self.total_violations / self.total

    def recent_violation_fraction(
        self, now: float, window_s: Optional[float] = None
    ) -> float:
        """Violation fraction over the trailing window ending at ``now``.

        This is the live health signal the brownout controller and AIMD
        admission feed on; an empty window reads as healthy (0.0).
        """
        span = self.window_s if window_s is None else float(window_s)
        lo = int(max(0.0, now - span) // self.bucket_s)
        hi = int(now // self.bucket_s)
        count = violations = 0
        for idx in range(lo, hi + 1):
            bucket = self._buckets.get(idx)
            if bucket is not None:
                count += bucket.count
                violations += bucket.violations
        return violations / count if count else 0.0

    def window_attainment(
        self, per_window_budget: float = 0.01, min_requests: int = 1
    ) -> float:
        """Fraction of sliding windows whose violation rate meets budget.

        With ``per_window_budget = 0.01`` this is *windowed P99
        attainment*: a window passes iff at least 99% of its completions
        met the SLO bound, i.e. the window's 99th percentile held.
        Returns 1.0 when no window saw ``min_requests`` completions.
        """
        if not 0.0 <= per_window_budget < 1.0:
            raise ValueError("per_window_budget must be in [0, 1)")
        if not self._buckets:
            return 1.0
        span = max(1, int(round(self.window_s / self.bucket_s)))
        passed = judged = 0
        for start in sorted(self._buckets):
            count = violations = 0
            for idx in range(start, start + span):
                bucket = self._buckets.get(idx)
                if bucket is not None:
                    count += bucket.count
                    violations += bucket.violations
            if count >= min_requests and count > 0:
                judged += 1
                if violations / count <= per_window_budget:
                    passed += 1
        return passed / judged if judged else 1.0

    def worst_window(self, min_requests: int = 1) -> tuple[float, float]:
        """(window start time, violation fraction) of the worst window."""
        if not self._buckets:
            return (0.0, 0.0)
        span = max(1, int(round(self.window_s / self.bucket_s)))
        indices = sorted(self._buckets)
        worst = (0.0, 0.0)
        for start in indices:
            count = violations = 0
            for idx in range(start, start + span):
                bucket = self._buckets.get(idx)
                if bucket is not None:
                    count += bucket.count
                    violations += bucket.violations
            if count >= min_requests and count > 0:
                fraction = violations / count
                if fraction > worst[1]:
                    worst = (start * self.bucket_s, fraction)
        return worst

    def bucket_series(self) -> list[tuple[float, int, int, float]]:
        """(start time, count, violations, mean sojourn) per bucket."""
        series = []
        for idx in sorted(self._buckets):
            bucket = self._buckets[idx]
            mean = bucket.sojourn_sum / bucket.count if bucket.count else 0.0
            series.append((idx * self.bucket_s, bucket.count, bucket.violations, mean))
        return series
