"""Long-horizon serving simulator: arrivals × batching × warm pool × SLOs.

Where :class:`~repro.extensions.streaming.StreamingDispatcher` answers "what
does one ``(degree, timeout)`` policy cost on a short homogeneous stream",
:class:`ServingSimulator` drives the platform through *hours* of service:

* requests arrive from any :class:`~repro.serving.arrivals.ArrivalProcess`,
* a batch-and-pack dispatcher groups them under the current policy (which
  an :class:`~repro.serving.controller.OnlineReplanner` may change
  mid-service),
* dispatches draw instances from a :class:`~repro.serving.warmpool.WarmPool`
  — warm hits pay a millisecond dispatch, cold starts pay the sandbox
  latency *and* billed initialization (the index/model load runs inside the
  handler, so providers charge it),
* sojourn times feed constant-memory P² quantile estimators and a windowed
  SLO tracker, so a million-request day needs no sample retention,
* billing threads warm-idle time through
  :meth:`~repro.platform.billing.BillingModel.serving_expense` at the
  provisioned-concurrency rate.

Determinism: one integer seed fixes the arrival schedule, every execution
noise draw, and therefore every reported number, bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.models import ExecutionTimeModel
from repro.platform.billing import BillingModel
from repro.platform.metrics import ExpenseBreakdown
from repro.platform.providers import PlatformProfile
from repro.serving.arrivals import ArrivalProcess
from repro.serving.controller import OnlineReplanner
from repro.serving.quantiles import QuantileDigest, WindowedSLOTracker
from repro.serving.warmpool import WarmPool
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.workloads.base import AppSpec

if TYPE_CHECKING:  # annotation-only: a runtime import would be circular
    from repro.extensions.streaming import StreamingPolicy


@dataclass(frozen=True)
class ServingConfig:
    """Latency and accounting constants of the serving loop."""

    cold_start_s: float = 2.5        # sandbox + init latency on a cold dispatch
    warm_dispatch_s: float = 0.02    # dispatch latency onto a warm instance
    cold_init_billed_s: float = 2.0  # initialization billed as execution
                                     # (index/model load inside the handler)
    qos_sojourn_s: float = 30.0      # per-request SLO bound
    slo_window_s: float = 600.0
    slo_bucket_s: float = 60.0
    replan_interval_s: float = 60.0  # controller tick (ignored w/o controller)

    def __post_init__(self) -> None:
        if self.cold_start_s < 0 or self.warm_dispatch_s < 0:
            raise ValueError("dispatch latencies must be non-negative")
        if self.cold_init_billed_s < 0:
            raise ValueError("billed init must be non-negative")
        if self.qos_sojourn_s <= 0:
            raise ValueError("QoS bound must be positive")
        if self.replan_interval_s <= 0:
            raise ValueError("replan interval must be positive")


@dataclass
class ServingResult:
    """Everything measured from one serving run."""

    policy_name: str
    mode: str                    # "static" or "replan"
    n_requests: int = 0
    n_dispatches: int = 0
    cold_dispatches: int = 0
    warm_dispatches: int = 0
    exec_gb_seconds: float = 0.0
    idle_gb_seconds: float = 0.0
    evictions: int = 0
    replans: int = 0
    policy_changes: int = 0
    final_degree: int = 1
    expense: ExpenseBreakdown = field(
        default_factory=lambda: ExpenseBreakdown(0.0, 0.0, 0.0, 0.0)
    )
    digest: QuantileDigest = field(default_factory=QuantileDigest)
    slo: Optional[WindowedSLOTracker] = None

    @property
    def cold_start_fraction(self) -> float:
        if self.n_dispatches == 0:
            return 0.0
        return self.cold_dispatches / self.n_dispatches

    @property
    def p50_sojourn_s(self) -> float:
        return self.digest.quantile(0.5)

    @property
    def p95_sojourn_s(self) -> float:
        return self.digest.quantile(0.95)

    @property
    def p99_sojourn_s(self) -> float:
        return self.digest.quantile(0.99)

    @property
    def slo_violation_fraction(self) -> float:
        return self.slo.violation_fraction if self.slo is not None else 0.0

    def cost_per_request_usd(self) -> float:
        if self.n_requests == 0:
            return 0.0
        return self.expense.total_usd / self.n_requests

    def signature(self) -> tuple:
        """Hashable summary pinned by the determinism tests."""
        return (
            self.n_requests,
            self.n_dispatches,
            self.cold_dispatches,
            round(self.expense.total_usd, 12),
            round(self.p99_sojourn_s, 12),
            round(self.idle_gb_seconds, 9),
        )


class ServingSimulator:
    """Simulates sustained service for one app on one platform profile."""

    def __init__(
        self,
        profile: PlatformProfile,
        app: AppSpec,
        exec_model: ExecutionTimeModel,
        pool: WarmPool,
        config: ServingConfig = ServingConfig(),
        controller: Optional[OnlineReplanner] = None,
        seed: int = 0,
    ) -> None:
        self.profile = profile
        self.app = app
        self.exec_model = exec_model
        self.pool = pool
        self.config = config
        self.controller = controller
        self.seed = seed
        self._billed_gb = (
            BillingModel(profile).billed_memory_mb(profile.max_memory_mb) / 1024.0
        )

    # ------------------------------------------------------------------ #
    def run(
        self,
        process: ArrivalProcess,
        policy: StreamingPolicy,
        horizon_s: float,
        repetition: int = 0,
    ) -> ServingResult:
        """Serve every arrival in ``[0, horizon_s)`` to completion."""
        if horizon_s <= 0.0:
            raise ValueError("horizon must be positive")
        rng = RandomStreams(self.seed).spawn(f"serving/r{repetition}")
        arrivals = process.sample(rng, horizon_s)
        cfg = self.config
        result = ServingResult(
            policy_name=getattr(self.pool.policy, "name", "custom"),
            mode="replan" if self.controller is not None else "static",
            n_requests=len(arrivals),
            slo=WindowedSLOTracker(cfg.qos_sojourn_s, cfg.slo_window_s, cfg.slo_bucket_s),
        )
        if len(arrivals) == 0:
            result.expense = BillingModel(self.profile).serving_expense(0.0, 0, 0.0)
            return result

        sim = Simulator()
        waiting: list[float] = []
        state = {"timer": None, "policy": policy}

        def dispatch() -> None:
            if not waiting:
                return
            live = state["policy"]
            batch = waiting[: live.degree]
            del waiting[: len(batch)]
            if state["timer"] is not None:
                state["timer"].cancel()
                state["timer"] = None
            warm = self.pool.acquire(sim.now)
            start_latency = cfg.warm_dispatch_s if warm else cfg.cold_start_s
            exec_time = self.exec_model.predict(len(batch)) * rng.lognormal_factor(
                "exec", self.profile.exec_noise_sigma
            )
            billed_s = exec_time + (0.0 if warm else cfg.cold_init_billed_s)
            finish = sim.now + start_latency + exec_time
            result.n_dispatches += 1
            if warm:
                result.warm_dispatches += 1
            else:
                result.cold_dispatches += 1
            result.exec_gb_seconds += billed_s * self._billed_gb
            for arrived in batch:
                sojourn = finish - arrived
                result.digest.add(sojourn)
                result.slo.record(finish, sojourn)
            sim.schedule_at(finish, self.pool.release, finish)
            if waiting:
                arm_timer()

        def arm_timer() -> None:
            if state["timer"] is not None:
                return
            deadline = waiting[0] + state["policy"].batch_timeout_s
            state["timer"] = sim.schedule(max(0.0, deadline - sim.now), timer_fired)

        def timer_fired() -> None:
            state["timer"] = None
            dispatch()

        def on_arrival(t: float) -> None:
            if self.controller is not None:
                self.controller.record_arrival(t)
            waiting.append(t)
            if len(waiting) >= state["policy"].degree:
                dispatch()
            else:
                arm_timer()

        def replan_tick() -> None:
            decision = self.controller.replan(sim.now)
            if decision.changed:
                state["policy"] = decision.policy
                self.pool.set_capacity(decision.pool_target)
                result.policy_changes += 1
                # A shallower degree may make the current backlog dispatchable.
                while len(waiting) >= state["policy"].degree:
                    dispatch()

        for t in arrivals:
            sim.schedule_at(float(t), on_arrival, float(t))
        if self.controller is not None:
            ticks = int(math.floor(horizon_s / cfg.replan_interval_s))
            for k in range(1, ticks + 1):
                sim.schedule_at(k * cfg.replan_interval_s, replan_tick)

        sim.run()
        # Flush the tail still waiting when arrivals stop, then drain the
        # release events those dispatches scheduled.
        while waiting:
            dispatch()
        sim.run()
        end_time = max(sim.now, horizon_s)
        self.pool.drain(end_time)

        result.replans = self.controller.replans if self.controller else 0
        result.final_degree = state["policy"].degree
        result.evictions = self.pool.stats.evictions
        result.idle_gb_seconds = self.pool.stats.idle_seconds * self._billed_gb
        result.expense = BillingModel(self.profile).serving_expense(
            result.exec_gb_seconds, result.n_dispatches, result.idle_gb_seconds
        )
        return result
