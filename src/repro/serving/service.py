"""Long-horizon serving simulator: arrivals × batching × warm pool × SLOs.

Where :class:`~repro.extensions.streaming.StreamingDispatcher` answers "what
does one ``(degree, timeout)`` policy cost on a short homogeneous stream",
:class:`ServingSimulator` drives the platform through *hours* of service:

* requests arrive from any :class:`~repro.serving.arrivals.ArrivalProcess`,
* a batch-and-pack dispatcher groups them under the current policy (which
  an :class:`~repro.serving.controller.OnlineReplanner` may change
  mid-service),
* dispatches draw instances from a :class:`~repro.serving.warmpool.WarmPool`
  — warm hits pay a millisecond dispatch, cold starts pay the sandbox
  latency *and* billed initialization (the index/model load runs inside the
  handler, so providers charge it),
* sojourn times feed constant-memory P² quantile estimators and a windowed
  SLO tracker, so a million-request day needs no sample retention,
* billing threads warm-idle time through
  :meth:`~repro.platform.billing.BillingModel.serving_expense` at the
  provisioned-concurrency rate.

Overload and faults (see ``docs/RESILIENCE.md``) compose onto that loop:

* a :class:`~repro.resilience.ResiliencePolicy` wires admission control
  (shed excess arrivals, exact per-priority accounting), per-fault-domain
  circuit breakers around instance dispatch, and a brownout controller
  that boosts the packing degree and then sheds low-priority traffic
  while the windowed SLO is breached;
* a :class:`~repro.faults.scenario.FaultScenario` injects crashes,
  stragglers, 429 throttling, poisoned domains, and correlated kill
  events into the dispatch path, with any
  :class:`~repro.faults.retry.RetryPolicy` governing re-execution; failed
  attempts are billed (and counted as wasted), retries re-pay payload
  egress.

Determinism: one integer seed fixes the arrival schedule, every priority,
fault, and noise draw, and therefore every reported number, bit for bit —
``admitted + shed == arrivals`` holds exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

from repro.core.models import ExecutionTimeModel
from repro.engine import (
    AttemptChain,
    DispatchCosts,
    DispatchKernel,
    resolve_retry_policy,
)
from repro.faults.retry import RetryPolicy
from repro.faults.scenario import FaultScenario
from repro.platform.billing import BillingModel
from repro.platform.metrics import ExpenseBreakdown
from repro.platform.providers import PlatformProfile
from repro.resilience import NORMAL, N_PRIORITIES, ResiliencePolicy
from repro.serving.arrivals import ArrivalProcess
from repro.serving.controller import OnlineReplanner
from repro.serving.quantiles import QuantileDigest, WindowedSLOTracker
from repro.serving.warmpool import WarmPool
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.telemetry.config import TelemetryConfig, TelemetrySession, resolve_session
from repro.workloads.base import AppSpec

if TYPE_CHECKING:  # annotation-only: a runtime import would be circular
    from repro.extensions.streaming import StreamingPolicy
    from repro.remediation import RemediationLoop, RemediationReport


@dataclass(frozen=True)
class ServingConfig:
    """Latency and accounting constants of the serving loop."""

    cold_start_s: float = 2.5        # sandbox + init latency on a cold dispatch
    warm_dispatch_s: float = 0.02    # dispatch latency onto a warm instance
    cold_init_billed_s: float = 2.0  # initialization billed as execution
                                     # (index/model load inside the handler)
    qos_sojourn_s: float = 30.0      # per-request SLO bound
    slo_window_s: float = 600.0
    slo_bucket_s: float = 60.0
    replan_interval_s: float = 60.0  # controller tick (ignored w/o controller)
    backlog_threshold: int = 64      # backlog depth counted as "over" in the
                                     # report (and fed to brownout)
    max_breaker_deferrals: int = 32  # batch dispatch deferrals before giving up
    fault_domains: int = 4           # dispatch targets under a FaultScenario
                                     # (a CircuitBreakerBank overrides this
                                     # with its own domain count)

    def __post_init__(self) -> None:
        if self.cold_start_s < 0 or self.warm_dispatch_s < 0:
            raise ValueError("dispatch latencies must be non-negative")
        if self.cold_init_billed_s < 0:
            raise ValueError("billed init must be non-negative")
        if self.qos_sojourn_s <= 0:
            raise ValueError("QoS bound must be positive")
        if self.replan_interval_s <= 0:
            raise ValueError("replan interval must be positive")
        if self.backlog_threshold < 1:
            raise ValueError("backlog threshold must be >= 1")
        if self.max_breaker_deferrals < 1:
            raise ValueError("max_breaker_deferrals must be >= 1")
        if self.fault_domains < 1:
            raise ValueError("fault_domains must be >= 1")


@dataclass
class BacklogStats:
    """Dispatch-queue visibility for one serving run.

    ``mean_depth`` is time-weighted over the whole horizon;
    ``time_over_threshold_s`` accumulates while the backlog exceeds
    :attr:`ServingConfig.backlog_threshold` — the signal an operator's
    queue-depth alert (and the brownout controller) watches.
    """

    threshold: int = 0
    max_depth: int = 0
    mean_depth: float = 0.0
    time_over_threshold_s: float = 0.0


@dataclass
class ResilienceReport:
    """Exact overload/fault accounting for one serving run.

    The conservation identity ``arrivals == admitted + shed`` (and
    ``admitted == completed + failed + still-queued == completed + failed``
    once the run drains) is bit-exact under one seed; the property and
    golden suites pin it.
    """

    arrivals: int = 0
    admitted: int = 0
    shed_admission: int = 0
    shed_brownout: int = 0
    shed_by_priority: list[int] = field(
        default_factory=lambda: [0] * N_PRIORITIES
    )
    failed_requests: int = 0      # admitted but never completed
    crashes: int = 0
    correlated_kills: int = 0
    retries: int = 0
    throttled_attempts: int = 0   # 429 rejections at dispatch
    throttle_drops: int = 0       # batches dropped after the 429 budget
    breaker_deferrals: int = 0    # dispatches parked on open breakers
    breaker_transitions: int = 0
    breaker_opens: int = 0
    brownout_escalations: int = 0
    brownout_max_level: int = 0
    wasted_gb_seconds: float = 0.0   # billed GB-s that produced no result
    retry_egress_gb: float = 0.0     # payload re-shipped by retries

    @property
    def shed(self) -> int:
        return self.shed_admission + self.shed_brownout

    def conserved(self) -> bool:
        return self.arrivals == self.admitted + self.shed

    def signature(self) -> tuple:
        return (
            self.arrivals,
            self.admitted,
            self.shed_admission,
            self.shed_brownout,
            tuple(self.shed_by_priority),
            self.failed_requests,
            self.crashes,
            self.correlated_kills,
            self.retries,
            self.throttled_attempts,
            self.throttle_drops,
            self.breaker_transitions,
            self.brownout_escalations,
            round(self.wasted_gb_seconds, 9),
            round(self.retry_egress_gb, 9),
        )


@dataclass
class ServingResult:
    """Everything measured from one serving run."""

    policy_name: str
    mode: str                    # "static" or "replan"
    n_requests: int = 0
    n_dispatches: int = 0
    cold_dispatches: int = 0
    warm_dispatches: int = 0
    exec_gb_seconds: float = 0.0
    idle_gb_seconds: float = 0.0
    evictions: int = 0
    replans: int = 0
    policy_changes: int = 0
    final_degree: int = 1
    expense: ExpenseBreakdown = field(
        default_factory=lambda: ExpenseBreakdown(0.0, 0.0, 0.0, 0.0)
    )
    digest: QuantileDigest = field(default_factory=QuantileDigest)
    slo: Optional[WindowedSLOTracker] = None
    resilience: ResilienceReport = field(default_factory=ResilienceReport)
    backlog: BacklogStats = field(default_factory=BacklogStats)
    #: Timeline of the auto-remediation loop, when one drove the run
    #: (kept out of ``signature()``: the goldens pin it separately).
    remediation: Optional["RemediationReport"] = None

    @property
    def cold_start_fraction(self) -> float:
        if self.n_dispatches == 0:
            return 0.0
        return self.cold_dispatches / self.n_dispatches

    @property
    def n_completed(self) -> int:
        """Requests actually served (admitted and not lost to faults)."""
        return self.digest.count

    @property
    def n_shed(self) -> int:
        return self.resilience.shed

    @property
    def n_failed(self) -> int:
        return self.resilience.failed_requests

    @property
    def p50_sojourn_s(self) -> float:
        return self.digest.quantile(0.5)

    @property
    def p95_sojourn_s(self) -> float:
        return self.digest.quantile(0.95)

    @property
    def p99_sojourn_s(self) -> float:
        return self.digest.quantile(0.99)

    @property
    def slo_violation_fraction(self) -> float:
        return self.slo.violation_fraction if self.slo is not None else 0.0

    @property
    def slo_attainment(self) -> float:
        """Fraction of completed requests that met the sojourn bound."""
        return 1.0 - self.slo_violation_fraction

    def windowed_p99_attainment(self, per_window_budget: float = 0.01) -> float:
        """Fraction of sliding SLO windows whose P99 met the bound."""
        if self.slo is None:
            return 1.0
        return self.slo.window_attainment(per_window_budget)

    def cost_per_request_usd(self) -> float:
        if self.n_requests == 0:
            return 0.0
        return self.expense.total_usd / self.n_requests

    def cost_per_completed_request_usd(self) -> float:
        """Dollars per request that actually finished — the honest overload
        metric: shedding reduces the denominator only if the survivors
        still complete."""
        if self.n_completed == 0:
            return 0.0
        return self.expense.total_usd / self.n_completed

    def conserved(self) -> bool:
        """arrivals == completed + shed + failed, exactly."""
        return self.n_requests == (
            self.n_completed + self.n_shed + self.n_failed
        )

    def signature(self) -> tuple:
        """Hashable summary pinned by the determinism tests."""
        return (
            self.n_requests,
            self.n_dispatches,
            self.cold_dispatches,
            round(self.expense.total_usd, 12),
            round(self.p99_sojourn_s, 12),
            round(self.idle_gb_seconds, 9),
            self.resilience.signature(),
            self.backlog.max_depth,
        )


@dataclass
class _ActiveDispatch:
    """An in-flight dispatch, killable by correlated fault events.

    ``chain`` is the batch's :class:`~repro.engine.chain.AttemptChain`; its
    ``payload`` holds the batched requests' arrival times.
    """

    chain: AttemptChain
    event: object               # the scheduled completion/crash event
    domain: Optional[int]
    warm: bool
    exec_start: float
    exec_time: float
    crashing: bool              # already scheduled to crash


class ServingSimulator:
    """Simulates sustained service for one app on one platform profile."""

    def __init__(
        self,
        profile: PlatformProfile,
        app: AppSpec,
        exec_model: ExecutionTimeModel,
        pool: WarmPool,
        config: ServingConfig = ServingConfig(),
        controller: Optional[OnlineReplanner] = None,
        resilience: Optional[ResiliencePolicy] = None,
        scenario: Optional[FaultScenario] = None,
        retry_policy: Optional[RetryPolicy] = None,
        seed: int = 0,
        telemetry: Union[TelemetryConfig, TelemetrySession, None] = None,
        remediation: Optional["RemediationLoop"] = None,
        kernel_mode: Optional[str] = None,
    ) -> None:
        self.profile = profile
        self.app = app
        self.exec_model = exec_model
        self.pool = pool
        self.config = config
        self.controller = controller
        self.resilience = resilience
        self.scenario = scenario
        self.retry_policy = retry_policy
        self.seed = seed
        #: RNG mode for the dispatch kernel every run builds (``None`` →
        #: the engine default, batched); scalar and batched runs are
        #: byte-identical by the facade contract.
        self.kernel_mode = kernel_mode
        #: Optional closed-loop auto-remediation (see repro.remediation):
        #: ticks inside sim time, actuating through _RemediationPort.
        self.remediation = remediation
        #: One session spans every run; each run is a process band in the
        #: exported trace and resilience components register their metrics
        #: into the session registry (see docs/OBSERVABILITY.md).
        self.telemetry = resolve_session(telemetry)
        self._billed_gb = (
            BillingModel(profile).billed_memory_mb(profile.max_memory_mb) / 1024.0
        )

    def run(
        self,
        process: ArrivalProcess,
        policy: StreamingPolicy,
        horizon_s: float,
        repetition: int = 0,
    ) -> ServingResult:
        """Serve every *admitted* arrival in ``[0, horizon_s)`` to completion."""
        if horizon_s <= 0.0:
            raise ValueError("horizon must be positive")
        return _ServingRun(self, process, policy, horizon_s, repetition).execute()


class _ServingRun:
    """State machine of one :meth:`ServingSimulator.run` invocation."""

    def __init__(
        self,
        owner: ServingSimulator,
        process: ArrivalProcess,
        policy: StreamingPolicy,
        horizon_s: float,
        repetition: int,
    ) -> None:
        self.owner = owner
        self.cfg = owner.config
        self.pool = owner.pool
        self.horizon_s = float(horizon_s)
        self.rng = RandomStreams(owner.seed).spawn(f"serving/r{repetition}")
        self.arrivals = process.sample(self.rng, horizon_s)
        self.sim = Simulator()
        self.policy = policy
        self.timer = None
        self.waiting: list[tuple[float, int]] = []  # (arrival time, priority)
        self.blocked: list[AttemptChain] = []       # parked on open breakers
        self.pump_scheduled = False
        self.requests_in_flight = 0                 # formed, not yet resolved
        self.active: dict[int, _ActiveDispatch] = {}
        self._next_dispatch_id = 0
        self._rotor = 0                             # round-robin fault domain
        self.poisoned_at: dict[int, float] = {}     # domain -> poisoning time
        self.crashes_by_domain: dict[int, int] = {}  # cumulative, detectors' feed
        self.max_degree = owner.app.max_packing_degree(owner.profile.max_memory_mb)

        res = owner.resilience
        self.protection_on = res is not None and res.active
        self.admission = res.admission if res else None
        self.breakers = res.breakers if res else None
        self.brownout = res.brownout if res else None
        self.priority_mix = res.priority_mix if res else None

        scenario = owner.scenario
        # All fault/throttle/retry arbitration is delegated to the shared
        # dispatch kernel; serving keeps only its own concerns (batching,
        # domain routing, breakers, brownout) around the kernel's verdicts.
        self.kernel = DispatchKernel(
            self.rng,
            scenario=scenario,
            retry_policy=resolve_retry_policy(owner.retry_policy, scenario),
            profile_failure_rate=owner.profile.failure_rate,
            mode=owner.kernel_mode,
        )
        self.injector = self.kernel.injector
        self.throttle = self.kernel.bucket
        # A scenario may start with domains already poisoned (shadow replays
        # seed this with the live run's state; experiments can use it too).
        if scenario is not None:
            for domain in scenario.initially_poisoned:
                self.poisoned_at.setdefault(domain, 0.0)
                if self.breakers is not None:
                    self.breakers.poison(domain)
        self.costs = DispatchCosts(
            self.cfg.cold_start_s,
            self.cfg.warm_dispatch_s,
            self.cfg.cold_init_billed_s,
        )

        self.result = ServingResult(
            policy_name=getattr(self.pool.policy, "name", "custom"),
            mode="replan" if owner.controller is not None else "static",
            n_requests=len(self.arrivals),
            slo=WindowedSLOTracker(
                self.cfg.qos_sojourn_s, self.cfg.slo_window_s, self.cfg.slo_bucket_s
            ),
        )
        self.result.backlog.threshold = self.cfg.backlog_threshold
        self._bl_last_t = 0.0
        self._bl_integral = 0.0

        self.tel = None
        session = owner.telemetry
        if session is not None:
            self.tel = session.serving_instrumentation(
                self.sim,
                f"serving {owner.app.name} "
                f"{self.result.policy_name}/{self.result.mode} r{repetition}",
            )
            if session.registry is not None:
                for component in (
                    self.admission, self.breakers, self.brownout, self.injector
                ):
                    if component is not None:
                        component.bind_metrics(session.registry)

        self.remedy = owner.remediation
        if self.remedy is not None:
            self.remedy.begin_run(_RemediationPort(self))

    # ---------------------------------------------------------------- #
    # backlog accounting (satellite: queue-depth visibility)
    def _backlog_touch(self) -> None:
        now = self.sim.now
        dt = now - self._bl_last_t
        if dt > 0.0:
            depth = len(self.waiting)
            self._bl_integral += depth * dt
            if depth > self.cfg.backlog_threshold:
                self.result.backlog.time_over_threshold_s += dt
        self._bl_last_t = now

    def _backlog_peak(self) -> None:
        if len(self.waiting) > self.result.backlog.max_depth:
            self.result.backlog.max_depth = len(self.waiting)

    # ---------------------------------------------------------------- #
    def _effective_degree(self) -> int:
        degree = self.policy.degree
        if self.brownout is not None:
            boosted = int(round(degree * self.brownout.degree_multiplier))
            degree = max(1, min(boosted, self.max_degree))
        return degree

    def _payload_gb(self, n: int) -> float:
        return n * self.owner.app.io_mb / 1024.0

    def _domain_poisoned(self, domain: int, now: float) -> bool:
        poisoned_since = self.poisoned_at.get(domain)
        if poisoned_since is None:
            return False
        heal = self.owner.scenario.poison_heal_s
        if heal is not None and now >= poisoned_since + heal:
            del self.poisoned_at[domain]
            if self.breakers is not None:
                self.breakers.poisoned.discard(domain)
            return False
        return True

    # ---------------------------------------------------------------- #
    def on_arrival(self, t: float) -> None:
        report = self.result.resilience
        report.arrivals += 1
        if self.owner.controller is not None:
            self.owner.controller.record_arrival(t)
        priority = (
            self.priority_mix.draw(self.rng.stream("priority"))
            if self.protection_on
            else NORMAL
        )
        if self.brownout is not None and self.brownout.sheds(priority):
            report.shed_brownout += 1
            report.shed_by_priority[priority] += 1
            if self.tel is not None:
                self.tel.on_arrival("shed-brownout")
            return
        if self.admission is not None and not self.admission.decide(
            t, priority, len(self.waiting), self.requests_in_flight
        ):
            report.shed_admission += 1
            report.shed_by_priority[priority] += 1
            if self.tel is not None:
                self.tel.on_arrival("shed-admission")
            return
        report.admitted += 1
        if self.tel is not None:
            self.tel.on_arrival("admitted")
        self._backlog_touch()
        self.waiting.append((t, priority))
        self._backlog_peak()
        if len(self.waiting) >= self._effective_degree():
            self.form_batch()
        else:
            self.arm_timer()

    def arm_timer(self) -> None:
        if self.timer is not None or not self.waiting:
            return
        deadline = self.waiting[0][0] + self.policy.batch_timeout_s
        self.timer = self.sim.schedule(
            max(0.0, deadline - self.sim.now), self.timer_fired
        )

    def timer_fired(self) -> None:
        self.timer = None
        self.form_batch()

    def form_batch(self) -> None:
        if not self.waiting:
            return
        degree = self._effective_degree()
        self._backlog_touch()
        taken = self.waiting[:degree]
        del self.waiting[: len(taken)]
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None
        self.requests_in_flight += len(taken)
        chain = self.kernel.new_chain(
            n_packed=len(taken),
            payload=[t for t, _ in taken],
            retry=self.kernel.fresh_retry(),
        )
        self.launch(chain)
        if self.waiting:
            self.arm_timer()

    # ---------------------------------------------------------------- #
    def launch(self, chain: AttemptChain) -> None:
        now = self.sim.now
        report = self.result.resilience
        # 429-style platform throttling: back off, retry, eventually drop.
        if self.throttle is not None:
            verdict = self.kernel.throttle_gate(chain, now)
            if not verdict.admitted:
                report.throttled_attempts += 1
                if self.tel is not None:
                    self.tel.on_throttled()
                if verdict.rejected:
                    report.throttle_drops += 1
                    self.fail_batch(chain)
                    return
                self.sim.schedule(verdict.wait_s, self.launch, chain)
                return
        # Route to a fault domain: breakers filter by circuit state; an
        # unprotected run routes round-robin regardless of domain health —
        # the asymmetry the overload experiment measures.
        domain: Optional[int] = None
        if self.breakers is not None:
            domain = self.breakers.pick(now)
            if domain is None:
                report.breaker_deferrals += 1
                chain.deferrals += 1
                if chain.deferrals > self.cfg.max_breaker_deferrals:
                    self.fail_batch(chain)
                    return
                self.blocked.append(chain)
                self.schedule_pump()
                return
        elif self.injector is not None:
            domain = self._rotor % self.cfg.fault_domains
            self._rotor += 1
        warm = self.pool.acquire(now)
        start_latency = self.costs.start_latency(warm)
        exec_time = self.owner.exec_model.predict(
            chain.n_packed
        ) * self.kernel.exec_noise_factor(self.owner.profile.exec_noise_sigma)
        exec_time *= self.kernel.straggler_factor()
        # Gray failures: a slow-but-alive domain stretches execution without
        # crashing, so breakers (which watch failures) never trip. Draw-free,
        # so runs without gray domains keep a byte-identical RNG schedule.
        exec_time *= self.kernel.gray_factor(domain, now)
        self.result.n_dispatches += 1
        if warm:
            self.result.warm_dispatches += 1
        else:
            self.result.cold_dispatches += 1
        exec_start = now + start_latency
        crash = None
        if self.injector is not None:
            # Poisoning is per fault *domain* here (the dispatch target),
            # not per chain — a poisoned domain dooms whichever batch lands
            # on it until the domain heals.
            poisoned = domain is not None and self._domain_poisoned(domain, now)
            crash = self.kernel.crash_decision(poisoned=poisoned)
        dispatch_id = self._next_dispatch_id
        self._next_dispatch_id += 1
        if crash is None:
            event = self.sim.schedule_at(
                exec_start + exec_time, self.on_complete, dispatch_id
            )
            crashing = False
        else:
            event = self.sim.schedule_at(
                exec_start + crash.at_fraction * exec_time,
                self.on_crash,
                dispatch_id,
                crash.persistent,
            )
            crashing = True
        self.active[dispatch_id] = _ActiveDispatch(
            chain=chain,
            event=event,
            domain=domain,
            warm=warm,
            exec_start=exec_start,
            exec_time=exec_time,
            crashing=crashing,
        )
        if self.tel is not None:
            self.tel.on_dispatch(dispatch_id, chain.n_packed, warm, domain)

    def _bill(self, ad: _ActiveDispatch, exec_seconds: float) -> float:
        """Billed GB-seconds of one attempt (init is billed on cold starts)."""
        billed_s = self.costs.billed_seconds(exec_seconds, ad.warm)
        gb_s = billed_s * self.owner._billed_gb
        self.result.exec_gb_seconds += gb_s
        return gb_s

    def on_complete(self, dispatch_id: int) -> None:
        ad = self.active.pop(dispatch_id)
        now = self.sim.now
        self._bill(ad, ad.exec_time)
        self.pool.release(now)
        if ad.domain is not None and self.breakers is not None:
            self.breakers.record(ad.domain, True, now)
        sojourns = []
        for arrived in ad.chain.payload:
            sojourn = now - arrived
            sojourns.append(sojourn)
            self.result.digest.add(sojourn)
            self.result.slo.record(now, sojourn)
        if self.tel is not None:
            self.tel.on_complete(
                dispatch_id,
                sojourns,
                exec_s=ad.exec_time,
                billed_s=self.costs.billed_seconds(ad.exec_time, ad.warm),
            )
        self.requests_in_flight -= ad.chain.n_packed
        self.pump_blocked()

    def on_crash(self, dispatch_id: int, persistent: bool) -> None:
        ad = self.active.pop(dispatch_id)
        now = self.sim.now
        self.result.resilience.crashes += 1
        if ad.domain is not None:
            self.crashes_by_domain[ad.domain] = (
                self.crashes_by_domain.get(ad.domain, 0) + 1
            )
        if self.tel is not None:
            self.tel.on_crash(dispatch_id, correlated=False, domain=ad.domain)
        executed = max(0.0, now - ad.exec_start)
        gb_s = self._bill(ad, executed)
        self.result.resilience.wasted_gb_seconds += gb_s
        if persistent and ad.domain is not None:
            self.poisoned_at.setdefault(ad.domain, now)
            if self.breakers is not None:
                self.breakers.poison(ad.domain)
        if ad.domain is not None and self.breakers is not None:
            self.breakers.record(ad.domain, False, now)
        # The sandbox died: the instance never returns to the warm pool.
        self.retry_or_fail(ad.chain)
        self.pump_blocked()

    def retry_or_fail(self, chain: AttemptChain) -> None:
        report = self.result.resilience
        delay = self.kernel.next_retry_delay(chain)
        if delay is None:
            self.fail_batch(chain)
            return
        report.retries += 1
        report.retry_egress_gb += self._payload_gb(chain.n_packed)
        if self.tel is not None:
            self.tel.on_retry(chain.n_packed, delay)
        self.sim.schedule(delay, self.launch, chain)

    def fail_batch(self, chain: AttemptChain) -> None:
        chain.lost = True
        self.result.resilience.failed_requests += chain.n_packed
        self.requests_in_flight -= chain.n_packed
        if self.tel is not None:
            self.tel.on_fail_batch(chain.n_packed)

    # ---------------------------------------------------------------- #
    def schedule_pump(self) -> None:
        if self.pump_scheduled or not self.blocked or self.breakers is None:
            return
        at = self.breakers.earliest_retry(self.sim.now)
        if at is None:
            return  # an in-flight probe's completion/crash will pump instead
        self.pump_scheduled = True
        self.sim.schedule_at(at, self.pump_fired)

    def pump_fired(self) -> None:
        self.pump_scheduled = False
        self.pump_blocked()

    def pump_blocked(self) -> None:
        if not self.blocked:
            return
        batches, self.blocked = self.blocked, []
        for batch in batches:
            self.launch(batch)  # re-parks itself if still refused
        self.schedule_pump()

    # ---------------------------------------------------------------- #
    def on_correlated_event(self) -> None:
        """A rack/AZ-style event: each in-flight dispatch may be killed."""
        now = self.sim.now
        victims = list(self.active.items())
        if not victims:
            return
        kills = self.kernel.correlated_kills(len(victims))
        for (dispatch_id, ad), killed in zip(victims, kills):
            if not killed:
                continue
            ad.event.cancel()
            del self.active[dispatch_id]
            self.result.resilience.correlated_kills += 1
            if ad.domain is not None:
                self.crashes_by_domain[ad.domain] = (
                    self.crashes_by_domain.get(ad.domain, 0) + 1
                )
            if self.tel is not None:
                self.tel.on_crash(dispatch_id, correlated=True, domain=ad.domain)
            executed = max(0.0, min(now, ad.exec_start + ad.exec_time) - ad.exec_start)
            gb_s = self._bill(ad, executed)
            self.result.resilience.wasted_gb_seconds += gb_s
            if ad.domain is not None and self.breakers is not None:
                self.breakers.record(ad.domain, False, now)
            self.retry_or_fail(ad.chain)
        self.pump_blocked()

    # ---------------------------------------------------------------- #
    def control_tick(self) -> None:
        now = self.sim.now
        violation = self.result.slo.recent_violation_fraction(now)
        if self.tel is not None:
            self.tel.on_tick(len(self.waiting), violation)
        if self.owner.controller is not None:
            decision = self.owner.controller.replan(now)
            if decision.changed:
                self.policy = decision.policy
                self.pool.set_capacity(decision.pool_target)
                self.result.policy_changes += 1
        if self.brownout is not None:
            self.brownout.observe(now, violation, len(self.waiting))
        if self.admission is not None:
            self.admission.observe_window(now, violation)
        # A shallower (or brownout-boosted) degree may make the current
        # backlog dispatchable immediately.
        while len(self.waiting) >= self._effective_degree():
            self.form_batch()

    def remediation_tick(self) -> None:
        """One pass of the auto-remediation loop, inside sim time.

        Applied actions may change the packing degree or pool capacity, so
        batch formation is re-checked afterwards exactly as a control tick
        does. The loop itself draws no live RNG (shadow replays run on
        forked streams), so an idle loop leaves the run bit-identical.
        """
        self.remedy.tick(self.sim.now)
        while len(self.waiting) >= self._effective_degree():
            self.form_batch()

    # ---------------------------------------------------------------- #
    def execute(self) -> ServingResult:
        owner, cfg, result = self.owner, self.cfg, self.result
        if len(self.arrivals) == 0:
            result.expense = BillingModel(owner.profile).serving_expense(0.0, 0, 0.0)
            if self.remedy is not None:
                result.remediation = self.remedy.report
            return result
        for t in self.arrivals:
            self.sim.schedule_at(float(t), self.on_arrival, float(t))
        ticking = (
            owner.controller is not None
            or self.brownout is not None
            or self.admission is not None
        )
        if ticking:
            ticks = int(math.floor(self.horizon_s / cfg.replan_interval_s))
            for k in range(1, ticks + 1):
                self.sim.schedule_at(k * cfg.replan_interval_s, self.control_tick)
        if self.remedy is not None:
            interval = self.remedy.config.tick_interval_s
            for k in range(1, int(math.floor(self.horizon_s / interval)) + 1):
                self.sim.schedule_at(k * interval, self.remediation_tick)
        if self.injector is not None and owner.scenario.correlated_bursts > 0:
            times = self.rng.stream("fault.correlated.times").uniform(
                0.0, self.horizon_s, owner.scenario.correlated_bursts
            )
            for t in sorted(float(t) for t in times):
                self.sim.schedule_at(t, self.on_correlated_event)

        self.sim.run()
        # Flush the tail still waiting when arrivals stop, then drain the
        # retries/completions those dispatches scheduled.
        while self.waiting:
            self.form_batch()
        self.sim.run()
        # Safety net: a batch still parked on permanently-open breakers
        # after the agenda drained is failed, preserving conservation.
        for batch in self.blocked:
            self.fail_batch(batch)
        self.blocked.clear()

        end_time = max(self.sim.now, self.horizon_s)
        self.pool.drain(end_time)
        self._backlog_touch()
        result.backlog.mean_depth = (
            self._bl_integral / end_time if end_time > 0.0 else 0.0
        )
        result.replans = owner.controller.replans if owner.controller else 0
        result.final_degree = self.policy.degree
        result.evictions = self.pool.stats.evictions
        result.idle_gb_seconds = self.pool.stats.idle_seconds * owner._billed_gb
        if self.breakers is not None:
            result.resilience.breaker_transitions = self.breakers.n_transitions
            result.resilience.breaker_opens = sum(
                1
                for b in self.breakers.breakers
                for (_, _, dst) in b.transitions
                if dst == "open"
            )
        if self.brownout is not None:
            result.resilience.brownout_escalations = self.brownout.escalations
            result.resilience.brownout_max_level = self.brownout.max_level_seen
        result.expense = BillingModel(owner.profile).serving_expense(
            result.exec_gb_seconds,
            result.n_dispatches,
            result.idle_gb_seconds,
            egress_gb=result.resilience.retry_egress_gb,
        )
        if self.remedy is not None:
            result.remediation = self.remedy.report
        return result


class _RemediationPort:
    """The narrow adapter the remediation loop drives a live run through.

    Implements both halves of the loop's contract (see
    ``repro.remediation.loop.RemediationPort``): read-only health signals
    for the detectors and typed actuation for the actions. Serving keeps no
    import on ``repro.remediation`` — the coupling is duck-typed here, and
    the layering test keeps the dependency one-directional.
    """

    def __init__(self, run: _ServingRun) -> None:
        self._run = run

    # --- health signals ------------------------------------------------ #
    def violation_fraction(self, now: float) -> float:
        return self._run.result.slo.recent_violation_fraction(now)

    @property
    def backlog_depth(self) -> int:
        return len(self._run.waiting)

    @property
    def backlog_threshold(self) -> int:
        return self._run.cfg.backlog_threshold

    @property
    def in_flight(self) -> int:
        return self._run.requests_in_flight

    @property
    def arrivals_total(self) -> int:
        return self._run.result.resilience.arrivals

    @property
    def n_domains(self) -> int:
        # Quarantine needs a breaker bank to actuate through; without one
        # the loop sees zero domains and the domain detectors stay silent.
        breakers = self._run.breakers
        return len(breakers) if breakers is not None else 0

    def open_domains(self) -> tuple[int, ...]:
        breakers = self._run.breakers
        if breakers is None:
            return ()
        return tuple(
            d for d, b in enumerate(breakers.breakers) if b.state == "open"
        )

    def breaker_flaps(self) -> tuple[int, ...]:
        breakers = self._run.breakers
        return tuple(breakers.flaps_by_domain()) if breakers is not None else ()

    def crashes_by_domain(self) -> tuple[int, ...]:
        return tuple(
            self._run.crashes_by_domain.get(d, 0) for d in range(self.n_domains)
        )

    def poisoned_domains(self, now: float) -> tuple[int, ...]:
        run = self._run
        return tuple(sorted(
            d for d in list(run.poisoned_at) if run._domain_poisoned(d, now)
        ))

    # --- actuators ------------------------------------------------------ #
    def get_degree(self) -> int:
        return self._run.policy.degree

    def set_degree(self, degree: int) -> None:
        from repro.extensions.streaming import StreamingPolicy

        run = self._run
        clamped = max(1, min(int(degree), run.max_degree))
        run.policy = StreamingPolicy(
            degree=clamped, batch_timeout_s=run.policy.batch_timeout_s
        )
        run.result.policy_changes += 1

    @property
    def max_degree(self) -> int:
        return self._run.max_degree

    def get_pool_capacity(self) -> Optional[int]:
        return self._run.pool.capacity

    def set_pool_capacity(self, capacity: Optional[int]) -> None:
        self._run.pool.set_capacity(capacity)

    def get_admission_limit(self) -> Optional[int]:
        admission = self._run.admission
        if admission is None or not getattr(
            admission, "supports_limit_override", False
        ):
            return None
        return int(admission.concurrency_limit)

    def set_admission_limit(self, limit: int) -> None:
        self._run.admission.set_limit(limit)

    def quarantined_domains(self) -> frozenset[int]:
        breakers = self._run.breakers
        return frozenset(breakers.quarantined) if breakers is not None else frozenset()

    def quarantine_domain(self, domain: int) -> None:
        self._run.breakers.quarantine(domain)

    def release_domain(self, domain: int) -> None:
        self._run.breakers.release(domain)

    # --- shadow materials & determinism seams --------------------------- #
    def shadow_materials(self) -> dict:
        run = self._run
        owner = run.owner
        breakers = run.breakers
        failure_threshold = None
        recovery_s = 30.0
        if breakers is not None and breakers.breakers:
            failure_threshold = breakers.breakers[0].failure_threshold
            recovery_s = breakers.breakers[0].recovery_s
        return {
            "profile": owner.profile,
            "app": owner.app,
            "exec_model": owner.exec_model,
            "config": owner.config,
            "scenario": owner.scenario,
            "retry_policy": owner.retry_policy,
            "batch_timeout_s": run.policy.batch_timeout_s,
            "warm_ttl_s": run.pool.policy.keep_alive_s(),
            "breaker_failure_threshold": failure_threshold,
            "breaker_recovery_s": recovery_s,
        }

    def predict_exec_s(self, degree: int) -> float:
        return self._run.owner.exec_model.predict(max(1, int(degree)))

    def shadow_seed(self, label: str) -> int:
        """Deterministic shadow seed off the live kernel's fork seam —
        spawning consumes no parent draws, so the live run is unperturbed."""
        return self._run.kernel.fork(label).rng.seed

    @property
    def live_horizon_s(self) -> float:
        return self._run.horizon_s

    # --- telemetry ------------------------------------------------------ #
    @property
    def telemetry(self):
        return self._run.owner.telemetry

    def emit(self, stage: str, **fields) -> None:
        if self._run.tel is not None:
            self._run.tel.on_remediation(stage, **fields)
