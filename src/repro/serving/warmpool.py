"""Keep-alive warm pools with pluggable eviction policies.

Sustained serverless traffic lives or dies on the keep-alive decision: an
idle instance held warm turns the next dispatch into a millisecond warm
start, but every warm-idle second is billed at the provisioned-concurrency
rate (:attr:`~repro.platform.providers.PlatformProfile.keepalive_gb_second_usd`).
A pure cold-start service pays nothing to keep warm — idle cost is *never*
billed on cold starts — but repays it with interest as billed
initialization time and latency on every dispatch.

Policies decide how long an idle instance is kept:

* :class:`NoKeepAlive` — evict immediately (the pay-per-use baseline),
* :class:`FixedTTL` — a provider-style fixed idle timeout,
* :class:`HybridHistogram` — Azure-style ("Serverless in the Wild"):
  a histogram of observed idle gaps picks the keep-alive as a percentile
  of how long reuses actually take to come back,
* :class:`GreedyLRUCap` — fixed TTL plus a hard cap on pool size, evicting
  the least-recently-used instance when full.

:class:`WarmPool` is the mechanism: it tracks idle instances, accrues
idle seconds for billing, reuses LIFO (the hottest instance first, so the
rest age toward eviction), and reports reuse/eviction counters.
"""

from __future__ import annotations

import abc
import math
from collections import deque
from dataclasses import dataclass
from typing import Optional


class KeepAlivePolicy(abc.ABC):
    """Decides the idle TTL granted to an instance entering the pool."""

    #: Hard cap on simultaneously idle instances (``None`` = unbounded).
    capacity: Optional[int] = None

    @abc.abstractmethod
    def keep_alive_s(self) -> float:
        """TTL for an instance going idle now (0 means evict immediately)."""

    def observe_reuse(self, idle_gap_s: float) -> None:
        """An idle instance was reused after ``idle_gap_s`` seconds."""

    def observe_eviction(self, idle_ttl_s: float) -> None:
        """An instance aged out after its full TTL (a censored gap)."""


class NoKeepAlive(KeepAlivePolicy):
    """Evict on release: every dispatch is a cold start, idle cost is zero."""

    name = "no-keep-alive"

    def keep_alive_s(self) -> float:
        return 0.0


class FixedTTL(KeepAlivePolicy):
    """Keep every idle instance warm for a fixed TTL (Lambda-style)."""

    def __init__(self, ttl_s: float) -> None:
        if ttl_s < 0.0:
            raise ValueError("TTL must be non-negative")
        self.ttl_s = float(ttl_s)
        self.name = f"fixed-ttl-{ttl_s:g}s"

    def keep_alive_s(self) -> float:
        return self.ttl_s


class HybridHistogram(KeepAlivePolicy):
    """Azure-style histogram policy: learn the idle-gap distribution.

    Reuse gaps land in fixed-width histogram buckets; the granted TTL is a
    high percentile of that distribution times a safety margin, clamped to
    ``[ttl_min_s, ttl_max_s]``. Evictions are censored observations (the
    gap was at least the TTL) and land in the bucket of the granted TTL,
    so a policy that evicts too eagerly sees its histogram shift right and
    corrects itself. Until ``min_observations`` gaps are seen the policy
    falls back to ``default_ttl_s``.
    """

    def __init__(
        self,
        bucket_s: float = 1.0,
        n_buckets: int = 240,
        percentile: float = 0.95,
        margin: float = 1.1,
        ttl_min_s: float = 1.0,
        ttl_max_s: float = 120.0,
        default_ttl_s: float = 30.0,
        min_observations: int = 20,
    ) -> None:
        if bucket_s <= 0.0 or n_buckets < 2:
            raise ValueError("need bucket_s > 0 and n_buckets >= 2")
        if not 0.0 < percentile < 1.0:
            raise ValueError("percentile must be in (0, 1)")
        if ttl_min_s < 0.0 or ttl_max_s < ttl_min_s:
            raise ValueError("need 0 <= ttl_min_s <= ttl_max_s")
        self.bucket_s = float(bucket_s)
        self.counts = [0] * int(n_buckets)  # last bucket is the overflow
        self.percentile = float(percentile)
        self.margin = float(margin)
        self.ttl_min_s = float(ttl_min_s)
        self.ttl_max_s = float(ttl_max_s)
        self.default_ttl_s = float(default_ttl_s)
        self.min_observations = int(min_observations)
        self.observations = 0
        self.name = "hybrid-histogram"

    def _bucket_of(self, gap_s: float) -> int:
        return min(int(gap_s / self.bucket_s), len(self.counts) - 1)

    def observe_reuse(self, idle_gap_s: float) -> None:
        self.counts[self._bucket_of(idle_gap_s)] += 1
        self.observations += 1

    def observe_eviction(self, idle_ttl_s: float) -> None:
        self.counts[self._bucket_of(idle_ttl_s)] += 1
        self.observations += 1

    def keep_alive_s(self) -> float:
        if self.observations < self.min_observations:
            return min(max(self.default_ttl_s, self.ttl_min_s), self.ttl_max_s)
        target = self.percentile * self.observations
        running = 0
        for i, count in enumerate(self.counts):
            running += count
            if running >= target:
                # Upper edge of the percentile bucket, inflated by the margin.
                ttl = (i + 1) * self.bucket_s * self.margin
                return min(max(ttl, self.ttl_min_s), self.ttl_max_s)
        return self.ttl_max_s


class GreedyLRUCap(FixedTTL):
    """Fixed TTL with a hard pool-size cap; over capacity, evict the LRU."""

    def __init__(self, capacity: int, ttl_s: float = 120.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        super().__init__(ttl_s)
        self.capacity = int(capacity)
        self.name = f"lru-cap-{capacity}"


@dataclass
class _IdleEntry:
    idle_since: float
    expires_at: float


@dataclass
class PoolStats:
    """Lifetime counters of one warm pool."""

    reuses: int = 0
    cold_starts: int = 0
    evictions: int = 0
    immediate_releases: int = 0  # TTL 0: never entered the pool
    idle_seconds: float = 0.0    # warm-idle time, billed at the keep-alive rate


class WarmPool:
    """Idle-instance pool executing one :class:`KeepAlivePolicy`.

    Expiry is processed lazily (on acquire and on an explicit
    :meth:`drain`); all idle time is accrued exactly, from the instant an
    instance went idle to its reuse, its expiry, or the end of service —
    whichever comes first.
    """

    def __init__(self, policy: KeepAlivePolicy) -> None:
        self.policy = policy
        self.stats = PoolStats()
        self._idle: deque[_IdleEntry] = deque()
        self._capacity = policy.capacity

    def __len__(self) -> int:
        return len(self._idle)

    def set_capacity(self, capacity: Optional[int]) -> None:
        """Override the pool cap (the online replanner's pool-size lever)."""
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None)")
        self._capacity = capacity

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    def _expire_until(self, now: float) -> None:
        # Entries are appended in idle order but reused LIFO, so expiry can
        # leave survivors interleaved; filter rather than pop from one end.
        survivors: deque[_IdleEntry] = deque()
        for entry in self._idle:
            if entry.expires_at <= now:
                self.stats.idle_seconds += entry.expires_at - entry.idle_since
                self.stats.evictions += 1
                self.policy.observe_eviction(entry.expires_at - entry.idle_since)
            else:
                survivors.append(entry)
        self._idle = survivors

    def acquire(self, now: float) -> bool:
        """Take an instance for a dispatch; ``True`` iff it is a warm start."""
        self._expire_until(now)
        if self._idle:
            entry = self._idle.pop()  # LIFO: reuse the hottest instance
            gap = now - entry.idle_since
            self.stats.idle_seconds += gap
            self.stats.reuses += 1
            self.policy.observe_reuse(gap)
            return True
        self.stats.cold_starts += 1
        return False

    def release(self, now: float) -> None:
        """An instance finished executing and is eligible to stay warm."""
        ttl = self.policy.keep_alive_s()
        if ttl <= 0.0:
            self.stats.immediate_releases += 1
            return
        self._idle.append(_IdleEntry(idle_since=now, expires_at=now + ttl))
        if self._capacity is not None:
            while len(self._idle) > self._capacity:
                victim = min(self._idle, key=lambda e: e.idle_since)
                self._idle.remove(victim)
                self.stats.idle_seconds += now - victim.idle_since
                self.stats.evictions += 1
                self.policy.observe_eviction(now - victim.idle_since)

    def drain(self, now: float) -> None:
        """End of service: close out all idle accrual at ``now``."""
        self._expire_until(now)
        for entry in self._idle:
            self.stats.idle_seconds += max(0.0, now - entry.idle_since)
        self._idle.clear()

    @property
    def warm_fraction(self) -> float:
        total = self.stats.reuses + self.stats.cold_starts
        if total == 0:
            return 0.0
        return self.stats.reuses / total


def pool_size_for(rate_per_s: float, exec_seconds: float, degree: int,
                  headroom: float = 1.25) -> int:
    """Little's-law pool target: in-flight instances at the observed rate."""
    if degree < 1:
        raise ValueError("degree must be >= 1")
    in_flight = rate_per_s * exec_seconds / degree
    return max(1, int(math.ceil(in_flight * headroom)))
