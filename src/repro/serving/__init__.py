"""Long-horizon serving: arrival processes, warm pools, SLOs, replanning.

This package turns the one-shot burst substrate into a *service*: seeded
arrival processes generate hours of traffic, a warm pool with pluggable
keep-alive/eviction policies absorbs it, constant-memory quantile
estimators track latency SLOs over millions of requests, and an online
replanner adapts the packing degree and pool size as the load drifts.
See ``docs/SERVING.md``.
"""

from repro.serving.arrivals import (
    ArrivalProcess,
    AzureTraceProcess,
    DiurnalProcess,
    InhomogeneousPoissonProcess,
    MarkovModulatedProcess,
    PoissonProcess,
    SuperposedProcess,
)
from repro.serving.controller import OnlineReplanner, ReplanDecision
from repro.serving.quantiles import P2Quantile, QuantileDigest, WindowedSLOTracker
from repro.serving.service import (
    BacklogStats,
    ResilienceReport,
    ServingConfig,
    ServingResult,
    ServingSimulator,
)
from repro.serving.warmpool import (
    FixedTTL,
    GreedyLRUCap,
    HybridHistogram,
    KeepAlivePolicy,
    NoKeepAlive,
    PoolStats,
    WarmPool,
    pool_size_for,
)

__all__ = [
    "ArrivalProcess",
    "AzureTraceProcess",
    "DiurnalProcess",
    "InhomogeneousPoissonProcess",
    "MarkovModulatedProcess",
    "PoissonProcess",
    "SuperposedProcess",
    "OnlineReplanner",
    "ReplanDecision",
    "P2Quantile",
    "QuantileDigest",
    "WindowedSLOTracker",
    "BacklogStats",
    "ResilienceReport",
    "ServingConfig",
    "ServingResult",
    "ServingSimulator",
    "FixedTTL",
    "GreedyLRUCap",
    "HybridHistogram",
    "KeepAlivePolicy",
    "NoKeepAlive",
    "PoolStats",
    "WarmPool",
    "pool_size_for",
]
