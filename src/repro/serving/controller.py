"""Online replanning: adapt the packing degree and pool size as load drifts.

A static ``(degree, timeout)`` policy planned for the average rate is wrong
twice a day under diurnal traffic — too shallow at the peak (paying for
instances that batching would have merged) and too deep in the trough
(holding requests for batches that never fill). :class:`OnlineReplanner`
closes the loop: it re-fits the arrival rate over a sliding window of
observed arrivals, re-runs the planning stack —
:class:`~repro.extensions.streaming.StreamingPlanner` for the QoS-feasible
``(degree, timeout)`` and, when a scaling model is available, a fresh
:class:`~repro.core.optimizer.PackingOptimizer` whose joint optimum caps
the degree — and emits a new policy plus a Little's-law pool-size target.

Hysteresis prevents flapping: a new plan is *adopted* only if the observed
rate moved by more than ``hysteresis`` relative to the rate behind the
current plan AND the cooldown since the last adoption has elapsed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.models import ExecutionTimeModel, ScalingTimeModel
from repro.core.optimizer import PackingOptimizer
from repro.platform.providers import PlatformProfile
from repro.serving.warmpool import pool_size_for
from repro.workloads.base import AppSpec

if TYPE_CHECKING:  # imported lazily at runtime: streaming consumes
    from repro.extensions.streaming import StreamingPolicy  # this package's
    # arrivals module, so a module-level import here would be circular.


@dataclass(frozen=True)
class ReplanDecision:
    """Outcome of one replanning tick."""

    time: float
    observed_rate_per_s: float
    policy: StreamingPolicy
    pool_target: int
    changed: bool        # did this tick adopt a new plan?
    reason: str          # "initial" / "rate-drift" / "hysteresis-hold" / "cooldown-hold"


class OnlineReplanner:
    """Sliding-window rate estimation + hysteretic replanning."""

    def __init__(
        self,
        profile: PlatformProfile,
        app: AppSpec,
        exec_model: ExecutionTimeModel,
        qos_sojourn_s: float,
        scaling_model: Optional[ScalingTimeModel] = None,
        window_s: float = 300.0,
        hysteresis: float = 0.25,
        cooldown_s: float = 180.0,
        pool_headroom: float = 1.25,
        min_rate_per_s: float = 1e-3,
        joint_weight_service: float = 0.5,
    ) -> None:
        if window_s <= 0.0:
            raise ValueError("window must be positive")
        if hysteresis < 0.0:
            raise ValueError("hysteresis must be non-negative")
        if cooldown_s < 0.0:
            raise ValueError("cooldown must be non-negative")
        self.profile = profile
        self.app = app
        self.exec_model = exec_model
        self.qos_sojourn_s = float(qos_sojourn_s)
        self.scaling_model = scaling_model
        self.window_s = float(window_s)
        self.hysteresis = float(hysteresis)
        self.cooldown_s = float(cooldown_s)
        self.pool_headroom = float(pool_headroom)
        self.min_rate_per_s = float(min_rate_per_s)
        self.joint_weight_service = float(joint_weight_service)
        from repro.extensions.streaming import StreamingPlanner

        self._planner = StreamingPlanner(profile, app, exec_model)
        self._arrivals: deque[float] = deque()
        self._policy: Optional[StreamingPolicy] = None
        self._planned_rate: Optional[float] = None
        self._last_change_at = float("-inf")
        self.replans = 0
        self.changes = 0
        self.decisions: list[ReplanDecision] = []

    # ------------------------------------------------------------------ #
    def record_arrival(self, t: float) -> None:
        self._arrivals.append(t)
        cutoff = t - self.window_s
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()

    def observed_rate(self, now: float) -> float:
        cutoff = now - self.window_s
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()
        return len(self._arrivals) / self.window_s

    # ------------------------------------------------------------------ #
    def _plan_for(self, rate: float) -> "StreamingPolicy":
        from repro.extensions.streaming import StreamingPolicy

        policy = self._planner.plan(
            arrival_rate_per_s=rate, qos_sojourn_s=self.qos_sojourn_s
        )
        if self.scaling_model is None:
            return policy
        # Re-run the burst optimizer over the window-equivalent burst: the
        # joint (service, expense) optimum caps how deep streaming packs —
        # no point packing past the degree a one-shot planner would reject.
        window_burst = max(1, int(round(rate * self.window_s)))
        optimizer = PackingOptimizer(
            self.exec_model,
            self.scaling_model,
            self.app,
            self.profile,
            concurrency=window_burst,
        )
        cap = optimizer.optimal_joint(w_s=self.joint_weight_service)
        if policy.degree > cap:
            # The planner's timeout was budgeted for a deeper (slower)
            # degree, so it remains feasible at the shallower one.
            policy = StreamingPolicy(
                degree=cap, batch_timeout_s=policy.batch_timeout_s
            )
        return policy

    def replan(self, now: float) -> ReplanDecision:
        """One replanning tick; adopts a new plan only past the deadbands."""
        self.replans += 1
        rate = max(self.observed_rate(now), self.min_rate_per_s)
        if self._policy is None:
            decision = self._adopt(now, rate, "initial")
        else:
            drift = abs(rate - self._planned_rate) / self._planned_rate
            if drift <= self.hysteresis:
                decision = self._hold(now, rate, "hysteresis-hold")
            elif now - self._last_change_at < self.cooldown_s:
                decision = self._hold(now, rate, "cooldown-hold")
            else:
                decision = self._adopt(now, rate, "rate-drift")
        self.decisions.append(decision)
        return decision

    def _pool_target(self, rate: float, policy: StreamingPolicy) -> int:
        return pool_size_for(
            rate,
            self.exec_model.predict(policy.degree),
            policy.degree,
            self.pool_headroom,
        )

    def _adopt(self, now: float, rate: float, reason: str) -> ReplanDecision:
        self._policy = self._plan_for(rate)
        self._planned_rate = rate
        self._last_change_at = now
        self.changes += 1
        return ReplanDecision(
            time=now,
            observed_rate_per_s=rate,
            policy=self._policy,
            pool_target=self._pool_target(rate, self._policy),
            changed=True,
            reason=reason,
        )

    def _hold(self, now: float, rate: float, reason: str) -> ReplanDecision:
        return ReplanDecision(
            time=now,
            observed_rate_per_s=rate,
            policy=self._policy,
            pool_target=self._pool_target(self._planned_rate, self._policy),
            changed=False,
            reason=reason,
        )

    @property
    def policy(self) -> Optional[StreamingPolicy]:
        return self._policy
