"""Thread-based packed-function executor.

The paper implements packing by "spawning each of the functions separately
as individual software threads" inside one function instance (Sec. 2.6),
using a no-GIL CPython so threads scale across the instance's cores. On
stock CPython, numpy kernels release the GIL during array work, so the same
structure applies: this executor packs ``packing_degree`` tasks into one
*worker* (the stand-in for a function instance) and runs each worker's tasks
as concurrent threads.

This is the piece a downstream user actually calls to run their packed
workload; the simulator only predicts how it behaves at cloud scale.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.workloads.base import ExecutableApp, Task, TaskResult


@dataclass
class PackedInvocationResult:
    """Outcome of one packed burst executed locally."""

    results: list[TaskResult]
    worker_elapsed_s: list[float]
    packing_degree: int
    errors: list[tuple[int, BaseException]] = field(default_factory=list)

    @property
    def n_workers(self) -> int:
        return len(self.worker_elapsed_s)

    @property
    def ok(self) -> bool:
        return not self.errors

    def result_for(self, task_id: int) -> TaskResult:
        for result in self.results:
            if result.task_id == task_id:
                return result
        raise KeyError(f"no result for task {task_id}")


class PackedExecutor:
    """Runs an app's tasks with a given packing degree, threads per worker.

    ``max_workers`` bounds how many workers (simulated instances) run
    simultaneously on the local machine; at cloud scale every worker is its
    own instance, so the default runs workers sequentially to keep local
    measurements of per-worker elapsed time honest on small machines.
    """

    def __init__(self, app: ExecutableApp, max_workers: int = 1) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.app = app
        self.max_workers = max_workers

    # ------------------------------------------------------------------ #
    def run(
        self, tasks: Sequence[Task], packing_degree: int
    ) -> PackedInvocationResult:
        """Execute ``tasks`` packed ``packing_degree``-per-worker."""
        if packing_degree < 1:
            raise ValueError("packing degree must be >= 1")
        groups = [
            tasks[i : i + packing_degree]
            for i in range(0, len(tasks), packing_degree)
        ]
        results: list[TaskResult] = []
        errors: list[tuple[int, BaseException]] = []
        elapsed: list[float] = []
        for batch_start in range(0, len(groups), self.max_workers):
            batch = groups[batch_start : batch_start + self.max_workers]
            threads = []
            outputs: list[Optional[tuple[list[TaskResult], list, float]]] = [
                None
            ] * len(batch)
            for slot, group in enumerate(batch):
                thread = threading.Thread(
                    target=self._run_worker, args=(group, outputs, slot), daemon=True
                )
                threads.append(thread)
                thread.start()
            for thread in threads:
                thread.join()
            for out in outputs:
                assert out is not None
                worker_results, worker_errors, worker_elapsed = out
                results.extend(worker_results)
                errors.extend(worker_errors)
                elapsed.append(worker_elapsed)
        return PackedInvocationResult(
            results=results,
            worker_elapsed_s=elapsed,
            packing_degree=packing_degree,
            errors=errors,
        )

    # ------------------------------------------------------------------ #
    def _run_worker(
        self,
        group: Sequence[Task],
        outputs: list,
        slot: int,
    ) -> None:
        """One worker: run its packed tasks as concurrent threads."""
        worker_results: list[TaskResult] = []
        worker_errors: list[tuple[int, BaseException]] = []
        lock = threading.Lock()

        def run_one(task: Task) -> None:
            start = time.perf_counter()
            try:
                value = self.app.run_task(task)
            except BaseException as exc:  # noqa: BLE001 — reported, not hidden
                with lock:
                    worker_errors.append((task.task_id, exc))
                return
            took = time.perf_counter() - start
            with lock:
                worker_results.append(TaskResult(task.task_id, value, took))

        worker_start = time.perf_counter()
        threads = [
            threading.Thread(target=run_one, args=(task,), daemon=True)
            for task in group
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        outputs[slot] = (
            worker_results,
            worker_errors,
            time.perf_counter() - worker_start,
        )

    # ------------------------------------------------------------------ #
    def measure_packing_curve(
        self,
        degrees: Sequence[int],
        tasks_per_degree: int = 2,
        seed: int = 0,
    ) -> dict[int, float]:
        """Mean worker elapsed time at each packing degree (local profiling).

        The local analogue of ProPack's interference-estimation runs: a few
        executions per degree, no high concurrency needed.
        """
        curve: dict[int, float] = {}
        for degree in degrees:
            tasks = self.app.make_tasks(degree * tasks_per_degree, seed=seed)
            outcome = self.run(tasks, degree)
            if not outcome.ok:
                raise RuntimeError(
                    f"profiling run failed at degree {degree}: {outcome.errors[0][1]!r}"
                )
            curve[degree] = sum(outcome.worker_elapsed_s) / len(
                outcome.worker_elapsed_s
            )
        return curve
