"""Local packing runtime: really executes packed functions as threads."""

from repro.runtime.executor import PackedExecutor, PackedInvocationResult

__all__ = ["PackedExecutor", "PackedInvocationResult"]
