"""The unified dispatch engine: one attempt-chain state machine.

Every dispatch path in the reproduction — one-shot bursts
(:class:`~repro.platform.invoker.BurstInvoker`), sustained streams
(:class:`~repro.extensions.streaming.StreamingDispatcher`), and
long-horizon serving (:class:`~repro.serving.service.ServingSimulator`) —
executes the same per-instance lifecycle: admission (429 throttling) →
provisioning (cold pipeline or warm reuse) → execution (noise, stragglers,
crash draws) → billing attribution → retry/hedge arbitration. This package
owns that lifecycle *once*:

* :class:`~repro.engine.chain.AttemptChain` — the state of one logical
  work unit (a packed function group or a request batch) across all its
  attempts, retries, and hedges;
* :class:`~repro.engine.kernel.DispatchKernel` — the arbitration core:
  fault/straggler draws, token-bucket admission verdicts, retry-delay
  resolution, and correlated-kill fan-out, all on dedicated RNG streams;
* :class:`~repro.engine.burst.BurstDispatchKernel` — the event-driven
  cold-start pipeline (placement ∥ build → ship → execute) driven by the
  :class:`~repro.sim.engine.Simulator`, with wave-mode warm reuse,
  hedging, and billed-timeout abortion.

Layering: ``repro.engine`` sits *below* its consumers. It may import
``sim``, ``faults``, ``cluster``, ``interference``, ``telemetry`` and
``platform`` building blocks, but never ``serving``, ``extensions`` or
``resilience`` (enforced by ``tests/test_engine_layering.py`` and the CI
layering gate).
"""

from repro.engine.burst import BurstDispatchKernel
from repro.engine.chain import AttemptChain
from repro.engine.kernel import (
    DispatchCosts,
    DispatchKernel,
    SyncAttemptEnv,
    ThrottleVerdict,
    resolve_retry_policy,
)

__all__ = [
    "AttemptChain",
    "BurstDispatchKernel",
    "DispatchCosts",
    "DispatchKernel",
    "SyncAttemptEnv",
    "ThrottleVerdict",
    "resolve_retry_policy",
]
