"""The attempt chain: one logical work unit across all its attempts.

An :class:`AttemptChain` is the unit of retry/hedge arbitration shared by
every dispatch path: a packed function group in a burst, a request batch in
serving or streaming. The chain accumulates the feedback state the retry
and throttle policies need (attempt number, decorrelated-jitter delay,
consecutive-429 count) and the terminal flags (``satisfied`` / ``lost``)
that make duplicate deliveries and double-retries impossible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.faults.retry import RetryPolicy


@dataclass(slots=True)
class AttemptChain:
    """One packed group / batch across all its attempts (retries, hedges).

    ``payload`` is consumer-defined (e.g. the list of queued requests a
    serving batch carries); the kernel never inspects it. ``retry`` is the
    chain-scoped policy instance (serving/streaming refresh one per chain);
    bursts instead share a burst-scoped policy and pass it explicitly to
    :meth:`~repro.engine.kernel.DispatchKernel.next_retry_delay`.
    """

    chain_id: int
    n_packed: int
    payload: Any = None
    retry: Optional[RetryPolicy] = None

    attempt: int = 1            # 1-based index of the next/current attempt
    prev_delay: float = 0.0     # decorrelated-jitter feedback state
    throttle_tries: int = 0     # consecutive 429s for the pending admission
    deferrals: int = 0          # circuit-breaker deferrals (serving)
    poisoned: bool = False      # a persistent fault dooms every attempt
    satisfied: bool = False     # some attempt completed successfully
    lost: bool = False          # retries exhausted; work counted lost
    hedges_launched: int = 0
    #: Record ids in flight. Lazily allocated: most chains never hedge, so
    #: at million-chain scale an eager per-chain set is pure GC pressure
    #: (it measurably inflates wave-walk round times). ``None`` means
    #: empty; use :meth:`track`/:meth:`untrack` rather than mutating.
    active: Optional[set] = None

    def track(self, record_id: int) -> None:
        """Mark an instance record as in flight for this chain."""
        if self.active is None:
            self.active = {record_id}
        else:
            self.active.add(record_id)

    def untrack(self, record_id: int) -> None:
        """Drop an in-flight record (no-op if never tracked)."""
        if self.active is not None:
            self.active.discard(record_id)
